#!/bin/sh
# CI gate for the PaSh reproduction workspace.
#
#   ./ci.sh          # full gate
#
# Steps, in order:
#   1. release build of every workspace target (deny warnings);
#   2. the full test suite (unit + integration + doctests);
#   3. example smoke build;
#   4. compile (but don't run) all criterion benches;
#   5. dataplane bench smoke: run at a small size and check the
#      emitted BENCH_dataplane.json parses;
#   6. rustfmt check.
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release (workspace, all targets, deny warnings)"
RUSTFLAGS="${RUSTFLAGS:-} -D warnings" cargo build --release --workspace --all-targets

echo "==> cargo test -q (workspace)"
cargo test -q --workspace

echo "==> cargo build --examples (smoke)"
cargo build --examples

echo "==> cargo bench --no-run (workspace)"
cargo bench --no-run --workspace

echo "==> dataplane bench smoke (BENCH_dataplane.json well-formed)"
mkdir -p target/bench-smoke
./target/release/dataplane --size small --out target/bench-smoke/BENCH_dataplane.json
if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool target/bench-smoke/BENCH_dataplane.json >/dev/null
else
    grep -q '"bench":"dataplane"' target/bench-smoke/BENCH_dataplane.json
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "ci.sh: all green"
