#!/bin/sh
# CI gate for the PaSh reproduction workspace.
#
#   ./ci.sh          # full gate
#
# Steps, in order:
#   1. release build of every workspace target (deny warnings);
#   2. the full test suite (unit + integration + doctests);
#   3. example smoke build;
#   4. compile (but don't run) all criterion benches;
#   5. rustfmt check.
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release (workspace, all targets, deny warnings)"
RUSTFLAGS="${RUSTFLAGS:-} -D warnings" cargo build --release --workspace --all-targets

echo "==> cargo test -q (workspace)"
cargo test -q --workspace

echo "==> cargo build --examples (smoke)"
cargo build --examples

echo "==> cargo bench --no-run (workspace)"
cargo bench --no-run --workspace

echo "==> cargo fmt --check"
cargo fmt --check

echo "ci.sh: all green"
