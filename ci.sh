#!/bin/sh
# CI gate for the PaSh reproduction workspace.
#
#   ./ci.sh          # full gate
#
# Steps, in order:
#   1. release build of every workspace target (deny warnings);
#   2. the full test suite (unit + integration + doctests);
#   3. example smoke build;
#   4. compile (but don't run) all criterion benches;
#   5. dataplane bench smoke: run at a small size, check the emitted
#      BENCH_dataplane.json parses, and assert the simulated r_split
#      speedup over the skewed general split;
#   6. regex bench smoke: tiered-vs-PikeVM suite at a small size,
#      check the emitted BENCH_regex.json parses;
#   7. plan-determinism smoke (segment split and r_split plans);
#   8. process-backend smoke: one corpus script as real children over
#      FIFOs, byte-compared against the shell backend's output;
#   9. remote-backend smoke: two pash-worker daemons on localhost
#      sockets, the corpus at width 4, byte-compared against the shell
#      backend; plus the simulated remote-recovery overhead band;
#  10. fault-injection sweep: every fault kind at widths 2/4/8 must
#      leave output byte-identical to the sequential run, and the
#      simulated fallback overhead must stay a small constant;
#  11. service smoke: pashd + load generator — both plan-cache tiers
#      must fire, warm latency must undercut cold, warm request rate
#      must clear the floor (gates on BENCH_service.json);
#  12. adaptive-parallelism gate: the optimizer replays the NLP corpus
#      through the simulator under skew and must beat the worst fixed
#      width while staying within noise of the best fixed width
#      (gates on BENCH_adaptive.json); plus a profile warm-start
#      smoke over the daemon's disk tier;
#  13. rustfmt check.
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release (workspace, all targets, deny warnings)"
RUSTFLAGS="${RUSTFLAGS:-} -D warnings" cargo build --release --workspace --all-targets

echo "==> cargo test -q (workspace)"
cargo test -q --workspace

echo "==> cargo build --examples (smoke)"
cargo build --examples

echo "==> cargo bench --no-run (workspace)"
cargo bench --no-run --workspace

echo "==> dataplane bench smoke (BENCH_dataplane.json well-formed)"
mkdir -p target/bench-smoke
./target/release/dataplane --size small --out target/bench-smoke/BENCH_dataplane.json
if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool target/bench-smoke/BENCH_dataplane.json >/dev/null
else
    grep -q '"bench":"dataplane"' target/bench-smoke/BENCH_dataplane.json
fi

echo "==> r_split speedup smoke (skewed corpus, simulated width 8)"
# The simulator is deterministic, so this is a stable gate: the
# streaming round-robin split must beat the blocking, skew-prone
# general split on the line-length-skewed corpus.
rr_speedup=$(sed -n 's/.*"rr_vs_general_split_speedup":\([0-9.]*\).*/\1/p' \
    target/bench-smoke/BENCH_dataplane.json)
test -n "$rr_speedup"
awk "BEGIN { exit !($rr_speedup > 1.05) }"
echo "    r_split vs general split on skewed input: ${rr_speedup}x"

echo "==> regex bench smoke (BENCH_regex.json well-formed)"
# Also re-asserts (inside run_suite) that the tiered engine and the
# Pike VM agree on every benchmark corpus before timing them.
./target/release/regexbench --size small --out target/bench-smoke/BENCH_regex.json
if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool target/bench-smoke/BENCH_regex.json >/dev/null
else
    grep -q '"bench":"regex"' target/bench-smoke/BENCH_regex.json
fi
grep -q '"speedup_vs_pikevm"' target/bench-smoke/BENCH_regex.json

echo "==> plan determinism smoke (same script+config => byte-identical dump)"
# The compile-result cache keys on (source, config); this step proves
# the lowered plan is a deterministic function of that key, across
# separate processes (catches e.g. hash-iteration nondeterminism).
PLAN_SCRIPT='base=logs
for y in 2015 2016; do
  cat in-$y.txt | tr A-Z a-z | grep x | sort | uniq -c > out-$y.txt
done
grep -c z summary.txt > count.txt && sort count.txt'
./target/release/plandump --width 8 --split sized -e "$PLAN_SCRIPT" \
    > target/bench-smoke/plan_a.txt 2>/dev/null
./target/release/plandump --width 8 --split sized -e "$PLAN_SCRIPT" \
    > target/bench-smoke/plan_b.txt 2>/dev/null
cmp target/bench-smoke/plan_a.txt target/bench-smoke/plan_b.txt
test -s target/bench-smoke/plan_a.txt
# Same property over the round-robin plan shapes (rr split nodes,
# framed workers, the reorder aggregator).
./target/release/plandump --width 8 --split rr -e "$PLAN_SCRIPT" \
    > target/bench-smoke/plan_rr_a.txt 2>/dev/null
./target/release/plandump --width 8 --split rr -e "$PLAN_SCRIPT" \
    > target/bench-smoke/plan_rr_b.txt 2>/dev/null
cmp target/bench-smoke/plan_rr_a.txt target/bench-smoke/plan_rr_b.txt
grep -q 'split rr' target/bench-smoke/plan_rr_a.txt

echo "==> process backend smoke (cmp against the shell backend)"
# The same script, same generated corpus, executed twice: once as an
# emitted POSIX script under /bin/sh, once as real child processes
# over FIFOs walking the lowered plan. The outputs must be identical.
SMOKE_SCRIPT='cat in.txt | tr A-Z a-z | sort | uniq -c > out.txt'
for b in shell processes; do
    rm -rf "target/bench-smoke/backend-$b"
    mkdir -p "target/bench-smoke/backend-$b"
    ./target/release/backendrun --backend "$b" --width 4 \
        --dir "target/bench-smoke/backend-$b" --gen in.txt:200000 \
        -e "$SMOKE_SCRIPT"
done
cmp target/bench-smoke/backend-shell/out.txt \
    target/bench-smoke/backend-processes/out.txt
test -s target/bench-smoke/backend-processes/out.txt

echo "==> remote backend smoke (2 localhost workers, cmp against shell)"
# The same corpus script again, this time with every parallel region
# shipped to two pash-worker daemons over Unix sockets (per-attempt
# placement under the supervised recovery ladder). The output must be
# byte-identical to the shell backend's.
rm -rf target/bench-smoke/backend-remote
mkdir -p target/bench-smoke/backend-remote
W1=target/bench-smoke/worker-1.sock
W2=target/bench-smoke/worker-2.sock
rm -f "$W1" "$W2"
./target/release/pash-worker --socket "$W1" & WPID1=$!
./target/release/pash-worker --socket "$W2" & WPID2=$!
trap 'kill $WPID1 $WPID2 2>/dev/null || true' EXIT
for _ in 1 2 3 4 5 6 7 8 9 10; do
    [ -S "$W1" ] && [ -S "$W2" ] && break
    sleep 0.2
done
./target/release/backendrun --backend remote --width 4 \
    --dir target/bench-smoke/backend-remote --gen in.txt:200000 \
    --worker "$W1" --worker "$W2" -e "$SMOKE_SCRIPT"
cmp target/bench-smoke/backend-shell/out.txt \
    target/bench-smoke/backend-remote/out.txt
test -s target/bench-smoke/backend-remote/out.txt
kill $WPID1 $WPID2 2>/dev/null || true
wait $WPID1 $WPID2 2>/dev/null || true
trap - EXIT

echo "==> fault-injection sweep (every kind, widths 2/4/8, vs sequential)"
# Deterministic seeded faults — worker death, spawn/mkfifo failure,
# frame truncation/corruption, edge stall — with the supervisor
# recovering via retry, deadline kill, or sequential fallback. The
# binary exits nonzero if any cell's output diverges or a recovery
# path never fired.
./target/release/faultsweep

echo "==> fault fallback overhead gate (simulated)"
# A persistent fault burns the retry budget and reruns sequentially;
# the simulated episode must stay a small constant over the
# never-parallelized baseline (detection + backoff + one seq rerun).
fault_overhead=$(sed -n 's/.*"fault_fallback_overhead_x":\([0-9.]*\).*/\1/p' \
    target/bench-smoke/BENCH_dataplane.json)
test -n "$fault_overhead"
awk "BEGIN { exit !($fault_overhead > 1.0 && $fault_overhead < 2.5) }"
echo "    persistent-fault fallback vs sequential: ${fault_overhead}x"

echo "==> remote recovery overhead gate (simulated)"
# Losing a worker mid-region must cost a bounded constant — the
# partial doomed attempt plus one backoff plus a clean retry on the
# other worker — not a rerun-from-scratch cliff.
remote_overhead=$(sed -n 's/.*"remote_reroute_overhead_x":\([0-9.]*\).*/\1/p' \
    target/bench-smoke/BENCH_dataplane.json)
test -n "$remote_overhead"
awk "BEGIN { exit !($remote_overhead > 1.0 && $remote_overhead < 2.0) }"
echo "    remote reroute vs undisturbed remote run: ${remote_overhead}x"

echo "==> service smoke (pashd + load generator, BENCH_service.json gates)"
# Start a daemon, replay the corpus cold / warm-in-memory /
# warm-across-restart (disk tier), sweep concurrency, and gate:
# both cache tiers must have fired, a warm request's p50 must come in
# below cold (the compile component collapses on a hit), and the warm
# request rate must clear the floor.
./target/release/pash-bench --out target/bench-smoke/BENCH_service.json \
    --pashd ./target/release/pashd
if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool target/bench-smoke/BENCH_service.json >/dev/null
else
    grep -q '"bench":"service"' target/bench-smoke/BENCH_service.json
fi
tier1=$(sed -n 's/.*"tier1_hits":\([0-9]*\).*/\1/p' target/bench-smoke/BENCH_service.json)
tier2=$(sed -n 's/.*"tier2_hits":\([0-9]*\).*/\1/p' target/bench-smoke/BENCH_service.json)
test -n "$tier1" && test "$tier1" -ge 1
test -n "$tier2" && test "$tier2" -ge 1
warm_ratio=$(sed -n 's/.*"warm_vs_cold_paired_median":\([0-9.]*\).*/\1/p' \
    target/bench-smoke/BENCH_service.json)
test -n "$warm_ratio"
awk "BEGIN { exit !($warm_ratio < 0.97) }"
compile_ratio=$(sed -n 's/.*"compile_warm_vs_cold_p50_ratio":\([0-9.]*\).*/\1/p' \
    target/bench-smoke/BENCH_service.json)
test -n "$compile_ratio"
awk "BEGIN { exit !($compile_ratio < 0.5) }"
warm_rps=$(sed -n 's/.*"warm_rps":\([0-9.]*\).*/\1/p' target/bench-smoke/BENCH_service.json)
test -n "$warm_rps"
awk "BEGIN { exit !($warm_rps > 10.0) }"
echo "    tier1 hits: $tier1, tier2 hits: $tier2, warm/cold p50: ${warm_ratio}x, warm rate: ${warm_rps} req/s"

echo "==> profile warm-start smoke (daemon restart resumes measured rates)"
# Phase 5 of the service bench sends adaptive (width 0) requests,
# restarts the daemon over the same cache dir, and sends one more: the
# fresh process must serve it from profiles read back off disk.
restart_hits=$(sed -n 's/.*"restart_profile_hits":\([0-9]*\).*/\1/p' \
    target/bench-smoke/BENCH_service.json)
test -n "$restart_hits" && test "$restart_hits" -ge 1
restart_width=$(sed -n 's/.*"restart_adaptive_width":\([0-9]*\).*/\1/p' \
    target/bench-smoke/BENCH_service.json)
test -n "$restart_width" && test "$restart_width" -ge 1
echo "    profile hits after restart: $restart_hits, adaptive width: $restart_width"

echo "==> adaptive parallelism gate (simulated NLP corpus under skew)"
# Deterministic simulator replay: per-region profile-guided choices
# must beat the worst global fixed (width, split) by >= 1.1x and stay
# within 1.05x of the best global fixed configuration.
./target/release/adaptive --out target/bench-smoke/BENCH_adaptive.json
if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool target/bench-smoke/BENCH_adaptive.json >/dev/null
else
    grep -q '"bench":"adaptive"' target/bench-smoke/BENCH_adaptive.json
fi
vs_worst=$(sed -n 's/.*"adaptive_vs_worst_fixed_speedup":\([0-9.]*\).*/\1/p' \
    target/bench-smoke/BENCH_adaptive.json)
test -n "$vs_worst"
awk "BEGIN { exit !($vs_worst >= 1.1) }"
vs_best=$(sed -n 's/.*"adaptive_vs_best_fixed_ratio":\([0-9.]*\).*/\1/p' \
    target/bench-smoke/BENCH_adaptive.json)
test -n "$vs_best"
awk "BEGIN { exit !($vs_best <= 1.05) }"
echo "    adaptive vs worst fixed: ${vs_worst}x, vs best fixed: ${vs_best}"

echo "==> cargo fmt --check"
cargo fmt --check

echo "ci.sh: all green"
