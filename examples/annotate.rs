//! Light-touch extensibility (§3.2): make a brand-new command
//! parallelizable by writing a single annotation record in the
//! Appendix-A description language — PaSh's core promise to command
//! developers.
//!
//! ```text
//! cargo run --example annotate
//! ```

use std::sync::Arc;

use pash::core::annot::stdlib::AnnotationLibrary;
use pash::core::compile::{compile_with_library, PashConfig};
use pash::coreutils::{fs::MemFs, Registry};
use pash::runtime::exec::{run_program, ExecConfig};
use pash::workloads::text_corpus;

fn main() {
    let fs = Arc::new(MemFs::new());
    fs.add("in.txt", text_corpus(5, 100_000));
    let registry = Registry::standard();
    // `word-stem` models a user's own command (the paper's Python
    // stemmer). Without a record PaSh must leave it sequential.
    let script = "cat in.txt | tr -cs A-Za-z '\\n' | word-stem | sort -u > out.txt";

    let mut without = AnnotationLibrary::standard().clone();
    without.remove("word-stem");
    let cfg = PashConfig {
        width: 8,
        ..Default::default()
    };
    let conservative = compile_with_library(script, &cfg, &without).expect("compile");
    println!(
        "without annotation: {} command copies (word-stem is opaque, pipeline blocked at it)",
        conservative.stats.nodes.commands
    );

    // One record — the entire developer effort.
    let mut with = without.clone();
    with.register_source("word-stem { | _ => (S, [stdin], [stdout]) }")
        .expect("record parses");
    let parallel = compile_with_library(script, &cfg, &with).expect("compile");
    println!(
        "with annotation:    {} command copies",
        parallel.stats.nodes.commands
    );
    assert!(parallel.stats.nodes.commands > conservative.stats.nodes.commands);

    // Outputs agree regardless.
    let mut outputs = Vec::new();
    for compiled in [&conservative, &parallel] {
        run_program(
            &compiled.plan,
            &registry,
            fs.clone(),
            Vec::new(),
            &ExecConfig::default(),
        )
        .expect("run");
        outputs.push(fs.read("out.txt").expect("output"));
    }
    assert_eq!(outputs[0], outputs[1]);
    println!("outputs are byte-identical with and without the annotation");
}
