//! Quickstart: compile a classic pipeline, inspect the parallel
//! script PaSh emits, and verify that parallel execution produces
//! byte-identical output to sequential execution.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use pash::core::compile::PashConfig;
use pash::coreutils::{fs::MemFs, Registry};
use pash::runtime::exec::{run_script, ExecConfig};
use pash::workloads::text_corpus;

fn main() {
    let script = "cat in.txt | tr A-Z a-z | sort | uniq -c | sort -rn | head -n 5";
    println!("input script:\n  {script}\n");

    // 1. Compile at 4× parallelism and show the emitted POSIX script.
    let cfg = PashConfig {
        width: 4,
        ..Default::default()
    };
    let compiled = pash::compile(script, &cfg).expect("compile");
    println!(
        "compiled: {} region(s), {} DFG nodes, {:?} compile time",
        compiled.stats.regions,
        compiled.stats.nodes.total(),
        compiled.stats.compile_time
    );
    println!("\nemitted parallel script:\n{}", compiled.script);

    // 2. Execute hermetically: sequential vs parallel must agree.
    let fs = Arc::new(MemFs::new());
    fs.add("in.txt", text_corpus(1, 200_000));
    let registry = Registry::standard();
    let seq = run_script(
        script,
        &PashConfig {
            width: 1,
            ..Default::default()
        },
        &registry,
        fs.clone(),
        Vec::new(),
        &ExecConfig::default(),
    )
    .expect("sequential run");
    let par = run_script(
        script,
        &cfg,
        &registry,
        fs,
        Vec::new(),
        &ExecConfig::default(),
    )
    .expect("parallel run");
    assert_eq!(seq.stdout, par.stdout, "parallel must match sequential");
    println!(
        "five most frequent words (parallel output, identical to sequential):\n{}",
        String::from_utf8_lossy(&par.stdout)
    );

    // 3. The same compiled plan drives every backend: select one by
    //    name through the facade.
    let env = pash::RunEnv::default();
    env.fs_mem().add("in.txt", text_corpus(1, 200_000));
    for backend in pash::BACKENDS {
        match pash::run(script, &cfg, backend, &env).expect("backend runs") {
            pash::BackendOutput::Script(s) => {
                println!("[{backend}] emitted {} script lines", s.lines().count())
            }
            pash::BackendOutput::Execution(out) => {
                assert_eq!(out.stdout, par.stdout);
                println!("[{backend}] in-process run matches");
            }
            pash::BackendOutput::Simulation(r) => println!(
                "[{backend}] predicted {:.2}s across {} simulated processes",
                r.seconds, r.processes
            ),
        }
    }
}
