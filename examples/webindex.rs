//! The §6.4 web-indexing use case: fetch pages from a generated wiki
//! mirror, strip HTML, stem words, and build a term-frequency index.
//! The `html-to-text` and `word-stem` stages are not POSIX commands —
//! each becomes parallelizable through a one-line annotation (already
//! in the standard library; this example also shows registering one
//! from scratch).
//!
//! ```text
//! cargo run --example webindex
//! ```

use std::sync::Arc;

use pash::core::annot::stdlib::AnnotationLibrary;
use pash::core::compile::{compile_with_library, PashConfig};
use pash::coreutils::{fs::MemFs, Registry};
use pash::runtime::exec::{run_program, ExecConfig};
use pash::workloads::{generate_wiki, WikiSpec};

fn main() {
    let fs = Arc::new(MemFs::new());
    generate_wiki(
        &fs,
        "wiki",
        &WikiSpec {
            pages: 30,
            bytes_per_page: 3000,
            seed: 7,
        },
    );
    let script = "cat wiki/urls.txt | xargs -n 1 fetch | html-to-text | tr -cs A-Za-z '\\n' | tr A-Z a-z | word-stem | sort | uniq -c | sort -rn > index.txt";
    println!("indexing script:\n  {script}\n");

    // Demonstrate the light-touch extension path: a custom library
    // with the two non-POSIX stages annotated explicitly (these
    // records are what §6.4 counts as the entire annotation effort).
    let mut lib = AnnotationLibrary::standard().clone();
    lib.register_source("html-to-text { | _ => (S, [stdin], [stdout]) }")
        .expect("annotation parses");
    lib.register_source("word-stem { | _ => (S, [stdin], [stdout]) }")
        .expect("annotation parses");

    let registry = Registry::standard();
    let mut reference: Option<Vec<u8>> = None;
    for width in [1usize, 8] {
        let cfg = PashConfig {
            width,
            split: pash::core::dfg::SplitPolicy::Sized,
            ..Default::default()
        };
        let compiled = compile_with_library(script, &cfg, &lib).expect("compile");
        println!(
            "width {width}: {} DFG nodes ({} command copies)",
            compiled.stats.nodes.total(),
            compiled.stats.nodes.commands
        );
        run_program(
            &compiled.plan,
            &registry,
            fs.clone(),
            Vec::new(),
            &ExecConfig::default(),
        )
        .expect("run");
        let index = fs.read("index.txt").expect("index file");
        match &reference {
            None => reference = Some(index),
            Some(r) => assert_eq!(r, &index, "parallel index differs"),
        }
    }
    let index = reference.expect("index built");
    println!("\ntop stemmed terms:");
    for line in String::from_utf8_lossy(&index).lines().take(8) {
        println!("  {line}");
    }
}
