//! The paper's running example (§2.1, Fig. 1): maximum temperature
//! per year over a NOAA-style archive, including the `for` loop, the
//! `xargs`-driven fetch, and the decompression stage — parallelized
//! end to end and checked against the generator's ground truth.
//!
//! ```text
//! cargo run --example weather
//! ```

use std::sync::Arc;

use pash::coreutils::{fs::MemFs, Registry};
use pash::runtime::exec::{run_script, ExecConfig};
use pash::workloads::{generate_noaa, NoaaSpec};
use pash_bench_shim::noaa_script;

/// The Fig. 1 pipeline over the local mirror (see DESIGN.md §2 for
/// the curl→fetch and gunzip→unrle substitutions).
mod pash_bench_shim {
    /// Builds the weather script for a year range.
    pub fn noaa_script(from: u32, to: u32) -> String {
        format!(
            "base=noaa\nfor y in {{{from}..{to}}}; do\n  cat $base/$y/index.txt | grep rec | tr -s ' ' | cut -d ' ' -f 9 | sed \"s;^;$base/$y/;\" | xargs -n 1 fetch | unrle | cut -c 89-92 | grep -iv 999 | sort -rn | head -n 1 | sed \"s/^/Maximum temperature for $y is: /\"\ndone"
        )
    }
}

fn main() {
    let fs = Arc::new(MemFs::new());
    let spec = NoaaSpec {
        years: 2015..=2020,
        files_per_year: 4,
        records_per_file: 300,
        seed: 42,
    };
    let truths = generate_noaa(&fs, "noaa", &spec);
    let script = noaa_script(2015, 2020);
    println!("weather script (Fig. 1 shape):\n{script}\n");

    let registry = Registry::standard();
    for width in [1usize, 10] {
        let out = run_script(
            &script,
            &pash::core::compile::PashConfig {
                width,
                split: pash::core::dfg::SplitPolicy::Sized,
                ..Default::default()
            },
            &registry,
            fs.clone(),
            Vec::new(),
            &ExecConfig::default(),
        )
        .expect("run");
        let text = String::from_utf8(out.stdout).expect("utf8");
        println!("--- width {width} ---\n{text}");
        for (year, max) in &truths {
            assert!(
                text.contains(&format!("Maximum temperature for {year} is: {max:04}")),
                "wrong maximum for {year}"
            );
        }
    }
    println!("all yearly maxima match the generator's ground truth at every width");
}
