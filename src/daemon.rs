//! `pashd` — the persistent compile-and-run daemon.
//!
//! The runtime's [`crate::runtime::service`] module supplies the
//! mechanism (protocol, admission, metrics, disk cache); this module
//! supplies the policy: how a [`RunRequest`] becomes a compiled
//! [`RunHandle`] through the two cache tiers and how a run executes in
//! isolation.
//!
//! **Cache tiers.** A request's key is the same
//! `"{cfg.cache_key()}\0{src}"` string the in-memory memo uses.
//! Lookup order:
//!
//! 1. *tier 1* — [`compile_cache_peek`] against the process-wide
//!    `compile_cached` LRU (full front-end artifacts);
//! 2. *tier 2* — [`DiskPlanCache::load`], which re-parses a stored
//!    `ExecutionPlan::dump()`; this survives daemon restarts, so a
//!    fresh process warm-starts from disk without re-running
//!    parse+lower;
//! 3. *miss* — compile through `compile_cached` (populating tier 1)
//!    and write the dump(s) to tier 2.
//!
//! **Isolation.** The daemon owns a *template* [`MemFs`] seeded over
//! the socket (`PutFile`). Every run executes against
//! [`MemFs::snapshot`] of the template — `Arc`-shared contents,
//! independent tree — so concurrent runs never observe each other's
//! writes. Files a run created or modified (detected by `Arc` pointer
//! identity, no byte comparisons) are returned in the response.

use std::io;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use crate::core::compile::{compile_cache_peek, compile_cached, PashConfig};
use crate::core::optimize::{optimize, OptimizerConfig};
use crate::coreutils::fs::MemFs;
use crate::coreutils::Registry;
use crate::runtime::profile::{node_label, ProfileStore};
use crate::runtime::service::{
    self, CacheTier, DiskPlanCache, Request, Response, RunRequest, RunResponse, ServiceMetrics,
    ServiceSettings,
};
use crate::runtime::supervise::SupervisorSettings;
use crate::sim::{CostModel, InputSizes, SimPricer};
use crate::{BackendOutput, RunEnv, RunError, RunHandle};

/// Daemon construction parameters.
pub struct DaemonConfig {
    /// Unix-domain socket path to listen on.
    pub socket: PathBuf,
    /// On-disk plan-cache root; `None` runs with tier 1 only.
    pub cache_dir: Option<PathBuf>,
    /// Admission-control width (runs executing at once).
    pub max_concurrent_runs: usize,
    /// Supervisor settings applied to every run (retries, deadlines,
    /// fault injection, sequential fallback). Daemon-level rather than
    /// per-request: recovery policy belongs to the operator, not the
    /// client.
    pub supervisor: SupervisorSettings,
    /// `pash-worker` sockets for requests selecting the `remote`
    /// backend. Daemon-level for the same reason the supervisor is:
    /// placement is operator topology, not client input.
    pub workers: Vec<PathBuf>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            socket: PathBuf::from("pashd.sock"),
            cache_dir: None,
            max_concurrent_runs: 2,
            supervisor: SupervisorSettings::default(),
            workers: Vec::new(),
        }
    }
}

/// The daemon's shared state: the compile tiers and the template
/// filesystem. One instance serves every connection.
pub struct Daemon {
    template: MemFs,
    registry: Registry,
    disk: Option<DiskPlanCache>,
    supervisor: SupervisorSettings,
    workers: Vec<PathBuf>,
    metrics: Arc<ServiceMetrics>,
    /// Measured per-command rates, recorded by every run and consulted
    /// by adaptive (`width == 0`) requests. Disk-backed beside the plan
    /// cache so profiles survive restarts.
    profile: Arc<ProfileStore>,
}

impl Daemon {
    /// Builds daemon state (opening the disk cache if configured).
    pub fn new(cfg: &DaemonConfig) -> io::Result<Daemon> {
        let disk = match &cfg.cache_dir {
            Some(dir) => Some(DiskPlanCache::open(dir)?),
            None => None,
        };
        let profile = match &cfg.cache_dir {
            Some(dir) => ProfileStore::open(&dir.join("profiles"))?,
            None => ProfileStore::in_memory(),
        };
        Ok(Daemon {
            template: MemFs::new(),
            registry: Registry::standard(),
            disk,
            supervisor: cfg.supervisor.clone(),
            workers: cfg.workers.clone(),
            metrics: Arc::new(ServiceMetrics::default()),
            profile: Arc::new(profile),
        })
    }

    /// The metrics surface (shared with the server loop).
    pub fn metrics(&self) -> Arc<ServiceMetrics> {
        self.metrics.clone()
    }

    /// Dispatches one decoded request (the server handles `Metrics`
    /// and `Shutdown` itself).
    pub fn handle(&self, req: Request) -> Response {
        match req {
            Request::Run(r) => self.handle_run(r),
            Request::PutFile { path, bytes } => {
                self.template.add(path, bytes);
                Response::Ack
            }
            Request::Metrics | Request::Shutdown => {
                Response::Error("request op is server-handled".to_string())
            }
        }
    }

    /// Resolves a script through the cache tiers to a runnable handle.
    fn lookup(
        &self,
        script: &str,
        cfg: &PashConfig,
        want_fallback: bool,
    ) -> Result<(RunHandle, CacheTier), RunError> {
        if let Some(compiled) = compile_cache_peek(script, cfg) {
            // The width-1 fallback rides the same memo; after the cold
            // request compiled it, this is a second tier-1 hit.
            let fb = if want_fallback {
                compile_cached(
                    script,
                    &PashConfig {
                        width: 1,
                        per_region: Vec::new(),
                        ..cfg.clone()
                    },
                )
                .ok()
            } else {
                None
            };
            return Ok((RunHandle::from_compiled(compiled, fb), CacheTier::Memory));
        }
        let key = format!("{}\u{0}{script}", cfg.cache_key());
        if let Some(disk) = &self.disk {
            if let Some((plan, fb)) = disk.load(&key, want_fallback) {
                return Ok((RunHandle::from_plans(plan, fb), CacheTier::Disk));
            }
        }
        let handle = RunHandle::compile(script, cfg, want_fallback)?;
        if let Some(disk) = &self.disk {
            // Best-effort: a full disk degrades to tier-1-only, it
            // does not fail the request.
            let _ = disk.store(&key, handle.plan(), handle.fallback_plan());
        }
        Ok((handle, CacheTier::Cold))
    }

    /// Chooses a per-region configuration for an adaptive
    /// (`width == 0`) request: measured command rates from the profile
    /// store calibrate the simulator's cost model, and the optimizer
    /// prices each candidate shape through it.
    fn adaptive_config(&self, script: &str, sizes: &InputSizes) -> Result<PashConfig, RunError> {
        // The sequential compile (memoized) names the script's
        // commands; the profile lookup is scoped to them so the
        // hit/miss counters reflect *this* script's coverage.
        let narrow = compile_cached(
            script,
            &PashConfig {
                width: 1,
                ..Default::default()
            },
        )
        .map_err(RunError::Compile)?;
        let mut commands: Vec<String> = Vec::new();
        for region in narrow.plan.regions() {
            for node in &region.nodes {
                let label = node_label(&node.op);
                if !label.starts_with('<') && !commands.contains(&label) {
                    commands.push(label);
                }
            }
        }
        let rates = self.profile.rates_for(&commands);
        let pricer = SimPricer::new(CostModel::calibrated(rates), sizes.clone());
        let opt = optimize(
            script,
            &PashConfig::default(),
            &pricer,
            &OptimizerConfig::default(),
        )
        .map_err(RunError::Compile)?;
        self.metrics
            .record_choice(opt.chosen_width(), opt.chosen_split());
        let m = |a: &std::sync::atomic::AtomicU64, v: u64| {
            a.store(v, std::sync::atomic::Ordering::Relaxed)
        };
        m(&self.metrics.profile_hits, self.profile.hits());
        m(&self.metrics.profile_misses, self.profile.misses());
        Ok(opt.config)
    }

    fn handle_run(&self, req: RunRequest) -> Response {
        let snapshot = Arc::new(self.template.snapshot());
        let mut sizes = InputSizes::new();
        for (path, bytes) in snapshot.entries() {
            sizes.insert(path, bytes.len() as f64);
        }
        let t0 = Instant::now();
        let cfg = if req.width == 0 {
            match self.adaptive_config(&req.script, &sizes) {
                Ok(cfg) => cfg,
                Err(e) => return Response::Error(e.to_string()),
            }
        } else {
            PashConfig {
                width: req.width as usize,
                split: req.split,
                ..Default::default()
            }
        };
        let want_fallback = cfg.width != 1
            && self.supervisor.fallback
            && matches!(req.backend.as_str(), "threads" | "processes" | "remote");
        let (handle, tier) = match self.lookup(&req.script, &cfg, want_fallback) {
            Ok(x) => x,
            Err(e) => return Response::Error(e.to_string()),
        };
        let compile_micros = t0.elapsed().as_micros() as u64;
        let env = RunEnv {
            registry: self.registry.clone(),
            fs: snapshot,
            stdin: req.stdin,
            workers: self.workers.clone(),
            exec: crate::runtime::exec::ExecConfig {
                supervisor: self.supervisor.clone(),
                profile: Some(self.profile.clone()),
                ..Default::default()
            },
            proc: crate::ProcSettings {
                supervisor: self.supervisor.clone(),
                profile: Some(self.profile.clone()),
                ..Default::default()
            },
            sizes,
            stdin_bytes: 0.0,
            cost: crate::sim::CostModel::default(),
            sim: crate::sim::SimConfig::default(),
            emit: crate::core::backend::EmitConfig::default(),
        };
        let out = match handle.execute(&req.backend, &env) {
            Ok(o) => o,
            Err(e) => return Response::Error(e.to_string()),
        };
        let (stdout, status) = match out {
            BackendOutput::Execution(o) => (o.stdout, o.status),
            BackendOutput::Script(s) => (s.into_bytes(), 0),
            BackendOutput::Simulation(r) => (format!("{:.6}\n", r.seconds).into_bytes(), 0),
        };
        Response::Run(RunResponse {
            status,
            tier,
            compile_micros,
            total_micros: 0, // filled by the server loop
            stdout,
            files: changed_files(&self.template, &env.fs),
        })
    }
}

/// Files in `run` that `template` lacks or holds different contents
/// for — by `Arc` pointer identity, so unchanged corpus files cost
/// nothing per request.
fn changed_files(template: &MemFs, run: &MemFs) -> Vec<(String, Vec<u8>)> {
    let base: std::collections::HashMap<String, Arc<Vec<u8>>> =
        template.entries().into_iter().collect();
    run.entries()
        .into_iter()
        .filter(|(path, contents)| {
            base.get(path)
                .is_none_or(|orig| !Arc::ptr_eq(orig, contents))
        })
        .map(|(path, contents)| (path, contents.as_ref().clone()))
        .collect()
}

/// Binds the socket and serves until a `Shutdown` request. This is the
/// blocking entry point both the `pashd` binary and in-process tests
/// use.
pub fn serve(cfg: DaemonConfig) -> io::Result<()> {
    let daemon = Arc::new(Daemon::new(&cfg)?);
    let metrics = daemon.metrics();
    let listener = service::bind(&cfg.socket)?;
    let handler_daemon = daemon.clone();
    service::serve(
        listener,
        &cfg.socket,
        metrics,
        ServiceSettings {
            max_concurrent_runs: cfg.max_concurrent_runs,
            ..Default::default()
        },
        Arc::new(move |req| handler_daemon.handle(req)),
    )
}
