//! **pash** — a Rust reproduction of "PaSh: Light-touch Data-Parallel
//! Shell Processing" (EuroSys 2021).
//!
//! PaSh takes a POSIX shell script, lifts its parallelizable regions
//! into an order-aware dataflow graph, applies semantics-preserving
//! transformations that expose data parallelism, lowers the result to
//! a backend-neutral execution plan, and hands that plan to a
//! pluggable execution backend — the POSIX-script emitter, the
//! in-process threaded executor, or the performance-shape simulator.
//!
//! This crate re-exports the workspace:
//!
//! * [`core`] — classes, annotations, DFG, transformations, compiler,
//!   the [`core::plan`] IR and the `shell` backend;
//! * [`parser`] — the POSIX shell front-end;
//! * [`coreutils`] — from-scratch command implementations;
//! * [`runtime`] — runtime primitives, the runtime I/O layer, the
//!   `threads` backend, and the `processes` backend (real children
//!   over FIFOs);
//! * [`sim`] — the `sim` (performance-shape) backend;
//! * [`workloads`] — synthetic input generators;
//! * [`regex`] — the linear-time regex engine.
//!
//! # Examples
//!
//! Compile and run a pipeline at 4× parallelism, hermetically:
//!
//! ```
//! use std::sync::Arc;
//! use pash::core::compile::PashConfig;
//! use pash::coreutils::{fs::MemFs, Registry};
//! use pash::runtime::exec::{run_script, ExecConfig};
//!
//! let fs = Arc::new(MemFs::new());
//! fs.add("in.txt", b"Hello\nworld\nhello\n".to_vec());
//! let out = run_script(
//!     "cat in.txt | tr A-Z a-z | sort | uniq -c",
//!     &PashConfig { width: 4, ..Default::default() },
//!     &Registry::standard(),
//!     fs,
//!     Vec::new(),
//!     &ExecConfig::default(),
//! )
//! .unwrap();
//! assert_eq!(
//!     String::from_utf8(out.stdout).unwrap(),
//!     "      2 hello\n      1 world\n"
//! );
//! ```
//!
//! Or select a backend by name through [`run`]:
//!
//! ```
//! use pash::core::compile::PashConfig;
//! use pash::{run, BackendOutput, RunEnv};
//!
//! let mut env = RunEnv::default();
//! env.fs_mem().add("in.txt", b"b\na\n".to_vec());
//! let cfg = PashConfig { width: 2, ..Default::default() };
//! match run("cat in.txt | sort", &cfg, "threads", &env).unwrap() {
//!     BackendOutput::Execution(out) => assert_eq!(out.stdout, b"a\nb\n"),
//!     other => panic!("unexpected {other:?}"),
//! }
//! match run("cat in.txt | sort", &cfg, "shell", &env).unwrap() {
//!     BackendOutput::Script(s) => assert!(s.contains("#!/bin/sh")),
//!     other => panic!("unexpected {other:?}"),
//! }
//! ```

use std::path::{Path, PathBuf};
use std::sync::Arc;

pub mod daemon;

pub use pash_core as core;
pub use pash_coreutils as coreutils;
pub use pash_parser as parser;
pub use pash_regex as regex;
pub use pash_runtime as runtime;
pub use pash_sim as sim;
pub use pash_workloads as workloads;

use crate::core::backend::ShellEmitter;
use crate::core::compile::{compile_cached, Compiled, PashConfig};
use crate::core::plan::{Backend, ExecutionPlan};
use crate::coreutils::fs::{Fs, MemFs};
use crate::coreutils::Registry;
use crate::runtime::exec::{run_program_with_fallback, ExecConfig, ProgramOutput};
use crate::runtime::proc::{locate_bin, run_plan_with_fallback, ProcConfig};
use crate::runtime::remote::{run_program_remote, WorkerPool};
use crate::runtime::supervise::SupervisorSettings;
use crate::sim::{CostModel, InputSizes, SimBackend, SimConfig, SimReport};

/// Compiles a script with the standard annotation library (shorthand
/// for [`core::compile::compile`]).
pub fn compile(
    src: &str,
    cfg: &core::compile::PashConfig,
) -> Result<core::compile::Compiled, core::Error> {
    core::compile::compile(src, cfg)
}

/// Compiles through the process-wide memoized cache (shorthand for
/// [`core::compile::compile_cached`]).
pub fn compile_cached_script(
    src: &str,
    cfg: &core::compile::PashConfig,
) -> Result<Arc<Compiled>, core::Error> {
    compile_cached(src, cfg)
}

/// The registered execution backends, by selection name.
pub const BACKENDS: &[&str] = &["shell", "threads", "processes", "remote", "sim"];

/// Settings for the `processes` backend (real child processes over
/// FIFOs; see [`runtime::proc`]).
#[derive(Debug, Clone, Default)]
pub struct ProcSettings {
    /// Root directory the plan's file edges resolve against (every
    /// child's cwd). `None` — the default — materializes the
    /// [`RunEnv::fs`] contents into a fresh temp directory, runs
    /// there, reads every file back into the `MemFs` afterwards, and
    /// removes the directory: `run(.., "processes", ..)` then behaves
    /// like `threads` from the caller's perspective, except the work
    /// happened in real OS processes.
    pub root: Option<PathBuf>,
    /// `pashc` override (default: `$PASHC`, else a sibling of the
    /// current executable).
    pub pashc: Option<PathBuf>,
    /// `pash-rt` override (default: `$PASH_RT`, else a sibling of the
    /// current executable).
    pub pash_rt: Option<PathBuf>,
    /// Maximum independent regions in flight at once (0 or 1 =
    /// strictly sequential steps; see
    /// [`core::plan::ExecutionPlan::parallel_waves`]).
    pub max_inflight: usize,
    /// How long teardown waits after `SIGPIPE` before escalating to
    /// `SIGKILL` (default 2 s).
    pub kill_grace: Option<std::time::Duration>,
    /// The execution supervisor: retries, region deadlines, fault
    /// injection, sequential fallback (see [`runtime::supervise`]).
    pub supervisor: SupervisorSettings,
    /// Profile sink: when set, successful regions record per-node
    /// byte/busy observations here (see [`runtime::profile`]).
    pub profile: Option<Arc<runtime::ProfileStore>>,
}

/// Everything a backend might need to run a plan; construct with
/// [`RunEnv::default`] and override what matters.
pub struct RunEnv {
    /// Command implementations for the `threads` backend.
    pub registry: Registry,
    /// Filesystem for the `threads` backend (a [`MemFs`] by default),
    /// and the materialization source/sink for `processes` when no
    /// real root is given.
    pub fs: Arc<MemFs>,
    /// Bytes fed to the program's stdin (`threads`, `processes`,
    /// `remote`).
    pub stdin: Vec<u8>,
    /// Worker socket paths (`remote`). Regions ship to these
    /// `pash-worker` daemons under the supervisor's recovery ladder;
    /// the list must be non-empty to select the `remote` backend.
    pub workers: Vec<PathBuf>,
    /// Executor tuning (`threads`).
    pub exec: ExecConfig,
    /// Real-filesystem and binary settings (`processes`).
    pub proc: ProcSettings,
    /// Input-file sizes (`sim`).
    pub sizes: InputSizes,
    /// Bytes arriving on stdin (`sim`).
    pub stdin_bytes: f64,
    /// Command cost profiles (`sim`).
    pub cost: CostModel,
    /// Machine parameters (`sim`).
    pub sim: SimConfig,
    /// Emission options (`shell`).
    pub emit: core::backend::EmitConfig,
}

impl Default for RunEnv {
    fn default() -> Self {
        RunEnv {
            registry: Registry::standard(),
            fs: Arc::new(MemFs::new()),
            stdin: Vec::new(),
            workers: Vec::new(),
            exec: ExecConfig::default(),
            proc: ProcSettings::default(),
            sizes: InputSizes::new(),
            stdin_bytes: 0.0,
            cost: CostModel::default(),
            sim: SimConfig::default(),
            emit: core::backend::EmitConfig::default(),
        }
    }
}

impl RunEnv {
    /// The in-memory filesystem, for seeding inputs and reading
    /// outputs.
    pub fn fs_mem(&self) -> &MemFs {
        &self.fs
    }
}

/// What a backend produced.
#[derive(Debug)]
pub enum BackendOutput {
    /// The `shell` backend's POSIX script.
    Script(String),
    /// The `threads` backend's execution result.
    Execution(ProgramOutput),
    /// The `sim` backend's predicted timing.
    Simulation(SimReport),
}

/// Errors from [`run`].
#[derive(Debug)]
pub enum RunError {
    /// Compilation failed.
    Compile(core::Error),
    /// The backend failed at execution time.
    Io(std::io::Error),
    /// No backend with that name (see [`BACKENDS`]).
    UnknownBackend(String),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Compile(e) => write!(f, "compile: {e}"),
            RunError::Io(e) => write!(f, "run: {e}"),
            RunError::UnknownBackend(name) => {
                write!(
                    f,
                    "unknown backend `{name}` (known: {})",
                    BACKENDS.join(", ")
                )
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Where a [`RunHandle`]'s plan came from.
enum PlanSource {
    /// A tier-1 (in-memory) compile result: plan plus front-end view.
    Compiled(Arc<Compiled>),
    /// A bare plan — deserialized from the on-disk cache tier or
    /// handed over a wire; no [`Compiled`] exists for it.
    Plan(Arc<ExecutionPlan>),
}

impl PlanSource {
    fn plan(&self) -> &ExecutionPlan {
        match self {
            PlanSource::Compiled(c) => &c.plan,
            PlanSource::Plan(p) => p,
        }
    }
}

/// One run's compiled state: the execution plan plus the optional
/// width-1 plan backing the supervisor's sequential fallback.
///
/// A handle owns everything [`run`] needs besides the per-run
/// [`RunEnv`], independent of where the plans came from — a fresh
/// compile, the process-wide memo ([`RunHandle::compile`]), or a
/// deserialized `dump()` from the service's disk cache
/// ([`RunHandle::from_plans`]). The `pashd` service keeps handles warm
/// across requests and constructs one `RunEnv` per request, so
/// concurrent runs share nothing but the immutable plans.
pub struct RunHandle {
    plan: PlanSource,
    seq_fallback: Option<PlanSource>,
}

impl RunHandle {
    /// Compiles `src` through the memoized cache. With `fallback` set
    /// (and `cfg.width != 1`), the width-1 plan for the supervisor's
    /// sequential-fallback path is compiled (and memoized) alongside.
    pub fn compile(src: &str, cfg: &PashConfig, fallback: bool) -> Result<RunHandle, RunError> {
        let compiled = compile_cached(src, cfg).map_err(RunError::Compile)?;
        let seq_fallback = if fallback && cfg.width != 1 {
            // The fallback must be truly sequential: clear any
            // per-region shapes along with the global width.
            compile_cached(
                src,
                &PashConfig {
                    width: 1,
                    per_region: Vec::new(),
                    ..cfg.clone()
                },
            )
            .ok()
            .map(PlanSource::Compiled)
        } else {
            None
        };
        Ok(RunHandle {
            plan: PlanSource::Compiled(compiled),
            seq_fallback,
        })
    }

    /// Wraps already-compiled results (no extra work).
    pub fn from_compiled(
        compiled: Arc<Compiled>,
        seq_fallback: Option<Arc<Compiled>>,
    ) -> RunHandle {
        RunHandle {
            plan: PlanSource::Compiled(compiled),
            seq_fallback: seq_fallback.map(PlanSource::Compiled),
        }
    }

    /// Builds a handle from bare plans — the disk-cache / wire path,
    /// where no front-end artifacts exist.
    pub fn from_plans(
        plan: Arc<ExecutionPlan>,
        seq_fallback: Option<Arc<ExecutionPlan>>,
    ) -> RunHandle {
        RunHandle {
            plan: PlanSource::Plan(plan),
            seq_fallback: seq_fallback.map(PlanSource::Plan),
        }
    }

    /// The execution plan.
    pub fn plan(&self) -> &ExecutionPlan {
        self.plan.plan()
    }

    /// The width-1 fallback plan, when one was compiled or attached.
    pub fn fallback_plan(&self) -> Option<&ExecutionPlan> {
        self.seq_fallback.as_ref().map(|p| p.plan())
    }

    /// Runs the plan on the backend named `backend` — `"shell"`,
    /// `"threads"`, `"processes"`, `"remote"`, or `"sim"` — against
    /// `env`. The
    /// fallback plan is handed to the executor only when the backend's
    /// supervisor has fallback enabled, mirroring what [`run`] always
    /// did.
    pub fn execute(&self, backend: &str, env: &RunEnv) -> Result<BackendOutput, RunError> {
        let plan = self.plan.plan();
        match backend {
            "shell" => {
                let mut be = ShellEmitter {
                    cfg: env.emit.clone(),
                };
                be.run(plan)
                    .map(BackendOutput::Script)
                    .map_err(RunError::Io)
            }
            "threads" => {
                let fallback = if env.exec.supervisor.fallback {
                    self.fallback_plan()
                } else {
                    None
                };
                run_program_with_fallback(
                    plan,
                    fallback,
                    &env.registry,
                    env.fs.clone() as Arc<dyn Fs>,
                    env.stdin.clone(),
                    &env.exec,
                )
                .map(BackendOutput::Execution)
                .map_err(RunError::Io)
            }
            "processes" => {
                let fallback = if env.proc.supervisor.fallback {
                    self.fallback_plan()
                } else {
                    None
                };
                run_processes(plan, fallback, env)
                    .map(BackendOutput::Execution)
                    .map_err(RunError::Io)
            }
            "remote" => {
                if env.workers.is_empty() {
                    return Err(RunError::Io(std::io::Error::new(
                        std::io::ErrorKind::NotConnected,
                        "remote backend needs worker sockets (RunEnv::workers)",
                    )));
                }
                let fallback = if env.exec.supervisor.fallback {
                    self.fallback_plan()
                } else {
                    None
                };
                // No up-front probe: a worker that fails to answer is
                // discovered by the attempt itself, which the ladder
                // treats as transient (reroute, then local fallback).
                let pool = WorkerPool::new(env.workers.clone());
                run_program_remote(
                    plan,
                    fallback,
                    &env.registry,
                    env.fs.clone() as Arc<dyn Fs>,
                    env.stdin.clone(),
                    &env.exec,
                    &pool,
                )
                .map(BackendOutput::Execution)
                .map_err(RunError::Io)
            }
            "sim" => {
                let mut be = SimBackend {
                    sizes: &env.sizes,
                    stdin_bytes: env.stdin_bytes,
                    cost: &env.cost,
                    cfg: &env.sim,
                };
                be.run(plan)
                    .map(BackendOutput::Simulation)
                    .map_err(RunError::Io)
            }
            other => Err(RunError::UnknownBackend(other.to_string())),
        }
    }
}

/// Compiles `src` (through the memoized cache) and runs the lowered
/// [`core::plan::ExecutionPlan`] on the backend named `backend` —
/// `"shell"`, `"threads"`, `"processes"`, `"remote"`, or `"sim"`.
///
/// This is the multi-backend entry point the plan layer exists for:
/// every backend consumes the same lowered artifact — the `processes`
/// arm (real children over FIFOs) and the `remote` arm (plan regions
/// shipped to `pash-worker` daemons over sockets) each landed exactly
/// by implementing the execution contract and adding an arm here.
/// Long-lived callers (the `pashd` service) keep the intermediate
/// [`RunHandle`] instead of re-entering here.
pub fn run(
    src: &str,
    cfg: &PashConfig,
    backend: &str,
    env: &RunEnv,
) -> Result<BackendOutput, RunError> {
    // The width-1 fallback is only worth compiling when the selected
    // backend's supervisor would use it (compile_cached makes repeats
    // free either way).
    let want_fallback = match backend {
        "threads" | "remote" => env.exec.supervisor.fallback,
        "processes" => env.proc.supervisor.fallback,
        _ => false,
    };
    RunHandle::compile(src, cfg, want_fallback)?.execute(backend, env)
}

/// Runs a lowered plan on the process backend, providing the
/// tempdir/read-back story when the caller gave no real root.
fn run_processes(
    plan: &ExecutionPlan,
    fallback: Option<&ExecutionPlan>,
    env: &RunEnv,
) -> std::io::Result<ProgramOutput> {
    let cfg = ProcConfig {
        pashc: match &env.proc.pashc {
            Some(p) => p.clone(),
            None => locate_bin("pashc", "PASHC")?,
        },
        pash_rt: match &env.proc.pash_rt {
            Some(p) => p.clone(),
            None => locate_bin("pash-rt", "PASH_RT")?,
        },
        scratch: None,
        kill_grace: env
            .proc
            .kill_grace
            .unwrap_or(std::time::Duration::from_secs(2)),
        max_inflight: env.proc.max_inflight.max(1),
        supervisor: env.proc.supervisor.clone(),
        profile: env.proc.profile.clone(),
    };
    let (root, ephemeral) = match &env.proc.root {
        Some(r) => (r.clone(), None),
        None => {
            use std::sync::atomic::{AtomicU64, Ordering};
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "pash-run-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            let manifest = materialize_fs(&env.fs, &dir)?;
            (dir, Some(manifest))
        }
    };
    let mut result = run_plan_with_fallback(plan, fallback, &cfg, &root, env.stdin.clone());
    if let Some(manifest) = ephemeral {
        if result.is_ok() {
            if let Err(e) = read_back_fs(&env.fs, &root, &manifest) {
                result = Err(e);
            }
        }
        // Unconditional: a failed read-back must not leak the
        // materialized corpus directory.
        let _ = std::fs::remove_dir_all(&root);
    }
    result
}

/// What [`materialize_fs`] wrote: relative path → (size, mtime) as
/// observed right after the write, so read-back can skip inputs no
/// child touched.
type Materialized = std::collections::HashMap<PathBuf, (u64, Option<std::time::SystemTime>)>;

/// Writes every `MemFs` file under `dir` (creating parents).
fn materialize_fs(fs: &MemFs, dir: &Path) -> std::io::Result<Materialized> {
    std::fs::create_dir_all(dir)?;
    let mut manifest = Materialized::new();
    for path in fs.paths() {
        let data = fs.read(&path)?;
        let target = dir.join(&path);
        if let Some(parent) = target.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(&target, data)?;
        let meta = std::fs::metadata(&target)?;
        // Only a sub-second-precision mtime is a usable "unchanged"
        // witness: on a coarse-clock filesystem a child could rewrite
        // the file with same-size content inside the same tick. A
        // fresh write on a nanosecond filesystem has zero subsecond
        // part with probability ~1e-9, so this disables the skip
        // exactly where it would be unsound.
        let mtime = meta.modified().ok().filter(|t| {
            t.duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.subsec_nanos() != 0)
                .unwrap_or(false)
        });
        manifest.insert(PathBuf::from(path), (meta.len(), mtime));
    }
    Ok(manifest)
}

/// Reads the files under `dir` back into the `MemFs`, so outputs
/// written by child processes are visible through [`RunEnv::fs_mem`]
/// exactly as the `threads` backend leaves them. Materialized inputs
/// whose size and mtime are unchanged are skipped — the `MemFs`
/// already holds those bytes, and corpora can be large.
fn read_back_fs(fs: &MemFs, dir: &Path, manifest: &Materialized) -> std::io::Result<()> {
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d)? {
            let entry = entry?;
            let ty = entry.file_type()?;
            if ty.is_dir() {
                stack.push(entry.path());
            } else if ty.is_file() {
                let rel = entry
                    .path()
                    .strip_prefix(dir)
                    .expect("entry under walk root")
                    .to_path_buf();
                if let Some(&(len, mtime)) = manifest.get(&rel) {
                    let meta = entry.metadata()?;
                    if meta.len() == len && mtime.is_some() && meta.modified().ok() == mtime {
                        continue;
                    }
                }
                fs.add(
                    rel.to_string_lossy().into_owned(),
                    std::fs::read(entry.path())?,
                );
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_backends_run_the_same_plan() {
        use crate::runtime::remote::{bind_worker, serve_worker, shutdown_worker};
        use std::sync::atomic::AtomicBool;

        let socket =
            std::env::temp_dir().join(format!("pash-facade-worker-{}", std::process::id()));
        let listener = bind_worker(&socket).expect("bind worker");
        let worker_socket = socket.clone();
        let worker = std::thread::spawn(move || {
            serve_worker(listener, &worker_socket, Arc::new(AtomicBool::new(false)))
                .expect("serve worker");
        });

        let mut env = RunEnv::default();
        env.workers = vec![socket.clone()];
        env.fs_mem().add("in.txt", b"b\na\nc\n".to_vec());
        let cfg = PashConfig {
            width: 2,
            ..Default::default()
        };
        let src = "cat in.txt | sort";
        for &name in BACKENDS {
            if name == "processes" && ProcConfig::locate().is_err() {
                eprintln!("skipping processes: multicall binaries not built");
                continue;
            }
            let out = run(src, &cfg, name, &env).expect("backend runs");
            match (name, out) {
                ("shell", BackendOutput::Script(s)) => assert!(s.contains("#!/bin/sh")),
                ("threads" | "processes" | "remote", BackendOutput::Execution(o)) => {
                    assert_eq!(o.stdout, b"a\nb\nc\n", "{name} stdout")
                }
                ("sim", BackendOutput::Simulation(r)) => assert!(r.seconds > 0.0),
                (name, other) => panic!("{name} produced {other:?}"),
            }
        }
        shutdown_worker(&socket);
        worker.join().expect("worker thread");
    }

    #[test]
    fn processes_backend_reads_outputs_back() {
        if ProcConfig::locate().is_err() {
            eprintln!("skipping: multicall binaries not built");
            return;
        }
        let env = RunEnv::default();
        env.fs_mem().add("in.txt", b"B\na\nB\n".to_vec());
        let cfg = PashConfig {
            width: 2,
            ..Default::default()
        };
        let out = run(
            "cat in.txt | tr A-Z a-z | sort > out.txt",
            &cfg,
            "processes",
            &env,
        )
        .expect("processes run");
        match out {
            BackendOutput::Execution(o) => assert_eq!(o.status, 0),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            env.fs_mem().read("out.txt").expect("read back"),
            b"a\nb\nb\n"
        );
    }

    #[test]
    fn unknown_backend_is_an_error() {
        let env = RunEnv::default();
        let err = run("cat f", &PashConfig::default(), "gpu", &env).unwrap_err();
        assert!(matches!(err, RunError::UnknownBackend(_)));
        assert!(err.to_string().contains("threads"));
    }
}
