//! **pash** — a Rust reproduction of "PaSh: Light-touch Data-Parallel
//! Shell Processing" (EuroSys 2021).
//!
//! PaSh takes a POSIX shell script, lifts its parallelizable regions
//! into an order-aware dataflow graph, applies semantics-preserving
//! transformations that expose data parallelism, lowers the result to
//! a backend-neutral execution plan, and hands that plan to a
//! pluggable execution backend — the POSIX-script emitter, the
//! in-process threaded executor, or the performance-shape simulator.
//!
//! This crate re-exports the workspace:
//!
//! * [`core`] — classes, annotations, DFG, transformations, compiler,
//!   the [`core::plan`] IR and the `shell` backend;
//! * [`parser`] — the POSIX shell front-end;
//! * [`coreutils`] — from-scratch command implementations;
//! * [`runtime`] — runtime primitives + the `threads` backend;
//! * [`sim`] — the `sim` (performance-shape) backend;
//! * [`workloads`] — synthetic input generators;
//! * [`regex`] — the linear-time regex engine.
//!
//! # Examples
//!
//! Compile and run a pipeline at 4× parallelism, hermetically:
//!
//! ```
//! use std::sync::Arc;
//! use pash::core::compile::PashConfig;
//! use pash::coreutils::{fs::MemFs, Registry};
//! use pash::runtime::exec::{run_script, ExecConfig};
//!
//! let fs = Arc::new(MemFs::new());
//! fs.add("in.txt", b"Hello\nworld\nhello\n".to_vec());
//! let out = run_script(
//!     "cat in.txt | tr A-Z a-z | sort | uniq -c",
//!     &PashConfig { width: 4, ..Default::default() },
//!     &Registry::standard(),
//!     fs,
//!     Vec::new(),
//!     &ExecConfig::default(),
//! )
//! .unwrap();
//! assert_eq!(
//!     String::from_utf8(out.stdout).unwrap(),
//!     "      2 hello\n      1 world\n"
//! );
//! ```
//!
//! Or select a backend by name through [`run`]:
//!
//! ```
//! use pash::core::compile::PashConfig;
//! use pash::{run, BackendOutput, RunEnv};
//!
//! let mut env = RunEnv::default();
//! env.fs_mem().add("in.txt", b"b\na\n".to_vec());
//! let cfg = PashConfig { width: 2, ..Default::default() };
//! match run("cat in.txt | sort", &cfg, "threads", &env).unwrap() {
//!     BackendOutput::Execution(out) => assert_eq!(out.stdout, b"a\nb\n"),
//!     other => panic!("unexpected {other:?}"),
//! }
//! match run("cat in.txt | sort", &cfg, "shell", &env).unwrap() {
//!     BackendOutput::Script(s) => assert!(s.contains("#!/bin/sh")),
//!     other => panic!("unexpected {other:?}"),
//! }
//! ```

use std::sync::Arc;

pub use pash_core as core;
pub use pash_coreutils as coreutils;
pub use pash_parser as parser;
pub use pash_regex as regex;
pub use pash_runtime as runtime;
pub use pash_sim as sim;
pub use pash_workloads as workloads;

use crate::core::backend::ShellEmitter;
use crate::core::compile::{compile_cached, Compiled, PashConfig};
use crate::core::plan::Backend;
use crate::coreutils::fs::{Fs, MemFs};
use crate::coreutils::Registry;
use crate::runtime::exec::{ExecConfig, ProgramOutput, ThreadedBackend};
use crate::sim::{CostModel, InputSizes, SimBackend, SimConfig, SimReport};

/// Compiles a script with the standard annotation library (shorthand
/// for [`core::compile::compile`]).
pub fn compile(
    src: &str,
    cfg: &core::compile::PashConfig,
) -> Result<core::compile::Compiled, core::Error> {
    core::compile::compile(src, cfg)
}

/// Compiles through the process-wide memoized cache (shorthand for
/// [`core::compile::compile_cached`]).
pub fn compile_cached_script(
    src: &str,
    cfg: &core::compile::PashConfig,
) -> Result<Arc<Compiled>, core::Error> {
    compile_cached(src, cfg)
}

/// The registered execution backends, by selection name.
pub const BACKENDS: &[&str] = &["shell", "threads", "sim"];

/// Everything a backend might need to run a plan; construct with
/// [`RunEnv::default`] and override what matters.
pub struct RunEnv {
    /// Command implementations for the `threads` backend.
    pub registry: Registry,
    /// Filesystem for the `threads` backend (a [`MemFs`] by default).
    pub fs: Arc<MemFs>,
    /// Bytes fed to the program's stdin (`threads`).
    pub stdin: Vec<u8>,
    /// Executor tuning (`threads`).
    pub exec: ExecConfig,
    /// Input-file sizes (`sim`).
    pub sizes: InputSizes,
    /// Bytes arriving on stdin (`sim`).
    pub stdin_bytes: f64,
    /// Command cost profiles (`sim`).
    pub cost: CostModel,
    /// Machine parameters (`sim`).
    pub sim: SimConfig,
    /// Emission options (`shell`).
    pub emit: core::backend::EmitConfig,
}

impl Default for RunEnv {
    fn default() -> Self {
        RunEnv {
            registry: Registry::standard(),
            fs: Arc::new(MemFs::new()),
            stdin: Vec::new(),
            exec: ExecConfig::default(),
            sizes: InputSizes::new(),
            stdin_bytes: 0.0,
            cost: CostModel::default(),
            sim: SimConfig::default(),
            emit: core::backend::EmitConfig::default(),
        }
    }
}

impl RunEnv {
    /// The in-memory filesystem, for seeding inputs and reading
    /// outputs.
    pub fn fs_mem(&self) -> &MemFs {
        &self.fs
    }
}

/// What a backend produced.
#[derive(Debug)]
pub enum BackendOutput {
    /// The `shell` backend's POSIX script.
    Script(String),
    /// The `threads` backend's execution result.
    Execution(ProgramOutput),
    /// The `sim` backend's predicted timing.
    Simulation(SimReport),
}

/// Errors from [`run`].
#[derive(Debug)]
pub enum RunError {
    /// Compilation failed.
    Compile(core::Error),
    /// The backend failed at execution time.
    Io(std::io::Error),
    /// No backend with that name (see [`BACKENDS`]).
    UnknownBackend(String),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Compile(e) => write!(f, "compile: {e}"),
            RunError::Io(e) => write!(f, "run: {e}"),
            RunError::UnknownBackend(name) => {
                write!(
                    f,
                    "unknown backend `{name}` (known: {})",
                    BACKENDS.join(", ")
                )
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Compiles `src` (through the memoized cache) and runs the lowered
/// [`core::plan::ExecutionPlan`] on the backend named `backend` —
/// `"shell"`, `"threads"`, or `"sim"`.
///
/// This is the multi-backend entry point the plan layer exists for:
/// every backend consumes the same lowered artifact, so adding a
/// process or remote backend means implementing
/// [`core::plan::Backend`] and adding an arm here.
pub fn run(
    src: &str,
    cfg: &PashConfig,
    backend: &str,
    env: &RunEnv,
) -> Result<BackendOutput, RunError> {
    let compiled = compile_cached(src, cfg).map_err(RunError::Compile)?;
    match backend {
        "shell" => {
            let mut be = ShellEmitter {
                cfg: env.emit.clone(),
            };
            be.run(&compiled.plan)
                .map(BackendOutput::Script)
                .map_err(RunError::Io)
        }
        "threads" => {
            let mut be = ThreadedBackend {
                registry: &env.registry,
                fs: env.fs.clone() as Arc<dyn Fs>,
                stdin: env.stdin.clone(),
                cfg: env.exec.clone(),
            };
            be.run(&compiled.plan)
                .map(BackendOutput::Execution)
                .map_err(RunError::Io)
        }
        "sim" => {
            let mut be = SimBackend {
                sizes: &env.sizes,
                stdin_bytes: env.stdin_bytes,
                cost: &env.cost,
                cfg: &env.sim,
            };
            be.run(&compiled.plan)
                .map(BackendOutput::Simulation)
                .map_err(RunError::Io)
        }
        other => Err(RunError::UnknownBackend(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_backends_run_the_same_plan() {
        let env = RunEnv::default();
        env.fs_mem().add("in.txt", b"b\na\nc\n".to_vec());
        let cfg = PashConfig {
            width: 2,
            ..Default::default()
        };
        let src = "cat in.txt | sort";
        for &name in BACKENDS {
            let out = run(src, &cfg, name, &env).expect("backend runs");
            match (name, out) {
                ("shell", BackendOutput::Script(s)) => assert!(s.contains("#!/bin/sh")),
                ("threads", BackendOutput::Execution(o)) => {
                    assert_eq!(o.stdout, b"a\nb\nc\n")
                }
                ("sim", BackendOutput::Simulation(r)) => assert!(r.seconds > 0.0),
                (name, other) => panic!("{name} produced {other:?}"),
            }
        }
    }

    #[test]
    fn unknown_backend_is_an_error() {
        let env = RunEnv::default();
        let err = run("cat f", &PashConfig::default(), "gpu", &env).unwrap_err();
        assert!(matches!(err, RunError::UnknownBackend(_)));
        assert!(err.to_string().contains("threads"));
    }
}
