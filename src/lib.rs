//! **pash** — a Rust reproduction of "PaSh: Light-touch Data-Parallel
//! Shell Processing" (EuroSys 2021).
//!
//! PaSh takes a POSIX shell script, lifts its parallelizable regions
//! into an order-aware dataflow graph, applies semantics-preserving
//! transformations that expose data parallelism, and compiles the
//! result back into a script orchestrated with FIFOs and a small
//! runtime library (`eager` relays, splitters, aggregators).
//!
//! This crate re-exports the workspace:
//!
//! * [`core`] — classes, annotations, DFG, transformations, compiler;
//! * [`parser`] — the POSIX shell front-end;
//! * [`coreutils`] — from-scratch command implementations;
//! * [`runtime`] — runtime primitives + the threaded executor;
//! * [`sim`] — the performance-shape simulator;
//! * [`workloads`] — synthetic input generators;
//! * [`regex`] — the linear-time regex engine.
//!
//! # Examples
//!
//! Compile and run a pipeline at 4× parallelism, hermetically:
//!
//! ```
//! use std::sync::Arc;
//! use pash::core::compile::PashConfig;
//! use pash::coreutils::{fs::MemFs, Registry};
//! use pash::runtime::exec::{run_script, ExecConfig};
//!
//! let fs = Arc::new(MemFs::new());
//! fs.add("in.txt", b"Hello\nworld\nhello\n".to_vec());
//! let out = run_script(
//!     "cat in.txt | tr A-Z a-z | sort | uniq -c",
//!     &PashConfig { width: 4, ..Default::default() },
//!     &Registry::standard(),
//!     fs,
//!     Vec::new(),
//!     &ExecConfig::default(),
//! )
//! .unwrap();
//! assert_eq!(
//!     String::from_utf8(out.stdout).unwrap(),
//!     "      2 hello\n      1 world\n"
//! );
//! ```

pub use pash_core as core;
pub use pash_coreutils as coreutils;
pub use pash_parser as parser;
pub use pash_regex as regex;
pub use pash_runtime as runtime;
pub use pash_sim as sim;
pub use pash_workloads as workloads;

/// Compiles a script with the standard annotation library (shorthand
/// for [`core::compile::compile`]).
pub fn compile(
    src: &str,
    cfg: &core::compile::PashConfig,
) -> Result<core::compile::Compiled, core::Error> {
    core::compile::compile(src, cfg)
}
