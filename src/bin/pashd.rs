//! `pashd` — the persistent compile-and-run daemon.
//!
//! ```text
//! pashd --socket PATH [--cache-dir DIR] [--max-concurrent N]
//!       [--retries N] [--no-fallback] [--worker PATH]...
//! ```
//!
//! Listens on a Unix-domain socket for length-prefixed requests
//! (script + config + backend + stdin bytes), compiles through the
//! two-tier plan cache, runs on the requested backend, and replies
//! with stdout/status. `--cache-dir` enables the on-disk tier so a
//! restarted daemon warm-starts. `--worker` (repeatable) names the
//! `pash-worker` sockets the `remote` backend ships regions to. Stop
//! it with a `Shutdown` request
//! (`pash::runtime::service::Client::shutdown`) or SIGTERM — both
//! drain in-flight connections (bounded by the drain deadline) so no
//! client sees a torn response.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};

use pash::daemon::{serve, DaemonConfig};
use pash::runtime::fault::{FaultKind, FaultPlan};
use pash::runtime::service::Client;

static STOP: AtomicBool = AtomicBool::new(false);

extern "C" fn on_term(_sig: i32) {
    STOP.store(true, Ordering::SeqCst);
}

extern "C" {
    #[link_name = "signal"]
    fn libc_signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

fn usage() -> ! {
    eprintln!(
        "usage: pashd --socket PATH [--cache-dir DIR] [--max-concurrent N] \
         [--retries N] [--no-fallback] [--fault KIND:SEED[:BUDGET]] [--worker PATH]..."
    );
    std::process::exit(2);
}

/// Parses a `KIND:SEED[:BUDGET]` fault spec (test plane; kinds are the
/// [`FaultKind::name`] strings, e.g. `kill-worker:5:100`).
fn parse_fault(spec: &str) -> Option<FaultPlan> {
    let mut parts = spec.split(':');
    let kind_name = parts.next()?;
    let kind = FaultKind::ALL.into_iter().find(|k| k.name() == kind_name)?;
    let seed: u64 = parts.next()?.parse().ok()?;
    let plan = FaultPlan::new(kind, seed);
    match parts.next() {
        Some(budget) => {
            let budget: u32 = budget.parse().ok()?;
            parts.next().is_none().then(|| plan.budget(budget))
        }
        None => Some(plan),
    }
}

fn main() -> ExitCode {
    let mut cfg = DaemonConfig::default();
    let mut socket = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("pashd: {name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--socket" => socket = Some(PathBuf::from(value("--socket"))),
            "--cache-dir" => cfg.cache_dir = Some(PathBuf::from(value("--cache-dir"))),
            "--max-concurrent" => {
                cfg.max_concurrent_runs = value("--max-concurrent").parse().unwrap_or_else(|_| {
                    eprintln!("pashd: --max-concurrent needs a number");
                    usage()
                })
            }
            "--retries" => {
                cfg.supervisor.max_retries = value("--retries").parse().unwrap_or_else(|_| {
                    eprintln!("pashd: --retries needs a number");
                    usage()
                })
            }
            "--no-fallback" => cfg.supervisor.fallback = false,
            "--worker" => cfg.workers.push(PathBuf::from(value("--worker"))),
            "--fault" => {
                let spec = value("--fault");
                cfg.supervisor.fault = Some(parse_fault(&spec).unwrap_or_else(|| {
                    eprintln!("pashd: bad --fault spec {spec} (want KIND:SEED[:BUDGET])");
                    usage()
                }))
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("pashd: unknown argument {other}");
                usage()
            }
        }
    }
    let Some(socket) = socket else { usage() };
    cfg.socket = socket;
    eprintln!(
        "pashd: listening on {} (cache: {}, max concurrent runs: {}, workers: {})",
        cfg.socket.display(),
        cfg.cache_dir
            .as_ref()
            .map_or("tier 1 only".to_string(), |d| d.display().to_string()),
        cfg.max_concurrent_runs,
        cfg.workers.len(),
    );
    // SIGTERM/SIGINT route through the same graceful path a `Shutdown`
    // request takes: the poller sends one to our own socket, the serve
    // loop stops accepting, drains in-flight connections under the
    // drain deadline, and returns — no client sees a torn response.
    unsafe {
        libc_signal(15, on_term); // SIGTERM
        libc_signal(2, on_term); // SIGINT
    }
    let self_socket = cfg.socket.clone();
    std::thread::spawn(move || loop {
        if STOP.load(Ordering::SeqCst) {
            if let Ok(mut c) = Client::connect(&self_socket) {
                let _ = c.shutdown();
            }
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    });
    match serve(cfg) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pashd: {e}");
            ExitCode::FAILURE
        }
    }
}
