//! Command cost profiles for the performance-shape simulator.
//!
//! The simulator substitutes for the paper's 64-core × 512 GB testbed
//! (this container has one core — see DESIGN.md §2). Profiles give
//! each plan node a full-core processing rate, an output/input byte
//! ratio, a blocking discipline, and a bottleneck resource. Absolute
//! rates are calibration constants; the *relative* rates and the
//! blocking semantics are what reproduce the paper's shapes.
//!
//! Profiles are computed from [`PlanOp`]s — the simulator consumes the
//! lowered execution plan, never the compiler's DFG.

use pash_core::optimize::{MeasuredRate, MeasuredRates};
use pash_core::plan::{PlanOp, SplitMode};

/// Which resource a node's work draws on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resource {
    /// CPU: shares the machine's cores.
    Cpu,
    /// Disk bandwidth (file scans with trivial compute).
    Disk,
    /// Network bandwidth (the `fetch` stages).
    Net,
}

/// How a node consumes and produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Discipline {
    /// Consume and produce concurrently (tr, grep, relays, merges…).
    Streaming,
    /// Consume everything, then emit (sort, general split, tac, diff).
    Blocking,
}

/// A command's cost profile.
#[derive(Debug, Clone, Copy)]
pub struct Profile {
    /// Full-core input consumption rate, bytes/second.
    pub rate: f64,
    /// Output bytes per input byte.
    pub out_ratio: f64,
    /// Consumption/production discipline.
    pub discipline: Discipline,
    /// Bottleneck resource.
    pub resource: Resource,
    /// Stop after producing this many output bytes (`head -n 1`).
    pub close_after_out: Option<f64>,
}

impl Profile {
    fn streaming(rate_mb: f64, out_ratio: f64) -> Profile {
        Profile {
            rate: rate_mb * 1e6,
            out_ratio,
            discipline: Discipline::Streaming,
            resource: Resource::Cpu,
            close_after_out: None,
        }
    }

    fn blocking(rate_mb: f64, out_ratio: f64) -> Profile {
        Profile {
            discipline: Discipline::Blocking,
            ..Profile::streaming(rate_mb, out_ratio)
        }
    }
}

/// The cost model: rates for every command in the benchmarks.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Expansion factor of `fetch` (document bytes per URL byte).
    pub fetch_expansion: f64,
    /// Expansion factor of `unrle` decompression.
    pub unrle_expansion: f64,
    /// Profile-measured rates by command name, from the runtime's
    /// profile store. These *calibrate* the static priors: the
    /// measured rate and out-ratio are blended in proportionally to
    /// their observation weight, while discipline, resource, and
    /// early-close behaviour stay model-defined (the runtime cannot
    /// observe those from byte counters). Empty by default (cold
    /// start: pure priors).
    pub measured: MeasuredRates,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            fetch_expansion: 200.0,
            unrle_expansion: 3.0,
            measured: MeasuredRates::new(),
        }
    }
}

impl CostModel {
    /// A cost model calibrated with measured command rates.
    pub fn calibrated(measured: MeasuredRates) -> CostModel {
        CostModel {
            measured,
            ..Default::default()
        }
    }

    /// Blends a measured observation into a prior profile. Trust grows
    /// with observation weight: weight 1 moves halfway to the
    /// measurement, heavy evidence converges on it. Non-finite or
    /// non-positive measurements are ignored.
    fn apply_measurement(prior: Profile, m: &MeasuredRate) -> Profile {
        if !(m.mb_per_s.is_finite() && m.mb_per_s > 0.0 && m.weight > 0.0) {
            return prior;
        }
        let trust = m.weight / (m.weight + 1.0);
        let rate = prior.rate * (1.0 - trust) + m.mb_per_s * 1e6 * trust;
        let out_ratio = if m.out_ratio.is_finite() && m.out_ratio >= 0.0 {
            prior.out_ratio * (1.0 - trust) + m.out_ratio * trust
        } else {
            prior.out_ratio
        };
        Profile {
            rate,
            out_ratio,
            ..prior
        }
    }
    /// The profile of a plan node's operation.
    pub fn profile_for(&self, op: &PlanOp) -> Profile {
        match op {
            PlanOp::Exec { .. } => {
                let argv = op.exec_argv_lossy().expect("exec argv");
                self.command_profile(&argv)
            }
            PlanOp::Cat => Profile {
                resource: Resource::Cpu,
                ..Profile::streaming(400.0, 1.0)
            },
            PlanOp::Relay { .. } => Profile::streaming(300.0, 1.0),
            // The general splitter must see the whole input before it
            // can place cut points; the sized and round-robin
            // splitters stream (r_split needs no up-front probing —
            // that is its point).
            PlanOp::Split {
                mode: SplitMode::General,
            } => Profile::blocking(200.0, 1.0),
            PlanOp::Split {
                mode: SplitMode::Sized,
            } => Profile::streaming(300.0, 1.0),
            PlanOp::Split {
                mode: SplitMode::RoundRobin { .. },
            } => Profile::streaming(300.0, 1.0),
            PlanOp::Aggregate { argv } => self.aggregator_profile(argv),
        }
    }

    fn command_profile(&self, argv: &[String]) -> Profile {
        // Framed workers carry a leading `--framed` mode flag that is
        // not part of the command itself.
        let argv = if argv.first().map(|s| s.as_str()) == Some("--framed") {
            &argv[1..]
        } else {
            argv
        };
        let name = argv.first().map(|s| s.as_str()).unwrap_or("");
        let args: Vec<&str> = argv.iter().skip(1).map(|s| s.as_str()).collect();
        let prior = match name {
            "tr" => Profile::streaming(250.0, 1.0),
            "grep" => {
                // Pattern complexity dominates: a long alternation/
                // closure pattern is the paper's expensive Grep.
                let pattern_len = args
                    .iter()
                    .find(|a| !a.starts_with('-'))
                    .map(|p| p.len())
                    .unwrap_or(4);
                let rate = if pattern_len > 16 { 12.0 } else { 300.0 };
                let ratio = if args.contains(&"-c") { 1e-6 } else { 0.4 };
                Profile::streaming(rate, ratio)
            }
            "cut" => Profile::streaming(70.0, 0.25),
            "sed" => Profile::streaming(45.0, 1.1),
            "sort" => {
                // `--parallel=N`: GNU sort's internal threading, the
                // §6.5 baseline. Sub-linear scaling that saturates
                // around 8 threads ("sort's scalability is inherently
                // limited", §6.5).
                let threads: f64 = args
                    .iter()
                    .find_map(|a| a.strip_prefix("--parallel="))
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(1.0);
                // Saturates around 3.5× ("sort's scalability is
                // inherently limited", §6.5's SGNU curve).
                let factor = threads.min(64.0).powf(0.5).min(3.5);
                Profile::blocking(28.0 * factor, 1.0)
            }
            "uniq" => {
                let ratio = if args.contains(&"-c") { 0.4 } else { 0.35 };
                Profile::streaming(60.0, ratio)
            }
            "wc" => Profile::streaming(120.0, 1e-6),
            "head" => Profile {
                close_after_out: Some(head_tail_bytes(&args)),
                ..Profile::streaming(250.0, 1.0)
            },
            "tail" => Profile::blocking(250.0, 0.01),
            "comm" => Profile::streaming(50.0, 0.5),
            "rev" => Profile::streaming(90.0, 1.0),
            "fold" => Profile::streaming(90.0, 1.0),
            "nl" | "cat" => Profile::streaming(200.0, 1.0),
            "paste" => Profile::blocking(80.0, 1.0),
            "diff" => Profile::blocking(18.0, 0.2),
            "sha1sum" => Profile::streaming(35.0, 1e-6),
            "tac" => Profile::blocking(120.0, 1.0),
            "xargs" => {
                // `xargs -n 1 fetch`: network-bound document fetch.
                if args.contains(&"fetch") {
                    Profile {
                        resource: Resource::Net,
                        ..Profile::streaming(40.0, self.fetch_expansion)
                    }
                } else {
                    // Non-fetch xargs forks one process per token
                    // (`xargs -n 1 wc`): spawn-bound, very slow per
                    // byte but embarrassingly parallel (the paper's
                    // Shortest-scripts is 28m45s over 85 MB).
                    Profile::streaming(0.08, 0.3)
                }
            }
            "fetch" => Profile {
                resource: Resource::Net,
                ..Profile::streaming(40.0, self.fetch_expansion)
            },
            "unrle" => Profile::streaming(100.0, self.unrle_expansion),
            "html-to-text" => Profile::streaming(6.0, 0.4),
            "word-stem" => Profile::streaming(25.0, 0.9),
            "bigrams-aux" => Profile::streaming(55.0, 2.0),
            "seq" | "echo" => Profile::streaming(200.0, 1.0),
            // Unknown commands: a middling CPU-bound stage.
            _ => Profile::streaming(30.0, 1.0),
        };
        match self.measured.get(name) {
            Some(m) => Self::apply_measurement(prior, m),
            None => prior,
        }
    }

    fn aggregator_profile(&self, argv: &[String]) -> Profile {
        let name = argv.first().map(|s| s.as_str()).unwrap_or("");
        match name {
            "pash-agg-sort" => Profile::streaming(120.0, 1.0),
            "pash-agg-uniq" | "pash-agg-uniq-c" => Profile::streaming(150.0, 1.0),
            "pash-agg-wc" | "pash-agg-sum" => Profile::streaming(200.0, 1.0),
            "pash-agg-tac" => Profile::streaming(250.0, 1.0),
            "pash-agg-bigram" => Profile::streaming(150.0, 1.0),
            // Frame stripping plus a bounded (k−1 block) reorder
            // buffer: cheap and streaming.
            "pash-agg-reorder" => Profile::streaming(250.0, 1.0),
            "head" => Profile {
                close_after_out: Some(head_tail_bytes(
                    &argv.iter().skip(1).map(|s| s.as_str()).collect::<Vec<_>>(),
                )),
                ..Profile::streaming(250.0, 1.0)
            },
            "tail" => Profile::blocking(250.0, 0.01),
            _ => Profile::streaming(150.0, 1.0),
        }
    }
}

/// Output bytes after which `head`-like commands close (N lines × an
/// assumed ~40-byte line).
fn head_tail_bytes(args: &[&str]) -> f64 {
    let mut n: f64 = 10.0;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if *a == "-n" {
            if let Some(v) = it.next() {
                n = v.parse().unwrap_or(10.0);
            }
        } else if let Some(v) = a.strip_prefix("-n") {
            n = v.parse().unwrap_or(10.0);
        }
    }
    n * 40.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use pash_core::plan::Arg;

    fn cmd(argv: &[&str]) -> PlanOp {
        PlanOp::Exec {
            argv: argv.iter().map(|s| Arg::Lit(s.to_string())).collect(),
            framed: false,
        }
    }

    #[test]
    fn complex_grep_slower_than_simple() {
        let cm = CostModel::default();
        let complex = cm.profile_for(&cmd(&["grep", "(a|b|c|d|e)+(f|g|h)*xyz"]));
        let simple = cm.profile_for(&cmd(&["grep", "gz"]));
        assert!(complex.rate < simple.rate);
    }

    #[test]
    fn sort_is_blocking() {
        let cm = CostModel::default();
        let p = cm.profile_for(&cmd(&["sort", "-rn"]));
        assert_eq!(p.discipline, Discipline::Blocking);
    }

    #[test]
    fn head_closes_early() {
        let cm = CostModel::default();
        let p = cm.profile_for(&cmd(&["head", "-n", "1"]));
        assert_eq!(p.close_after_out, Some(40.0));
    }

    #[test]
    fn fetch_is_network_bound() {
        let cm = CostModel::default();
        let p = cm.profile_for(&cmd(&["xargs", "-n", "1", "fetch"]));
        assert_eq!(p.resource, Resource::Net);
        assert!(p.out_ratio > 1.0);
    }

    #[test]
    fn sized_split_streams_general_blocks() {
        let cm = CostModel::default();
        assert_eq!(
            cm.profile_for(&PlanOp::Split {
                mode: SplitMode::General
            })
            .discipline,
            Discipline::Blocking
        );
        assert_eq!(
            cm.profile_for(&PlanOp::Split {
                mode: SplitMode::Sized
            })
            .discipline,
            Discipline::Streaming
        );
    }

    #[test]
    fn round_robin_split_streams() {
        let cm = CostModel::default();
        for framed in [false, true] {
            assert_eq!(
                cm.profile_for(&PlanOp::Split {
                    mode: SplitMode::RoundRobin { framed }
                })
                .discipline,
                Discipline::Streaming
            );
        }
    }

    #[test]
    fn reorder_aggregator_streams() {
        let cm = CostModel::default();
        let p = cm.profile_for(&PlanOp::Aggregate {
            argv: vec!["pash-agg-reorder".to_string()],
        });
        assert_eq!(p.discipline, Discipline::Streaming);
        assert_eq!(p.out_ratio, 1.0);
    }

    #[test]
    fn measured_rate_calibrates_prior() {
        let mut rates = MeasuredRates::new();
        rates.insert(
            "tr".to_string(),
            MeasuredRate {
                mb_per_s: 50.0,
                out_ratio: 1.0,
                weight: 9.0,
            },
        );
        let cold = CostModel::default();
        let warm = CostModel::calibrated(rates);
        let p_cold = cold.profile_for(&cmd(&["tr", "A-Z", "a-z"]));
        let p_warm = warm.profile_for(&cmd(&["tr", "A-Z", "a-z"]));
        // Weight 9 → trust 0.9: 250 * 0.1 + 50 * 0.9 = 70 MB/s.
        assert!(p_warm.rate < p_cold.rate);
        assert!((p_warm.rate - 70e6).abs() < 1e3);
        // Discipline and resource stay model-defined.
        assert_eq!(p_warm.discipline, p_cold.discipline);
        assert_eq!(p_warm.resource, p_cold.resource);
    }

    #[test]
    fn degenerate_measurements_are_ignored() {
        for m in [
            MeasuredRate {
                mb_per_s: 0.0,
                out_ratio: 1.0,
                weight: 5.0,
            },
            MeasuredRate {
                mb_per_s: f64::NAN,
                out_ratio: 1.0,
                weight: 5.0,
            },
            MeasuredRate {
                mb_per_s: 80.0,
                out_ratio: 1.0,
                weight: 0.0,
            },
        ] {
            let mut rates = MeasuredRates::new();
            rates.insert("wc".to_string(), m);
            let warm = CostModel::calibrated(rates);
            let p = warm.profile_for(&cmd(&["wc", "-l"]));
            assert_eq!(
                p.rate,
                CostModel::default().profile_for(&cmd(&["wc", "-l"])).rate
            );
        }
    }

    #[test]
    fn stream_args_profile_like_stdin_operands() {
        let cm = CostModel::default();
        let with_stream = PlanOp::Exec {
            argv: vec![
                Arg::Lit("comm".into()),
                Arg::Lit("-13".into()),
                Arg::Stream(0),
            ],
            framed: false,
        };
        let p = cm.profile_for(&with_stream);
        let q = cm.profile_for(&cmd(&["comm", "-13", "-"]));
        assert_eq!(p.rate, q.rate);
    }
}
