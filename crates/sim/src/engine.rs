//! A fluid (rate-based, small-time-step) simulator of plan execution
//! on a C-core machine.
//!
//! Each node processes bytes at its profile rate scaled by its share
//! of the bottleneck resource; edges are bounded buffers with the
//! kernel-pipe capacity. The simulator reproduces the *mechanisms*
//! behind the paper's performance results:
//!
//! * task-parallel overlap of pipeline stages, capped by core count;
//! * pipe back-pressure and the sequential-`cat` laziness stalls that
//!   `eager` relays remove (§5.2, Fig. 6);
//! * blocking commands (`sort`, general `split`) that delay
//!   downstream start;
//! * early-exit consumers (`head -n 1`) cancelling their producers;
//! * per-process spawn cost and per-region setup cost (why sub-second
//!   scripts slow down, §6.2);
//! * disk and network bandwidth ceilings (why IO-bound scripts cap at
//!   low speedups, §6.1 Grep-light).
//!
//! The engine consumes the lowered [`ExecutionPlan`] — nodes arrive
//! dense, topologically ordered, with resolved edge endpoint kinds —
//! so all traversal bookkeeping lives in the compiler's lowering, and
//! this module keeps only the fluid rate model.

use std::collections::HashMap;

use pash_core::plan::{
    Backend, EndpointKind, ExecutionPlan, PlanNode, PlanOp, PlanStep, RegionPlan, SplitMode,
};

use crate::cost::{CostModel, Discipline, Profile, Resource};

/// Machine and overhead parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of cores (the paper's testbed: 64).
    pub cores: f64,
    /// Aggregate disk bandwidth, bytes/s.
    pub disk_bw: f64,
    /// Aggregate network bandwidth, bytes/s (1 Gbps testbed link).
    pub net_bw: f64,
    /// Pipe buffer capacity, bytes.
    pub pipe_capacity: f64,
    /// Bounded ("blocking") relay buffer, bytes.
    pub blocking_relay_capacity: f64,
    /// Per-process spawn cost, seconds.
    pub spawn_cost: f64,
    /// Per-region fixed setup (compilation, mkfifo), seconds.
    pub setup_cost: f64,
    /// Simulation time step, seconds.
    pub tick: f64,
    /// Give up after this much simulated time.
    pub max_time: f64,
    /// Byte-share each *general* split output receives (models the
    /// worker imbalance a line-count-based segmenter suffers on a
    /// corpus with skewed line lengths). `None` or a length mismatch
    /// means uniform. The round-robin split always deals uniformly —
    /// that balance is its point.
    pub split_shares: Option<Vec<f64>>,
    /// How many independent plan regions may run concurrently
    /// (parallel pipelines). 1 reproduces strictly sequential
    /// region-at-a-time execution.
    pub max_inflight: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cores: 64.0,
            disk_bw: 800e6,
            net_bw: 125e6,
            pipe_capacity: 64.0 * 1024.0,
            blocking_relay_capacity: 512.0 * 1024.0,
            spawn_cost: 0.002,
            setup_cost: 0.08,
            tick: 0.004,
            max_time: 40_000.0,
            split_shares: None,
            max_inflight: 1,
        }
    }
}

/// Sizes of the input files a program reads (bytes).
pub type InputSizes = HashMap<String, f64>;

/// Result of simulating one region.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Simulated wall-clock seconds, including setup and spawn.
    pub seconds: f64,
    /// Number of simulated processes.
    pub processes: usize,
    /// Total bytes written to the region's outputs.
    pub output_bytes: f64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    Consuming,
    Emitting,
}

struct NodeState {
    profile: Profile,
    /// Sequential input consumption (cat semantics) vs. merged.
    sequential_inputs: bool,
    relay_cap: f64,
    start: f64,
    done: bool,
    phase: Phase,
    consumed: f64,
    produced: f64,
    /// Bytes awaiting emission (blocking stash or relay buffer).
    stash: f64,
    current_input: usize,
    /// Blocking-split emission cursor.
    emit_cursor: usize,
    /// Per-output byte shares for split nodes. The round-robin split
    /// scatters *while streaming*; the general split uses these to
    /// size its sequential chunks. `None` keeps the historical
    /// uniform/funnel behaviour.
    shares: Option<Vec<f64>>,
}

/// Byte shares a split node deals to its outputs.
fn split_shares_for(cfg: &SimConfig, op: &PlanOp, k: usize) -> Option<Vec<f64>> {
    if k == 0 {
        return None;
    }
    match op {
        PlanOp::Split {
            mode: SplitMode::RoundRobin { .. },
        } => Some(vec![1.0 / k as f64; k]),
        PlanOp::Split {
            mode: SplitMode::General,
        } => {
            let raw = cfg.split_shares.as_ref()?;
            if raw.len() != k || raw.iter().any(|&s| !(s > 0.0)) {
                return None;
            }
            let total: f64 = raw.iter().sum();
            Some(raw.iter().map(|&s| s / total).collect())
        }
        _ => None,
    }
}

enum EdgeKind {
    /// A file (or segment) on disk with this many bytes left.
    Source { remaining: f64 },
    /// A pipe buffer.
    Buffer { buffered: f64, cap: f64 },
    /// Output file / stdout: infinite sink.
    Sink { written: f64 },
    /// Unused slot.
    Dead,
}

struct EdgeState {
    kind: EdgeKind,
    producer_eof: bool,
    consumer_closed: bool,
}

/// Simulates one region plan; `stdin_bytes` feeds the primary
/// boundary pipe input.
pub fn simulate_region(
    r: &RegionPlan,
    sizes: &InputSizes,
    stdin_bytes: f64,
    cm: &CostModel,
    cfg: &SimConfig,
) -> SimReport {
    let n_nodes = r.nodes.len();

    // Edge states, straight from the resolved endpoint kinds.
    let mut edges: Vec<EdgeState> = Vec::with_capacity(r.edges.len());
    for edge in &r.edges {
        let kind = match &edge.kind {
            EndpointKind::Pipe => EdgeKind::Buffer {
                buffered: 0.0,
                cap: cfg.pipe_capacity,
            },
            // Stdin arrives from the launching process: treat as a
            // source at disk speed.
            EndpointKind::StdinPipe { primary } => EdgeKind::Source {
                remaining: if *primary { stdin_bytes } else { 0.0 },
            },
            EndpointKind::StdoutPipe | EndpointKind::OutputFile(_) => {
                EdgeKind::Sink { written: 0.0 }
            }
            EndpointKind::InputFile(path) => EdgeKind::Source {
                remaining: sizes.get(path).copied().unwrap_or(1e6),
            },
            EndpointKind::InputSegment { path, of, .. } => EdgeKind::Source {
                remaining: sizes.get(path).copied().unwrap_or(1e6) / (*of as f64),
            },
            EndpointKind::Detached => EdgeKind::Dead,
        };
        edges.push(EdgeState {
            kind,
            producer_eof: false,
            consumer_closed: false,
        });
    }

    // Node states; spawn serially.
    let mut nodes: Vec<NodeState> = Vec::with_capacity(n_nodes);
    for (i, node) in r.nodes.iter().enumerate() {
        let mut profile = cm.profile_for(&node.op);
        // Merging aggregators read their inputs in key order: with
        // bare FIFOs upstream, producers stall whenever the merge
        // dwells on the sibling stream. Eager relays decouple this
        // (§5.2; the §6.5 sort microbenchmark's ~2× eager gain).
        // Calibrated contention factor for unbuffered merge inputs:
        if matches!(node.op, PlanOp::Aggregate { .. }) {
            let buffered = node.inputs.iter().all(|&e| {
                r.edges[e]
                    .from
                    .map(|p| matches!(r.nodes[p].op, PlanOp::Relay { .. }))
                    .unwrap_or(false)
            });
            if !buffered {
                profile.rate *= 0.5;
            }
        }
        let relay_cap = match &node.op {
            PlanOp::Relay { blocking: false } => f64::INFINITY,
            PlanOp::Relay { blocking: true } => cfg.blocking_relay_capacity,
            _ => 0.0,
        };
        let sequential_inputs = !matches!(node.op, PlanOp::Aggregate { .. });
        nodes.push(NodeState {
            profile,
            sequential_inputs,
            relay_cap,
            start: cfg.setup_cost + (i as f64 + 1.0) * cfg.spawn_cost,
            done: false,
            phase: Phase::Consuming,
            consumed: 0.0,
            produced: 0.0,
            stash: 0.0,
            current_input: 0,
            emit_cursor: 0,
            shares: split_shares_for(cfg, &node.op, node.outputs.len()),
        });
    }

    let mut t = cfg.setup_cost + n_nodes as f64 * cfg.spawn_cost;
    let dt = cfg.tick;
    loop {
        if nodes.iter().all(|n| n.done) {
            break;
        }
        if t > cfg.max_time {
            if std::env::var("PASH_SIM_DEBUG").is_ok() {
                for (i, node) in r.nodes.iter().enumerate() {
                    let st = &nodes[i];
                    if !st.done {
                        eprintln!(
                            "stuck n{i} {} phase={:?} consumed={:.0} stash={:.0} cur_in={} inputs={:?}",
                            node.op.label(),
                            st.phase, st.consumed, st.stash, st.current_input,
                            node.inputs.iter().map(|&e| {
                                let ed = &edges[e];
                                format!("e{e}:{}b eof={} closed={}", input_available(ed) as u64, ed.producer_eof, ed.consumer_closed)
                            }).collect::<Vec<_>>()
                        );
                    }
                }
            }
            break;
        }
        // --- Resource shares -------------------------------------
        let mut cpu_active = 0usize;
        let mut disk_active = 0usize;
        let mut net_active = 0usize;
        for (i, node) in r.nodes.iter().enumerate() {
            if !node_wants_to_run(node, &nodes[i], &edges, t) {
                continue;
            }
            match nodes[i].profile.resource {
                Resource::Cpu => cpu_active += 1,
                Resource::Disk => disk_active += 1,
                Resource::Net => net_active += 1,
            }
            // Reading from a source edge consumes disk bandwidth too.
            if reads_source(node, &nodes[i], &edges) {
                disk_active += 1;
            }
        }
        let cpu_share = (cfg.cores / cpu_active.max(1) as f64).min(1.0);
        let disk_share = cfg.disk_bw / disk_active.max(1) as f64;
        let net_share = cfg.net_bw / net_active.max(1) as f64;

        // --- Per-node transfers -----------------------------------
        // Budgets for this tick; transfers run in sub-rounds so that
        // small pipe buffers can cycle many times within one tick
        // (otherwise every pipe would cap flow at capacity/tick).
        let mut budgets: Vec<f64> = Vec::with_capacity(n_nodes);
        let mut emit_budgets: Vec<f64> = Vec::with_capacity(n_nodes);
        for st in nodes.iter() {
            let b = match st.profile.resource {
                Resource::Cpu => st.profile.rate * cpu_share * dt,
                Resource::Disk => st.profile.rate.min(disk_share) * dt,
                Resource::Net => st.profile.rate.min(net_share) * dt,
            };
            budgets.push(b);
            emit_budgets.push(st.profile.rate * cpu_share * dt);
        }
        for _round in 0..28 {
            let mut moved = 0.0;
            for (i, node) in r.nodes.iter().enumerate() {
                if nodes[i].done
                    || t < nodes[i].start
                    || (budgets[i] < 1.0 && emit_budgets[i] < 1.0)
                {
                    continue;
                }
                moved += step_node(
                    node,
                    i,
                    &mut nodes,
                    &mut edges,
                    &mut budgets[i],
                    &mut emit_budgets[i],
                    disk_share * dt,
                );
            }
            propagate_closures(r, &mut nodes, &mut edges);
            if moved < 1.0 {
                break;
            }
        }
        t += dt;
    }
    let output_bytes: f64 = edges
        .iter()
        .map(|e| match e.kind {
            EdgeKind::Sink { written } => written,
            _ => 0.0,
        })
        .sum();
    SimReport {
        seconds: t,
        processes: n_nodes,
        output_bytes,
    }
}

/// Whether a node would transfer bytes this tick (for share counting).
fn node_wants_to_run(node: &PlanNode, st: &NodeState, edges: &[EdgeState], t: f64) -> bool {
    if st.done || t < st.start {
        return false;
    }
    match st.phase {
        Phase::Consuming => {
            node.inputs
                .iter()
                .any(|&e| input_available(&edges[e]) > 0.0)
                || node.inputs.is_empty()
        }
        Phase::Emitting => st.stash > 0.0,
    }
}

fn reads_source(node: &PlanNode, st: &NodeState, edges: &[EdgeState]) -> bool {
    if st.phase != Phase::Consuming {
        return false;
    }
    node.inputs
        .iter()
        .any(|&e| matches!(edges[e].kind, EdgeKind::Source { remaining } if remaining > 0.0))
}

fn input_available(e: &EdgeState) -> f64 {
    match e.kind {
        EdgeKind::Source { remaining } => remaining,
        EdgeKind::Buffer { buffered, .. } => buffered,
        _ => 0.0,
    }
}

/// Free space a producer may write into an edge.
fn output_space(e: &EdgeState) -> f64 {
    if e.consumer_closed {
        // Writes to a closed pipe "succeed" instantly (the producer
        // dies of SIGPIPE; modelled as free progress then closure).
        return f64::INFINITY;
    }
    match e.kind {
        EdgeKind::Buffer { buffered, cap } => (cap - buffered).max(0.0),
        EdgeKind::Sink { .. } => f64::INFINITY,
        _ => 0.0,
    }
}

fn drain_input(e: &mut EdgeState, amount: f64) {
    match &mut e.kind {
        EdgeKind::Source { remaining } => *remaining = (*remaining - amount).max(0.0),
        EdgeKind::Buffer { buffered, .. } => *buffered = (*buffered - amount).max(0.0),
        _ => {}
    }
}

fn fill_output(e: &mut EdgeState, amount: f64) {
    if e.consumer_closed {
        return;
    }
    match &mut e.kind {
        EdgeKind::Buffer { buffered, .. } => *buffered += amount,
        EdgeKind::Sink { written } => *written += amount,
        _ => {}
    }
}

/// True when an input edge can never deliver more bytes.
fn input_exhausted(e: usize, edges: &[EdgeState]) -> bool {
    let edge = &edges[e];
    match edge.kind {
        EdgeKind::Source { remaining } => remaining <= 0.0,
        EdgeKind::Buffer { buffered, .. } => buffered <= 0.0 && edge.producer_eof,
        _ => true,
    }
}

#[allow(clippy::too_many_arguments)]
fn step_node(
    node: &PlanNode,
    i: usize,
    nodes: &mut [NodeState],
    edges: &mut [EdgeState],
    budget: &mut f64,
    emit_budget: &mut f64,
    disk_budget: f64,
) -> f64 {
    let st = &mut nodes[i];
    let is_split = matches!(node.op, PlanOp::Split { .. });
    let mut moved = 0.0;

    // --- Consume --------------------------------------------------
    if st.phase == Phase::Consuming {
        let inputs: &[usize] = &node.inputs;
        let mut consumed_now = 0.0;
        if st.sequential_inputs {
            // Cat semantics: drain the current input only.
            while *budget > 0.0 && st.current_input < inputs.len() {
                let e = inputs[st.current_input];
                let avail = input_available(&edges[e]);
                if avail <= 0.0 {
                    if input_exhausted(e, edges) {
                        st.current_input += 1;
                        continue;
                    }
                    break; // Blocked on this input (laziness!).
                }
                // Reading from disk is capped by the disk share.
                let cap = if matches!(edges[e].kind, EdgeKind::Source { .. }) {
                    budget.min(disk_budget)
                } else {
                    *budget
                };
                let take = avail.min(cap).min(space_for_consumption(st, node, edges));
                if take <= 0.0 {
                    break;
                }
                drain_input(&mut edges[e], take);
                *budget -= take;
                consumed_now += take;
            }
        } else {
            // Merge semantics: drain all inputs equally.
            let live: Vec<usize> = inputs
                .iter()
                .copied()
                .filter(|&e| input_available(&edges[e]) > 0.0)
                .collect();
            if !live.is_empty() {
                let per = (*budget / live.len() as f64)
                    .min(space_for_consumption(st, node, edges) / live.len() as f64);
                for &e in &live {
                    let take = input_available(&edges[e]).min(per);
                    drain_input(&mut edges[e], take);
                    consumed_now += take;
                }
                *budget -= consumed_now;
            }
        }
        st.consumed += consumed_now;
        moved += consumed_now;
        // Production.
        match st.profile.discipline {
            Discipline::Streaming => {
                if st.relay_cap > 0.0 {
                    st.stash += consumed_now; // Into the relay buffer.
                } else {
                    let out = consumed_now * st.profile.out_ratio;
                    if let Some(shares) = &st.shares {
                        // Streaming split (round-robin): scatter
                        // across every output as bytes arrive, so all
                        // workers run while the input is still being
                        // read.
                        for (j, &oe) in node.outputs.iter().enumerate() {
                            fill_output(&mut edges[oe], out * shares[j]);
                        }
                    } else if let Some(&oe) = node.outputs.first() {
                        fill_output(&mut edges[oe], out);
                    }
                    st.produced += out;
                }
            }
            Discipline::Blocking => {
                st.stash += consumed_now * st.profile.out_ratio;
            }
        }
        // EOF transition.
        let all_done = node.inputs.iter().all(|&e| input_exhausted(e, edges));
        if all_done {
            match st.profile.discipline {
                Discipline::Streaming if st.relay_cap == 0.0 => {
                    finish_node(st, node, edges);
                }
                _ => st.phase = Phase::Emitting,
            }
        }
    }

    // --- Emit (blocking stash or relay buffer) ---------------------
    if st.phase == Phase::Emitting || st.relay_cap > 0.0 {
        if is_split {
            // Blocking split scatters chunks to outputs in order;
            // chunk sizes follow the configured shares (uniform by
            // default, skewed to model line-count segmentation over
            // uneven line lengths).
            let k = node.outputs.len() as f64;
            let total = st.consumed * st.profile.out_ratio;
            while *emit_budget > 0.0 && st.stash > 0.0 && st.emit_cursor < node.outputs.len() {
                let oe = node.outputs[st.emit_cursor];
                let (chunk, cum_before) = match &st.shares {
                    Some(s) => (
                        total * s[st.emit_cursor],
                        total * s[..st.emit_cursor].iter().sum::<f64>(),
                    ),
                    None => (total / k, st.emit_cursor as f64 * total / k),
                };
                let chunk_written = st.produced - cum_before;
                let left_in_chunk = (chunk - chunk_written).max(0.0);
                if left_in_chunk <= 0.5 {
                    st.emit_cursor += 1;
                    continue;
                }
                let space = output_space(&edges[oe]);
                let w = emit_budget.min(st.stash).min(left_in_chunk).min(space);
                if w <= 0.0 {
                    break;
                }
                fill_output(&mut edges[oe], w);
                st.stash -= w;
                st.produced += w;
                *emit_budget -= w;
                moved += w;
            }
        } else if let Some(&oe) = node.outputs.first() {
            let space = output_space(&edges[oe]);
            let ratio = if st.relay_cap > 0.0 {
                st.profile.out_ratio
            } else {
                1.0 // Already scaled when stashed.
            };
            let w = emit_budget.min(st.stash).min(space / ratio.max(1e-12));
            if w > 0.0 {
                fill_output(&mut edges[oe], w * ratio);
                st.stash -= w;
                st.produced += w * ratio;
                *emit_budget -= w;
                moved += w;
            }
        }
        // Sub-byte residue is floating-point noise, not real data.
        if st.phase == Phase::Emitting && st.stash <= 1.0 {
            finish_node(st, node, edges);
        }
    }

    // --- Early close (head) ----------------------------------------
    if let Some(limit) = st.profile.close_after_out {
        if st.produced >= limit && !st.done {
            finish_node(st, node, edges);
        }
    }
    moved
}

/// Space available for a streaming node to keep consuming.
fn space_for_consumption(st: &NodeState, node: &PlanNode, edges: &[EdgeState]) -> f64 {
    match st.profile.discipline {
        Discipline::Blocking => f64::INFINITY,
        Discipline::Streaming => {
            if st.relay_cap > 0.0 {
                (st.relay_cap - st.stash).max(0.0)
            } else if let Some(shares) = &st.shares {
                // Streaming split: the fullest output gates intake
                // (r_split blocks on whichever worker pipe is full).
                let mut space = f64::INFINITY;
                for (j, &oe) in node.outputs.iter().enumerate() {
                    if shares[j] > 1e-12 {
                        space = space.min(output_space(&edges[oe]) / shares[j]);
                    }
                }
                if st.profile.out_ratio <= 1e-12 {
                    f64::INFINITY
                } else {
                    space / st.profile.out_ratio
                }
            } else if let Some(&oe) = node.outputs.first() {
                let space = output_space(&edges[oe]);
                if st.profile.out_ratio <= 1e-12 {
                    f64::INFINITY
                } else {
                    space / st.profile.out_ratio
                }
            } else {
                f64::INFINITY
            }
        }
    }
}

fn finish_node(st: &mut NodeState, node: &PlanNode, edges: &mut [EdgeState]) {
    st.done = true;
    for &e in &node.outputs {
        edges[e].producer_eof = true;
    }
}

/// Closes inputs of done nodes and kills producers whose every
/// consumer vanished (the SIGPIPE cascade).
fn propagate_closures(r: &RegionPlan, nodes: &mut [NodeState], edges: &mut [EdgeState]) {
    loop {
        let mut changed = false;
        for (i, node) in r.nodes.iter().enumerate() {
            if !nodes[i].done {
                continue;
            }
            for &e in &node.inputs {
                if !edges[e].consumer_closed {
                    edges[e].consumer_closed = true;
                    changed = true;
                }
            }
        }
        for (i, node) in r.nodes.iter().enumerate() {
            if nodes[i].done {
                continue;
            }
            if !node.outputs.is_empty() && node.outputs.iter().all(|&e| edges[e].consumer_closed) {
                let st = &mut nodes[i];
                st.done = true;
                for &e in &node.outputs {
                    edges[e].producer_eof = true;
                }
                changed = true;
            }
        }
        if !changed {
            return;
        }
    }
}

/// Simulates a whole lowered program. Independent regions in the
/// same wave overlap up to `cfg.max_inflight` at a time (parallel
/// pipelines): a batch costs its *slowest* member, not the sum.
/// `max_inflight == 1` reproduces strictly sequential execution.
pub fn simulate_program(
    plan: &ExecutionPlan,
    sizes: &InputSizes,
    stdin_bytes: f64,
    cm: &CostModel,
    cfg: &SimConfig,
) -> SimReport {
    let mut total = 0.0;
    let mut processes = 0;
    let mut output_bytes = 0.0;
    let inflight = cfg.max_inflight.max(1);
    for wave in plan.parallel_waves() {
        for batch in wave.chunks(inflight) {
            let mut batch_seconds = 0.0f64;
            for &idx in batch {
                match &plan.steps[idx] {
                    PlanStep::Region(r) => {
                        let report = simulate_region(r, sizes, stdin_bytes, cm, cfg);
                        batch_seconds = batch_seconds.max(report.seconds);
                        processes += report.processes;
                        output_bytes += report.output_bytes;
                    }
                    PlanStep::Shell { .. } | PlanStep::Guard(_) => {
                        // Assignments/barriers: negligible.
                    }
                }
            }
            total += batch_seconds;
        }
    }
    SimReport {
        seconds: total,
        processes,
        output_bytes,
    }
}

/// Parameters of a simulated fault-recovery episode, mirroring the
/// runtime supervisor's knobs (`SupervisorSettings`).
#[derive(Debug, Clone)]
pub struct FaultProfile {
    /// Fraction of the parallel run's wall-clock that elapses before
    /// the supervisor detects the failure (0 = fails at spawn,
    /// 1 = at the very end of the stream).
    pub detect_frac: f64,
    /// Retries the supervisor attempts before giving up.
    pub retries: u32,
    /// Base backoff slept before retry `i` (doubles each retry),
    /// seconds.
    pub backoff_base: f64,
    /// Whether exhausted retries degrade to the sequential plan
    /// (the supervisor's graceful-fallback path). When `false`, the
    /// fault is transient and the final retry succeeds.
    pub fallback: bool,
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile {
            detect_frac: 0.5,
            retries: 2,
            backoff_base: 0.025,
            fallback: true,
        }
    }
}

/// Cost breakdown of one simulated fault episode.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Fault-free parallel seconds (the happy path being disrupted).
    pub parallel_seconds: f64,
    /// Width-1 sequential seconds (the fallback's cost).
    pub sequential_seconds: f64,
    /// Seconds burnt in doomed attempts and backoff sleeps.
    pub wasted_seconds: f64,
    /// End-to-end seconds for the whole episode.
    pub total_seconds: f64,
    /// `total / parallel`: the price of surviving the fault relative
    /// to the undisturbed parallel run.
    pub overhead_x: f64,
}

/// Closed-form cost of a fault-recovery episode over already-lowered
/// plans: each failed attempt burns `detect_frac` of the parallel
/// runtime plus an exponentially growing backoff sleep; the episode
/// ends either in the sequential fallback (persistent fault) or a
/// final successful parallel attempt (transient fault).
///
/// The per-attempt runtimes come from the same fluid engine the rest
/// of the crate uses, so spawn/setup costs, back-pressure, and
/// blocking stages all shape the recovery bill.
pub fn simulate_recovery(
    par: &ExecutionPlan,
    seq: &ExecutionPlan,
    sizes: &InputSizes,
    stdin_bytes: f64,
    cm: &CostModel,
    cfg: &SimConfig,
    fp: &FaultProfile,
) -> RecoveryReport {
    let t_par = simulate_program(par, sizes, stdin_bytes, cm, cfg).seconds;
    let t_seq = simulate_program(seq, sizes, stdin_bytes, cm, cfg).seconds;
    let detect = fp.detect_frac.clamp(0.0, 1.0) * t_par;
    let mut wasted = 0.0;
    for i in 1..=fp.retries {
        wasted += detect + fp.backoff_base * (1u64 << (i - 1).min(62)) as f64;
    }
    let total = if fp.fallback {
        // The initial attempt and every retry fail; the supervisor
        // re-executes the aligned width-1 plan, which faults cannot
        // reach.
        wasted += detect;
        wasted + t_seq
    } else {
        // Transient: the final retry runs to completion.
        wasted + t_par
    };
    RecoveryReport {
        parallel_seconds: t_par,
        sequential_seconds: t_seq,
        wasted_seconds: wasted,
        total_seconds: total,
        overhead_x: total / t_par.max(1e-12),
    }
}

/// Cost parameters of the remote worker backend: what shipping a
/// region to a `pash-worker` and recovering from a dropped worker
/// costs on top of the work itself.
#[derive(Debug, Clone)]
pub struct RemoteProfile {
    /// Socket throughput for shipping the serialized region plus its
    /// input files and streaming results back, bytes/second.
    pub ship_bytes_per_s: f64,
    /// Per-attempt constant: connect, frame, and decode overhead,
    /// seconds.
    pub connect_seconds: f64,
    /// Fraction of a remote attempt's wall-clock that elapses before
    /// the coordinator detects a dropped connection or torn stream.
    pub detect_frac: f64,
    /// Remote attempts before the ladder degrades to the local rung
    /// (1 initial + `retries` rerouted retries).
    pub retries: u32,
    /// Base backoff slept before retry `i` (doubles each retry),
    /// seconds.
    pub backoff_base: f64,
}

impl Default for RemoteProfile {
    fn default() -> Self {
        RemoteProfile {
            // A loopback Unix socket moves GB/s; a LAN would be ~100×
            // slower. The default prices the testbed CI measures.
            ship_bytes_per_s: 2e9,
            connect_seconds: 0.0005,
            detect_frac: 0.5,
            retries: 2,
            backoff_base: 0.025,
        }
    }
}

/// Cost breakdown of the remote recovery ladder's episodes.
#[derive(Debug, Clone)]
pub struct RemoteRecoveryReport {
    /// A clean remote run: ship + execute + stream back.
    pub remote_seconds: f64,
    /// One dropped connection, detected mid-attempt, retried on a
    /// different worker after backoff.
    pub reroute_seconds: f64,
    /// `reroute / remote`: the price of surviving one dropped worker
    /// relative to the undisturbed remote run.
    pub reroute_overhead_x: f64,
    /// Every remote attempt fails; the ladder degrades to the clean
    /// local run at full width.
    pub local_degraded_seconds: f64,
    /// `local_degraded / remote`: the price of a dead worker pool.
    pub local_degraded_overhead_x: f64,
}

/// Closed-form cost of the remote backend's recovery ladder over
/// already-lowered plans, using the same fluid engine for the work
/// itself: a remote attempt costs connect + shipping (inputs over the
/// socket, results back) + the parallel runtime; a dropped worker
/// burns `detect_frac` of that before the supervisor reroutes; a dead
/// pool burns every attempt and lands on the local rung.
pub fn simulate_remote_recovery(
    par: &ExecutionPlan,
    sizes: &InputSizes,
    stdin_bytes: f64,
    cm: &CostModel,
    cfg: &SimConfig,
    rp: &RemoteProfile,
) -> RemoteRecoveryReport {
    let t_par = simulate_program(par, sizes, stdin_bytes, cm, cfg).seconds;
    // Bytes crossing the socket: every input the plan reads, the
    // stdin feed, and (conservatively) the same volume streaming back.
    let input_bytes: f64 = sizes.values().sum::<f64>() + stdin_bytes;
    let ship = rp.connect_seconds + 2.0 * input_bytes / rp.ship_bytes_per_s.max(1.0);
    let attempt = ship + t_par;
    let remote = attempt;
    // One drop: detect mid-attempt, back off, succeed on the other
    // worker.
    let reroute = rp.detect_frac.clamp(0.0, 1.0) * attempt + rp.backoff_base + attempt;
    // Dead pool: 1 + retries doomed attempts (each detected at
    // `detect_frac`, connect cost always paid) plus the backoff
    // ladder, then the clean local run.
    let mut wasted = rp.detect_frac.clamp(0.0, 1.0) * attempt;
    for i in 1..=rp.retries {
        wasted += rp.detect_frac.clamp(0.0, 1.0) * attempt
            + rp.backoff_base * (1u64 << (i - 1).min(62)) as f64;
    }
    let local_degraded = wasted + t_par;
    RemoteRecoveryReport {
        remote_seconds: remote,
        reroute_seconds: reroute,
        reroute_overhead_x: reroute / remote.max(1e-12),
        local_degraded_seconds: local_degraded,
        local_degraded_overhead_x: local_degraded / remote.max(1e-12),
    }
}

/// The performance-prediction backend over execution plans.
pub struct SimBackend<'a> {
    /// Sizes of the input files the plan reads.
    pub sizes: &'a InputSizes,
    /// Bytes arriving on the program's stdin.
    pub stdin_bytes: f64,
    /// Command cost profiles.
    pub cost: &'a CostModel,
    /// Machine parameters.
    pub cfg: &'a SimConfig,
}

impl Backend for SimBackend<'_> {
    type Output = SimReport;

    fn name(&self) -> &'static str {
        "sim"
    }

    fn run(&mut self, plan: &ExecutionPlan) -> std::io::Result<SimReport> {
        Ok(simulate_program(
            plan,
            self.sizes,
            self.stdin_bytes,
            self.cost,
            self.cfg,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pash_core::compile::{compile, PashConfig};
    use pash_core::dfg::transform::{EagerPolicy, SplitPolicy};

    fn sizes(mb: f64) -> InputSizes {
        [("in.txt".to_string(), mb * 1e6)].into_iter().collect()
    }

    fn sim(src: &str, cfg: &PashConfig, input_mb: f64) -> f64 {
        let compiled = compile(src, cfg).expect("compile");
        simulate_program(
            &compiled.plan,
            &sizes(input_mb),
            0.0,
            &CostModel::default(),
            &SimConfig::default(),
        )
        .seconds
    }

    fn speedup(src: &str, width: usize, input_mb: f64) -> f64 {
        let seq = sim(
            src,
            &PashConfig {
                width: 1,
                ..Default::default()
            },
            input_mb,
        );
        let par = sim(
            src,
            &PashConfig {
                width,
                ..Default::default()
            },
            input_mb,
        );
        seq / par
    }

    const GREP: &str =
        "cat in.txt | tr A-Z a-z | grep '(a|b|c|d|e)+(f|g|h)*(ij|kl)+xyz' | tr -d q > out.txt";
    const SORT: &str = "cat in.txt | tr A-Z a-z | sort > out.txt";

    #[test]
    fn stateless_pipeline_scales_substantially() {
        let s8 = speedup(GREP, 8, 100.0);
        assert!(s8 > 4.0, "8-wide grep speedup {s8:.2} too low");
        let s2 = speedup(GREP, 2, 100.0);
        assert!(s2 > 1.5 && s2 < 3.0, "2-wide grep speedup {s2:.2}");
    }

    #[test]
    fn speedup_monotone_then_saturates() {
        let s2 = speedup(SORT, 2, 100.0);
        let s8 = speedup(SORT, 8, 100.0);
        let s64 = speedup(SORT, 64, 100.0);
        assert!(s2 > 1.3, "sort 2x: {s2:.2}");
        assert!(s8 > s2, "sort should improve 2→8 ({s2:.2} → {s8:.2})");
        // The paper: sort-heavy scripts do not scale linearly to 64.
        assert!(s64 < 30.0, "sort 64x unrealistically high: {s64:.2}");
    }

    #[test]
    fn eager_beats_no_eager_for_sort() {
        let base = PashConfig {
            width: 8,
            ..Default::default()
        };
        let with_eager = sim(SORT, &base, 200.0);
        let without = sim(
            SORT,
            &PashConfig {
                eager: EagerPolicy::Off,
                ..base
            },
            200.0,
        );
        assert!(
            with_eager < without,
            "eager {with_eager:.1}s !< no-eager {without:.1}s"
        );
    }

    #[test]
    fn tiny_inputs_see_slowdown() {
        // §6.2: sub-second pipelines lose to the constant setup cost.
        let s = speedup("cat in.txt | grep x | head -n 1 > out.txt", 16, 0.01);
        assert!(s < 1.5, "tiny input speedup should be ~1 or below: {s:.2}");
    }

    #[test]
    fn non_parallelizable_stage_is_not_accelerated() {
        let s = speedup("cat in.txt | sha1sum > out.txt", 16, 50.0);
        assert!(s < 1.4, "sha1sum must not accelerate: {s:.2}");
    }

    #[test]
    fn split_helps_heavy_post_aggregation_stages() {
        // A slow stateless stage after an aggregation point can only
        // be re-parallelized by a split node (the reason wf / spell /
        // bi-grams "do not see benefits without split", Fig. 7).
        let src = "cat in.txt | sort | grep '(a|b|c|d|e)+(f|g|h)*(ij|kl)+xyz' > out.txt";
        let base = sim(
            src,
            &PashConfig {
                width: 8,
                split: SplitPolicy::Off,
                ..Default::default()
            },
            100.0,
        );
        let with_split = sim(
            src,
            &PashConfig {
                width: 8,
                split: SplitPolicy::General,
                ..Default::default()
            },
            100.0,
        );
        assert!(
            with_split < base * 0.6,
            "split {with_split:.1}s vs {base:.1}s"
        );
    }

    #[test]
    fn split_does_not_hurt_light_post_aggregation_stages() {
        // For cheap downstream stages, split's extra pass roughly
        // breaks even ("for the rest it does not affect performance").
        let src = "cat in.txt | sort | uniq -c > out.txt";
        let base = sim(
            src,
            &PashConfig {
                width: 8,
                split: SplitPolicy::Off,
                ..Default::default()
            },
            100.0,
        );
        let with_split = sim(
            src,
            &PashConfig {
                width: 8,
                split: SplitPolicy::General,
                ..Default::default()
            },
            100.0,
        );
        assert!(
            with_split <= base * 2.5,
            "split should not catastrophically hurt: {with_split:.1}s vs {base:.1}s"
        );
    }

    #[test]
    fn simulation_terminates_on_head_cancellation() {
        let src = "cat in.txt | sort -rn | head -n 1 > out.txt";
        let t = sim(
            src,
            &PashConfig {
                width: 4,
                ..Default::default()
            },
            20.0,
        );
        assert!(t < SimConfig::default().max_time / 2.0);
    }

    #[test]
    fn round_robin_split_streams_past_general() {
        // Post-aggregation re-parallelization: the general split must
        // ingest the whole stream before dealing chunks, while
        // r_split scatters tagged blocks as they arrive, so the heavy
        // downstream stage overlaps with the split's intake.
        let src = "cat in.txt | sort | grep '(a|b|c|d|e)+(f|g|h)*(ij|kl)+xyz' > out.txt";
        let general = sim(
            src,
            &PashConfig {
                width: 8,
                split: SplitPolicy::General,
                ..Default::default()
            },
            100.0,
        );
        let rr = sim(
            src,
            &PashConfig {
                width: 8,
                split: SplitPolicy::RoundRobin,
                ..Default::default()
            },
            100.0,
        );
        assert!(
            rr < general,
            "r_split {rr:.1}s should beat general split {general:.1}s"
        );
    }

    #[test]
    fn skewed_shares_slow_the_general_split() {
        // A line-count segmenter over skewed line lengths hands one
        // worker far more bytes; the straggler sets the finish line.
        let src = "cat in.txt | sort | grep '(a|b|c|d|e)+(f|g|h)*(ij|kl)+xyz' > out.txt";
        let cfg = PashConfig {
            width: 8,
            split: SplitPolicy::General,
            ..Default::default()
        };
        let compiled = compile(src, &cfg).expect("compile");
        let uniform = simulate_program(
            &compiled.plan,
            &sizes(100.0),
            0.0,
            &CostModel::default(),
            &SimConfig::default(),
        )
        .seconds;
        let skewed_cfg = SimConfig {
            split_shares: Some(vec![0.44, 0.08, 0.08, 0.08, 0.08, 0.08, 0.08, 0.08]),
            ..Default::default()
        };
        let skewed = simulate_program(
            &compiled.plan,
            &sizes(100.0),
            0.0,
            &CostModel::default(),
            &skewed_cfg,
        )
        .seconds;
        assert!(
            skewed > uniform * 1.3,
            "skewed shares {skewed:.1}s should lag uniform {uniform:.1}s"
        );
    }

    #[test]
    fn inflight_overlaps_independent_regions() {
        let src = "grep '(a|b|c|d|e)+(f|g|h)*(ij|kl)+xyz' a.txt > o1.txt\n\
                   grep '(a|b|c|d|e)+(f|g|h)*(ij|kl)+xyz' b.txt > o2.txt";
        let cfg = PashConfig {
            width: 2,
            ..Default::default()
        };
        let compiled = compile(src, &cfg).expect("compile");
        let file_sizes: InputSizes = [("a.txt".to_string(), 50e6), ("b.txt".to_string(), 50e6)]
            .into_iter()
            .collect();
        let run = |inflight: usize| {
            simulate_program(
                &compiled.plan,
                &file_sizes,
                0.0,
                &CostModel::default(),
                &SimConfig {
                    max_inflight: inflight,
                    ..Default::default()
                },
            )
            .seconds
        };
        let sequential = run(1);
        let overlapped = run(2);
        assert!(
            overlapped < sequential * 0.7,
            "inflight=2 {overlapped:.1}s should overlap inflight=1 {sequential:.1}s"
        );
    }

    #[test]
    fn report_counts_processes() {
        let compiled = compile(
            SORT,
            &PashConfig {
                width: 8,
                ..Default::default()
            },
        )
        .expect("compile");
        let r = simulate_program(
            &compiled.plan,
            &sizes(10.0),
            0.0,
            &CostModel::default(),
            &SimConfig::default(),
        );
        // 8 tr + 8 sort + 7 agg + 14 eager (§6.1).
        assert_eq!(r.processes, 37);
    }

    fn recovery(fp: &FaultProfile) -> RecoveryReport {
        let par = compile(
            GREP,
            &PashConfig {
                width: 4,
                ..Default::default()
            },
        )
        .expect("compile par");
        let seq = compile(
            GREP,
            &PashConfig {
                width: 1,
                ..Default::default()
            },
        )
        .expect("compile seq");
        simulate_recovery(
            &par.plan,
            &seq.plan,
            &sizes(100.0),
            0.0,
            &CostModel::default(),
            &SimConfig::default(),
            fp,
        )
    }

    #[test]
    fn no_fault_profile_costs_the_parallel_run() {
        let r = recovery(&FaultProfile {
            retries: 0,
            fallback: false,
            ..Default::default()
        });
        assert!(r.wasted_seconds == 0.0);
        assert!((r.total_seconds - r.parallel_seconds).abs() < 1e-9);
        assert!((r.overhead_x - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fallback_episode_costs_retries_plus_sequential() {
        let fp = FaultProfile::default();
        let r = recovery(&fp);
        // Three doomed attempts (initial + 2 retries) at half the
        // parallel runtime each, plus backoff, plus the sequential
        // re-execution.
        let expected =
            3.0 * 0.5 * r.parallel_seconds + fp.backoff_base * 3.0 + r.sequential_seconds;
        assert!(
            (r.total_seconds - expected).abs() < 1e-6,
            "total {:.3} != expected {:.3}",
            r.total_seconds,
            expected
        );
        assert!(r.overhead_x > 1.0);
    }

    #[test]
    fn transient_fault_is_cheaper_than_fallback() {
        let transient = recovery(&FaultProfile {
            retries: 1,
            fallback: false,
            ..Default::default()
        });
        let persistent = recovery(&FaultProfile {
            retries: 1,
            fallback: true,
            ..Default::default()
        });
        assert!(
            transient.total_seconds < persistent.total_seconds,
            "transient {:.2}s !< persistent {:.2}s",
            transient.total_seconds,
            persistent.total_seconds
        );
    }

    #[test]
    fn recovery_cost_grows_with_retry_budget() {
        let r1 = recovery(&FaultProfile {
            retries: 1,
            ..Default::default()
        });
        let r4 = recovery(&FaultProfile {
            retries: 4,
            ..Default::default()
        });
        assert!(r4.total_seconds > r1.total_seconds);
        assert!(r4.wasted_seconds > r1.wasted_seconds);
    }

    #[test]
    fn sim_backend_trait_runs_plans() {
        let compiled = compile(
            SORT,
            &PashConfig {
                width: 4,
                ..Default::default()
            },
        )
        .expect("compile");
        let sizes = sizes(10.0);
        let cm = CostModel::default();
        let cfg = SimConfig::default();
        let mut be = SimBackend {
            sizes: &sizes,
            stdin_bytes: 0.0,
            cost: &cm,
            cfg: &cfg,
        };
        assert_eq!(be.name(), "sim");
        let report = be.run(&compiled.plan).expect("simulate");
        assert!(report.seconds > 0.0);
        assert!(report.processes > 4);
    }
}
