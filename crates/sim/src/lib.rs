//! Performance-shape simulator for the PaSh reproduction.
//!
//! This container has a single CPU core, so the paper's wall-clock
//! speedups cannot be reproduced directly. Following the substitution
//! rule of DESIGN.md, this crate simulates compiled programs on a
//! configurable C-core machine with disk and network bandwidth
//! ceilings, pipe back-pressure, blocking commands, eager buffering,
//! early-exit cancellation, and process startup costs — the mechanisms
//! behind every performance figure in §6.
//!
//! Correctness is *not* simulated: the `pash-runtime` crate executes
//! the same compiled programs for real and checks byte-identical
//! output.
//!
//! # Examples
//!
//! ```
//! use pash_core::compile::PashConfig;
//! use pash_sim::{simulated_speedup, CostModel, SimConfig};
//!
//! let sizes = [("in.txt".to_string(), 50e6)].into_iter().collect();
//! let s = simulated_speedup(
//!     "cat in.txt | tr A-Z a-z | grep '(a|b)+(c|d)*(ef|gh)+xy' > o",
//!     &PashConfig { width: 16, ..Default::default() },
//!     &sizes, &CostModel::default(), &SimConfig::default(),
//! ).unwrap();
//! assert!(s > 4.0);
//! ```

pub mod cost;
pub mod engine;

pub use cost::{CostModel, Discipline, Profile, Resource};
pub use engine::{
    simulate_program, simulate_recovery, simulate_region, simulate_remote_recovery, FaultProfile,
    InputSizes, RecoveryReport, RemoteProfile, RemoteRecoveryReport, SimBackend, SimConfig,
    SimReport,
};

use pash_core::compile::{compile_cached, PashConfig};
use pash_core::optimize::CandidatePricer;
use pash_core::plan::RegionPlan;

/// The simulator as a candidate pricer for the adaptive optimizer
/// (`pash_core::optimize`): a region candidate's price is its
/// simulated wall-clock seconds under this pricer's cost model and
/// machine. Calibrate the [`CostModel`] with measured rates from the
/// runtime's profile store to make the pricing profile-guided.
#[derive(Debug, Clone)]
pub struct SimPricer {
    /// Command cost model (priors, optionally calibrated).
    pub cost: CostModel,
    /// Simulated machine.
    pub sim: SimConfig,
    /// Input file sizes in bytes, by path.
    pub sizes: InputSizes,
    /// Bytes arriving on the program's stdin.
    pub stdin_bytes: f64,
}

impl SimPricer {
    /// A pricer over the default 64-core machine.
    pub fn new(cost: CostModel, sizes: InputSizes) -> SimPricer {
        SimPricer {
            cost,
            sim: SimConfig::default(),
            sizes,
            stdin_bytes: 0.0,
        }
    }
}

impl CandidatePricer for SimPricer {
    fn price_region(&self, r: &RegionPlan) -> f64 {
        simulate_region(r, &self.sizes, self.stdin_bytes, &self.cost, &self.sim).seconds
    }
}

/// Compiles a script (through the memoized compile cache) and
/// simulates its execution plan.
pub fn simulate_compiled(
    src: &str,
    cfg: &PashConfig,
    sizes: &InputSizes,
    cm: &CostModel,
    sim: &SimConfig,
) -> Result<SimReport, pash_core::Error> {
    let compiled = compile_cached(src, cfg)?;
    Ok(simulate_program(&compiled.plan, sizes, 0.0, cm, sim))
}

/// Compiles a script at its configured width and at width 1, then
/// prices a fault-recovery episode between the two plans.
pub fn simulate_recovery_compiled(
    src: &str,
    cfg: &PashConfig,
    sizes: &InputSizes,
    cm: &CostModel,
    sim: &SimConfig,
    fp: &FaultProfile,
) -> Result<RecoveryReport, pash_core::Error> {
    let par = compile_cached(src, cfg)?;
    let seq = compile_cached(
        src,
        &PashConfig {
            width: 1,
            ..cfg.clone()
        },
    )?;
    Ok(simulate_recovery(
        &par.plan, &seq.plan, sizes, 0.0, cm, sim, fp,
    ))
}

/// Compiles a script at its configured width and prices the remote
/// backend's recovery ladder over the resulting plan.
pub fn simulate_remote_recovery_compiled(
    src: &str,
    cfg: &PashConfig,
    sizes: &InputSizes,
    cm: &CostModel,
    sim: &SimConfig,
    rp: &RemoteProfile,
) -> Result<RemoteRecoveryReport, pash_core::Error> {
    let par = compile_cached(src, cfg)?;
    Ok(simulate_remote_recovery(&par.plan, sizes, 0.0, cm, sim, rp))
}

/// Simulated speedup of a configuration over sequential execution.
pub fn simulated_speedup(
    src: &str,
    cfg: &PashConfig,
    sizes: &InputSizes,
    cm: &CostModel,
    sim: &SimConfig,
) -> Result<f64, pash_core::Error> {
    let seq_cfg = PashConfig {
        width: 1,
        ..cfg.clone()
    };
    let seq = simulate_compiled(src, &seq_cfg, sizes, cm, sim)?;
    let par = simulate_compiled(src, cfg, sizes, cm, sim)?;
    Ok(seq.seconds / par.seconds)
}
