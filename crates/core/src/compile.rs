//! Top-level compiler API: script in, parallel script + regions out.

use std::time::{Duration, Instant};

use pash_parser::expand::StaticEnv;

use crate::annot::stdlib::AnnotationLibrary;
use crate::backend::{emit_program, EmitConfig};
use crate::dfg::transform::{parallelize, AggTreeShape, EagerPolicy, SplitPolicy, TransformConfig};
use crate::dfg::DfgStats;
use crate::frontend::{translate, FrontendOptions, TranslatedProgram};
use crate::Error;

/// Compiler configuration (one per PaSh invocation).
#[derive(Debug, Clone)]
pub struct PashConfig {
    /// Parallelism width (the paper sweeps 2–64).
    pub width: usize,
    /// Split-node policy (Fig. 7's `Split` / `B.Split` axis).
    pub split: SplitPolicy,
    /// Eager-relay policy (Fig. 7's `Eager` axis).
    pub eager: EagerPolicy,
    /// Aggregation-tree shape (binary matches the paper's counts).
    pub agg_tree: AggTreeShape,
    /// Unroll static `for` loops (per-iteration compilation).
    pub unroll_for: bool,
    /// Compile-time-known variables.
    pub env: StaticEnv,
}

impl Default for PashConfig {
    fn default() -> Self {
        PashConfig {
            width: 2,
            split: SplitPolicy::Off,
            eager: EagerPolicy::Full,
            agg_tree: AggTreeShape::Binary,
            unroll_for: true,
            env: StaticEnv::new(),
        }
    }
}

impl PashConfig {
    /// The paper's best configuration at a given width: eager on,
    /// input-aware split on.
    pub fn best(width: usize) -> Self {
        PashConfig {
            width,
            split: SplitPolicy::Sized,
            ..Default::default()
        }
    }
}

/// Compilation statistics (Tab. 2's `#Nodes` and `Compile time`).
#[derive(Debug, Clone, Default)]
pub struct CompileStats {
    /// Number of DFG regions.
    pub regions: usize,
    /// Aggregate node counts over all regions (after transformation).
    pub nodes: DfgStats,
    /// Wall-clock compilation time.
    pub compile_time: Duration,
}

/// A compiled program.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The translated program with transformed regions.
    pub program: TranslatedProgram,
    /// The emitted POSIX script.
    pub script: String,
    /// Statistics.
    pub stats: CompileStats,
}

/// Compiles a script with the standard annotation library.
pub fn compile(src: &str, cfg: &PashConfig) -> Result<Compiled, Error> {
    compile_with_library(src, cfg, AnnotationLibrary::standard())
}

/// Compiles a script with a custom annotation library.
pub fn compile_with_library(
    src: &str,
    cfg: &PashConfig,
    lib: &AnnotationLibrary,
) -> Result<Compiled, Error> {
    let start = Instant::now();
    let prog = pash_parser::parse(src)?;
    let mut tp = translate(
        &prog,
        lib,
        &FrontendOptions {
            env: cfg.env.clone(),
            unroll_for: cfg.unroll_for,
        },
    )?;
    let tcfg = TransformConfig {
        width: cfg.width,
        split: cfg.split,
        eager: cfg.eager,
        agg_tree: cfg.agg_tree,
    };
    let mut nodes = DfgStats::default();
    let mut regions = 0;
    for g in tp.regions_mut() {
        parallelize(g, &tcfg);
        g.validate()?;
        let s = g.stats();
        nodes.commands += s.commands;
        nodes.cats += s.cats;
        nodes.splits += s.splits;
        nodes.relays += s.relays;
        nodes.aggregates += s.aggregates;
        regions += 1;
    }
    let script = emit_program(&tp, &EmitConfig::default());
    Ok(Compiled {
        program: tp,
        script,
        stats: CompileStats {
            regions,
            nodes,
            compile_time: start.elapsed(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_compile() {
        let out = compile(
            "cat in.txt | tr A-Z a-z | sort > out.txt",
            &PashConfig {
                width: 16,
                ..Default::default()
            },
        )
        .expect("compile");
        assert_eq!(out.stats.regions, 1);
        // Tab. 2's Sort row shape at 16×: 77 nodes.
        assert_eq!(out.stats.nodes.total(), 16 + 16 + 15 + 30);
        assert!(out.script.contains("mkfifo"));
        assert!(out.stats.compile_time.as_secs() < 5);
    }

    #[test]
    fn default_config_is_conservative() {
        let cfg = PashConfig::default();
        assert_eq!(cfg.width, 2);
        assert!(matches!(cfg.split, SplitPolicy::Off));
        assert!(matches!(cfg.eager, EagerPolicy::Full));
    }

    #[test]
    fn best_config_enables_split() {
        let cfg = PashConfig::best(16);
        assert!(matches!(cfg.split, SplitPolicy::Sized));
    }

    #[test]
    fn parse_errors_propagate() {
        assert!(compile("cat |", &PashConfig::default()).is_err());
    }

    #[test]
    fn width_one_still_compiles() {
        let out = compile(
            "grep x in.txt > out.txt",
            &PashConfig {
                width: 1,
                ..Default::default()
            },
        )
        .expect("compile");
        assert_eq!(out.stats.nodes.commands, 1);
    }

    #[test]
    fn env_parameterizes_compilation() {
        let mut env = StaticEnv::new();
        env.set("f", "data.txt");
        let out = compile(
            "grep x $f > out.txt",
            &PashConfig {
                width: 2,
                env,
                ..Default::default()
            },
        )
        .expect("compile");
        assert_eq!(out.stats.regions, 1);
        assert!(out.script.contains("data.txt"));
    }
}
