//! Top-level compiler API: script in, execution plan + parallel
//! script + regions out, with an optional compile-result cache.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use pash_parser::expand::StaticEnv;

use crate::annot::stdlib::AnnotationLibrary;
use crate::backend::{emit_program, EmitConfig};
use crate::dfg::transform::{parallelize, AggTreeShape, EagerPolicy, SplitPolicy, TransformConfig};
use crate::dfg::DfgStats;
use crate::frontend::{translate, FrontendOptions, TranslatedProgram};
use crate::plan::{lower, ExecutionPlan};
use crate::Error;

/// A per-region parallelization shape: the two axes the adaptive
/// optimizer chooses per data-flow region (eager policy and
/// aggregation-tree shape stay global — they do not change the
/// region's data semantics, only its buffering and merge fan-in).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionShape {
    /// Parallelism width for this region.
    pub width: usize,
    /// Split policy for this region.
    pub split: SplitPolicy,
}

/// Compiler configuration (one per PaSh invocation).
#[derive(Debug, Clone)]
pub struct PashConfig {
    /// Parallelism width (the paper sweeps 2–64).
    pub width: usize,
    /// Split-node policy (Fig. 7's `Split` / `B.Split` axis).
    pub split: SplitPolicy,
    /// Eager-relay policy (Fig. 7's `Eager` axis).
    pub eager: EagerPolicy,
    /// Aggregation-tree shape (binary matches the paper's counts).
    pub agg_tree: AggTreeShape,
    /// Unroll static `for` loops (per-iteration compilation).
    pub unroll_for: bool,
    /// Compile-time-known variables.
    pub env: StaticEnv,
    /// Per-region overrides of `width`/`split`, indexed by region
    /// position (the order `TranslatedProgram::regions_mut` yields,
    /// which is also plan-step order). Regions beyond the vector's
    /// length — and all regions when it is empty, the default — use
    /// the global `width`/`split`. Filled in by the adaptive
    /// optimizer; hand-set configs normally leave it empty.
    pub per_region: Vec<RegionShape>,
}

impl Default for PashConfig {
    fn default() -> Self {
        PashConfig {
            width: 2,
            split: SplitPolicy::Off,
            eager: EagerPolicy::Full,
            agg_tree: AggTreeShape::Binary,
            unroll_for: true,
            env: StaticEnv::new(),
            per_region: Vec::new(),
        }
    }
}

impl PashConfig {
    /// The paper's best configuration at a given width: eager on,
    /// input-aware split on.
    pub fn best(width: usize) -> Self {
        PashConfig {
            width,
            split: SplitPolicy::Sized,
            ..Default::default()
        }
    }

    /// The order-aware round-robin configuration (`--r_split`):
    /// capable stages consume tagged round-robin blocks with order
    /// restored by `pash-agg-reorder`; the rest keep the `best`
    /// (input-aware segment) behaviour.
    pub fn round_robin(width: usize) -> Self {
        PashConfig {
            width,
            split: SplitPolicy::RoundRobin,
            ..Default::default()
        }
    }

    /// A deterministic textual key for this configuration — combined
    /// with the source text it identifies a compilation (the plan
    /// lowering is deterministic, so equal keys mean equal plans).
    pub fn cache_key(&self) -> String {
        let mut key = format!(
            "w={};split={:?};eager={:?};agg={:?};unroll={}",
            self.width, self.split, self.eager, self.agg_tree, self.unroll_for
        );
        for (name, value) in self.env.sorted_vars() {
            // Both sides escaped: an unescaped name could smuggle the
            // `;env ` separator and collide two distinct configs.
            key.push_str(&format!(";env {name:?}={value:?}"));
        }
        // Appended only when present so every pre-existing key stays
        // byte-stable (the on-disk plan cache outlives releases).
        for (i, shape) in self.per_region.iter().enumerate() {
            key.push_str(&format!(";r{i}=w{}:{:?}", shape.width, shape.split));
        }
        key
    }
}

/// Compilation statistics (Tab. 2's `#Nodes` and `Compile time`).
#[derive(Debug, Clone, Default)]
pub struct CompileStats {
    /// Number of DFG regions.
    pub regions: usize,
    /// Aggregate node counts over all regions (after transformation).
    pub nodes: DfgStats,
    /// Wall-clock compilation time.
    pub compile_time: Duration,
    /// Process-wide [`compile_cached`] hits at the time this compile
    /// finished.
    pub cache_hits: u64,
    /// Process-wide [`compile_cached`] misses at the time this compile
    /// finished.
    pub cache_misses: u64,
    /// Process-wide [`compile_cached`] LRU evictions at the time this
    /// compile finished.
    pub cache_evictions: u64,
}

/// A compiled program.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The translated program with transformed regions (the DFG view;
    /// kept for inspection and graph statistics).
    pub program: TranslatedProgram,
    /// The lowered, backend-neutral execution plan — what every
    /// execution engine consumes.
    pub plan: ExecutionPlan,
    /// The emitted POSIX script (the shell backend's rendering of the
    /// plan).
    pub script: String,
    /// Statistics.
    pub stats: CompileStats,
}

/// Compiles a script with the standard annotation library.
pub fn compile(src: &str, cfg: &PashConfig) -> Result<Compiled, Error> {
    compile_with_library(src, cfg, AnnotationLibrary::standard())
}

/// Compiles a script with a custom annotation library.
pub fn compile_with_library(
    src: &str,
    cfg: &PashConfig,
    lib: &AnnotationLibrary,
) -> Result<Compiled, Error> {
    let start = Instant::now();
    let prog = pash_parser::parse(src)?;
    let mut tp = translate(
        &prog,
        lib,
        &FrontendOptions {
            env: cfg.env.clone(),
            unroll_for: cfg.unroll_for,
        },
    )?;
    let mut nodes = DfgStats::default();
    let mut regions = 0;
    for (i, g) in tp.regions_mut().enumerate() {
        let shape = cfg.per_region.get(i);
        let tcfg = TransformConfig {
            width: shape.map_or(cfg.width, |s| s.width),
            split: shape.map_or(cfg.split, |s| s.split),
            eager: cfg.eager,
            agg_tree: cfg.agg_tree,
        };
        parallelize(g, &tcfg);
        g.validate()?;
        let s = g.stats();
        nodes.commands += s.commands;
        nodes.cats += s.cats;
        nodes.splits += s.splits;
        nodes.relays += s.relays;
        nodes.aggregates += s.aggregates;
        regions += 1;
    }
    let plan = lower(&tp);
    let script = emit_program(&plan, &EmitConfig::default());
    let cache = cache_stats();
    Ok(Compiled {
        program: tp,
        plan,
        script,
        stats: CompileStats {
            regions,
            nodes,
            compile_time: start.elapsed(),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
        },
    })
}

/// Process-wide compile-cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Entries dropped to stay within the LRU capacity.
    pub evictions: u64,
}

static CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static CACHE_MISSES: AtomicU64 = AtomicU64::new(0);
static CACHE_EVICTIONS: AtomicU64 = AtomicU64::new(0);

/// Default number of memoized compilations kept in memory. A compiled
/// plan for a typical script is a few tens of KiB, so the default cap
/// bounds the cache at a few MiB while still covering whole benchmark
/// suites and width sweeps.
pub const DEFAULT_CACHE_CAPACITY: usize = 256;

/// A bounded LRU map: values are stamped with a logical clock on every
/// touch and the stalest entry is dropped when the map outgrows its
/// capacity. Eviction is O(n) over the map, but runs only on insert
/// beyond capacity — irrelevant next to a compile.
struct Lru<V> {
    map: HashMap<String, (V, u64)>,
    tick: u64,
    capacity: usize,
}

impl<V> Lru<V> {
    fn new(capacity: usize) -> Self {
        Lru {
            map: HashMap::new(),
            tick: 0,
            capacity: capacity.max(1),
        }
    }

    /// Looks up and freshens an entry.
    fn get(&mut self, key: &str) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(key) {
            Some((v, stamp)) => {
                *stamp = tick;
                Some(v)
            }
            None => None,
        }
    }

    /// Inserts an entry (first write wins, like `entry().or_insert`);
    /// returns how many entries were evicted to make room.
    fn insert(&mut self, key: String, value: V) -> u64 {
        self.tick += 1;
        let tick = self.tick;
        self.map.entry(key).or_insert((value, tick));
        let mut evicted = 0;
        while self.map.len() > self.capacity {
            if let Some(stalest) = self
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&stalest);
                evicted += 1;
            } else {
                break;
            }
        }
        evicted
    }
}

fn cache() -> &'static Mutex<Lru<Arc<Compiled>>> {
    static CACHE: OnceLock<Mutex<Lru<Arc<Compiled>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(Lru::new(DEFAULT_CACHE_CAPACITY)))
}

/// Sets the [`compile_cached`] capacity (entries; clamped to ≥ 1).
/// Shrinking below the current population evicts stalest-first on the
/// next insert.
pub fn set_cache_capacity(entries: usize) {
    cache().lock().expect("compile cache lock").capacity = entries.max(1);
}

/// Current process-wide [`compile_cached`] hit/miss/eviction counters.
pub fn cache_stats() -> CacheStats {
    CacheStats {
        hits: CACHE_HITS.load(Ordering::Relaxed),
        misses: CACHE_MISSES.load(Ordering::Relaxed),
        evictions: CACHE_EVICTIONS.load(Ordering::Relaxed),
    }
}

/// Compiles with the standard library, memoizing results by
/// `(source, configuration)` in a bounded LRU (default
/// [`DEFAULT_CACHE_CAPACITY`] entries; tune with
/// [`set_cache_capacity`]).
///
/// Compilation is deterministic (see the CI plan-determinism smoke
/// step), so a cache hit returns the *same* `Arc<Compiled>` — plan,
/// script, and stats included — without re-running the front-end or
/// transformations. Errors are not cached. Hit/miss/eviction counters
/// are surfaced via [`cache_stats`] and embedded in every
/// [`CompileStats`].
/// Looks a compilation up in the [`compile_cached`] LRU without
/// compiling on a miss. A hit counts toward the hit counter (and
/// freshens the entry); a miss counts nothing — the caller is expected
/// to consult a colder tier (e.g. the service's on-disk plan cache)
/// before paying for a compile, at which point [`compile_cached`]
/// records the miss.
pub fn compile_cache_peek(src: &str, cfg: &PashConfig) -> Option<Arc<Compiled>> {
    let key = format!("{}\u{0}{src}", cfg.cache_key());
    let hit = cache()
        .lock()
        .expect("compile cache lock")
        .get(&key)
        .cloned();
    if hit.is_some() {
        CACHE_HITS.fetch_add(1, Ordering::Relaxed);
    }
    hit
}

pub fn compile_cached(src: &str, cfg: &PashConfig) -> Result<Arc<Compiled>, Error> {
    let key = format!("{}\u{0}{src}", cfg.cache_key());
    // Fast path: serve a hit without compiling.
    if let Some(hit) = cache().lock().expect("compile cache lock").get(&key) {
        CACHE_HITS.fetch_add(1, Ordering::Relaxed);
        return Ok(hit.clone());
    }
    CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
    let compiled = Arc::new(compile(src, cfg)?);
    let evicted = cache()
        .lock()
        .expect("compile cache lock")
        .insert(key, compiled.clone());
    if evicted > 0 {
        CACHE_EVICTIONS.fetch_add(evicted, Ordering::Relaxed);
    }
    Ok(compiled)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_compile() {
        let out = compile(
            "cat in.txt | tr A-Z a-z | sort > out.txt",
            &PashConfig {
                width: 16,
                ..Default::default()
            },
        )
        .expect("compile");
        assert_eq!(out.stats.regions, 1);
        // Tab. 2's Sort row shape at 16×: 77 nodes.
        assert_eq!(out.stats.nodes.total(), 16 + 16 + 15 + 30);
        assert!(out.script.contains("mkfifo"));
        assert!(out.stats.compile_time.as_secs() < 5);
        // The plan mirrors the transformed graph.
        assert_eq!(out.plan.region_count(), 1);
        let region = out.plan.regions().next().expect("region");
        assert_eq!(region.nodes.len(), out.stats.nodes.total());
    }

    #[test]
    fn default_config_is_conservative() {
        let cfg = PashConfig::default();
        assert_eq!(cfg.width, 2);
        assert!(matches!(cfg.split, SplitPolicy::Off));
        assert!(matches!(cfg.eager, EagerPolicy::Full));
    }

    #[test]
    fn best_config_enables_split() {
        let cfg = PashConfig::best(16);
        assert!(matches!(cfg.split, SplitPolicy::Sized));
    }

    #[test]
    fn parse_errors_propagate() {
        assert!(compile("cat |", &PashConfig::default()).is_err());
    }

    #[test]
    fn width_one_still_compiles() {
        let out = compile(
            "grep x in.txt > out.txt",
            &PashConfig {
                width: 1,
                ..Default::default()
            },
        )
        .expect("compile");
        assert_eq!(out.stats.nodes.commands, 1);
    }

    #[test]
    fn env_parameterizes_compilation() {
        let mut env = StaticEnv::new();
        env.set("f", "data.txt");
        let out = compile(
            "grep x $f > out.txt",
            &PashConfig {
                width: 2,
                env,
                ..Default::default()
            },
        )
        .expect("compile");
        assert_eq!(out.stats.regions, 1);
        assert!(out.script.contains("data.txt"));
    }

    #[test]
    fn cached_compile_returns_same_arc() {
        let cfg = PashConfig {
            width: 7,
            ..Default::default()
        };
        let src = "cat cache-test.txt | tr A-Z a-z | sort > o";
        let before = cache_stats();
        let a = compile_cached(src, &cfg).expect("compile");
        let b = compile_cached(src, &cfg).expect("compile");
        assert!(Arc::ptr_eq(&a, &b), "hit must return the cached Arc");
        let after = cache_stats();
        assert!(after.hits >= before.hits + 1);
        assert!(after.misses >= before.misses + 1);
    }

    #[test]
    fn cache_distinguishes_configs_and_env() {
        let src = "grep x cache-env.txt > o";
        let a = compile_cached(
            src,
            &PashConfig {
                width: 3,
                ..Default::default()
            },
        )
        .expect("compile");
        let b = compile_cached(
            src,
            &PashConfig {
                width: 5,
                ..Default::default()
            },
        )
        .expect("compile");
        assert!(!Arc::ptr_eq(&a, &b), "different width must miss");
        let mut env = StaticEnv::new();
        env.set("p", "q");
        let c = compile_cached(
            src,
            &PashConfig {
                width: 3,
                env,
                ..Default::default()
            },
        )
        .expect("compile");
        assert!(!Arc::ptr_eq(&a, &c), "different env must miss");
    }

    #[test]
    fn cache_key_is_deterministic_across_env_insertion_order() {
        let mut e1 = StaticEnv::new();
        e1.set("a", "1");
        e1.set("b", "2");
        let mut e2 = StaticEnv::new();
        e2.set("b", "2");
        e2.set("a", "1");
        let c1 = PashConfig {
            env: e1,
            ..Default::default()
        };
        let c2 = PashConfig {
            env: e2,
            ..Default::default()
        };
        assert_eq!(c1.cache_key(), c2.cache_key());
    }

    #[test]
    fn cache_key_escapes_hostile_env_names() {
        // Without escaping, a name containing the `;env ` separator
        // could make two distinct configs collide.
        let mut honest = StaticEnv::new();
        honest.set("a", "1");
        honest.set("b", "2");
        let mut hostile = StaticEnv::new();
        hostile.set("a\"=\"1\";env \"b", "2");
        let k1 = PashConfig {
            env: honest,
            ..Default::default()
        }
        .cache_key();
        let k2 = PashConfig {
            env: hostile,
            ..Default::default()
        }
        .cache_key();
        assert_ne!(k1, k2);
    }

    #[test]
    fn errors_are_not_cached() {
        let cfg = PashConfig::default();
        assert!(compile_cached("cat |", &cfg).is_err());
        assert!(compile_cached("cat |", &cfg).is_err());
    }

    #[test]
    fn lru_evicts_stalest_first() {
        let mut lru = Lru::new(2);
        assert_eq!(lru.insert("a".into(), 1), 0);
        assert_eq!(lru.insert("b".into(), 2), 0);
        // Touch `a`, making `b` the stalest.
        assert_eq!(lru.get("a"), Some(&1));
        assert_eq!(lru.insert("c".into(), 3), 1);
        assert_eq!(lru.get("b"), None, "stalest entry evicted");
        assert_eq!(lru.get("a"), Some(&1), "freshened entry survives");
        assert_eq!(lru.get("c"), Some(&3));
    }

    #[test]
    fn lru_first_write_wins_and_capacity_clamped() {
        let mut lru = Lru::new(0); // Clamped to 1.
        lru.insert("k".into(), 10);
        lru.insert("k".into(), 99);
        assert_eq!(lru.get("k"), Some(&10), "or_insert semantics");
        assert_eq!(lru.map.len(), 1);
        lru.insert("l".into(), 20);
        assert_eq!(lru.map.len(), 1, "capacity 1 holds one entry");
    }

    #[test]
    fn lru_shrinking_capacity_evicts_down() {
        let mut lru = Lru::new(8);
        for i in 0..8 {
            lru.insert(format!("k{i}"), i);
        }
        lru.capacity = 3;
        // The next insert trims the map down to the new bound.
        let evicted = lru.insert("fresh".into(), 100);
        assert_eq!(evicted, 6);
        assert_eq!(lru.map.len(), 3);
        assert_eq!(lru.get("fresh"), Some(&100));
    }
}
