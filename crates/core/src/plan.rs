//! The backend-neutral execution plan (lowered IR).
//!
//! The compiler's [`crate::frontend::TranslatedProgram`] is a sequence
//! of order-aware DFGs — the right representation for transformation,
//! but an awkward one for execution: every consumer (shell emission,
//! the threaded executor, the simulator) used to re-derive the same
//! facts from it ad hoc — which edges are internal pipes vs. boundary
//! files, which argv words are stream markers, which input routes via
//! stdin, which nodes a region must wait on.
//!
//! [`lower`] computes those facts once and produces an
//! [`ExecutionPlan`]: a flat, topologically-ordered IR in which
//!
//! * every node carries a resolved [`PlanOp`] — argv with explicit
//!   stream roles ([`Arg::Stream`]) and the set of inputs routed via
//!   stdin;
//! * every edge carries a resolved [`EndpointKind`] (internal pipe,
//!   boundary stdin, stdout sink, input/output file, file segment);
//! * every region records its output-producer set, and the program
//!   records guard structure and whether shell steps touch the data
//!   path.
//!
//! Execution engines implement the [`Backend`] trait over this plan
//! (`ShellEmitter` in this crate, `ThreadedBackend` in `pash-runtime`,
//! `SimBackend` in `pash-sim`); future process/remote backends,
//! sharding, and compile-result caching all key off the same artifact
//! — [`ExecutionPlan::dump`] is deterministic, so the plan can be
//! hashed, cached, or shipped.

use crate::annot::parse_stream_marker;
use crate::dfg::{Dfg, EagerKind, NodeKind, SplitKind, StreamSpec};
use crate::frontend::{Step, TranslatedProgram};
use pash_parser::ast::AndOrOp;

/// Index of a node within its region plan (dense, topological order).
pub type PlanNodeId = usize;
/// Index of an edge within its region plan (dense).
pub type PlanEdgeId = usize;

/// What an edge resolves to at execution time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EndpointKind {
    /// An internal pipe: both endpoints are live region nodes.
    Pipe,
    /// A region-boundary pipe input. Exactly one such edge per region
    /// is `primary` (the first in edge order): it receives the
    /// program's stdin; the rest read empty streams.
    StdinPipe {
        /// Receives the region's stdin bytes.
        primary: bool,
    },
    /// A region-boundary pipe output: bytes go to the program's stdout.
    StdoutPipe,
    /// A named input file read by a region node.
    InputFile(String),
    /// A named output file written by a region node.
    OutputFile(String),
    /// A line-aligned byte-range segment of an input file: part `part`
    /// of `of` (§5.2, input-aware split — no splitter process needed).
    InputSegment {
        /// Path of the underlying file.
        path: String,
        /// 0-based segment index.
        part: usize,
        /// Total number of segments.
        of: usize,
    },
    /// An edge with no execution-time transport (defensive; lowering
    /// does not produce these for valid graphs).
    Detached,
}

/// A plan edge: resolved endpoint kind plus dense node endpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanEdge {
    /// Resolved endpoint kind.
    pub kind: EndpointKind,
    /// Producing node, if any.
    pub from: Option<PlanNodeId>,
    /// Consuming node, if any.
    pub to: Option<PlanNodeId>,
}

/// One argv word of an [`PlanOp::Exec`] node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Arg {
    /// A literal word, passed through (and quoted by shell backends).
    Lit(String),
    /// The k-th input edge of the node, named in argument position
    /// (the lowered form of a stream marker).
    Stream(usize),
}

impl Arg {
    /// The literal text, if this is a literal word.
    pub fn as_lit(&self) -> Option<&str> {
        match self {
            Arg::Lit(s) => Some(s),
            Arg::Stream(_) => None,
        }
    }
}

/// Which splitter implementation a [`PlanOp::Split`] node runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitMode {
    /// Count-then-scatter: consumes the whole input, splits evenly.
    General,
    /// Input size known beforehand: streams without a pre-pass.
    Sized,
    /// Round-robin block distribution (`r_split`): streams fixed-size
    /// line-aligned blocks to outputs in rotation. `framed` stamps
    /// each block with a sequence tag for downstream reordering.
    RoundRobin {
        /// Emit tagged frames (true) or bare blocks (false).
        framed: bool,
    },
}

/// What a plan node executes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanOp {
    /// Run a command with the given argv. Inputs referenced by
    /// [`Arg::Stream`] are named in place; the node's `stdin_inputs`
    /// feed its standard input in order.
    Exec {
        /// Resolved argv (command name first).
        argv: Vec<Arg>,
        /// The node consumes and produces tagged round-robin frames:
        /// the executor runs the command once per input frame and
        /// emits one output frame per input frame under the same tag
        /// (stateless law: per-block outputs concatenate).
        framed: bool,
    },
    /// Ordered concatenation of all inputs.
    Cat,
    /// Scatter the single input across all outputs.
    Split {
        /// Which splitter implementation runs.
        mode: SplitMode,
    },
    /// Identity relay (the paper's `eager`).
    Relay {
        /// Bounded intermediate buffer instead of unbounded.
        blocking: bool,
    },
    /// A multi-input aggregation function (runtime command).
    Aggregate {
        /// Aggregator argv.
        argv: Vec<String>,
    },
}

impl PlanOp {
    /// Argv as plain strings, with stream references rendered as `-`
    /// (for display and cost modelling). `None` for non-exec ops.
    pub fn exec_argv_lossy(&self) -> Option<Vec<String>> {
        match self {
            PlanOp::Exec { argv, .. } => Some(
                argv.iter()
                    .map(|a| match a {
                        Arg::Lit(s) => s.clone(),
                        Arg::Stream(_) => "-".to_string(),
                    })
                    .collect(),
            ),
            _ => None,
        }
    }

    /// A short display label.
    pub fn label(&self) -> String {
        match self {
            PlanOp::Exec { .. } => self.exec_argv_lossy().expect("exec").join(" "),
            PlanOp::Cat => "cat".to_string(),
            PlanOp::Split {
                mode: SplitMode::General,
            } => "split".to_string(),
            PlanOp::Split {
                mode: SplitMode::Sized,
            } => "split -sized".to_string(),
            PlanOp::Split {
                mode: SplitMode::RoundRobin { framed: true },
            } => "r_split".to_string(),
            PlanOp::Split {
                mode: SplitMode::RoundRobin { framed: false },
            } => "r_split -raw".to_string(),
            PlanOp::Relay { blocking: false } => "eager".to_string(),
            PlanOp::Relay { blocking: true } => "eager -blocking".to_string(),
            PlanOp::Aggregate { argv } => argv.join(" "),
        }
    }
}

/// A plan node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanNode {
    /// The operation.
    pub op: PlanOp,
    /// Input edges in consumption order.
    pub inputs: Vec<PlanEdgeId>,
    /// Output edges (exactly one except for split nodes).
    pub outputs: Vec<PlanEdgeId>,
    /// Positions in `inputs` that feed the node's standard input, in
    /// order. Empty for ops whose inputs are all named operands
    /// (`Cat`, `Aggregate`).
    pub stdin_inputs: Vec<usize>,
    /// Whether this node writes a region output (a backend must wait
    /// on exactly these nodes; §5.2's `wait $pash_out_pids`).
    pub output_producer: bool,
}

/// One argv word of a node spawned as a standalone OS process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpawnWord {
    /// Literal text (shell backends quote it).
    Lit(String),
    /// The transport name of the node's k-th input edge.
    In(usize),
    /// The transport name of the node's j-th output edge.
    Out(usize),
}

/// Which multi-call personality serves a spawned node.
///
/// Both map to the same dispatch table in practice (`pashc` also runs
/// the runtime subcommands), but backends keep the distinction so the
/// emitted artifacts stay overridable per role (`$PASHC` / `$PASH_RT`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpawnBin {
    /// A coreutils command (`$PASHC`).
    Coreutils,
    /// A runtime primitive — split/relay/aggregate (`$PASH_RT`).
    Runtime,
}

/// How to run one plan node as a standalone OS process: the argv
/// (with edge references still symbolic) plus stdin/stdout routing.
///
/// This is the single source of truth for per-node argv rendering —
/// the shell emitter renders it into script text and the process
/// backend renders it into a real `exec`, so the two cannot drift.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpawnSpec {
    /// The multi-call personality to invoke.
    pub bin: SpawnBin,
    /// Argv after the binary name (subcommand first).
    pub argv: Vec<SpawnWord>,
    /// Input position routed via the process's standard input, if any
    /// (at most one — further stdin inputs do not occur in lowered
    /// plans; ops with several inputs name them in argv instead).
    pub stdin_input: Option<usize>,
    /// Output position routed via the process's standard output, if
    /// any (`None` only for split nodes, which name their outputs).
    pub stdout_output: Option<usize>,
}

impl PlanNode {
    /// The node's standalone-process form.
    pub fn spawn_spec(&self) -> SpawnSpec {
        let stdin_input = self.stdin_inputs.first().copied();
        match &self.op {
            PlanOp::Exec { argv, framed } => SpawnSpec {
                bin: SpawnBin::Coreutils,
                // `--framed` rides ahead of the command name: the
                // multicall strips it as a leading redirection-style
                // flag and wraps the command in a per-frame loop.
                argv: framed
                    .then(|| SpawnWord::Lit("--framed".to_string()))
                    .into_iter()
                    .chain(argv.iter().map(|a| match a {
                        Arg::Lit(w) => SpawnWord::Lit(w.clone()),
                        Arg::Stream(k) => SpawnWord::In(*k),
                    }))
                    .collect(),
                stdin_input,
                stdout_output: Some(0),
            },
            PlanOp::Cat => SpawnSpec {
                bin: SpawnBin::Coreutils,
                argv: std::iter::once(SpawnWord::Lit("cat".to_string()))
                    .chain((0..self.inputs.len()).map(SpawnWord::In))
                    .collect(),
                stdin_input: None,
                stdout_output: Some(0),
            },
            PlanOp::Split { mode } => {
                let mut argv = match mode {
                    SplitMode::General => vec![SpawnWord::Lit("split".to_string())],
                    SplitMode::Sized => vec![
                        SpawnWord::Lit("split".to_string()),
                        SpawnWord::Lit("--sized".to_string()),
                    ],
                    SplitMode::RoundRobin { framed: true } => {
                        vec![SpawnWord::Lit("r_split".to_string())]
                    }
                    SplitMode::RoundRobin { framed: false } => vec![
                        SpawnWord::Lit("r_split".to_string()),
                        SpawnWord::Lit("--raw".to_string()),
                    ],
                };
                argv.extend((0..self.outputs.len()).map(SpawnWord::Out));
                SpawnSpec {
                    bin: SpawnBin::Runtime,
                    argv,
                    stdin_input,
                    stdout_output: None,
                }
            }
            PlanOp::Relay { blocking } => {
                let mut argv = vec![SpawnWord::Lit("eager".to_string())];
                if *blocking {
                    argv.push(SpawnWord::Lit("--blocking".to_string()));
                }
                SpawnSpec {
                    bin: SpawnBin::Runtime,
                    argv,
                    stdin_input,
                    stdout_output: Some(0),
                }
            }
            PlanOp::Aggregate { argv } => {
                // Inputs ride in `--in` redirections ahead of the
                // `agg` subcommand: the multicall then applies real
                // aggregator semantics. (Plain operand passing would
                // be ambiguous for re-applied commands — `head -n 3
                // f1 f2` takes three lines *per file*, an aggregator
                // takes three lines of the ordered concatenation.)
                let mut words = Vec::with_capacity(2 * self.inputs.len() + argv.len() + 1);
                for k in 0..self.inputs.len() {
                    words.push(SpawnWord::Lit("--in".to_string()));
                    words.push(SpawnWord::In(k));
                }
                words.push(SpawnWord::Lit("agg".to_string()));
                words.extend(argv.iter().map(|a| SpawnWord::Lit(a.clone())));
                SpawnSpec {
                    bin: SpawnBin::Runtime,
                    argv: words,
                    stdin_input: None,
                    stdout_output: Some(0),
                }
            }
        }
    }
}

/// One region, lowered: nodes in topological order, edges dense.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegionPlan {
    /// Nodes in topological (spawn) order.
    pub nodes: Vec<PlanNode>,
    /// Edges, densely indexed.
    pub edges: Vec<PlanEdge>,
    /// Whether a failed execution of this region may be re-run from
    /// scratch: every node is a pure stream transformation, so a
    /// retry that re-applies the region's outputs (stdout buffer,
    /// truncated output files) observes no state from the failed
    /// attempt. Lowering sets this; hand-built plans default to
    /// `false` (the conservative choice — the supervisor then never
    /// retries them).
    pub replayable: bool,
}

impl RegionPlan {
    /// Renders this region in the [`ExecutionPlan::dump`] text format
    /// (the `region …` header plus edge and node lines). Factored out
    /// so a region has a dump — and therefore a fingerprint — of its
    /// own: profile observations are keyed by `(region fingerprint,
    /// node id)`, which must not shift when unrelated steps of the
    /// surrounding plan change.
    pub fn dump_into(&self, out: &mut String) {
        out.push_str(&format!(
            "region nodes={} edges={} replayable={}\n",
            self.nodes.len(),
            self.edges.len(),
            self.replayable
        ));
        for (i, e) in self.edges.iter().enumerate() {
            let kind = match &e.kind {
                EndpointKind::Pipe => "pipe".to_string(),
                EndpointKind::StdinPipe { primary: true } => "stdin*".to_string(),
                EndpointKind::StdinPipe { primary: false } => "stdin".to_string(),
                EndpointKind::StdoutPipe => "stdout".to_string(),
                EndpointKind::InputFile(p) => format!("in:{p:?}"),
                EndpointKind::OutputFile(p) => format!("out:{p:?}"),
                EndpointKind::InputSegment { path, part, of } => {
                    format!("seg:{path:?}[{part}/{of}]")
                }
                EndpointKind::Detached => "detached".to_string(),
            };
            let from = e.from.map(|n| n.to_string()).unwrap_or_default();
            let to = e.to.map(|n| n.to_string()).unwrap_or_default();
            out.push_str(&format!("  e{i}: {kind} {from}->{to}\n"));
        }
        for (i, n) in self.nodes.iter().enumerate() {
            let op = match &n.op {
                PlanOp::Exec { argv, framed } => {
                    let words: Vec<String> = argv
                        .iter()
                        .map(|a| match a {
                            Arg::Lit(s) => format!("{s:?}"),
                            Arg::Stream(k) => format!("<in{k}>"),
                        })
                        .collect();
                    format!(
                        "exec {}{}",
                        words.join(" "),
                        if *framed { " framed" } else { "" }
                    )
                }
                PlanOp::Cat => "cat".to_string(),
                PlanOp::Split { mode } => match mode {
                    SplitMode::General => "split sized=false".to_string(),
                    SplitMode::Sized => "split sized=true".to_string(),
                    SplitMode::RoundRobin { framed } => {
                        format!("split rr framed={framed}")
                    }
                },
                PlanOp::Relay { blocking } => format!("relay blocking={blocking}"),
                PlanOp::Aggregate { argv } => {
                    let words: Vec<String> = argv.iter().map(|a| format!("{a:?}")).collect();
                    format!("agg {}", words.join(" "))
                }
            };
            let ins: Vec<String> = n.inputs.iter().map(|e| format!("e{e}")).collect();
            let outs: Vec<String> = n.outputs.iter().map(|e| format!("e{e}")).collect();
            let stdin: Vec<String> = n.stdin_inputs.iter().map(|k| k.to_string()).collect();
            out.push_str(&format!(
                "  n{i}: {op} [{}] stdin=[{}] -> [{}]{}\n",
                ins.join(","),
                stdin.join(","),
                outs.join(","),
                if n.output_producer { " producer" } else { "" }
            ));
        }
    }

    /// This region's slice of the deterministic dump text.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.dump_into(&mut out);
        out
    }

    /// A 64-bit FNV-1a fingerprint of this region alone — stable
    /// across changes to other steps of the surrounding plan. Profile
    /// observations are keyed by `(region fingerprint, node id)`.
    pub fn fingerprint(&self) -> u64 {
        fnv1a(self.dump().as_bytes())
    }

    /// Parses one region's [`RegionPlan::dump`] text back into a
    /// region — the wire format the remote backend ships a region
    /// over. Delegates to [`ExecutionPlan::parse_dump`] (so the text
    /// gets the same structural checks and [`RegionPlan::validate`]
    /// pass as a full plan) and requires the text to be exactly one
    /// region step.
    pub fn parse_dump(text: &str) -> Result<RegionPlan, String> {
        let plan = ExecutionPlan::parse_dump(&format!("plan v1\n{text}"))?;
        match <[PlanStep; 1]>::try_from(plan.steps) {
            Ok([PlanStep::Region(r)]) => Ok(r),
            Ok(_) => Err("expected a region step".to_string()),
            Err(steps) => Err(format!("expected exactly one region, got {}", steps.len())),
        }
    }

    /// Node ids that produce region outputs.
    pub fn output_producers(&self) -> impl Iterator<Item = PlanNodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.output_producer)
            .map(|(i, _)| i)
    }

    /// Whether this region consumes the program's stdin (has a
    /// primary boundary-stdin edge). Executors must leave stdin
    /// untouched for regions that don't — the emitted script keeps
    /// the real stdin on a saved fd, so a later region still sees it.
    pub fn reads_stdin(&self) -> bool {
        self.edges
            .iter()
            .any(|e| e.kind == EndpointKind::StdinPipe { primary: true })
    }

    /// Edge ids of internal pipes (the FIFOs a shell backend creates).
    pub fn internal_pipes(&self) -> impl Iterator<Item = PlanEdgeId> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.kind == EndpointKind::Pipe)
            .map(|(i, _)| i)
    }

    /// The nodes whose exit statuses determine the region's status
    /// (folded with [`fold_statuses`]).
    ///
    /// Parallelization replaces a region's output producer with a
    /// synthetic combiner (cat-merge, relay, `pash-agg-*` network), so
    /// the producer's own status says nothing about the user's
    /// command. This walks back from the last output producer through
    /// synthetic nodes to the command copies whose statuses the
    /// sequential script would have reported. The walk stops at `Exec`
    /// nodes and at *re-applied command* aggregators (e.g. `head` used
    /// as its own combiner): those carry real command semantics —
    /// which also keeps `head`-style early-exit teardowns (upstream
    /// copies killed by SIGPIPE) out of the fold.
    pub fn status_sources(&self) -> Vec<PlanNodeId> {
        let Some(producer) = self.output_producers().last() else {
            return Vec::new();
        };
        let synthetic = |op: &PlanOp| match op {
            PlanOp::Cat | PlanOp::Relay { .. } => true,
            PlanOp::Aggregate { argv } => argv
                .first()
                .map(|a| a.starts_with("pash-agg-"))
                .unwrap_or(false),
            _ => false,
        };
        let mut out = Vec::new();
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![producer];
        while let Some(n) = stack.pop() {
            if std::mem::replace(&mut seen[n], true) {
                continue;
            }
            if !synthetic(&self.nodes[n].op) {
                out.push(n);
                continue;
            }
            let mut any_input = false;
            for &e in &self.nodes[n].inputs {
                if let Some(p) = self.edges[e].from {
                    any_input = true;
                    stack.push(p);
                }
            }
            if !any_input {
                // A synthetic node over boundary inputs only (e.g. a
                // cat of file segments): its own status stands in.
                out.push(n);
            }
        }
        out.sort_unstable();
        out
    }

    /// Paths of files (and file segments) the region reads.
    pub fn reads_files(&self) -> Vec<String> {
        self.edges
            .iter()
            .filter_map(|e| match &e.kind {
                EndpointKind::InputFile(p) => Some(p.clone()),
                EndpointKind::InputSegment { path, .. } => Some(path.clone()),
                _ => None,
            })
            .collect()
    }

    /// Paths of files the region writes.
    pub fn writes_files(&self) -> Vec<String> {
        self.edges
            .iter()
            .filter_map(|e| match &e.kind {
                EndpointKind::OutputFile(p) => Some(p.clone()),
                _ => None,
            })
            .collect()
    }

    /// Checks structural invariants, so executors can reject a
    /// hand-built or corrupted plan with an error instead of an
    /// out-of-bounds panic (plans will eventually arrive over the
    /// wire — see the ROADMAP's remote-backend direction):
    ///
    /// * every node's edge ids are in bounds and the edge points back;
    /// * every `stdin_inputs` / `Arg::Stream` position is a valid
    ///   input index;
    /// * every edge endpoint is a valid node id.
    pub fn validate(&self) -> Result<(), String> {
        for (i, node) in self.nodes.iter().enumerate() {
            for &e in &node.inputs {
                if self.edges.get(e).map(|edge| edge.to) != Some(Some(i)) {
                    return Err(format!("node {i}: input edge {e} does not point back"));
                }
            }
            for &e in &node.outputs {
                if self.edges.get(e).map(|edge| edge.from) != Some(Some(i)) {
                    return Err(format!("node {i}: output edge {e} does not point back"));
                }
            }
            for &k in &node.stdin_inputs {
                if k >= node.inputs.len() {
                    return Err(format!("node {i}: stdin input {k} out of range"));
                }
            }
            if let PlanOp::Exec { argv, .. } = &node.op {
                for a in argv {
                    if let Arg::Stream(k) = a {
                        if *k >= node.inputs.len() {
                            return Err(format!("node {i}: stream arg {k} out of range"));
                        }
                    }
                }
            }
        }
        for (e, edge) in self.edges.iter().enumerate() {
            for endpoint in [edge.from, edge.to].into_iter().flatten() {
                if endpoint >= self.nodes.len() {
                    return Err(format!("edge {e}: endpoint node {endpoint} out of range"));
                }
            }
        }
        Ok(())
    }
}

/// Folds the statuses of a region's [`RegionPlan::status_sources`]
/// into the status the sequential script would have reported.
///
/// Hard errors dominate: any status ≥ 2 yields the largest such
/// status (a copy that failed to open a file fails the whole
/// command). Otherwise the minimum wins: a command that "succeeds if
/// any part succeeds" (`grep`'s found-a-match contract) reports 0
/// when any copy reports 0, and 1 only when every copy missed —
/// exactly the sequential semantics at any width.
pub fn fold_statuses(statuses: &[i32]) -> i32 {
    match statuses.iter().copied().filter(|&s| s >= 2).max() {
        Some(err) => err,
        None => statuses.iter().copied().min().unwrap_or(0),
    }
}

/// Guard over the preceding step's exit status (`&&` / `||`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardCond {
    /// Run the next step only on success (`&&`).
    IfSuccess,
    /// Run the next step only on failure (`||`).
    IfFailure,
}

impl GuardCond {
    /// Whether a status admits the guarded step.
    pub fn admits(self, status: i32) -> bool {
        match self {
            GuardCond::IfSuccess => status == 0,
            GuardCond::IfFailure => status != 0,
        }
    }
}

/// One step of an execution plan, executed in order.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanStep {
    /// A lowered region.
    Region(RegionPlan),
    /// A fragment kept as shell text.
    Shell {
        /// The original shell text.
        text: String,
        /// True when the step has no data-path effect (assignments,
        /// comments): the front-end already folded its effect into the
        /// compile-time environment, so hermetic backends may skip it.
        data_noop: bool,
    },
    /// Run the next step only if the guard admits the current status.
    Guard(GuardCond),
}

/// A lowered program: the flat, serializable execution artifact.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecutionPlan {
    /// Steps in execution order.
    pub steps: Vec<PlanStep>,
}

impl ExecutionPlan {
    /// Number of region steps.
    pub fn region_count(&self) -> usize {
        self.regions().count()
    }

    /// Iterates the region plans.
    pub fn regions(&self) -> impl Iterator<Item = &RegionPlan> {
        self.steps.iter().filter_map(|s| match s {
            PlanStep::Region(r) => Some(r),
            _ => None,
        })
    }

    /// Renders the plan as deterministic text: same program and
    /// configuration ⇒ byte-identical dump. This is the serialization
    /// format that cache keys, golden tests, and the CI determinism
    /// smoke step rely on.
    pub fn dump(&self) -> String {
        let mut out = String::from("plan v1\n");
        for step in &self.steps {
            match step {
                PlanStep::Shell { text, data_noop } => {
                    out.push_str(&format!("shell noop={data_noop} {text:?}\n"));
                }
                PlanStep::Guard(GuardCond::IfSuccess) => out.push_str("guard if-success\n"),
                PlanStep::Guard(GuardCond::IfFailure) => out.push_str("guard if-failure\n"),
                PlanStep::Region(r) => r.dump_into(&mut out),
            }
        }
        out
    }

    /// A 64-bit FNV-1a fingerprint of [`ExecutionPlan::dump`] — the
    /// hashable identity of the plan.
    pub fn fingerprint(&self) -> u64 {
        fnv1a(self.dump().as_bytes())
    }

    /// Parses a [`ExecutionPlan::dump`] rendering back into a plan —
    /// the inverse that makes the dump an actual serialization format
    /// (the on-disk plan-cache tier stores dumps and re-parses them on
    /// a warm start). Every structural error is reported rather than
    /// panicked on, and each region is [`RegionPlan::validate`]d, so a
    /// truncated or hand-damaged file surfaces as `Err`, never as an
    /// out-of-bounds plan handed to a backend.
    pub fn parse_dump(text: &str) -> Result<ExecutionPlan, String> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, "plan v1")) => {}
            other => return Err(format!("bad header: {:?}", other.map(|(_, l)| l))),
        }
        let mut steps = Vec::new();
        while let Some((ln, line)) = lines.next() {
            let err = |msg: &str| format!("line {}: {msg}", ln + 1);
            if line == "guard if-success" {
                steps.push(PlanStep::Guard(GuardCond::IfSuccess));
            } else if line == "guard if-failure" {
                steps.push(PlanStep::Guard(GuardCond::IfFailure));
            } else if let Some(rest) = line.strip_prefix("shell noop=") {
                let (data_noop, rest) = parse_bool(rest).map_err(|e| err(&e))?;
                let rest = rest
                    .strip_prefix(' ')
                    .ok_or_else(|| err("expected space"))?;
                let (text, rest) = parse_quoted(rest).map_err(|e| err(&e))?;
                if !rest.is_empty() {
                    return Err(err("trailing junk after shell text"));
                }
                steps.push(PlanStep::Shell { text, data_noop });
            } else if let Some(rest) = line.strip_prefix("region nodes=") {
                let (nnodes, rest) = parse_usize(rest).map_err(|e| err(&e))?;
                let rest = rest
                    .strip_prefix(" edges=")
                    .ok_or_else(|| err("expected ` edges=`"))?;
                let (nedges, rest) = parse_usize(rest).map_err(|e| err(&e))?;
                let rest = rest
                    .strip_prefix(" replayable=")
                    .ok_or_else(|| err("expected ` replayable=`"))?;
                let (replayable, rest) = parse_bool(rest).map_err(|e| err(&e))?;
                if !rest.is_empty() {
                    return Err(err("trailing junk after region header"));
                }
                let mut edges = Vec::with_capacity(nedges);
                for i in 0..nedges {
                    let (ln, line) = lines
                        .next()
                        .ok_or_else(|| format!("edge e{i}: unexpected end of dump"))?;
                    edges.push(
                        parse_edge_line(line, i).map_err(|e| format!("line {}: {e}", ln + 1))?,
                    );
                }
                let mut nodes = Vec::with_capacity(nnodes);
                for i in 0..nnodes {
                    let (ln, line) = lines
                        .next()
                        .ok_or_else(|| format!("node n{i}: unexpected end of dump"))?;
                    nodes.push(
                        parse_node_line(line, i).map_err(|e| format!("line {}: {e}", ln + 1))?,
                    );
                }
                let region = RegionPlan {
                    nodes,
                    edges,
                    replayable,
                };
                region.validate()?;
                steps.push(PlanStep::Region(region));
            } else {
                return Err(err("unrecognized step"));
            }
        }
        Ok(ExecutionPlan { steps })
    }

    /// Groups step indices into *waves*: steps within a wave are
    /// mutually independent and may execute concurrently; waves run in
    /// order, each starting after the previous completes.
    ///
    /// Conservative rules: `Guard`/`Shell` steps are singleton waves
    /// (barriers), the step guarded by a `Guard` is a singleton (its
    /// execution is conditional), and two regions share a wave only
    /// when they touch disjoint files, at most one reads the
    /// program's stdin, and at most one writes the program's stdout
    /// (so executors need not re-order captured output).
    pub fn parallel_waves(&self) -> Vec<Vec<usize>> {
        let mut waves: Vec<Vec<usize>> = Vec::new();
        let mut current: Vec<usize> = Vec::new();
        let mut after_guard = false;
        for (i, step) in self.steps.iter().enumerate() {
            match step {
                PlanStep::Guard(_) | PlanStep::Shell { .. } => {
                    if !current.is_empty() {
                        waves.push(std::mem::take(&mut current));
                    }
                    waves.push(vec![i]);
                    after_guard = matches!(step, PlanStep::Guard(_));
                }
                PlanStep::Region(r) => {
                    if after_guard {
                        if !current.is_empty() {
                            waves.push(std::mem::take(&mut current));
                        }
                        waves.push(vec![i]);
                        after_guard = false;
                        continue;
                    }
                    let conflicts = current.iter().any(|&j| match &self.steps[j] {
                        PlanStep::Region(prev) => regions_conflict(prev, r),
                        _ => true,
                    });
                    if conflicts && !current.is_empty() {
                        waves.push(std::mem::take(&mut current));
                    }
                    current.push(i);
                }
            }
        }
        if !current.is_empty() {
            waves.push(current);
        }
        waves
    }
}

/// Parses a leading `true`/`false`.
fn parse_bool(s: &str) -> Result<(bool, &str), String> {
    if let Some(rest) = s.strip_prefix("true") {
        Ok((true, rest))
    } else if let Some(rest) = s.strip_prefix("false") {
        Ok((false, rest))
    } else {
        Err(format!("expected bool at `{}`", head(s)))
    }
}

/// Parses a leading unsigned decimal.
fn parse_usize(s: &str) -> Result<(usize, &str), String> {
    let end = s.bytes().take_while(|b| b.is_ascii_digit()).count();
    if end == 0 {
        return Err(format!("expected number at `{}`", head(s)));
    }
    let n = s[..end]
        .parse()
        .map_err(|_| format!("number out of range at `{}`", head(s)))?;
    Ok((n, &s[end..]))
}

/// Parses a leading Rust-`{:?}`-style quoted string, undoing the
/// escapes `escape_debug` emits (`\"`, `\\`, `\n`, `\r`, `\t`, `\0`,
/// `\'`, and `\u{…}`).
fn parse_quoted(s: &str) -> Result<(String, &str), String> {
    let mut chars = s.char_indices();
    match chars.next() {
        Some((_, '"')) => {}
        _ => return Err(format!("expected `\"` at `{}`", head(s))),
    }
    let mut out = String::new();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, &s[i + 1..])),
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, '\'')) => out.push('\''),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 't')) => out.push('\t'),
                Some((_, '0')) => out.push('\0'),
                Some((_, 'u')) => {
                    match chars.next() {
                        Some((_, '{')) => {}
                        _ => return Err("bad \\u escape (expected `{`)".to_string()),
                    }
                    let mut v: u32 = 0;
                    let mut digits = 0;
                    loop {
                        match chars.next() {
                            Some((_, '}')) => break,
                            Some((_, d)) => {
                                let d = d
                                    .to_digit(16)
                                    .ok_or_else(|| "bad \\u escape digit".to_string())?;
                                v = v
                                    .checked_mul(16)
                                    .and_then(|v| v.checked_add(d))
                                    .ok_or_else(|| "\\u escape overflows".to_string())?;
                                digits += 1;
                            }
                            None => return Err("unterminated \\u escape".to_string()),
                        }
                    }
                    if digits == 0 {
                        return Err("empty \\u escape".to_string());
                    }
                    out.push(char::from_u32(v).ok_or_else(|| "\\u escape not a char".to_string())?);
                }
                other => {
                    return Err(format!(
                        "unknown escape `\\{}`",
                        other.map(|(_, c)| c).unwrap_or(' ')
                    ))
                }
            },
            c => out.push(c),
        }
    }
    Err("unterminated quoted string".to_string())
}

/// The first few characters of `s`, for error messages.
fn head(s: &str) -> &str {
    let end = s.char_indices().nth(12).map(|(i, _)| i).unwrap_or(s.len());
    &s[..end]
}

/// Parses one `  e{i}: {kind} {from}->{to}` edge line.
fn parse_edge_line(line: &str, i: usize) -> Result<PlanEdge, String> {
    let rest = line
        .strip_prefix("  e")
        .ok_or_else(|| format!("edge e{i}: bad prefix"))?;
    let (idx, rest) = parse_usize(rest)?;
    if idx != i {
        return Err(format!("edge index {idx}, expected {i}"));
    }
    let rest = rest
        .strip_prefix(": ")
        .ok_or_else(|| format!("edge e{i}: expected `: `"))?;
    let (kind, rest) = if let Some(r) = rest.strip_prefix("stdin* ") {
        (EndpointKind::StdinPipe { primary: true }, r)
    } else if let Some(r) = rest.strip_prefix("stdin ") {
        (EndpointKind::StdinPipe { primary: false }, r)
    } else if let Some(r) = rest.strip_prefix("stdout ") {
        (EndpointKind::StdoutPipe, r)
    } else if let Some(r) = rest.strip_prefix("pipe ") {
        (EndpointKind::Pipe, r)
    } else if let Some(r) = rest.strip_prefix("detached ") {
        (EndpointKind::Detached, r)
    } else if let Some(r) = rest.strip_prefix("in:") {
        let (p, r) = parse_quoted(r)?;
        let r = r
            .strip_prefix(' ')
            .ok_or_else(|| format!("edge e{i}: expected space after path"))?;
        (EndpointKind::InputFile(p), r)
    } else if let Some(r) = rest.strip_prefix("out:") {
        let (p, r) = parse_quoted(r)?;
        let r = r
            .strip_prefix(' ')
            .ok_or_else(|| format!("edge e{i}: expected space after path"))?;
        (EndpointKind::OutputFile(p), r)
    } else if let Some(r) = rest.strip_prefix("seg:") {
        let (path, r) = parse_quoted(r)?;
        let r = r
            .strip_prefix('[')
            .ok_or_else(|| format!("edge e{i}: expected `[` after segment path"))?;
        let (part, r) = parse_usize(r)?;
        let r = r
            .strip_prefix('/')
            .ok_or_else(|| format!("edge e{i}: expected `/`"))?;
        let (of, r) = parse_usize(r)?;
        let r = r
            .strip_prefix("] ")
            .ok_or_else(|| format!("edge e{i}: expected `] `"))?;
        (EndpointKind::InputSegment { path, part, of }, r)
    } else {
        return Err(format!("edge e{i}: unknown kind at `{}`", head(rest)));
    };
    let (from_s, to_s) = kind_endpoints(rest).ok_or_else(|| format!("edge e{i}: expected `->`"))?;
    let parse_opt = |s: &str| -> Result<Option<PlanNodeId>, String> {
        if s.is_empty() {
            Ok(None)
        } else {
            s.parse()
                .map(Some)
                .map_err(|_| format!("edge e{i}: bad endpoint `{s}`"))
        }
    };
    Ok(PlanEdge {
        kind,
        from: parse_opt(from_s)?,
        to: parse_opt(to_s)?,
    })
}

/// Splits `{from}->{to}` (either side possibly empty).
fn kind_endpoints(s: &str) -> Option<(&str, &str)> {
    s.split_once("->")
}

/// Parses one `  n{i}: {op} [ins] stdin=[..] -> [outs]{ producer}`
/// node line.
fn parse_node_line(line: &str, i: usize) -> Result<PlanNode, String> {
    let rest = line
        .strip_prefix("  n")
        .ok_or_else(|| format!("node n{i}: bad prefix"))?;
    let (idx, rest) = parse_usize(rest)?;
    if idx != i {
        return Err(format!("node index {idx}, expected {i}"));
    }
    let mut rest = rest
        .strip_prefix(": ")
        .ok_or_else(|| format!("node n{i}: expected `: `"))?;
    let op = if let Some(r) = rest.strip_prefix("exec ") {
        let mut argv = Vec::new();
        let mut framed = false;
        let mut r = r;
        loop {
            if r.starts_with('"') {
                let (w, after) = parse_quoted(r)?;
                argv.push(Arg::Lit(w));
                r = after.strip_prefix(' ').unwrap_or(after);
            } else if let Some(after) = r.strip_prefix("<in") {
                let (k, after) = parse_usize(after)?;
                let after = after
                    .strip_prefix('>')
                    .ok_or_else(|| format!("node n{i}: expected `>` closing stream arg"))?;
                argv.push(Arg::Stream(k));
                r = after.strip_prefix(' ').unwrap_or(after);
            } else if let Some(after) = r.strip_prefix("framed ") {
                framed = true;
                r = after;
                break;
            } else if r.starts_with('[') {
                break;
            } else {
                return Err(format!("node n{i}: bad exec word at `{}`", head(r)));
            }
        }
        rest = r;
        PlanOp::Exec { argv, framed }
    } else if let Some(r) = rest.strip_prefix("agg ") {
        let mut argv = Vec::new();
        let mut r = r;
        while r.starts_with('"') {
            let (w, after) = parse_quoted(r)?;
            argv.push(w);
            r = after.strip_prefix(' ').unwrap_or(after);
        }
        rest = r;
        PlanOp::Aggregate { argv }
    } else if let Some(r) = rest.strip_prefix("cat ") {
        rest = r;
        PlanOp::Cat
    } else if let Some(r) = rest.strip_prefix("split sized=") {
        let (sized, r) = parse_bool(r)?;
        rest = r
            .strip_prefix(' ')
            .ok_or_else(|| format!("node n{i}: expected space after split"))?;
        PlanOp::Split {
            mode: if sized {
                SplitMode::Sized
            } else {
                SplitMode::General
            },
        }
    } else if let Some(r) = rest.strip_prefix("split rr framed=") {
        let (framed, r) = parse_bool(r)?;
        rest = r
            .strip_prefix(' ')
            .ok_or_else(|| format!("node n{i}: expected space after split"))?;
        PlanOp::Split {
            mode: SplitMode::RoundRobin { framed },
        }
    } else if let Some(r) = rest.strip_prefix("relay blocking=") {
        let (blocking, r) = parse_bool(r)?;
        rest = r
            .strip_prefix(' ')
            .ok_or_else(|| format!("node n{i}: expected space after relay"))?;
        PlanOp::Relay { blocking }
    } else {
        return Err(format!("node n{i}: unknown op at `{}`", head(rest)));
    };
    let (inputs, rest) = parse_edge_list(rest).map_err(|e| format!("node n{i}: inputs: {e}"))?;
    let rest = rest
        .strip_prefix(" stdin=[")
        .ok_or_else(|| format!("node n{i}: expected ` stdin=[`"))?;
    let (stdin_inputs, rest) =
        parse_usize_list(rest).map_err(|e| format!("node n{i}: stdin: {e}"))?;
    let rest = rest
        .strip_prefix(" -> ")
        .ok_or_else(|| format!("node n{i}: expected ` -> `"))?;
    let (outputs, rest) = parse_edge_list(rest).map_err(|e| format!("node n{i}: outputs: {e}"))?;
    let output_producer = match rest {
        "" => false,
        " producer" => true,
        other => return Err(format!("node n{i}: trailing junk `{}`", head(other))),
    };
    Ok(PlanNode {
        op,
        inputs,
        outputs,
        stdin_inputs,
        output_producer,
    })
}

/// Parses `[e1,e2,…]` (possibly empty), returning the ids.
fn parse_edge_list(s: &str) -> Result<(Vec<PlanEdgeId>, &str), String> {
    let mut r = s
        .strip_prefix('[')
        .ok_or_else(|| format!("expected `[` at `{}`", head(s)))?;
    let mut ids = Vec::new();
    if let Some(after) = r.strip_prefix(']') {
        return Ok((ids, after));
    }
    loop {
        let r2 = r
            .strip_prefix('e')
            .ok_or_else(|| format!("expected `e` at `{}`", head(r)))?;
        let (id, r2) = parse_usize(r2)?;
        ids.push(id);
        if let Some(after) = r2.strip_prefix(',') {
            r = after;
        } else if let Some(after) = r2.strip_prefix(']') {
            return Ok((ids, after));
        } else {
            return Err(format!("expected `,` or `]` at `{}`", head(r2)));
        }
    }
}

/// Parses `0,1,…]` — the tail of a bracketed number list (possibly
/// empty).
fn parse_usize_list(s: &str) -> Result<(Vec<usize>, &str), String> {
    let mut r = s;
    let mut out = Vec::new();
    if let Some(after) = r.strip_prefix(']') {
        return Ok((out, after));
    }
    loop {
        let (n, r2) = parse_usize(r)?;
        out.push(n);
        if let Some(after) = r2.strip_prefix(',') {
            r = after;
        } else if let Some(after) = r2.strip_prefix(']') {
            return Ok((out, after));
        } else {
            return Err(format!("expected `,` or `]` at `{}`", head(r2)));
        }
    }
}

/// Whether two regions must not run concurrently: overlapping file
/// footprints (any write against any touch), both consuming stdin, or
/// both emitting to stdout.
fn regions_conflict(a: &RegionPlan, b: &RegionPlan) -> bool {
    if a.reads_stdin() && b.reads_stdin() {
        return true;
    }
    let emits = |r: &RegionPlan| {
        r.edges
            .iter()
            .any(|e| matches!(e.kind, EndpointKind::StdoutPipe))
    };
    if emits(a) && emits(b) {
        return true;
    }
    let (ar, aw) = (a.reads_files(), a.writes_files());
    let (br, bw) = (b.reads_files(), b.writes_files());
    let hits = |xs: &[String], ys: &[String]| xs.iter().any(|x| ys.contains(x));
    hits(&aw, &br) || hits(&aw, &bw) || hits(&ar, &bw)
}

/// FNV-1a over a byte string (the workspace has no hashing crates).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A pluggable execution engine over [`ExecutionPlan`]s.
///
/// Implementations in the workspace: `ShellEmitter` (this crate,
/// produces a POSIX script), `ThreadedBackend` (`pash-runtime`, runs
/// in-process on real threads), `SimBackend` (`pash-sim`, predicts
/// timing on a C-core machine). The `pash` facade selects one by name
/// (`pash::run`).
pub trait Backend {
    /// What running the plan produces.
    type Output;

    /// The backend's selection name (e.g. `"shell"`, `"threads"`).
    fn name(&self) -> &'static str;

    /// Runs (or renders, or simulates) the plan.
    fn run(&mut self, plan: &ExecutionPlan) -> std::io::Result<Self::Output>;
}

/// Lowers a translated (and transformed) program to its execution
/// plan. This is the only place in the workspace that interprets
/// [`NodeKind`]/[`StreamSpec`]/stream markers; every backend consumes
/// the resolved plan.
pub fn lower(tp: &TranslatedProgram) -> ExecutionPlan {
    let mut steps = Vec::with_capacity(tp.steps.len());
    for step in &tp.steps {
        match step {
            Step::Shell(text) => steps.push(PlanStep::Shell {
                text: text.clone(),
                data_noop: shell_is_data_noop(text),
            }),
            Step::Guard(AndOrOp::AndIf) => steps.push(PlanStep::Guard(GuardCond::IfSuccess)),
            Step::Guard(AndOrOp::OrIf) => steps.push(PlanStep::Guard(GuardCond::IfFailure)),
            Step::Region(g) => steps.push(PlanStep::Region(lower_region(g))),
        }
    }
    ExecutionPlan { steps }
}

/// Lowers one DFG region.
fn lower_region(g: &Dfg) -> RegionPlan {
    let order = g.topo_order();
    // Dense node index, keyed by original NodeId.
    let mut node_index: Vec<Option<PlanNodeId>> = Vec::new();
    for (dense, &id) in order.iter().enumerate() {
        if id >= node_index.len() {
            node_index.resize(id + 1, None);
        }
        node_index[id] = Some(dense);
    }
    // Dense edge index over referenced edges, in original-id order
    // (deterministic). The first boundary pipe input is the primary
    // stdin edge — the same first-wins rule the executor used.
    let mut edge_index: Vec<Option<PlanEdgeId>> = vec![None; g.edge_count()];
    let mut edges: Vec<PlanEdge> = Vec::new();
    let mut primary_assigned = false;
    for e in 0..g.edge_count() {
        let edge = g.edge(e);
        if edge.from.is_none() && edge.to.is_none() {
            continue; // Retired edge slot.
        }
        let kind = match (&edge.spec, edge.from, edge.to) {
            (StreamSpec::Pipe, Some(_), Some(_)) => EndpointKind::Pipe,
            (StreamSpec::Pipe, None, Some(_)) => {
                let primary = !primary_assigned;
                primary_assigned = true;
                EndpointKind::StdinPipe { primary }
            }
            (StreamSpec::Pipe, Some(_), None) => EndpointKind::StdoutPipe,
            (StreamSpec::File(p), None, Some(_)) => EndpointKind::InputFile(p.clone()),
            (StreamSpec::File(p), Some(_), _) => EndpointKind::OutputFile(p.clone()),
            (StreamSpec::FileSegment { path, part, of }, None, Some(_)) => {
                EndpointKind::InputSegment {
                    path: path.clone(),
                    part: *part,
                    of: *of,
                }
            }
            _ => EndpointKind::Detached,
        };
        edge_index[e] = Some(edges.len());
        edges.push(PlanEdge {
            kind,
            from: edge.from.and_then(|n| node_index.get(n).copied().flatten()),
            to: edge.to.and_then(|n| node_index.get(n).copied().flatten()),
        });
    }
    let remap = |e: crate::dfg::EdgeId| -> PlanEdgeId {
        edge_index[e].expect("edge referenced by a live node")
    };
    let mut nodes = Vec::with_capacity(order.len());
    // Frame tracking: an edge carries tagged round-robin frames when
    // its producer is a framed `r_split`, a framed command copy, or a
    // relay forwarding a framed stream. Reorder aggregators consume
    // frames and emit bare payloads. Topological order guarantees a
    // producer's framing is known before its consumers lower.
    let mut edge_framed = vec![false; edges.len()];
    for &id in &order {
        let node = g.node(id).expect("live node");
        let inputs: Vec<PlanEdgeId> = node.inputs.iter().map(|&e| remap(e)).collect();
        let outputs: Vec<PlanEdgeId> = node.outputs.iter().map(|&e| remap(e)).collect();
        let (op, stdin_inputs) = match &node.kind {
            NodeKind::Command { argv, .. } => {
                let args: Vec<Arg> = argv
                    .iter()
                    .map(|a| match parse_stream_marker(a) {
                        Some(k) => Arg::Stream(k),
                        None => Arg::Lit(a.clone()),
                    })
                    .collect();
                let marked: Vec<usize> = args
                    .iter()
                    .filter_map(|a| match a {
                        Arg::Stream(k) => Some(*k),
                        Arg::Lit(_) => None,
                    })
                    .collect();
                let stdin: Vec<usize> = (0..inputs.len()).filter(|k| !marked.contains(k)).collect();
                let framed = !inputs.is_empty() && inputs.iter().all(|&e| edge_framed[e]);
                if framed {
                    for &e in &outputs {
                        edge_framed[e] = true;
                    }
                }
                (PlanOp::Exec { argv: args, framed }, stdin)
            }
            NodeKind::Cat => (PlanOp::Cat, Vec::new()),
            NodeKind::Split(kind) => {
                let mode = match kind {
                    SplitKind::General => SplitMode::General,
                    SplitKind::Sized => SplitMode::Sized,
                    SplitKind::RoundRobin { framed } => SplitMode::RoundRobin { framed: *framed },
                };
                if matches!(mode, SplitMode::RoundRobin { framed: true }) {
                    for &e in &outputs {
                        edge_framed[e] = true;
                    }
                }
                (
                    PlanOp::Split { mode },
                    if inputs.is_empty() {
                        Vec::new()
                    } else {
                        vec![0]
                    },
                )
            }
            NodeKind::Relay(kind) => {
                if inputs.iter().any(|&e| edge_framed[e]) {
                    for &e in &outputs {
                        edge_framed[e] = true;
                    }
                }
                (
                    PlanOp::Relay {
                        blocking: *kind == EagerKind::Blocking,
                    },
                    if inputs.is_empty() {
                        Vec::new()
                    } else {
                        vec![0]
                    },
                )
            }
            NodeKind::Aggregate { argv } => (PlanOp::Aggregate { argv: argv.clone() }, Vec::new()),
        };
        let output_producer = outputs.iter().any(|&e| edges[e].to.is_none());
        nodes.push(PlanNode {
            op,
            inputs,
            outputs,
            stdin_inputs,
            output_producer,
        });
    }
    let replayable = nodes.iter().all(|n| node_is_replayable(&n.op));
    RegionPlan {
        nodes,
        edges,
        replayable,
    }
}

/// Whether an op may be safely re-executed after a failed attempt.
/// Synthetic ops (cat, split, relay, `pash-agg-*`) are pure stream
/// transforms by construction; exec/aggregate commands are checked
/// against a denylist of heads whose output is nondeterministic or
/// whose effects outlive the attempt.
fn node_is_replayable(op: &PlanOp) -> bool {
    const IMPURE: [&str; 4] = ["shuf", "mktemp", "tee", "date"];
    let head_ok = |head: Option<&str>| head.map(|h| !IMPURE.contains(&h)).unwrap_or(false);
    match op {
        PlanOp::Exec { argv, .. } => head_ok(argv.first().and_then(|a| a.as_lit())),
        PlanOp::Aggregate { argv } => head_ok(argv.first().map(|s| s.as_str())),
        PlanOp::Cat | PlanOp::Split { .. } | PlanOp::Relay { .. } => true,
    }
}

/// True when a shell step has no data-path effect (assignments only) —
/// hermetic backends may treat it as a no-op because the front-end
/// already folded the assignment into the compile-time environment.
fn shell_is_data_noop(text: &str) -> bool {
    let prog = match pash_parser::parse(text) {
        Ok(p) => p,
        Err(_) => return false,
    };
    prog.commands.iter().all(|cc| {
        cc.items.iter().all(|(ao, _)| {
            ao.rest.is_empty()
                && ao.first.commands.iter().all(|c| match c {
                    pash_parser::ast::Command::Simple(sc) => {
                        sc.words.is_empty() && sc.redirects.is_empty()
                    }
                    _ => false,
                })
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annot::stdlib::AnnotationLibrary;
    use crate::dfg::transform::{parallelize, SplitPolicy, TransformConfig};
    use crate::frontend::{translate, FrontendOptions};

    fn lowered(src: &str, width: usize) -> ExecutionPlan {
        lowered_with(src, width, SplitPolicy::Off)
    }

    fn lowered_with(src: &str, width: usize, split: SplitPolicy) -> ExecutionPlan {
        let prog = pash_parser::parse(src).expect("parse");
        let mut tp = translate(
            &prog,
            AnnotationLibrary::standard(),
            &FrontendOptions::default(),
        )
        .expect("translate");
        for g in tp.regions_mut() {
            parallelize(
                g,
                &TransformConfig {
                    width,
                    split,
                    ..Default::default()
                },
            );
        }
        lower(&tp)
    }

    fn first_region(plan: &ExecutionPlan) -> &RegionPlan {
        plan.regions().next().expect("region")
    }

    #[test]
    fn region_dump_round_trips_alone() {
        let plan = lowered_with(
            "cat in.txt | tr A-Z a-z | sort > out.txt",
            4,
            SplitPolicy::RoundRobin,
        );
        let r = first_region(&plan);
        let parsed = RegionPlan::parse_dump(&r.dump()).expect("parse");
        assert_eq!(&parsed, r);
        assert_eq!(parsed.fingerprint(), r.fingerprint());
        // Structural damage surfaces as Err, never a bad region.
        assert!(RegionPlan::parse_dump("").is_err());
        assert!(RegionPlan::parse_dump("shell noop=true \"x\"\n").is_err());
        let mut two = r.dump();
        two.push_str(&r.dump());
        assert!(RegionPlan::parse_dump(&two).is_err());
        let truncated = &r.dump()[..r.dump().len() / 2];
        assert!(RegionPlan::parse_dump(truncated).is_err());
    }

    #[test]
    fn linear_pipeline_lowers_to_dense_region() {
        let plan = lowered("cat in.txt | tr A-Z a-z | grep x > out.txt", 1);
        let r = first_region(&plan);
        assert_eq!(r.nodes.len(), 3);
        // Input file, two internal pipes, output file.
        assert!(r
            .edges
            .iter()
            .any(|e| matches!(e.kind, EndpointKind::InputFile(ref p) if p == "in.txt")));
        assert!(r
            .edges
            .iter()
            .any(|e| matches!(e.kind, EndpointKind::OutputFile(ref p) if p == "out.txt")));
        assert_eq!(r.internal_pipes().count(), 2);
        // Only the last node produces region output.
        assert_eq!(r.output_producers().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn parallel_region_has_segments_and_producers() {
        let plan = lowered("cat in.txt | tr A-Z a-z | sort > out.txt", 4);
        let r = first_region(&plan);
        let segs = r
            .edges
            .iter()
            .filter(|e| matches!(e.kind, EndpointKind::InputSegment { of: 4, .. }))
            .count();
        assert_eq!(segs, 4);
        assert_eq!(r.output_producers().count(), 1);
        // Every node's edge references are in bounds and consistent.
        for (i, n) in r.nodes.iter().enumerate() {
            for &e in n.inputs.iter() {
                assert_eq!(r.edges[e].to, Some(i));
            }
            for &e in n.outputs.iter() {
                assert_eq!(r.edges[e].from, Some(i));
            }
        }
    }

    #[test]
    fn stream_markers_become_stream_args() {
        let plan = lowered("sort words.txt | comm -13 dict.txt -", 1);
        let r = first_region(&plan);
        let comm = r
            .nodes
            .iter()
            .find(|n| matches!(&n.op, PlanOp::Exec { argv, .. } if argv.first() == Some(&Arg::Lit("comm".into()))))
            .expect("comm node");
        // `-` stays literal (stdin-routed); the static dict stays too.
        match &comm.op {
            PlanOp::Exec { argv, .. } => {
                assert!(argv.contains(&Arg::Lit("dict.txt".into())));
                assert!(argv.contains(&Arg::Lit("-".into())));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(comm.stdin_inputs, vec![0]);
    }

    #[test]
    fn guards_and_shell_steps_lower() {
        let plan = lowered("x=1\ngrep a f > t && sort t > u", 1);
        assert!(plan
            .steps
            .iter()
            .any(|s| matches!(s, PlanStep::Guard(GuardCond::IfSuccess))));
        assert!(plan.steps.iter().any(|s| matches!(
            s,
            PlanStep::Shell {
                data_noop: true,
                ..
            }
        )));
    }

    #[test]
    fn dynamic_shell_step_is_not_a_noop() {
        let plan = lowered("grep $UNDEF f", 1);
        assert!(plan.steps.iter().any(|s| matches!(
            s,
            PlanStep::Shell {
                data_noop: false,
                ..
            }
        )));
    }

    #[test]
    fn exactly_one_primary_stdin_edge() {
        let plan = lowered("sort a > t1 & sort b > t2", 1);
        let r = first_region(&plan);
        // File inputs here, so no stdin pipes at all.
        let primaries = r
            .edges
            .iter()
            .filter(|e| matches!(e.kind, EndpointKind::StdinPipe { primary: true }))
            .count();
        assert!(primaries <= 1);
        let plan = lowered("tr A-Z a-z | grep x", 1);
        let r = first_region(&plan);
        let primaries = r
            .edges
            .iter()
            .filter(|e| matches!(e.kind, EndpointKind::StdinPipe { primary: true }))
            .count();
        assert_eq!(primaries, 1);
    }

    #[test]
    fn dump_is_deterministic_and_fingerprintable() {
        let a = lowered_with(
            "cat in.txt | tr A-Z a-z | sort | uniq -c > o",
            8,
            SplitPolicy::Sized,
        );
        let b = lowered_with(
            "cat in.txt | tr A-Z a-z | sort | uniq -c > o",
            8,
            SplitPolicy::Sized,
        );
        assert_eq!(a.dump(), b.dump());
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = lowered_with(
            "cat in.txt | tr A-Z a-z | sort | uniq -c > o",
            4,
            SplitPolicy::Sized,
        );
        assert_ne!(a.dump(), c.dump());
    }

    #[test]
    fn split_nodes_route_stdin_and_produce_pipes() {
        let plan = lowered_with(
            "cat in.txt | sort | grep x > out.txt",
            4,
            SplitPolicy::General,
        );
        let r = first_region(&plan);
        let split = r
            .nodes
            .iter()
            .find(|n| matches!(n.op, PlanOp::Split { .. }))
            .expect("split node");
        assert_eq!(split.stdin_inputs, vec![0]);
        assert!(split.outputs.len() >= 2);
    }

    #[test]
    fn lowered_plans_validate_and_corruption_is_caught() {
        let plan = lowered_with("cat in.txt | sort | uniq -c > o", 4, SplitPolicy::Sized);
        for r in plan.regions() {
            r.validate().expect("lowered plan is valid");
        }
        let mut broken = plan.regions().next().expect("region").clone();
        broken.nodes[0].inputs.push(broken.edges.len() + 7);
        assert!(broken.validate().is_err());
        let mut broken = plan.regions().next().expect("region").clone();
        broken.nodes[0].stdin_inputs.push(99);
        assert!(broken.validate().is_err());
    }

    #[test]
    fn spawn_specs_cover_every_op() {
        let plan = lowered_with(
            "cat in.txt | sort | uniq -c > out.txt",
            4,
            SplitPolicy::General,
        );
        let r = first_region(&plan);
        let mut seen_split = false;
        let mut seen_agg = false;
        for n in &r.nodes {
            let spec = n.spawn_spec();
            match &n.op {
                PlanOp::Split { .. } => {
                    seen_split = true;
                    assert_eq!(spec.bin, SpawnBin::Runtime);
                    assert_eq!(spec.stdout_output, None, "split names its outputs");
                    let outs = spec
                        .argv
                        .iter()
                        .filter(|w| matches!(w, SpawnWord::Out(_)))
                        .count();
                    assert_eq!(outs, n.outputs.len());
                    assert_eq!(spec.stdin_input, Some(0));
                }
                PlanOp::Aggregate { argv } => {
                    seen_agg = true;
                    assert_eq!(spec.bin, SpawnBin::Runtime);
                    assert_eq!(spec.stdin_input, None);
                    // Inputs ride in `--in` pairs before `agg NAME`.
                    let agg_pos = spec
                        .argv
                        .iter()
                        .position(|w| w == &SpawnWord::Lit("agg".into()))
                        .expect("agg subcommand");
                    assert_eq!(
                        spec.argv.get(agg_pos + 1),
                        Some(&SpawnWord::Lit(argv[0].clone())),
                        "aggregator name follows `agg`"
                    );
                    let ins = spec
                        .argv
                        .iter()
                        .filter(|w| matches!(w, SpawnWord::In(_)))
                        .count();
                    assert_eq!(ins, n.inputs.len());
                }
                PlanOp::Exec { .. } | PlanOp::Cat => {
                    assert_eq!(spec.bin, SpawnBin::Coreutils);
                    assert_eq!(spec.stdout_output, Some(0));
                }
                PlanOp::Relay { .. } => {
                    assert_eq!(spec.bin, SpawnBin::Runtime);
                    assert_eq!(spec.argv.first(), Some(&SpawnWord::Lit("eager".into())));
                }
            }
        }
        assert!(seen_split && seen_agg);
    }

    #[test]
    fn spawn_spec_maps_stream_args_to_inputs() {
        let plan = lowered("sort words.txt | comm -13 dict.txt -", 1);
        let r = first_region(&plan);
        let comm = r
            .nodes
            .iter()
            .find(|n| matches!(&n.op, PlanOp::Exec { argv, .. } if argv.first() == Some(&Arg::Lit("comm".into()))))
            .expect("comm node");
        let spec = comm.spawn_spec();
        // `-` is stdin-routed, so the spec carries a stdin input and no
        // In() words.
        assert_eq!(spec.stdin_input, Some(0));
        assert!(spec.argv.iter().all(|w| matches!(w, SpawnWord::Lit(_))));
    }

    #[test]
    fn dump_parse_round_trips() {
        let scripts = [
            (
                "cat in.txt | tr A-Z a-z | sort | uniq -c > o",
                SplitPolicy::Sized,
            ),
            (
                "cat in.txt | tr A-Z a-z | grep x | wc -l > o",
                SplitPolicy::RoundRobin,
            ),
            (
                "x=1\ngrep a f > t && sort t > u || echo no",
                SplitPolicy::General,
            ),
            ("sort words.txt | comm -13 dict.txt -", SplitPolicy::Off),
            (
                "tr A-Z a-z < in.txt | sort > t1 & tr A-Z a-z < in2.txt | sort > t2",
                SplitPolicy::Sized,
            ),
        ];
        for (src, split) in scripts {
            for width in [1, 4, 8] {
                let plan = lowered_with(src, width, split);
                let dump = plan.dump();
                let parsed = ExecutionPlan::parse_dump(&dump)
                    .unwrap_or_else(|e| panic!("{src:?} w={width}: parse failed: {e}"));
                assert_eq!(parsed, plan, "{src:?} w={width}: structural round-trip");
                assert_eq!(parsed.dump(), dump, "{src:?} w={width}: dump round-trip");
                assert_eq!(parsed.fingerprint(), plan.fingerprint());
            }
        }
    }

    #[test]
    fn parse_dump_unescapes_hostile_strings() {
        let plan = ExecutionPlan {
            steps: vec![
                PlanStep::Shell {
                    text: "echo \"a b\"\t\\ \u{1}\n'q'".to_string(),
                    data_noop: false,
                },
                PlanStep::Region(RegionPlan {
                    nodes: vec![PlanNode {
                        op: PlanOp::Exec {
                            argv: vec![
                                Arg::Lit("grep".into()),
                                Arg::Lit("sp ace \"q\" ] [ -> e9".into()),
                                Arg::Stream(0),
                            ],
                            framed: false,
                        },
                        inputs: vec![0],
                        outputs: vec![1],
                        stdin_inputs: vec![],
                        output_producer: true,
                    }],
                    edges: vec![
                        PlanEdge {
                            kind: EndpointKind::InputFile("weird name\n[0/2]".into()),
                            from: None,
                            to: Some(0),
                        },
                        PlanEdge {
                            kind: EndpointKind::StdoutPipe,
                            from: Some(0),
                            to: None,
                        },
                    ],
                    replayable: false,
                }),
            ],
        };
        let dump = plan.dump();
        let parsed = ExecutionPlan::parse_dump(&dump).expect("parse");
        assert_eq!(parsed, plan);
        assert_eq!(parsed.dump(), dump);
    }

    #[test]
    fn parse_dump_rejects_corruption() {
        let plan = lowered_with("cat in.txt | sort | uniq -c > o", 4, SplitPolicy::Sized);
        let dump = plan.dump();
        // Whole-file damage: bad header, truncation mid-region.
        assert!(ExecutionPlan::parse_dump("plan v2\n").is_err());
        assert!(ExecutionPlan::parse_dump(&dump[..dump.len() / 2]).is_err());
        // Structural damage: an edge id pushed out of range must be
        // caught by validation, not trusted.
        let broken = dump.replace("e0", "e99");
        assert!(ExecutionPlan::parse_dump(&broken).is_err());
        // Line-level junk.
        let mut with_junk = dump.clone();
        with_junk.push_str("gibberish step\n");
        assert!(ExecutionPlan::parse_dump(&with_junk).is_err());
        // The pristine dump still parses (the mutations above did not
        // accidentally target a universally-fatal property).
        assert!(ExecutionPlan::parse_dump(&dump).is_ok());
    }

    #[test]
    fn topological_node_order() {
        let plan = lowered("cat in.txt | tr A-Z a-z | sort | uniq -c > o", 8);
        for r in plan.regions() {
            for (i, n) in r.nodes.iter().enumerate() {
                for &e in &n.inputs {
                    if let Some(p) = r.edges[e].from {
                        assert!(p < i, "producer {p} not before consumer {i}");
                    }
                }
            }
        }
    }
}
