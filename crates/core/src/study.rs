//! The parallelizability study of POSIX and GNU Coreutils (§3.1,
//! Tab. 1).
//!
//! The catalog assigns each command its *default* class (flags refine
//! the class through annotations, §3.2). Counts match the paper's
//! Tab. 1: Coreutils S/P/N/E = 22/8/13/57, POSIX = 28/9/13/105.
//!
//! The assignments follow the class definitions: stateless commands
//! are per-line maps/filters; parallelizable-pure commands keep
//! aggregate state with a divide-and-conquer decomposition;
//! non-parallelizable-pure commands have order-dependent state
//! (hashes, global analyses); everything that touches the filesystem,
//! environment, or kernel interfaces — or has no data path at all —
//! is side-effectful.

use crate::classes::ParClass;

/// Which standard library a command belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    /// The POSIX.1-2017 utilities.
    Posix,
    /// GNU Coreutils.
    Coreutils,
}

/// GNU Coreutils commands in class S (stateless).
pub const COREUTILS_STATELESS: &[&str] = &[
    "base32", "base64", "basename", "cat", "cut", "dirname", "echo", "expand", "factor", "fmt",
    "fold", "join", "numfmt", "paste", "pathchk", "printf", "ptx", "seq", "tr", "unexpand", "yes",
    "pr",
];

/// GNU Coreutils commands in class P (parallelizable pure).
pub const COREUTILS_PURE: &[&str] = &["sort", "uniq", "wc", "comm", "tac", "head", "tail", "nl"];

/// GNU Coreutils commands in class N (non-parallelizable pure).
pub const COREUTILS_NONPAR: &[&str] = &[
    "b2sum",
    "cksum",
    "md5sum",
    "sha1sum",
    "sha224sum",
    "sha256sum",
    "sha384sum",
    "sha512sum",
    "sum",
    "tsort",
    "shuf",
    "od",
    "csplit",
];

/// GNU Coreutils commands in class E (side-effectful).
pub const COREUTILS_SIDE_EFFECTFUL: &[&str] = &[
    "arch",
    "chcon",
    "chgrp",
    "chmod",
    "chown",
    "chroot",
    "cp",
    "date",
    "dd",
    "df",
    "dircolors",
    "du",
    "env",
    "false",
    "groups",
    "hostid",
    "hostname",
    "id",
    "install",
    "kill",
    "link",
    "ln",
    "logname",
    "ls",
    "mkdir",
    "mkfifo",
    "mknod",
    "mktemp",
    "mv",
    "nice",
    "nohup",
    "nproc",
    "printenv",
    "pwd",
    "readlink",
    "realpath",
    "rm",
    "rmdir",
    "runcon",
    "shred",
    "sleep",
    "split",
    "stat",
    "stdbuf",
    "stty",
    "sync",
    "tee",
    "test",
    "timeout",
    "touch",
    "truncate",
    "tty",
    "uname",
    "unlink",
    "who",
    "whoami",
    "true",
];

/// POSIX utilities in class S (stateless).
pub const POSIX_STATELESS: &[&str] = &[
    "asa",
    "basename",
    "cat",
    "compress",
    "cut",
    "dd",
    "dirname",
    "echo",
    "egrep",
    "expand",
    "fgrep",
    "fold",
    "grep",
    "iconv",
    "join",
    "paste",
    "pathchk",
    "printf",
    "sed",
    "strings",
    "tr",
    "uncompress",
    "unexpand",
    "uudecode",
    "uuencode",
    "zcat",
    "what",
    "col",
];

/// POSIX utilities in class P (parallelizable pure).
pub const POSIX_PURE: &[&str] = &[
    "comm", "head", "nl", "pr", "sort", "tail", "uniq", "wc", "xargs",
];

/// POSIX utilities in class N (non-parallelizable pure).
pub const POSIX_NONPAR: &[&str] = &[
    "awk", "bc", "cksum", "cmp", "diff", "m4", "od", "patch", "tsort", "ctags", "cflow", "cxref",
    "nm",
];

/// POSIX utilities in class E (side-effectful).
pub const POSIX_SIDE_EFFECTFUL: &[&str] = &[
    "admin",
    "alias",
    "ar",
    "at",
    "batch",
    "bg",
    "cal",
    "cd",
    "chgrp",
    "chmod",
    "chown",
    "command",
    "cp",
    "crontab",
    "csplit",
    "date",
    "df",
    "du",
    "ed",
    "env",
    "ex",
    "expr",
    "false",
    "fc",
    "fg",
    "file",
    "find",
    "fuser",
    "gencat",
    "get",
    "getconf",
    "getopts",
    "hash",
    "id",
    "ipcrm",
    "ipcs",
    "jobs",
    "kill",
    "lex",
    "link",
    "ln",
    "locale",
    "localedef",
    "logger",
    "logname",
    "lp",
    "ls",
    "mailx",
    "make",
    "man",
    "mesg",
    "mkdir",
    "mkfifo",
    "more",
    "mv",
    "newgrp",
    "nice",
    "nohup",
    "pax",
    "ps",
    "pwd",
    "qalter",
    "qdel",
    "qhold",
    "qmove",
    "qmsg",
    "qrerun",
    "qrls",
    "qselect",
    "qsig",
    "qstat",
    "qsub",
    "read",
    "renice",
    "rm",
    "rmdel",
    "rmdir",
    "sact",
    "sccs",
    "sh",
    "sleep",
    "split",
    "strip",
    "stty",
    "tabs",
    "talk",
    "tee",
    "test",
    "time",
    "touch",
    "tput",
    "true",
    "tty",
    "type",
    "ulimit",
    "umask",
    "unalias",
    "uname",
    "unget",
    "unlink",
    "uucp",
    "uustat",
    "uux",
    "val",
    "vi",
];

/// Returns `(class, members)` rows for one suite, in Tab. 1 order.
pub fn suite_rows(suite: Suite) -> [(ParClass, &'static [&'static str]); 4] {
    match suite {
        Suite::Coreutils => [
            (ParClass::Stateless, COREUTILS_STATELESS),
            (ParClass::Pure, COREUTILS_PURE),
            (ParClass::NonParallelizable, COREUTILS_NONPAR),
            (ParClass::SideEffectful, COREUTILS_SIDE_EFFECTFUL),
        ],
        Suite::Posix => [
            (ParClass::Stateless, POSIX_STATELESS),
            (ParClass::Pure, POSIX_PURE),
            (ParClass::NonParallelizable, POSIX_NONPAR),
            (ParClass::SideEffectful, POSIX_SIDE_EFFECTFUL),
        ],
    }
}

/// Total command count of a suite.
pub fn suite_total(suite: Suite) -> usize {
    suite_rows(suite).iter().map(|(_, m)| m.len()).sum()
}

/// Looks up the default class of a command in a suite.
pub fn default_class(suite: Suite, name: &str) -> Option<ParClass> {
    for (class, members) in suite_rows(suite) {
        if members.contains(&name) {
            return Some(class);
        }
    }
    None
}

/// Renders Tab. 1 as text (the `tab1` harness prints this).
pub fn render_table1() -> String {
    let mut out = String::new();
    out.push_str("Class                      Key  Examples              Coreutils      POSIX\n");
    let examples = [
        ("Stateless", "S", "tr, cat, grep"),
        ("Parallelizable Pure", "P", "sort, wc, uniq"),
        ("Non-parallelizable Pure", "N", "sha1sum"),
        ("Side-effectful", "E", "env, cp, whoami"),
    ];
    let core = suite_rows(Suite::Coreutils);
    let posix = suite_rows(Suite::Posix);
    let core_total = suite_total(Suite::Coreutils) as f64;
    let posix_total = suite_total(Suite::Posix) as f64;
    for (i, (name, key, ex)) in examples.iter().enumerate() {
        let c = core[i].1.len();
        let p = posix[i].1.len();
        out.push_str(&format!(
            "{name:<26} {key}    {ex:<20} {c:>3} ({:>4.1}%)  {p:>3} ({:>4.1}%)\n",
            c as f64 / core_total * 100.0,
            p as f64 / posix_total * 100.0,
        ));
    }
    out.push_str(&format!(
        "{:<26}      {:<20} {:>3}          {:>3}\n",
        "Total", "", core_total as usize, posix_total as usize
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_table1() {
        assert_eq!(COREUTILS_STATELESS.len(), 22);
        assert_eq!(COREUTILS_PURE.len(), 8);
        assert_eq!(COREUTILS_NONPAR.len(), 13);
        assert_eq!(COREUTILS_SIDE_EFFECTFUL.len(), 57);
        assert_eq!(POSIX_STATELESS.len(), 28);
        assert_eq!(POSIX_PURE.len(), 9);
        assert_eq!(POSIX_NONPAR.len(), 13);
        assert_eq!(POSIX_SIDE_EFFECTFUL.len(), 105);
    }

    #[test]
    fn totals_match_table1() {
        assert_eq!(suite_total(Suite::Coreutils), 100);
        assert_eq!(suite_total(Suite::Posix), 155);
    }

    #[test]
    fn no_duplicates_within_suite() {
        for suite in [Suite::Coreutils, Suite::Posix] {
            let mut all: Vec<&str> = Vec::new();
            for (_, members) in suite_rows(suite) {
                all.extend(members);
            }
            let n = all.len();
            all.sort_unstable();
            all.dedup();
            assert_eq!(all.len(), n, "duplicate command in {suite:?} catalog");
        }
    }

    #[test]
    fn paper_examples_classified() {
        // Tab. 1's example column.
        assert_eq!(
            default_class(Suite::Coreutils, "tr"),
            Some(ParClass::Stateless)
        );
        assert_eq!(
            default_class(Suite::Coreutils, "cat"),
            Some(ParClass::Stateless)
        );
        assert_eq!(
            default_class(Suite::Coreutils, "sort"),
            Some(ParClass::Pure)
        );
        assert_eq!(default_class(Suite::Coreutils, "wc"), Some(ParClass::Pure));
        assert_eq!(
            default_class(Suite::Coreutils, "uniq"),
            Some(ParClass::Pure)
        );
        assert_eq!(
            default_class(Suite::Coreutils, "sha1sum"),
            Some(ParClass::NonParallelizable)
        );
        assert_eq!(
            default_class(Suite::Coreutils, "env"),
            Some(ParClass::SideEffectful)
        );
        assert_eq!(
            default_class(Suite::Coreutils, "whoami"),
            Some(ParClass::SideEffectful)
        );
        assert_eq!(
            default_class(Suite::Posix, "grep"),
            Some(ParClass::Stateless)
        );
        assert_eq!(
            default_class(Suite::Posix, "awk"),
            Some(ParClass::NonParallelizable)
        );
    }

    #[test]
    fn unknown_command_has_no_class() {
        assert_eq!(default_class(Suite::Posix, "kubectl"), None);
    }

    #[test]
    fn render_contains_counts() {
        let t = render_table1();
        assert!(t.contains("22"));
        assert!(t.contains("105"));
        assert!(t.contains("sha1sum"));
    }
}
