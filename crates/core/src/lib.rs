//! PaSh core: the paper's primary contribution.
//!
//! Given a POSIX shell script, this crate
//!
//! 1. classifies each command invocation through the annotation
//!    library ([`annot`], §3);
//! 2. identifies parallelizable regions and lifts them into the
//!    order-aware dataflow-graph model ([`frontend`], [`dfg`], §4–5.1);
//! 3. applies semantics-preserving parallelization transformations
//!    ([`dfg::transform`], §4.2);
//! 4. lowers the transformed graphs to a backend-neutral
//!    [`plan::ExecutionPlan`] — the flat IR every execution engine
//!    consumes ([`plan`]);
//! 5. compiles the plan back into a POSIX script that orchestrates
//!    the parallel execution with FIFOs, background jobs, and runtime
//!    primitives ([`backend`], §5.2) — one [`plan::Backend`] among
//!    several.
//!
//! Execution engines live elsewhere: `pash-runtime` runs compiled
//! plans on real threads (correctness), `pash-sim` predicts their
//! timing on a C-core machine (performance shape). Both are
//! [`plan::Backend`] implementations; the `pash` facade selects one
//! by name.
//!
//! # Examples
//!
//! ```
//! use pash_core::compile::{compile, PashConfig};
//!
//! let cfg = PashConfig { width: 4, ..Default::default() };
//! let out = compile("cat in.txt | tr A-Z a-z | grep foo > out.txt", &cfg).unwrap();
//! assert!(out.script.contains("mkfifo"));
//! ```

pub mod annot;
pub mod backend;
pub mod classes;
pub mod compile;
pub mod dfg;
pub mod frontend;
pub mod optimize;
pub mod plan;
pub mod study;

pub use classes::ParClass;

/// Errors from compilation.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Shell parsing failed.
    Parse(pash_parser::Error),
    /// An annotation record was malformed.
    Annotation(String),
    /// A DFG invariant was violated.
    Dfg(String),
    /// Front-end translation failed.
    Frontend(String),
}

impl Error {
    pub(crate) fn annotation(msg: impl Into<String>) -> Self {
        Error::Annotation(msg.into())
    }

    pub(crate) fn dfg(msg: impl Into<String>) -> Self {
        Error::Dfg(msg.into())
    }

    pub(crate) fn frontend(msg: impl Into<String>) -> Self {
        Error::Frontend(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Parse(e) => write!(f, "parse: {e}"),
            Error::Annotation(m) => write!(f, "annotation: {m}"),
            Error::Dfg(m) => write!(f, "dfg: {m}"),
            Error::Frontend(m) => write!(f, "frontend: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<pash_parser::Error> for Error {
    fn from(e: pash_parser::Error) -> Self {
        Error::Parse(e)
    }
}
