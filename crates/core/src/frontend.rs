//! The PaSh front-end (§5.1): parallelizable regions and AST → DFG
//! translation.
//!
//! A *parallelizable region* is a maximal program fragment composable
//! from pipelines (`|`) and parallel composition (`&`). Barriers —
//! `;`, newlines, `&&`, `||`, and control flow — bound regions.
//! Translation is conservative: a region is lifted only when every
//! word in it expands statically (unset variables, command
//! substitutions, globs, and unusual redirections all cause the
//! fragment to be left as shell text, exactly as written).

use pash_parser::ast::{
    AndOr, AndOrOp, Command, CompleteCommand, CompoundCommand, Pipeline, Program, RedirOp,
    Separator, SimpleCommand,
};
use pash_parser::expand::{expand_word, expand_word_single, StaticEnv, WordExpansion};
use pash_parser::unparse;

use crate::annot::stdlib::{aggregator_for, map_for, AnnotationLibrary};
use crate::annot::InputSlot;
use crate::classes::ParClass;
use crate::dfg::{Dfg, Edge, EdgeId, Node, NodeKind, StreamSpec};
use crate::Error;

/// One step of a compiled program, executed in order.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// A parallelizable region lifted to a DFG.
    Region(Dfg),
    /// A fragment kept as shell text (barriers, dynamic fragments).
    Shell(String),
    /// Run the next step only if the previous succeeded (`&&`) or
    /// failed (`||`).
    Guard(AndOrOp),
}

/// A program after front-end translation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TranslatedProgram {
    /// Steps in execution order.
    pub steps: Vec<Step>,
}

impl TranslatedProgram {
    /// Number of DFG regions.
    pub fn region_count(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, Step::Region(_)))
            .count()
    }

    /// Iterates the DFG regions.
    pub fn regions(&self) -> impl Iterator<Item = &Dfg> {
        self.steps.iter().filter_map(|s| match s {
            Step::Region(g) => Some(g),
            _ => None,
        })
    }

    /// Mutable iteration over the DFG regions.
    pub fn regions_mut(&mut self) -> impl Iterator<Item = &mut Dfg> {
        self.steps.iter_mut().filter_map(|s| match s {
            Step::Region(g) => Some(g),
            _ => None,
        })
    }
}

/// Front-end options.
#[derive(Debug, Clone, Default)]
pub struct FrontendOptions {
    /// Initial static environment.
    pub env: StaticEnv,
    /// Unroll `for` loops whose word lists are static, compiling each
    /// iteration with the loop variable bound (the paper's running
    /// example relies on per-iteration compilation).
    pub unroll_for: bool,
}

/// Translates a parsed program into steps.
pub fn translate(
    prog: &Program,
    lib: &AnnotationLibrary,
    opts: &FrontendOptions,
) -> Result<TranslatedProgram, Error> {
    let mut fe = Frontend {
        lib,
        env: opts.env.clone(),
        unroll_for: opts.unroll_for,
        out: TranslatedProgram::default(),
    };
    for cc in &prog.commands {
        fe.complete_command(cc)?;
    }
    Ok(fe.out)
}

struct Frontend<'a> {
    lib: &'a AnnotationLibrary,
    env: StaticEnv,
    unroll_for: bool,
    out: TranslatedProgram,
}

impl Frontend<'_> {
    fn complete_command(&mut self, cc: &CompleteCommand) -> Result<(), Error> {
        // Group runs of `&`-separated and-or items: they parallel-
        // compose into one region when every one of them compiles.
        let mut i = 0;
        while i < cc.items.len() {
            let (ao, sep) = &cc.items[i];
            if *sep == Separator::Async {
                // Collect the `&` run: items i..j joined by `&`, plus
                // the item after the last `&`.
                let mut j = i;
                while j < cc.items.len() && cc.items[j].1 == Separator::Async {
                    j += 1;
                }
                let run: Vec<&AndOr> = cc.items[i..=j.min(cc.items.len() - 1)]
                    .iter()
                    .map(|(a, _)| a)
                    .collect();
                self.async_run(&run)?;
                i = j + 1;
                continue;
            }
            self.and_or(ao)?;
            i += 1;
        }
        Ok(())
    }

    /// A run of and-ors joined by `&` (task parallelism): merge into
    /// one region when all compile; otherwise emit as shell text.
    fn async_run(&mut self, run: &[&AndOr]) -> Result<(), Error> {
        let all_simple = run.iter().all(|ao| ao.rest.is_empty());
        if all_simple {
            let mut merged = Dfg::new();
            let mut ok = true;
            for ao in run {
                if self.pipeline_into(&ao.first, &mut merged).is_err() {
                    ok = false;
                    break;
                }
            }
            if ok {
                self.out.steps.push(Step::Region(merged));
                return Ok(());
            }
        }
        // Fallback: shell text with original separators.
        let mut text = String::new();
        for (k, ao) in run.iter().enumerate() {
            text.push_str(&and_or_text(ao));
            if k + 1 < run.len() {
                text.push_str(" & ");
            }
        }
        // Track assignments even on the fallback path.
        for ao in run {
            self.track_pipeline_env(&ao.first);
        }
        self.out.steps.push(Step::Shell(text));
        Ok(())
    }

    fn and_or(&mut self, ao: &AndOr) -> Result<(), Error> {
        self.pipeline_step(&ao.first)?;
        for (op, p) in &ao.rest {
            self.out.steps.push(Step::Guard(*op));
            self.pipeline_step(p)?;
        }
        Ok(())
    }

    /// Emits one pipeline as a region or as shell text.
    fn pipeline_step(&mut self, p: &Pipeline) -> Result<(), Error> {
        // Assignment-only commands update the environment and stay as
        // shell text.
        if let [Command::Simple(sc)] = p.commands.as_slice() {
            if sc.words.is_empty() && sc.redirects.is_empty() && !sc.assignments.is_empty() {
                self.track_assignments(sc);
                self.out
                    .steps
                    .push(Step::Shell(unparse::pipeline_to_string(p)));
                return Ok(());
            }
        }
        // Compound commands: recurse for `for` unrolling, otherwise
        // barrier.
        if let [Command::Compound(CompoundCommand::For { var, words, body }, redirects)] =
            p.commands.as_slice()
        {
            if self.unroll_for && redirects.is_empty() && !p.bang {
                if let Some(ws) = words {
                    let mut values = Vec::new();
                    let mut all_static = true;
                    for w in ws {
                        match expand_word(w, &self.env) {
                            WordExpansion::Fields(fs) => values.extend(fs),
                            WordExpansion::Dynamic => {
                                all_static = false;
                                break;
                            }
                        }
                    }
                    if all_static {
                        let saved = self.env.clone();
                        for v in values {
                            self.env.set(var.clone(), v);
                            for cc in body {
                                self.complete_command(cc)?;
                            }
                        }
                        self.env = saved;
                        return Ok(());
                    }
                }
            }
        }
        let mut g = Dfg::new();
        match self.pipeline_into(p, &mut g) {
            Ok(()) => {
                self.out.steps.push(Step::Region(g));
                Ok(())
            }
            Err(_) => {
                self.track_pipeline_env(p);
                self.out
                    .steps
                    .push(Step::Shell(unparse::pipeline_to_string(p)));
                Ok(())
            }
        }
    }

    /// Records static assignments that occur anywhere in a pipeline we
    /// are keeping as shell text (so later regions see the bindings).
    fn track_pipeline_env(&mut self, p: &Pipeline) {
        for c in &p.commands {
            if let Command::Simple(sc) = c {
                if sc.words.is_empty() {
                    self.track_assignments(sc);
                }
            }
        }
    }

    fn track_assignments(&mut self, sc: &SimpleCommand) {
        for a in &sc.assignments {
            match expand_word_single(&a.value, &self.env) {
                Some(v) => self.env.set(a.name.clone(), v),
                None => self.env.unset(&a.name),
            }
        }
    }

    /// Translates one pipeline into (a fresh part of) a DFG.
    fn pipeline_into(&self, p: &Pipeline, g: &mut Dfg) -> Result<(), Error> {
        if p.bang {
            return Err(Error::frontend("`!` pipelines are not translated"));
        }
        if p.commands.is_empty() {
            return Err(Error::frontend("empty pipeline"));
        }
        let mut prev_edge: Option<EdgeId> = None;
        let n = p.commands.len();
        for (ci, cmd) in p.commands.iter().enumerate() {
            let sc = match cmd {
                Command::Simple(sc) => sc,
                _ => return Err(Error::frontend("compound command inside pipeline")),
            };
            if !sc.assignments.is_empty() {
                return Err(Error::frontend("per-command assignments are dynamic"));
            }
            // Expand argv.
            let mut argv: Vec<String> = Vec::new();
            for w in &sc.words {
                match expand_word(w, &self.env) {
                    WordExpansion::Fields(fs) => argv.extend(fs),
                    WordExpansion::Dynamic => {
                        return Err(Error::frontend(format!(
                            "dynamic word in `{}`",
                            unparse::pipeline_to_string(p)
                        )))
                    }
                }
            }
            if argv.is_empty() {
                return Err(Error::frontend("empty command"));
            }
            // Redirections: `< file` anywhere, `> file` on the last
            // command only.
            let mut stdin_file: Option<String> = None;
            let mut stdout_file: Option<String> = None;
            for r in &sc.redirects {
                let target = expand_word_single(&r.target, &self.env)
                    .ok_or_else(|| Error::frontend("dynamic redirect target"))?;
                match r.op {
                    RedirOp::Read => stdin_file = Some(target),
                    RedirOp::Write if ci + 1 == n => stdout_file = Some(target),
                    _ => {
                        return Err(Error::frontend(format!(
                            "unsupported redirection in `{}`",
                            unparse::pipeline_to_string(p)
                        )))
                    }
                }
            }
            // Classify; unknown commands run sequentially in place.
            let (class, inputs, static_files, stream_argv, agg, map) =
                match self.lib.classify(&argv) {
                    Some(c) => {
                        let (agg, map) = if c.class == ParClass::Pure {
                            (aggregator_for(&argv), map_for(&argv))
                        } else {
                            (None, None)
                        };
                        (c.class, c.inputs, c.static_files, c.stream_argv, agg, map)
                    }
                    None => (
                        ParClass::SideEffectful,
                        vec![InputSlot::Stdin],
                        Vec::new(),
                        argv.clone(),
                        None,
                        None,
                    ),
                };
            // Resolve input slots to edges.
            let mut input_edges = Vec::with_capacity(inputs.len());
            let mut used_prev = false;
            for slot in &inputs {
                let e = match slot {
                    InputSlot::Stdin => {
                        if ci == 0 {
                            // Region boundary: `< file` or the
                            // script's stdin.
                            match (&stdin_file, ci) {
                                (Some(f), _) => g.add_edge(Edge {
                                    spec: StreamSpec::File(f.clone()),
                                    from: None,
                                    to: None,
                                }),
                                (None, _) => g.add_edge(Edge {
                                    spec: StreamSpec::Pipe,
                                    from: None,
                                    to: None,
                                }),
                            }
                        } else {
                            used_prev = true;
                            prev_edge.ok_or_else(|| {
                                Error::frontend("pipeline stage missing upstream pipe")
                            })?
                        }
                    }
                    InputSlot::File(f) => g.add_edge(Edge {
                        spec: StreamSpec::File(f.clone()),
                        from: None,
                        to: None,
                    }),
                };
                input_edges.push(e);
            }
            if ci > 0 && !used_prev {
                return Err(Error::frontend(
                    "pipeline stage ignores its upstream pipe (not translatable)",
                ));
            }
            if ci == 0 && stdin_file.is_some() && !inputs.contains(&InputSlot::Stdin) {
                return Err(Error::frontend(
                    "stdin redirect on a command that does not read stdin",
                ));
            }
            // Build the node. A plain `cat` *is* the DFG's
            // concatenation primitive — normalizing it lets the
            // parallelization transformation commute through it
            // (Fig. 4).
            let is_plain_cat = {
                let core: Vec<&String> = stream_argv
                    .iter()
                    .filter(|a| a.as_str() != "-" && crate::annot::parse_stream_marker(a).is_none())
                    .collect();
                core.len() == 1 && core[0] == "cat"
            };
            let kind = if is_plain_cat {
                NodeKind::Cat
            } else {
                NodeKind::Command {
                    argv: stream_argv,
                    class,
                    static_files,
                    agg,
                    map,
                }
            };
            let node_id = g.add_node(Node {
                kind,
                inputs: input_edges.clone(),
                outputs: vec![],
            });
            for e in input_edges {
                g.edge_mut(e).to = Some(node_id);
            }
            let out_spec = match (&stdout_file, ci + 1 == n) {
                (Some(f), true) => StreamSpec::File(f.clone()),
                _ => StreamSpec::Pipe,
            };
            let out_edge = g.add_edge(Edge {
                spec: out_spec,
                from: Some(node_id),
                to: None,
            });
            g.node_mut(node_id).expect("just added").outputs = vec![out_edge];
            prev_edge = Some(out_edge);
        }
        g.validate()?;
        Ok(())
    }
}

fn and_or_text(ao: &AndOr) -> String {
    let mut s = unparse::pipeline_to_string(&ao.first);
    for (op, p) in &ao.rest {
        s.push_str(match op {
            AndOrOp::AndIf => " && ",
            AndOrOp::OrIf => " || ",
        });
        s.push_str(&unparse::pipeline_to_string(p));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfg::NodeKind;

    fn translate_src(src: &str) -> TranslatedProgram {
        let prog = pash_parser::parse(src).expect("parse");
        translate(
            &prog,
            AnnotationLibrary::standard(),
            &FrontendOptions {
                unroll_for: true,
                ..Default::default()
            },
        )
        .expect("translate")
    }

    fn first_region(tp: &TranslatedProgram) -> &Dfg {
        tp.regions().next().expect("at least one region")
    }

    #[test]
    fn simple_pipeline_is_one_region() {
        let tp = translate_src("cat in.txt | tr A-Z a-z | grep x > out.txt");
        assert_eq!(tp.region_count(), 1);
        let g = first_region(&tp);
        assert_eq!(g.node_count(), 3);
        // Input is the file, output is the file.
        assert!(matches!(
            g.edge(g.input_edges()[0]).spec,
            StreamSpec::File(_)
        ));
        assert!(matches!(
            g.edge(g.output_edges()[0]).spec,
            StreamSpec::File(_)
        ));
    }

    #[test]
    fn barriers_split_regions() {
        let tp = translate_src("cat a | grep x > t; sort t > u");
        assert_eq!(tp.region_count(), 2);
    }

    #[test]
    fn and_or_emits_guards() {
        let tp = translate_src("grep x a > t && sort t");
        assert_eq!(tp.region_count(), 2);
        assert!(tp
            .steps
            .iter()
            .any(|s| matches!(s, Step::Guard(AndOrOp::AndIf))));
    }

    #[test]
    fn async_pipelines_merge_into_one_region() {
        // The Diff benchmark shape.
        let tp = translate_src("sort a > t1 & sort b > t2");
        assert_eq!(tp.region_count(), 1);
        let g = first_region(&tp);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.input_edges().len(), 2);
        assert_eq!(g.output_edges().len(), 2);
    }

    #[test]
    fn dynamic_word_falls_back_to_shell() {
        let tp = translate_src("grep $PATTERN file.txt");
        assert_eq!(tp.region_count(), 0);
        assert!(matches!(tp.steps.as_slice(), [Step::Shell(_)]));
    }

    #[test]
    fn known_assignment_enables_translation() {
        let tp = translate_src("pat=foo\ngrep $pat file.txt > o");
        assert_eq!(tp.region_count(), 1);
        let g = first_region(&tp);
        let node = g.node(g.topo_order()[0]).expect("node");
        match &node.kind {
            NodeKind::Command { argv, .. } => {
                // The streamed file arg became the `-` stdin operand.
                assert_eq!(
                    argv,
                    &vec!["grep".to_string(), "foo".to_string(), "-".to_string()]
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dynamic_assignment_poisons_variable() {
        let tp = translate_src("pat=$(cat f)\ngrep $pat file.txt");
        assert_eq!(tp.region_count(), 0);
    }

    #[test]
    fn command_substitution_is_conservative() {
        let tp = translate_src("grep $(head -n1 p) file.txt");
        assert_eq!(tp.region_count(), 0);
    }

    #[test]
    fn unknown_command_still_in_region_as_side_effectful() {
        let tp = translate_src("cat a.txt | frobnicate | grep x");
        assert_eq!(tp.region_count(), 1);
        let g = first_region(&tp);
        let classes: Vec<ParClass> = g
            .topo_order()
            .iter()
            .filter_map(|&id| match &g.node(id).expect("live").kind {
                NodeKind::Command { class, .. } => Some(*class),
                _ => None,
            })
            .collect();
        // `cat` was normalized to the DFG Cat primitive; the two
        // remaining command nodes are the unknown one and grep.
        assert_eq!(classes, vec![ParClass::SideEffectful, ParClass::Stateless]);
    }

    #[test]
    fn comm_static_input_recorded() {
        let tp = translate_src("sort words | comm -13 dict.txt -");
        let g = first_region(&tp);
        let comm_id = g
            .topo_order()
            .into_iter()
            .find(|&id| g.node(id).expect("live").label().starts_with("comm"))
            .expect("comm node");
        match &g.node(comm_id).expect("live").kind {
            NodeKind::Command {
                static_files,
                class,
                ..
            } => {
                assert_eq!(static_files, &vec!["dict.txt".to_string()]);
                assert_eq!(*class, ParClass::Stateless);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn for_loop_unrolls_with_static_words() {
        let tp =
            translate_src("for y in {2015..2017}; do cat data-$y.txt | grep x > out-$y.txt; done");
        assert_eq!(tp.region_count(), 3);
        let inputs: Vec<String> = tp
            .regions()
            .map(|g| match &g.edge(g.input_edges()[0]).spec {
                StreamSpec::File(f) => f.clone(),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(
            inputs,
            vec!["data-2015.txt", "data-2016.txt", "data-2017.txt"]
        );
    }

    #[test]
    fn loop_variable_scoping_restored() {
        let tp =
            translate_src("y=global\nfor y in 1 2; do cat f-$y > o-$y; done\ncat f-$y > o-final");
        // Two unrolled regions + the final one using y=global.
        assert_eq!(tp.region_count(), 3);
        let last = tp.regions().last().expect("last region");
        match &last.edge(last.input_edges()[0]).spec {
            StreamSpec::File(f) => assert_eq!(f, "f-global"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sort_gets_aggregator() {
        let tp = translate_src("sort -rn data.txt > out");
        let g = first_region(&tp);
        match &g.node(g.topo_order()[0]).expect("live").kind {
            NodeKind::Command { agg, .. } => {
                assert_eq!(
                    agg.as_deref(),
                    Some(&["pash-agg-sort".to_string(), "-rn".to_string()][..])
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn append_redirect_is_conservative() {
        let tp = translate_src("grep x f >> log");
        assert_eq!(tp.region_count(), 0);
    }

    #[test]
    fn stdin_redirect_binds_first_command() {
        let tp = translate_src("tr A-Z a-z < in.txt > out.txt");
        let g = first_region(&tp);
        assert!(matches!(
            g.edge(g.input_edges()[0]).spec,
            StreamSpec::File(ref f) if f == "in.txt"
        ));
    }

    #[test]
    fn weather_for_loop_shape() {
        // A local-mirror version of Fig. 1's body.
        let src = r#"base=mirror
for y in {2015..2016}; do
  cat $base/$y/index.txt | grep rec | cut -d " " -f9 |
  sed "s;^;$base/$y/;" | xargs -n 1 fetch | unrle |
  cut -c 89-92 | grep -iv 999 | sort -rn | head -n 1 |
  sed "s/^/Maximum temperature for $y is: /" > out-$y.txt
done"#;
        let tp = translate_src(src);
        assert_eq!(tp.region_count(), 2);
        for g in tp.regions() {
            // 11 stages: cat, grep, cut, sed, xargs, unrle, cut,
            // grep, sort, head, sed.
            assert_eq!(g.node_count(), 11);
            g.validate().expect("valid");
        }
    }
}
