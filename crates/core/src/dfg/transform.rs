//! Graph transformations (§4.2): the parallelization transformation
//! `T` for stateless and parallelizable-pure nodes, plus the auxiliary
//! transformations `t1` (cat-insertion), `t2` (split+cat insertion),
//! and `t3` (eager relay insertion).
//!
//! All transformations preserve the graph's observable behaviour: `T`
//! is justified by the stateless law `f(x·x') = f(x)·f(x')` and the
//! map/aggregate law `f(x·x') = agg(m(x)·m(x'))` (both property-tested
//! against the real command implementations in the runtime crate).

use crate::classes::{rr_mode, RrMode};
use crate::dfg::graph::{
    Dfg, EagerKind, Edge, EdgeId, Node, NodeId, NodeKind, SplitKind, StreamSpec,
};

/// Split insertion policy (the Fig. 7 `Split` axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitPolicy {
    /// No split nodes; only whole files at the graph boundary are
    /// divided (via byte-range segments, which need no process).
    #[default]
    Off,
    /// Insert general (count-then-scatter) splits on pipe inputs.
    General,
    /// Like `General`, but inputs of known size use the streaming
    /// input-aware splitter (`B.Split`).
    Sized,
    /// Order-aware round-robin distribution (`r_split`): capable nodes
    /// (see [`crate::classes::rr_mode`]) read tagged or raw blocks from
    /// a streaming round-robin splitter — no cut-point probing, and
    /// balanced regardless of line-length skew. Stateless copies emit
    /// tagged frames that a `pash-agg-reorder` aggregator restores to
    /// input order; incapable nodes fall back to the `Sized` behaviour.
    RoundRobin,
}

/// Eager-relay insertion policy (the Fig. 7 `Eager` axis, §5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EagerPolicy {
    /// No relays: raw FIFOs with their laziness problems.
    Off,
    /// Bounded-buffer relays.
    Blocking,
    /// Unbounded eager relays (the paper's default).
    #[default]
    Full,
}

/// Shape of the aggregation network for class-P nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AggTreeShape {
    /// A balanced binary tree of 2-input aggregators (the paper's
    /// `sort` at 8× spawns 7 aggregators; Tab. 2's node counts).
    #[default]
    Binary,
    /// One flat n-input aggregator.
    Flat,
}

/// Transformation configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransformConfig {
    /// Parallelism width (paper: 2–64).
    pub width: usize,
    /// Split policy.
    pub split: SplitPolicy,
    /// Eager policy.
    pub eager: EagerPolicy,
    /// Aggregation-tree shape.
    pub agg_tree: AggTreeShape,
}

impl Default for TransformConfig {
    fn default() -> Self {
        TransformConfig {
            width: 2,
            split: SplitPolicy::Off,
            eager: EagerPolicy::Full,
            agg_tree: AggTreeShape::Binary,
        }
    }
}

/// Applies all transformations to the graph.
///
/// Walks the original nodes in topological order, applying `t1`/`t2`
/// to expose a concatenation in front of each parallelizable node and
/// then commuting it through (`T`). Finishes with the `t3` eager pass.
pub fn parallelize(g: &mut Dfg, cfg: &TransformConfig) {
    if cfg.width >= 2 {
        let order = g.topo_order();
        for id in order {
            if g.node(id).map(|n| n.is_parallelizable()).unwrap_or(false) {
                try_parallelize_node(g, id, cfg);
            }
        }
    }
    insert_eager_relays(g, cfg.eager);
    debug_assert!(g.validate().is_ok(), "transformations broke the DFG");
}

/// The parallelization transformation `T` on one node.
fn try_parallelize_node(g: &mut Dfg, id: NodeId, cfg: &TransformConfig) {
    // t1: multiple inputs are first concatenated.
    if g.node(id).expect("live node").inputs.len() > 1 {
        insert_cat_before(g, id);
    }
    let input_edge = g.node(id).expect("live node").inputs[0];
    // Round-robin capability of this node under the RoundRobin policy.
    let rr = if cfg.split == SplitPolicy::RoundRobin {
        node_rr_mode(g.node(id).expect("live node"))
    } else {
        RrMode::No
    };
    // Find (or create) the parallel sources feeding this node. The
    // `framed` flag records whether the sources carry tagged blocks
    // (round-robin frames) rather than contiguous byte streams; framed
    // copies are recombined with a reordering aggregator.
    let (sources, framed): (Vec<EdgeId>, bool) = match g.edge(input_edge).from {
        // A preceding cat: commute with it (consume its inputs).
        Some(p) if matches!(g.node(p).expect("live node").kind, NodeKind::Cat) => {
            let srcs = g.node(p).expect("live node").inputs.clone();
            g.remove_node(p);
            // Retire the cat→node edge; the copies consume the cat's
            // inputs directly.
            g.edge_mut(input_edge).from = None;
            g.edge_mut(input_edge).to = None;
            if srcs.len() == 1 {
                // Single-input cat is the identity: bypass it and try
                // again against whatever feeds it.
                g.edge_mut(srcs[0]).to = Some(id);
                g.node_mut(id).expect("live node").inputs = vec![srcs[0]];
                return try_parallelize_node(g, id, cfg);
            }
            (srcs, false)
        }
        // A preceding reorder aggregator and a frame-capable node:
        // commute through it (consume the still-framed streams), the
        // round-robin analogue of the cat commute. A fresh reorder is
        // built over this node's copies below.
        Some(p) if rr == RrMode::Framed && is_reorder(&g.node(p).expect("live node").kind) => {
            let srcs = g.node(p).expect("live node").inputs.clone();
            g.remove_node(p);
            g.edge_mut(input_edge).from = None;
            g.edge_mut(input_edge).to = None;
            (srcs, true)
        }
        // A whole file at the graph boundary: round-robin-capable
        // nodes stream it through `r_split`; others divide it into
        // byte-range segments (no process needed).
        None => match g.edge(input_edge).spec.clone() {
            StreamSpec::File(path) if rr == RrMode::No => {
                (segment_file_edge(g, input_edge, &path, cfg.width), false)
            }
            _ => match split_sources(g, id, input_edge, cfg, rr) {
                Some(s) => s,
                None => return,
            },
        },
        // A pipe from a non-cat producer: needs a split node (t2).
        Some(_) => match split_sources(g, id, input_edge, cfg, rr) {
            Some(s) => s,
            None => return,
        },
    };
    if sources.len() < 2 {
        return;
    }
    let n = sources.len();
    let node = g.node(id).expect("live node").clone();
    let output_edge = node.outputs[0];
    // Each copy reads one source on stdin; stream markers (positions
    // of further streamed args) disappear with the concatenation.
    let copy_kind = sanitize_copy_kind(&node.kind);
    // Spawn n copies, one per source.
    let mut copy_outputs = Vec::with_capacity(n);
    for src in sources {
        let copy_id = g.add_node(Node {
            kind: copy_kind.clone(),
            inputs: vec![src],
            outputs: vec![],
        });
        g.edge_mut(src).to = Some(copy_id);
        let out = g.add_edge(Edge {
            spec: StreamSpec::Pipe,
            from: Some(copy_id),
            to: None,
        });
        g.node_mut(copy_id).expect("just added").outputs.push(out);
        copy_outputs.push(out);
    }
    // Combine copy outputs: cat for S, aggregation network for P.
    let agg = match &node.kind {
        NodeKind::Command { agg, class, .. } if *class == crate::classes::ParClass::Pure => {
            agg.clone()
        }
        _ => None,
    };
    let combined = match agg {
        // Framed copies emit tagged blocks; a flat reordering
        // aggregator restores global input order (binary trees would
        // strip the frames an outer reorder still needs, so the shape
        // is always flat — see `aggregator_associative`).
        None if framed => build_agg_network(
            g,
            &copy_outputs,
            &[REORDER_AGG.to_string()],
            AggTreeShape::Flat,
        ),
        None => {
            let cat_id = g.add_node(Node {
                kind: NodeKind::Cat,
                inputs: copy_outputs.clone(),
                outputs: vec![],
            });
            for &e in &copy_outputs {
                g.edge_mut(e).to = Some(cat_id);
            }
            cat_id
        }
        // Framed class-P copies (uniq, uniq -c) emit one output block
        // per tagged input block; the frame-merge wrapper restores tag
        // order and re-applies the boundary fold incrementally. It
        // consumes frames but emits bare lines, so the network must be
        // one flat node.
        Some(agg_argv) if framed => {
            let mut argv = vec![FRAME_MERGE_AGG.to_string()];
            argv.extend(agg_argv.iter().cloned());
            build_agg_network(g, &copy_outputs, &argv, AggTreeShape::Flat)
        }
        Some(agg_argv) => {
            // The paper's aggregators are k-ary ("they work with more
            // than two inputs", §5.2); a binary tree is an equivalent
            // network only when the aggregator is associative — its
            // output must be in the same format as its inputs. The
            // bigram aggregator projects marked chunks to clean pairs,
            // so it must see all chunks at once.
            let shape = if aggregator_associative(&agg_argv) {
                cfg.agg_tree
            } else {
                AggTreeShape::Flat
            };
            build_agg_network(g, &copy_outputs, &agg_argv, shape)
        }
    };
    // Rewire the original output edge to the combiner and retire the
    // original node. The binary aggregation network created its own
    // final edge; retire it first.
    let old_outs = g.node(combined).expect("combiner").outputs.clone();
    for e in old_outs {
        g.edge_mut(e).from = None;
        g.edge_mut(e).to = None;
    }
    g.edge_mut(output_edge).from = Some(combined);
    g.node_mut(combined).expect("combiner").outputs = vec![output_edge];
    g.remove_node(id);
}

/// The reordering aggregator's argv head.
pub const REORDER_AGG: &str = "pash-agg-reorder";

/// The frame-merge wrapper's argv head: restores tag order over framed
/// class-P copy outputs and re-applies the wrapped boundary fold.
pub const FRAME_MERGE_AGG: &str = "pash-agg-frame-merge";

/// True when `kind` is the reordering aggregator.
fn is_reorder(kind: &NodeKind) -> bool {
    matches!(kind, NodeKind::Aggregate { argv }
        if argv.first().map(|s| s == REORDER_AGG).unwrap_or(false))
}

/// The round-robin capability of a node.
fn node_rr_mode(node: &Node) -> RrMode {
    match &node.kind {
        NodeKind::Command { class, agg, .. } => rr_mode(*class, agg.as_deref()),
        _ => RrMode::No,
    }
}

/// True when an aggregator's output format equals its input format,
/// making binary reduction trees equivalent to one k-ary application.
fn aggregator_associative(argv: &[String]) -> bool {
    // The bigram aggregator consumes *marked* map output but produces
    // clean pairs — a projection, not a monoid operation. The reorder
    // and frame-merge aggregators likewise consume tagged frames but
    // emit bare payloads, so an inner copy would strip the frames an
    // outer one still needs.
    match argv.first() {
        Some(s) => s != "pash-agg-bigram" && s != REORDER_AGG && s != FRAME_MERGE_AGG,
        None => true,
    }
}

/// Builds the argv parallel copies execute: the declared map command
/// when one exists, else the original argv with stream markers
/// removed (each copy reads its single source on stdin).
fn sanitize_copy_kind(kind: &NodeKind) -> NodeKind {
    match kind {
        NodeKind::Command {
            argv,
            class,
            static_files,
            agg,
            map,
        } => NodeKind::Command {
            argv: match map {
                Some(m) => m.clone(),
                None => argv
                    .iter()
                    .filter(|a| crate::annot::parse_stream_marker(a).is_none())
                    .cloned()
                    .collect(),
            },
            class: *class,
            static_files: static_files.clone(),
            agg: agg.clone(),
            map: None,
        },
        other => other.clone(),
    }
}

/// t1: inserts a cat node in front of a multi-input node.
fn insert_cat_before(g: &mut Dfg, id: NodeId) {
    let inputs = g.node(id).expect("live node").inputs.clone();
    let cat_out = g.add_edge(Edge {
        spec: StreamSpec::Pipe,
        from: None,
        to: Some(id),
    });
    let cat_id = g.add_node(Node {
        kind: NodeKind::Cat,
        inputs: inputs.clone(),
        outputs: vec![cat_out],
    });
    g.edge_mut(cat_out).from = Some(cat_id);
    for e in inputs {
        g.edge_mut(e).to = Some(cat_id);
    }
    g.node_mut(id).expect("live node").inputs = vec![cat_out];
}

/// Divides a boundary file edge into `width` line-aligned segments.
fn segment_file_edge(g: &mut Dfg, edge: EdgeId, path: &str, width: usize) -> Vec<EdgeId> {
    let consumer = g.edge(edge).to;
    let mut out = Vec::with_capacity(width);
    for part in 0..width {
        let e = g.add_edge(Edge {
            spec: StreamSpec::FileSegment {
                path: path.to_string(),
                part,
                of: width,
            },
            from: None,
            to: consumer,
        });
        out.push(e);
    }
    // Retire the original edge (it keeps its slot but loses its
    // consumer so it is no longer an input edge).
    g.edge_mut(edge).to = None;
    if let Some(c) = consumer {
        let node = g.node_mut(c).expect("consumer");
        node.inputs.retain(|&e| e != edge);
        node.inputs.extend(&out);
    }
    out
}

/// t2: inserts a split node feeding `width` streams.
///
/// Returns the split's output edges plus whether they carry tagged
/// round-robin frames.
fn split_sources(
    g: &mut Dfg,
    consumer: NodeId,
    input_edge: EdgeId,
    cfg: &TransformConfig,
    rr: RrMode,
) -> Option<(Vec<EdgeId>, bool)> {
    let kind = match rr {
        RrMode::Framed => SplitKind::RoundRobin { framed: true },
        RrMode::Raw => SplitKind::RoundRobin { framed: false },
        RrMode::No => match (cfg.split, &g.edge(input_edge).spec) {
            (SplitPolicy::Off, _) => return None,
            (
                SplitPolicy::Sized | SplitPolicy::RoundRobin,
                StreamSpec::File(_) | StreamSpec::FileSegment { .. },
            ) => SplitKind::Sized,
            _ => SplitKind::General,
        },
    };
    let split_id = g.add_node(Node {
        kind: NodeKind::Split(kind),
        inputs: vec![input_edge],
        outputs: vec![],
    });
    g.edge_mut(input_edge).to = Some(split_id);
    let mut out = Vec::with_capacity(cfg.width);
    for _ in 0..cfg.width {
        let e = g.add_edge(Edge {
            spec: StreamSpec::Pipe,
            from: Some(split_id),
            to: None,
        });
        g.node_mut(split_id).expect("split").outputs.push(e);
        out.push(e);
    }
    // The consumer no longer reads the original edge directly.
    g.node_mut(consumer)
        .expect("consumer")
        .inputs
        .retain(|&e| e != input_edge);
    Some((out, matches!(kind, SplitKind::RoundRobin { framed: true })))
}

/// Builds the aggregation network over ordered partial outputs.
fn build_agg_network(
    g: &mut Dfg,
    parts: &[EdgeId],
    agg_argv: &[String],
    shape: AggTreeShape,
) -> NodeId {
    match shape {
        AggTreeShape::Flat => {
            let id = g.add_node(Node {
                kind: NodeKind::Aggregate {
                    argv: agg_argv.to_vec(),
                },
                inputs: parts.to_vec(),
                outputs: vec![],
            });
            for &e in parts {
                g.edge_mut(e).to = Some(id);
            }
            id
        }
        AggTreeShape::Binary => {
            // Reduce pairwise, preserving stream order, until one
            // producer remains. For n parts this creates n-1 nodes
            // (the paper's 7 aggregators for sort at 8×).
            let mut layer: Vec<EdgeId> = parts.to_vec();
            loop {
                if layer.len() == 1 {
                    let only = layer[0];
                    return g.edge(only).from.expect("aggregated edge has producer");
                }
                let mut next = Vec::with_capacity(layer.len().div_ceil(2));
                let mut i = 0;
                while i < layer.len() {
                    if i + 1 == layer.len() {
                        // Odd stream passes through to the next level.
                        next.push(layer[i]);
                        i += 1;
                        continue;
                    }
                    let (a, b) = (layer[i], layer[i + 1]);
                    let id = g.add_node(Node {
                        kind: NodeKind::Aggregate {
                            argv: agg_argv.to_vec(),
                        },
                        inputs: vec![a, b],
                        outputs: vec![],
                    });
                    g.edge_mut(a).to = Some(id);
                    g.edge_mut(b).to = Some(id);
                    let out = g.add_edge(Edge {
                        spec: StreamSpec::Pipe,
                        from: Some(id),
                        to: None,
                    });
                    g.node_mut(id).expect("agg").outputs.push(out);
                    next.push(out);
                    i += 2;
                }
                layer = next;
            }
        }
    }
}

/// t3: inserts relay nodes per the eager policy.
///
/// Relays go on every aggregator input, on every split output except
/// the last, and on every cat-merge input except the first (§5.2) —
/// the points where the shell's lazy evaluation stalls producers. The
/// cat case is Fig. 6 verbatim: `cat t1 t2` leaves `t2`'s producer
/// blocked on a full FIFO until `t1` is drained.
fn insert_eager_relays(g: &mut Dfg, policy: EagerPolicy) {
    let kind = match policy {
        EagerPolicy::Off => return,
        EagerPolicy::Blocking => EagerKind::Blocking,
        EagerPolicy::Full => EagerKind::Full,
    };
    let ids: Vec<NodeId> = g.node_ids().collect();
    for id in ids {
        let node = g.node(id).expect("live id").clone();
        match node.kind {
            NodeKind::Aggregate { .. } => {
                for &e in &node.inputs {
                    insert_relay_on_edge(g, e, kind);
                }
            }
            NodeKind::Split(_) => {
                for &e in &node.outputs[..node.outputs.len().saturating_sub(1)] {
                    insert_relay_on_edge(g, e, kind);
                }
            }
            NodeKind::Cat if node.inputs.len() > 1 => {
                for &e in &node.inputs[1..] {
                    // Only pipes stall; files are seekable.
                    if matches!(g.edge(e).spec, StreamSpec::Pipe) {
                        insert_relay_on_edge(g, e, kind);
                    }
                }
            }
            _ => {}
        }
    }
}

/// Splices `producer -> e -> consumer` into
/// `producer -> e -> relay -> e' -> consumer`.
fn insert_relay_on_edge(g: &mut Dfg, e: EdgeId, kind: EagerKind) {
    let consumer = match g.edge(e).to {
        Some(c) => c,
        None => return,
    };
    let out = g.add_edge(Edge {
        spec: StreamSpec::Pipe,
        from: None,
        to: Some(consumer),
    });
    let relay = g.add_node(Node {
        kind: NodeKind::Relay(kind),
        inputs: vec![e],
        outputs: vec![out],
    });
    g.edge_mut(out).from = Some(relay);
    g.edge_mut(e).to = Some(relay);
    let cnode = g.node_mut(consumer).expect("consumer");
    for slot in cnode.inputs.iter_mut() {
        if *slot == e {
            *slot = out;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::ParClass;
    use crate::dfg::graph::{command_node, linear_pipeline, DfgStats};

    fn grep_pipeline() -> Dfg {
        linear_pipeline(
            vec![
                command_node(&["tr", "A-Z", "a-z"], ParClass::Stateless, None),
                command_node(&["grep", "x"], ParClass::Stateless, None),
                command_node(&["tr", "-d", "q"], ParClass::Stateless, None),
            ],
            StreamSpec::File("in.txt".into()),
            StreamSpec::File("out.txt".into()),
        )
    }

    fn sort_pipeline() -> Dfg {
        linear_pipeline(
            vec![
                command_node(&["tr", "A-Z", "a-z"], ParClass::Stateless, None),
                command_node(
                    &["sort"],
                    ParClass::Pure,
                    Some(vec!["pash-agg-sort".to_string()]),
                ),
            ],
            StreamSpec::File("in.txt".into()),
            StreamSpec::File("out.txt".into()),
        )
    }

    fn stats_after(mut g: Dfg, cfg: &TransformConfig) -> DfgStats {
        parallelize(&mut g, cfg);
        g.validate().expect("valid after transform");
        g.stats()
    }

    #[test]
    fn width_one_is_identity() {
        let g0 = grep_pipeline();
        let mut g = g0.clone();
        parallelize(
            &mut g,
            &TransformConfig {
                width: 1,
                ..Default::default()
            },
        );
        assert_eq!(g.stats().total(), g0.stats().total());
    }

    #[test]
    fn stateless_pipeline_matches_tab2_grep_counts() {
        // Tab. 2: Grep (3×S) has 49 nodes at 16× and 193 at 64× — the
        // paper's count excludes relays on the final merge; we match
        // it exactly with eager disabled.
        for (width, expected) in [(16, 49), (64, 193)] {
            let s = stats_after(
                grep_pipeline(),
                &TransformConfig {
                    width,
                    eager: EagerPolicy::Off,
                    ..Default::default()
                },
            );
            assert_eq!(s.commands, 3 * width);
            assert_eq!(s.cats, 1);
            assert_eq!(s.total(), expected, "width {width}");
        }
        // With eager on, the cat-merge inputs gain width-1 relays
        // (the Fig. 6 fix).
        let s = stats_after(
            grep_pipeline(),
            &TransformConfig {
                width: 16,
                ..Default::default()
            },
        );
        assert_eq!(s.relays, 15);
        assert_eq!(s.total(), 64);
    }

    #[test]
    fn sort_pipeline_matches_tab2_sort_counts() {
        // Tab. 2: Sort (S,P) has 77 nodes at 16× and 317 at 64×:
        // width×tr + width×sort + (width-1) aggs + 2(width-1) eagers.
        for (width, expected) in [(16, 77), (64, 317)] {
            let s = stats_after(
                sort_pipeline(),
                &TransformConfig {
                    width,
                    ..Default::default()
                },
            );
            assert_eq!(s.commands, 2 * width);
            assert_eq!(s.aggregates, width - 1);
            assert_eq!(s.relays, 2 * (width - 1));
            assert_eq!(s.total(), expected, "width {width}");
        }
    }

    #[test]
    fn sort_at_8x_matches_paper_discussion() {
        // §6.1: "Sort in 8× spawns 37 nodes: 8 tr, 8 sort, 7
        // aggregation nodes, and 14 relay nodes."
        let s = stats_after(
            sort_pipeline(),
            &TransformConfig {
                width: 8,
                ..Default::default()
            },
        );
        assert_eq!(s.commands, 16);
        assert_eq!(s.aggregates, 7);
        assert_eq!(s.relays, 14);
    }

    #[test]
    fn flat_agg_tree_single_aggregator() {
        let s = stats_after(
            sort_pipeline(),
            &TransformConfig {
                width: 8,
                agg_tree: AggTreeShape::Flat,
                ..Default::default()
            },
        );
        assert_eq!(s.aggregates, 1);
        assert_eq!(s.relays, 8);
    }

    #[test]
    fn no_eager_policy_inserts_no_relays() {
        let s = stats_after(
            sort_pipeline(),
            &TransformConfig {
                width: 8,
                eager: EagerPolicy::Off,
                ..Default::default()
            },
        );
        assert_eq!(s.relays, 0);
    }

    #[test]
    fn pure_without_aggregator_stays_sequential() {
        let g = linear_pipeline(
            vec![command_node(&["paste", "-"], ParClass::Pure, None)],
            StreamSpec::File("in.txt".into()),
            StreamSpec::Pipe,
        );
        let s = stats_after(
            g,
            &TransformConfig {
                width: 8,
                ..Default::default()
            },
        );
        assert_eq!(s.commands, 1);
    }

    #[test]
    fn non_parallelizable_class_untouched() {
        let g = linear_pipeline(
            vec![command_node(
                &["sha1sum"],
                ParClass::NonParallelizable,
                None,
            )],
            StreamSpec::File("in.txt".into()),
            StreamSpec::Pipe,
        );
        let s = stats_after(
            g,
            &TransformConfig {
                width: 8,
                ..Default::default()
            },
        );
        assert_eq!(s.commands, 1);
        assert_eq!(s.total(), 1);
    }

    #[test]
    fn stage_after_aggregation_needs_split() {
        // sort | grep: grep's input comes from the aggregator; without
        // split it stays sequential, with split it parallelizes.
        let pipeline = || {
            linear_pipeline(
                vec![
                    command_node(
                        &["sort"],
                        ParClass::Pure,
                        Some(vec!["pash-agg-sort".to_string()]),
                    ),
                    command_node(&["grep", "x"], ParClass::Stateless, None),
                ],
                StreamSpec::File("in.txt".into()),
                StreamSpec::Pipe,
            )
        };
        let without = stats_after(
            pipeline(),
            &TransformConfig {
                width: 4,
                split: SplitPolicy::Off,
                ..Default::default()
            },
        );
        // 4 sorts + 1 grep.
        assert_eq!(without.commands, 5);
        assert_eq!(without.splits, 0);
        let with = stats_after(
            pipeline(),
            &TransformConfig {
                width: 4,
                split: SplitPolicy::General,
                ..Default::default()
            },
        );
        // 4 sorts + 4 greps + a split.
        assert_eq!(with.commands, 8);
        assert_eq!(with.splits, 1);
    }

    #[test]
    fn split_outputs_get_relays_except_last() {
        let g = linear_pipeline(
            vec![
                command_node(
                    &["sort"],
                    ParClass::Pure,
                    Some(vec!["pash-agg-sort".to_string()]),
                ),
                command_node(&["grep", "x"], ParClass::Stateless, None),
            ],
            StreamSpec::File("in.txt".into()),
            StreamSpec::Pipe,
        );
        let s = stats_after(
            g,
            &TransformConfig {
                width: 4,
                split: SplitPolicy::General,
                ..Default::default()
            },
        );
        // 2×(width-1) on agg inputs + (width-1) on split outputs +
        // (width-1) on the final cat-merge inputs.
        assert_eq!(s.relays, 4 * 3);
    }

    #[test]
    fn deep_stateless_chain_commutes_single_final_cat() {
        // A chain of k stateless stages ends with exactly one cat.
        let g = grep_pipeline();
        let mut g2 = g;
        parallelize(
            &mut g2,
            &TransformConfig {
                width: 4,
                ..Default::default()
            },
        );
        assert_eq!(g2.stats().cats, 1);
        // All graph inputs are segments of the original file.
        for e in g2.input_edges() {
            assert!(matches!(
                g2.edge(e).spec,
                StreamSpec::FileSegment { of: 4, .. }
            ));
        }
    }

    #[test]
    fn pipe_input_without_split_stays_sequential() {
        let g = linear_pipeline(
            vec![command_node(&["grep", "x"], ParClass::Stateless, None)],
            StreamSpec::Pipe,
            StreamSpec::Pipe,
        );
        let s = stats_after(
            g,
            &TransformConfig {
                width: 8,
                split: SplitPolicy::Off,
                ..Default::default()
            },
        );
        assert_eq!(s.total(), 1);
    }

    #[test]
    fn round_robin_chains_stateless_through_one_reorder() {
        // Under the RoundRobin policy a 3-stage stateless chain gets
        // one framed r_split at the file boundary, the downstream
        // stages commute through the intermediate reorders, and one
        // flat reorder restores order at the end.
        let mut g = grep_pipeline();
        parallelize(
            &mut g,
            &TransformConfig {
                width: 4,
                split: SplitPolicy::RoundRobin,
                ..Default::default()
            },
        );
        g.validate().expect("valid");
        let s = g.stats();
        assert_eq!(s.commands, 12);
        assert_eq!(s.cats, 0);
        assert_eq!(s.splits, 1);
        assert_eq!(s.aggregates, 1);
        // width relays on the reorder inputs + width-1 on split outputs.
        assert_eq!(s.relays, 4 + 3);
        let has_rr = g.node_ids().any(|id| {
            matches!(
                g.node(id).expect("live").kind,
                NodeKind::Split(SplitKind::RoundRobin { framed: true })
            )
        });
        assert!(has_rr, "expected a framed round-robin split");
        let reorders = g
            .node_ids()
            .filter(|&id| is_reorder(&g.node(id).expect("live").kind))
            .count();
        assert_eq!(reorders, 1);
    }

    #[test]
    fn round_robin_raw_for_commutative_aggregator() {
        // `wc` aggregates with the commutative pash-agg-wc: blocks may
        // flow untagged and the normal aggregation network combines.
        let mut g = linear_pipeline(
            vec![command_node(
                &["wc", "-l"],
                ParClass::Pure,
                Some(vec!["pash-agg-wc".to_string()]),
            )],
            StreamSpec::File("in.txt".into()),
            StreamSpec::Pipe,
        );
        parallelize(
            &mut g,
            &TransformConfig {
                width: 4,
                split: SplitPolicy::RoundRobin,
                ..Default::default()
            },
        );
        g.validate().expect("valid");
        let has_raw = g.node_ids().any(|id| {
            matches!(
                g.node(id).expect("live").kind,
                NodeKind::Split(SplitKind::RoundRobin { framed: false })
            )
        });
        assert!(has_raw, "expected a raw round-robin split");
        let reorders = g
            .node_ids()
            .filter(|&id| is_reorder(&g.node(id).expect("live").kind))
            .count();
        assert_eq!(reorders, 0, "commutative agg needs no reorder");
        assert_eq!(g.stats().aggregates, 3, "binary pash-agg-wc tree");
    }

    #[test]
    fn round_robin_order_sensitive_falls_back_to_segments() {
        // A keyed sort compares a projection of the line, so equal
        // keys tie-break by input partition; under RoundRobin it must
        // keep the segment path: tr commutes into an r_split+reorder
        // chain only when capable — the sort gets no round-robin split.
        let mut g = linear_pipeline(
            vec![
                command_node(&["tr", "A-Z", "a-z"], ParClass::Stateless, None),
                command_node(
                    &["sort", "-k", "2"],
                    ParClass::Pure,
                    Some(
                        ["pash-agg-sort", "-k", "2"]
                            .iter()
                            .map(|s| s.to_string())
                            .collect(),
                    ),
                ),
            ],
            StreamSpec::File("in.txt".into()),
            StreamSpec::File("out.txt".into()),
        );
        parallelize(
            &mut g,
            &TransformConfig {
                width: 4,
                split: SplitPolicy::RoundRobin,
                ..Default::default()
            },
        );
        g.validate().expect("valid");
        for id in g.node_ids() {
            if let NodeKind::Split(kind) = g.node(id).expect("live").kind {
                if matches!(kind, SplitKind::RoundRobin { .. }) {
                    // Only the stateless `tr` may sit behind it.
                    for &e in &g.node(id).expect("live").outputs {
                        let consumer = g.edge(e).to.expect("consumed");
                        let label = g.node(consumer).expect("live").label();
                        assert!(
                            label.starts_with("eager") || label.starts_with("tr"),
                            "round-robin split feeds {label}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn round_robin_raw_for_total_order_sort() {
        // Plain `sort` compares whole lines — a total order, so equal
        // lines are byte-identical and the merge commutes: blocks may
        // flow untagged straight into the usual aggregation tree.
        let mut g = sort_pipeline();
        parallelize(
            &mut g,
            &TransformConfig {
                width: 4,
                split: SplitPolicy::RoundRobin,
                ..Default::default()
            },
        );
        g.validate().expect("valid");
        // tr commutes through a framed chain; sort consumes a raw
        // split of the reorder output.
        let has_raw = g.node_ids().any(|id| {
            matches!(
                g.node(id).expect("live").kind,
                NodeKind::Split(SplitKind::RoundRobin { framed: false })
            )
        });
        assert!(has_raw, "expected a raw round-robin split for sort");
        let sort_aggs = g
            .node_ids()
            .filter(|&id| {
                matches!(&g.node(id).expect("live").kind, NodeKind::Aggregate { argv }
                    if argv.first().map(|s| s == "pash-agg-sort").unwrap_or(false))
            })
            .count();
        assert_eq!(sort_aggs, 3, "binary pash-agg-sort tree at width 4");
    }

    #[test]
    fn round_robin_framed_pure_wraps_fold_in_frame_merge() {
        // `uniq -c` folds only at block boundaries, so its copies may
        // consume tagged blocks; the combiner is one flat frame-merge
        // wrapping the boundary fold, not a reorder.
        let mut g = linear_pipeline(
            vec![
                command_node(&["tr", "A-Z", "a-z"], ParClass::Stateless, None),
                command_node(
                    &["uniq", "-c"],
                    ParClass::Pure,
                    Some(vec!["pash-agg-uniq-c".to_string()]),
                ),
            ],
            StreamSpec::File("in.txt".into()),
            StreamSpec::Pipe,
        );
        parallelize(
            &mut g,
            &TransformConfig {
                width: 4,
                split: SplitPolicy::RoundRobin,
                ..Default::default()
            },
        );
        g.validate().expect("valid");
        // The uniq copies commute through tr's reorder: one framed
        // split feeds both stages, no reorder survives, and the only
        // aggregator is the frame-merge wrapper.
        let s = g.stats();
        assert_eq!(s.commands, 8);
        assert_eq!(s.splits, 1);
        assert_eq!(s.aggregates, 1);
        let reorders = g
            .node_ids()
            .filter(|&id| is_reorder(&g.node(id).expect("live").kind))
            .count();
        assert_eq!(reorders, 0, "frame-merge subsumes the reorder");
        let merge = g
            .node_ids()
            .find_map(|id| match &g.node(id).expect("live").kind {
                NodeKind::Aggregate { argv }
                    if argv.first().map(|s| s == FRAME_MERGE_AGG).unwrap_or(false) =>
                {
                    Some(argv.clone())
                }
                _ => None,
            });
        assert_eq!(
            merge.expect("frame-merge aggregator"),
            vec![FRAME_MERGE_AGG.to_string(), "pash-agg-uniq-c".to_string()]
        );
    }

    #[test]
    fn sized_split_used_for_file_inputs_only() {
        let g = linear_pipeline(
            vec![
                command_node(
                    &["sort"],
                    ParClass::Pure,
                    Some(vec!["pash-agg-sort".to_string()]),
                ),
                command_node(&["grep", "x"], ParClass::Stateless, None),
            ],
            StreamSpec::File("in.txt".into()),
            StreamSpec::Pipe,
        );
        let mut g2 = g;
        parallelize(
            &mut g2,
            &TransformConfig {
                width: 4,
                split: SplitPolicy::Sized,
                ..Default::default()
            },
        );
        // The split after the aggregator reads a pipe ⇒ General.
        let has_general = g2.node_ids().any(|id| {
            matches!(
                g2.node(id).expect("live").kind,
                NodeKind::Split(SplitKind::General)
            )
        });
        assert!(has_general);
    }
}
