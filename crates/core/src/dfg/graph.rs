//! The order-aware dataflow graph model (§4.1).
//!
//! Nodes are commands, edges are streams (pipes or files). The two
//! properties that distinguish this DFG from classic models, and that
//! the transformations rely on:
//!
//! 1. each node records the *order* in which it consumes its inputs;
//! 2. file arguments that act as per-copy configuration ("static
//!    inputs", e.g. `comm -13 dict -`'s dictionary) are not edges at
//!    all — they replicate with the node.

use crate::classes::ParClass;

/// Index of a node in its graph.
pub type NodeId = usize;
/// Index of an edge in its graph.
pub type EdgeId = usize;

/// What a stream edge is backed by.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamSpec {
    /// An anonymous pipe (instantiated as a FIFO by the back-end).
    Pipe,
    /// A named file.
    File(String),
    /// A byte-range segment of a file, aligned to line boundaries:
    /// part `part` of `of`. This is how PaSh divides an input file of
    /// known size without a split process (§5.2, input-aware split).
    FileSegment {
        /// Path of the underlying file.
        path: String,
        /// 0-based segment index.
        part: usize,
        /// Total number of segments.
        of: usize,
    },
}

/// A stream edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// Backing stream.
    pub spec: StreamSpec,
    /// Producing node, if any (`None` = graph input).
    pub from: Option<NodeId>,
    /// Consuming node, if any (`None` = graph output).
    pub to: Option<NodeId>,
}

/// Buffering discipline of a relay node (§5.2, Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EagerKind {
    /// Bounded intermediate buffer: adds pipelining but still blocks.
    Blocking,
    /// Unbounded buffer: consumes input eagerly, never back-pressures
    /// the producer (the paper's `eager`).
    Full,
}

/// Which splitter implementation a split node uses (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitKind {
    /// Consumes its complete input, counts lines, splits evenly.
    General,
    /// Input size known beforehand: streams without a pre-pass.
    Sized,
    /// Round-robin block distribution (`r_split`): streams fixed-size
    /// line-aligned blocks to outputs in rotation, with no pre-pass and
    /// balanced load regardless of line-length skew. `framed` output
    /// stamps each block with a sequence tag (magic + tag + length) so
    /// a downstream `pash-agg-reorder` can restore global order; raw
    /// output sends bare bytes for commutative consumers.
    RoundRobin {
        /// Emit tagged frames (true) or bare blocks (false).
        framed: bool,
    },
}

/// Node kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// A command with its (stream-)argv and classification.
    Command {
        /// argv with streamed file args removed (stream on stdin).
        argv: Vec<String>,
        /// Parallelizability class of this invocation.
        class: ParClass,
        /// Static configuration files replicated with each copy.
        static_files: Vec<String>,
        /// Aggregator argv, when the command is class P and one is
        /// known (from [`crate::annot::stdlib::aggregator_for`]).
        agg: Option<Vec<String>>,
        /// Map argv for parallel copies, when it differs from the
        /// command itself (§3.2, Custom Aggregators: "map can consume
        /// (or extend) the output of the original command").
        map: Option<Vec<String>>,
    },
    /// Ordered concatenation of inputs (`cat`).
    Cat,
    /// One input, N outputs (§5.2's `split`).
    Split(SplitKind),
    /// Identity relay with a buffering discipline (`eager`, t3).
    Relay(EagerKind),
    /// A multi-input aggregation function (§5.2).
    Aggregate {
        /// Aggregator argv (a runtime command).
        argv: Vec<String>,
    },
}

/// A DFG node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// Node kind.
    pub kind: NodeKind,
    /// Input edges in consumption order.
    pub inputs: Vec<EdgeId>,
    /// Output edges (exactly one except for split nodes).
    pub outputs: Vec<EdgeId>,
}

impl Node {
    /// True when PaSh may divide this node's input.
    pub fn is_parallelizable(&self) -> bool {
        match &self.kind {
            NodeKind::Command { class, agg, .. } => match class {
                ParClass::Stateless => true,
                ParClass::Pure => agg.is_some(),
                _ => false,
            },
            _ => false,
        }
    }

    /// A short display label.
    pub fn label(&self) -> String {
        match &self.kind {
            NodeKind::Command { argv, .. } => argv.join(" "),
            NodeKind::Cat => "cat".to_string(),
            NodeKind::Split(SplitKind::General) => "split".to_string(),
            NodeKind::Split(SplitKind::Sized) => "split -sized".to_string(),
            NodeKind::Split(SplitKind::RoundRobin { framed: true }) => "split -rr".to_string(),
            NodeKind::Split(SplitKind::RoundRobin { framed: false }) => "split -rr-raw".to_string(),
            NodeKind::Relay(EagerKind::Full) => "eager".to_string(),
            NodeKind::Relay(EagerKind::Blocking) => "eager -blocking".to_string(),
            NodeKind::Aggregate { argv } => argv.join(" "),
        }
    }
}

/// A dataflow graph.
///
/// Nodes are stored in slots so ids stay stable across removals.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dfg {
    nodes: Vec<Option<Node>>,
    edges: Vec<Edge>,
}

/// Node-count statistics (for Tab. 2's `#Nodes` column).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DfgStats {
    /// Command (map) nodes.
    pub commands: usize,
    /// Cat nodes.
    pub cats: usize,
    /// Split nodes.
    pub splits: usize,
    /// Relay (eager) nodes.
    pub relays: usize,
    /// Aggregate nodes.
    pub aggregates: usize,
}

impl DfgStats {
    /// Total node count.
    pub fn total(&self) -> usize {
        self.commands + self.cats + self.splits + self.relays + self.aggregates
    }
}

impl Dfg {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node, returning its id. Edges must be connected by the
    /// caller (see [`Dfg::add_edge`] / field updates).
    pub fn add_node(&mut self, node: Node) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(Some(node));
        id
    }

    /// Adds an edge, returning its id.
    pub fn add_edge(&mut self, edge: Edge) -> EdgeId {
        let id = self.edges.len();
        self.edges.push(edge);
        id
    }

    /// Removes a node (its edges must have been rewired first).
    pub fn remove_node(&mut self, id: NodeId) {
        self.nodes[id] = None;
    }

    /// Immutable node access.
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id).and_then(|n| n.as_ref())
    }

    /// Mutable node access.
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut Node> {
        self.nodes.get_mut(id).and_then(|n| n.as_mut())
    }

    /// Immutable edge access.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id]
    }

    /// Mutable edge access.
    pub fn edge_mut(&mut self, id: EdgeId) -> &mut Edge {
        &mut self.edges[id]
    }

    /// Iterates live node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.as_ref().map(|_| i))
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.node_ids().count()
    }

    /// Number of edges (including dead ones kept for id stability).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Edges with no producer: the graph's inputs.
    pub fn input_edges(&self) -> Vec<EdgeId> {
        (0..self.edges.len())
            .filter(|&e| self.edges[e].from.is_none() && self.edges[e].to.is_some())
            .collect()
    }

    /// Edges with no consumer: the graph's outputs.
    pub fn output_edges(&self) -> Vec<EdgeId> {
        (0..self.edges.len())
            .filter(|&e| self.edges[e].to.is_none() && self.edges[e].from.is_some())
            .collect()
    }

    /// Per-kind node counts.
    pub fn stats(&self) -> DfgStats {
        let mut s = DfgStats::default();
        for id in self.node_ids() {
            match &self.node(id).expect("live id").kind {
                NodeKind::Command { .. } => s.commands += 1,
                NodeKind::Cat => s.cats += 1,
                NodeKind::Split(_) => s.splits += 1,
                NodeKind::Relay(_) => s.relays += 1,
                NodeKind::Aggregate { .. } => s.aggregates += 1,
            }
        }
        s
    }

    /// Topological order of live nodes.
    ///
    /// # Panics
    ///
    /// Panics if the graph contains a cycle (validation rejects those).
    pub fn topo_order(&self) -> Vec<NodeId> {
        let ids: Vec<NodeId> = self.node_ids().collect();
        let mut indegree: Vec<usize> = vec![0; self.nodes.len()];
        for &id in &ids {
            for &e in &self.node(id).expect("live id").inputs {
                if self.edges[e].from.is_some() {
                    indegree[id] += 1;
                }
            }
        }
        let mut queue: Vec<NodeId> = ids.iter().copied().filter(|&i| indegree[i] == 0).collect();
        queue.sort_unstable();
        let mut out = Vec::with_capacity(ids.len());
        let mut qi = 0;
        while qi < queue.len() {
            let id = queue[qi];
            qi += 1;
            out.push(id);
            for &e in &self.node(id).expect("live id").outputs {
                if let Some(next) = self.edges[e].to {
                    indegree[next] -= 1;
                    if indegree[next] == 0 {
                        queue.push(next);
                    }
                }
            }
        }
        assert_eq!(out.len(), ids.len(), "cycle in DFG");
        out
    }

    /// Checks structural invariants.
    ///
    /// * every edge endpoint refers to a live node that lists it;
    /// * every node's edges point back at the node;
    /// * the graph is acyclic;
    /// * non-split nodes have exactly one output.
    pub fn validate(&self) -> Result<(), crate::Error> {
        for id in self.node_ids() {
            let node = self.node(id).expect("live id");
            for &e in &node.inputs {
                if e >= self.edges.len() || self.edges[e].to != Some(id) {
                    return Err(crate::Error::dfg(format!(
                        "node {id} input edge {e} does not point back"
                    )));
                }
            }
            for &e in &node.outputs {
                if e >= self.edges.len() || self.edges[e].from != Some(id) {
                    return Err(crate::Error::dfg(format!(
                        "node {id} output edge {e} does not point back"
                    )));
                }
            }
            let is_split = matches!(node.kind, NodeKind::Split(_));
            if !is_split && node.outputs.len() != 1 {
                return Err(crate::Error::dfg(format!(
                    "node {id} ({}) has {} outputs",
                    node.label(),
                    node.outputs.len()
                )));
            }
            if is_split && node.outputs.len() < 2 {
                return Err(crate::Error::dfg(format!(
                    "split node {id} has fewer than 2 outputs"
                )));
            }
        }
        for (e, edge) in self.edges.iter().enumerate() {
            if let Some(n) = edge.from {
                let ok = self
                    .node(n)
                    .map(|node| node.outputs.contains(&e))
                    .unwrap_or(false);
                if !ok {
                    return Err(crate::Error::dfg(format!(
                        "edge {e} producer {n} does not list it"
                    )));
                }
            }
            if let Some(n) = edge.to {
                let ok = self
                    .node(n)
                    .map(|node| node.inputs.contains(&e))
                    .unwrap_or(false);
                if !ok {
                    return Err(crate::Error::dfg(format!(
                        "edge {e} consumer {n} does not list it"
                    )));
                }
            }
        }
        // Acyclicity: topo_order panics on cycles; do the check
        // manually to return an error instead.
        let ids: Vec<NodeId> = self.node_ids().collect();
        let mut indegree: Vec<usize> = vec![0; self.nodes.len()];
        for &id in &ids {
            for &e in &self.node(id).expect("live id").inputs {
                if self.edges[e].from.is_some() {
                    indegree[id] += 1;
                }
            }
        }
        let mut queue: Vec<NodeId> = ids.iter().copied().filter(|&i| indegree[i] == 0).collect();
        let mut seen = 0;
        let mut qi = 0;
        while qi < queue.len() {
            let id = queue[qi];
            qi += 1;
            seen += 1;
            for &e in &self.node(id).expect("live id").outputs {
                if let Some(next) = self.edges[e].to {
                    indegree[next] -= 1;
                    if indegree[next] == 0 {
                        queue.push(next);
                    }
                }
            }
        }
        if seen != ids.len() {
            return Err(crate::Error::dfg("cycle in DFG"));
        }
        Ok(())
    }

    /// Renders the graph as text (one node per line) for debugging and
    /// golden tests.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for id in self.topo_order() {
            let node = self.node(id).expect("live id");
            let ins: Vec<String> = node.inputs.iter().map(|e| edge_name(self, *e)).collect();
            let outs: Vec<String> = node.outputs.iter().map(|e| edge_name(self, *e)).collect();
            out.push_str(&format!(
                "n{id}: {} [{}] -> [{}]\n",
                node.label(),
                ins.join(", "),
                outs.join(", ")
            ));
        }
        out
    }
}

fn edge_name(g: &Dfg, e: EdgeId) -> String {
    match &g.edge(e).spec {
        StreamSpec::Pipe => format!("p{e}"),
        StreamSpec::File(f) => f.clone(),
        StreamSpec::FileSegment { path, part, of } => format!("{path}[{part}/{of}]"),
    }
}

/// Convenience: builds a linear pipeline DFG from command specs.
///
/// Used heavily in tests; the front-end builds graphs the same way.
pub fn linear_pipeline(commands: Vec<Node>, input: StreamSpec, output: StreamSpec) -> Dfg {
    let mut g = Dfg::new();
    let n = commands.len();
    let mut prev_edge = g.add_edge(Edge {
        spec: input,
        from: None,
        to: None,
    });
    for (i, mut node) in commands.into_iter().enumerate() {
        let id_hint = g.nodes.len();
        g.edges[prev_edge].to = Some(id_hint);
        node.inputs = vec![prev_edge];
        let out_spec = if i + 1 == n {
            output.clone()
        } else {
            StreamSpec::Pipe
        };
        let out_edge = g.add_edge(Edge {
            spec: out_spec,
            from: Some(id_hint),
            to: None,
        });
        node.outputs = vec![out_edge];
        let id = g.add_node(node);
        debug_assert_eq!(id, id_hint);
        prev_edge = out_edge;
    }
    g
}

/// Builds a command node (edges filled in later).
pub fn command_node(argv: &[&str], class: ParClass, agg: Option<Vec<String>>) -> Node {
    Node {
        kind: NodeKind::Command {
            argv: argv.iter().map(|s| s.to_string()).collect(),
            class,
            static_files: Vec::new(),
            agg,
            map: None,
        },
        inputs: Vec::new(),
        outputs: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dfg {
        linear_pipeline(
            vec![
                command_node(&["tr", "A-Z", "a-z"], ParClass::Stateless, None),
                command_node(
                    &["sort"],
                    ParClass::Pure,
                    Some(vec!["pash-agg-sort".to_string()]),
                ),
            ],
            StreamSpec::File("in.txt".into()),
            StreamSpec::File("out.txt".into()),
        )
    }

    #[test]
    fn linear_pipeline_shape() {
        let g = sample();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.input_edges().len(), 1);
        assert_eq!(g.output_edges().len(), 1);
        g.validate().expect("valid");
    }

    #[test]
    fn topo_order_is_pipeline_order() {
        let g = sample();
        assert_eq!(g.topo_order(), vec![0, 1]);
    }

    #[test]
    fn stats_count_kinds() {
        let g = sample();
        let s = g.stats();
        assert_eq!(s.commands, 2);
        assert_eq!(s.total(), 2);
    }

    #[test]
    fn validation_rejects_dangling_edge() {
        let mut g = sample();
        // Break: point edge 1's consumer at a node that does not list it.
        let e = g.node(1).expect("node").inputs[0];
        g.edge_mut(e).to = Some(0);
        assert!(g.validate().is_err());
    }

    #[test]
    fn validation_rejects_cycle() {
        let mut g = Dfg::new();
        let e1 = g.add_edge(Edge {
            spec: StreamSpec::Pipe,
            from: None,
            to: None,
        });
        let e2 = g.add_edge(Edge {
            spec: StreamSpec::Pipe,
            from: None,
            to: None,
        });
        let a = g.add_node(Node {
            kind: NodeKind::Cat,
            inputs: vec![e2],
            outputs: vec![e1],
        });
        let b = g.add_node(Node {
            kind: NodeKind::Cat,
            inputs: vec![e1],
            outputs: vec![e2],
        });
        g.edges[e1].from = Some(a);
        g.edges[e1].to = Some(b);
        g.edges[e2].from = Some(b);
        g.edges[e2].to = Some(a);
        assert!(g.validate().is_err());
    }

    #[test]
    fn parallelizable_requires_agg_for_pure() {
        let with_agg = command_node(&["sort"], ParClass::Pure, Some(vec!["x".into()]));
        assert!(with_agg.is_parallelizable());
        let without = command_node(&["paste"], ParClass::Pure, None);
        assert!(!without.is_parallelizable());
        let stateless = command_node(&["tr"], ParClass::Stateless, None);
        assert!(stateless.is_parallelizable());
    }

    #[test]
    fn render_lists_nodes() {
        let g = sample();
        let r = g.render();
        assert!(r.contains("tr A-Z a-z"));
        assert!(r.contains("in.txt"));
    }
}
