//! The dataflow graph model and its transformations (§4).

pub mod graph;
pub mod transform;

pub use graph::{
    command_node, linear_pipeline, Dfg, DfgStats, EagerKind, Edge, EdgeId, Node, NodeId, NodeKind,
    SplitKind, StreamSpec,
};
pub use transform::{parallelize, AggTreeShape, EagerPolicy, SplitPolicy, TransformConfig};
