//! Parallelizability classes (§3.1, Tab. 1).
//!
//! A class captures the synchronization commands running in parallel
//! copies require. The classes form a hierarchy ordered by ascending
//! difficulty of parallelization; a command under a set of flags is
//! classified by its *least parallelizable* interpretation.

/// The four parallelizability classes of §3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ParClass {
    /// S — stateless: a pure per-line map/filter. Parallel copies need
    /// no synchronization; outputs concatenate.
    Stateless,
    /// P — parallelizable pure: functionally pure with internal state;
    /// parallelizable as map + associative aggregate.
    Pure,
    /// N — non-parallelizable pure: pure, but state depends on all
    /// prior input non-trivially (e.g. `sha1sum`).
    NonParallelizable,
    /// E — side-effectful: interacts with the system beyond its
    /// streams; never touched by PaSh.
    SideEffectful,
}

impl ParClass {
    /// Returns the least parallelizable (maximum) of two classes.
    ///
    /// Used to combine the contributions of individual flags: "a
    /// command is classified by the class of its least parallelizable
    /// flag" (§3.2).
    pub fn join(self, other: ParClass) -> ParClass {
        self.max(other)
    }

    /// True when PaSh may divide this command's input stream.
    pub fn is_data_parallel(self) -> bool {
        matches!(self, ParClass::Stateless | ParClass::Pure)
    }

    /// One-letter tag as used in the paper's tables.
    pub fn letter(self) -> char {
        match self {
            ParClass::Stateless => 'S',
            ParClass::Pure => 'P',
            ParClass::NonParallelizable => 'N',
            ParClass::SideEffectful => 'E',
        }
    }

    /// Parses the DSL's category keywords.
    pub fn from_keyword(s: &str) -> Option<ParClass> {
        match s {
            "stateless" | "S" => Some(ParClass::Stateless),
            "pure" | "P" => Some(ParClass::Pure),
            "non-parallelizable" | "N" => Some(ParClass::NonParallelizable),
            "side-effectful" | "E" => Some(ParClass::SideEffectful),
            _ => None,
        }
    }
}

/// How a command may consume a round-robin (`r_split`) stream.
///
/// Round-robin distribution hands each parallel copy an arbitrary
/// subset of the input's line-aligned blocks, so a copy sees neither a
/// contiguous prefix nor the stream's global order. The capability is
/// derived from the parallelizability class plus the aggregator:
///
/// * **Framed** — copies process tagged blocks independently and emit
///   one output block per input block. Stateless maps/filters are
///   recombined by a reordering aggregator; pure commands whose
///   aggregator folds only at block boundaries (`uniq`, `uniq -c`)
///   are recombined by a tag-ordered `pash-agg-frame-merge`.
/// * **Raw** — pure commands whose aggregator is *commutative*
///   (order-insensitive sums like `wc` and `grep -c`, total-order
///   merges like plain `sort`). Blocks flow to copies untagged; the
///   normal aggregation network combines.
/// * **No** — everything else (projection-keyed sorts whose ties
///   break by partition, custom stitchers like the bigram
///   aggregator): the compiler falls back to segment splitting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RrMode {
    /// Cannot consume round-robin streams; use segment splits.
    No,
    /// Consumes tagged blocks; order restored by `pash-agg-reorder`.
    Framed,
    /// Consumes untagged blocks; the aggregator commutes.
    Raw,
}

/// True when an aggregator's combine step is commutative: the result
/// does not depend on which blocks each parallel copy saw.
///
/// `wc` and `grep -c` sum count vectors, which commutes regardless of
/// flags. `sort` is commutative exactly when its comparison is a total
/// order on whole lines — plain `sort` and `sort -r` — because lines
/// comparing equal are then byte-identical and the merge output cannot
/// depend on which worker sorted which block. Keyed, numeric, and
/// stable variants compare a *projection* of the line: equal-key lines
/// tie-break by input partition, so they stay on the segment path.
pub fn aggregator_commutes(argv: &[String]) -> bool {
    match argv.split_first() {
        Some((name, args)) => match name.as_str() {
            "pash-agg-wc" | "pash-agg-sum" => true,
            "pash-agg-sort" => args.iter().all(|a| a == "-r"),
            _ => false,
        },
        None => false,
    }
}

/// True when an aggregator folds adjacent per-block outputs purely at
/// block boundaries (`f(x·x') = fold(f(x), f(x'))`), so parallel
/// copies may run once per tagged round-robin block and a tag-ordered
/// `pash-agg-frame-merge` wrapper recovers the sequential output.
pub fn aggregator_frame_folds(argv: &[String]) -> bool {
    matches!(
        argv.first().map(String::as_str),
        Some("pash-agg-uniq" | "pash-agg-uniq-c")
    )
}

/// The round-robin capability of an invocation, given its class and
/// (for class P) its aggregator argv.
///
/// Class-P commands qualify two ways: a commutative aggregator lets
/// blocks flow untagged ([`aggregator_commutes`]), and a boundary-fold
/// aggregator lets copies consume tagged blocks one at a time with the
/// fold re-applied in tag order ([`aggregator_frame_folds`]). Anything
/// else — keyed sorts, the bigram stitcher — keeps the segment path.
pub fn rr_mode(class: ParClass, agg: Option<&[String]>) -> RrMode {
    match class {
        ParClass::Stateless => RrMode::Framed,
        ParClass::Pure => match agg {
            Some(argv) if aggregator_commutes(argv) => RrMode::Raw,
            Some(argv) if aggregator_frame_folds(argv) => RrMode::Framed,
            _ => RrMode::No,
        },
        _ => RrMode::No,
    }
}

impl std::fmt::Display for ParClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ParClass::Stateless => "stateless",
            ParClass::Pure => "parallelizable pure",
            ParClass::NonParallelizable => "non-parallelizable pure",
            ParClass::SideEffectful => "side-effectful",
        };
        write!(f, "{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_order() {
        assert!(ParClass::Stateless < ParClass::Pure);
        assert!(ParClass::Pure < ParClass::NonParallelizable);
        assert!(ParClass::NonParallelizable < ParClass::SideEffectful);
    }

    #[test]
    fn join_takes_least_parallelizable() {
        // The trace-sort example from §3.2: P flags + one E flag ⇒ E.
        assert_eq!(
            ParClass::Pure.join(ParClass::SideEffectful),
            ParClass::SideEffectful
        );
        assert_eq!(
            ParClass::Stateless.join(ParClass::Stateless),
            ParClass::Stateless
        );
    }

    #[test]
    fn data_parallel_subset() {
        assert!(ParClass::Stateless.is_data_parallel());
        assert!(ParClass::Pure.is_data_parallel());
        assert!(!ParClass::NonParallelizable.is_data_parallel());
        assert!(!ParClass::SideEffectful.is_data_parallel());
    }

    #[test]
    fn rr_capability_from_class_and_agg() {
        let agg = |parts: &[&str]| -> Vec<String> { parts.iter().map(|s| s.to_string()).collect() };
        assert_eq!(rr_mode(ParClass::Stateless, None), RrMode::Framed);
        assert_eq!(
            rr_mode(ParClass::Pure, Some(&agg(&["pash-agg-wc"]))),
            RrMode::Raw
        );
        assert_eq!(
            rr_mode(ParClass::Pure, Some(&agg(&["pash-agg-wc", "-lw"]))),
            RrMode::Raw
        );
        assert_eq!(
            rr_mode(ParClass::Pure, Some(&agg(&["pash-agg-sum"]))),
            RrMode::Raw
        );
        // Whole-line comparisons are total orders: ties are
        // byte-identical, so the merge commutes.
        assert_eq!(
            rr_mode(ParClass::Pure, Some(&agg(&["pash-agg-sort"]))),
            RrMode::Raw
        );
        assert_eq!(
            rr_mode(ParClass::Pure, Some(&agg(&["pash-agg-sort", "-r"]))),
            RrMode::Raw
        );
        // Projection keys tie-break by partition: segment path only.
        assert_eq!(
            rr_mode(ParClass::Pure, Some(&agg(&["pash-agg-sort", "-n"]))),
            RrMode::No
        );
        assert_eq!(
            rr_mode(ParClass::Pure, Some(&agg(&["pash-agg-sort", "-k", "2"]))),
            RrMode::No
        );
        // Boundary folds consume tagged blocks via frame-merge.
        assert_eq!(
            rr_mode(ParClass::Pure, Some(&agg(&["pash-agg-uniq"]))),
            RrMode::Framed
        );
        assert_eq!(
            rr_mode(ParClass::Pure, Some(&agg(&["pash-agg-uniq-c"]))),
            RrMode::Framed
        );
        // The bigram stitcher relies on split-boundary markers.
        assert_eq!(
            rr_mode(ParClass::Pure, Some(&agg(&["pash-agg-bigram"]))),
            RrMode::No
        );
        assert_eq!(rr_mode(ParClass::Pure, None), RrMode::No);
        assert_eq!(rr_mode(ParClass::NonParallelizable, None), RrMode::No);
        assert_eq!(rr_mode(ParClass::SideEffectful, None), RrMode::No);
    }

    #[test]
    fn keyword_roundtrip() {
        for c in [
            ParClass::Stateless,
            ParClass::Pure,
            ParClass::NonParallelizable,
            ParClass::SideEffectful,
        ] {
            let kw = c.letter().to_string();
            assert_eq!(ParClass::from_keyword(&kw), Some(c));
        }
        assert_eq!(
            ParClass::from_keyword("stateless"),
            Some(ParClass::Stateless)
        );
        assert_eq!(ParClass::from_keyword("bogus"), None);
    }
}
