//! The annotation standard library (§3.2): records for POSIX/GNU
//! commands plus the paper's benchmark-specific commands, and the
//! aggregator registry for class-P commands.

use std::collections::HashMap;
use std::sync::OnceLock;

use crate::annot::{lang, AnnotationRecord, Classification};
use crate::classes::ParClass;

/// The annotation records, in the Appendix-A description language.
///
/// Six of the benchmark commands are not POSIX/GNU (`fetch`, `unrle`,
/// `html-to-text`, `word-stem`, `bigrams-aux`, and `pash-parallel`'s
/// inner stage); per §6's highlights, each needs exactly one record
/// here — that is the entire "annotation effort" of the evaluation.
const STDLIB_RECORDS: &str = r#"
# --- POSIX / GNU Coreutils ------------------------------------------
cat {
    | -n => (P, [args[0:]], [stdout])
    | _ => (S, [args[0:]], [stdout])
}
tac { | _ => (P, [args[0:]], [stdout]) }
tr { | _ => (S, [stdin], [stdout]) }
cut takes -d -f -c {
    | _ => (S, [args[0:]], [stdout])
}
grep takes -e -m {
    | -e /\ -c => (P, [args[0:]], [stdout])
    | -e => (S, [args[0:]], [stdout])
    | -c => (P, [args[1:]], [stdout])
    | _ => (S, [args[1:]], [stdout])
}
sort takes -k -t {
    | _ => (P, [args[0:]], [stdout])
}
uniq {
    | -d \/ -u => (N, [args[0:]], [stdout])
    | _ => (P, [args[0:]], [stdout])
}
wc { | _ => (P, [args[0:]], [stdout]) }
head takes -n -c { | _ => (P, [args[0:]], [stdout]) }
tail takes -n { | _ => (P, [args[0:]], [stdout]) }
comm {
    | -1 /\ -3 => (S, [args[1]], [stdout])
    | -2 /\ -3 => (S, [args[0]], [stdout])
    | _ => (P, [args[0], args[1]], [stdout])
}
rev { | _ => (S, [args[0:]], [stdout]) }
fold takes -w { | _ => (S, [args[0:]], [stdout]) }
nl { | _ => (P, [args[0:]], [stdout]) }
paste takes -d { | _ => (N, [args[0:]], [stdout]) }
sha1sum { | _ => (N, [args[0:]], [stdout]) }
diff { | _ => (N, [args[0], args[1]], [stdout]) }
seq { | _ => (E, [], [stdout]) }
echo { | _ => (E, [], [stdout]) }
tee { | _ => (E, [stdin], [stdout]) }
xargs takes -n { | _ => (S, [stdin], [stdout]) }
sed takes -e { | _ => (S, [args[1:]], [stdout]) }

# --- Benchmark commands annotated per §6.4 ---------------------------
fetch { | _ => (S, [stdin], [stdout]) }
unrle { | _ => (S, [args[0:]], [stdout]) }
html-to-text { | _ => (S, [stdin], [stdout]) }
word-stem { | _ => (S, [stdin], [stdout]) }
bigrams-aux { | _ => (P, [stdin], [stdout]) }
"#;

/// A library of annotation records with PaSh's refinement rules.
#[derive(Clone)]
pub struct AnnotationLibrary {
    records: HashMap<String, AnnotationRecord>,
}

impl AnnotationLibrary {
    /// Builds the standard library.
    pub fn standard() -> &'static AnnotationLibrary {
        static LIB: OnceLock<AnnotationLibrary> = OnceLock::new();
        LIB.get_or_init(|| {
            let records =
                lang::parse_records(STDLIB_RECORDS).expect("stdlib annotations are well-formed");
            let mut map = HashMap::new();
            for r in records {
                map.insert(r.name.clone(), r);
            }
            AnnotationLibrary { records: map }
        })
    }

    /// Builds an empty library (for tests / custom sets).
    pub fn empty() -> AnnotationLibrary {
        AnnotationLibrary {
            records: HashMap::new(),
        }
    }

    /// Adds or replaces a record (the "light-touch" extension path).
    pub fn register(&mut self, record: AnnotationRecord) {
        self.records.insert(record.name.clone(), record);
    }

    /// Adds a record from DSL source.
    pub fn register_source(&mut self, src: &str) -> Result<(), crate::Error> {
        self.register(lang::parse_record(src)?);
        Ok(())
    }

    /// Removes a record (used to model unannotated commands).
    pub fn remove(&mut self, name: &str) {
        self.records.remove(name);
    }

    /// True when a record exists for `name`.
    pub fn knows(&self, name: &str) -> bool {
        self.records.contains_key(name)
    }

    /// Number of records in the library.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the library holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Classifies an invocation `argv` (name + args).
    ///
    /// Returns `None` for unknown commands or unmatched clauses: the
    /// conservative default (the front-end will not parallelize).
    pub fn classify(&self, argv: &[String]) -> Option<Classification> {
        let (name, args) = argv.split_first()?;
        // Refinements that need to look *inside* arguments; the DSL
        // only sees option occurrence (see module docs).
        if name == "xargs" {
            let mut c = self.classify_xargs(args)?;
            c.stream_argv.insert(0, name.clone());
            return Some(c);
        }
        let record = self.records.get(name)?;
        // `tail +N` (historic form): `+N` is an option, not a file.
        let is_plus = |a: &String| {
            a.len() > 1 && a.starts_with('+') && a[1..].chars().all(|c| c.is_ascii_digit())
        };
        let rewritten: Vec<String>;
        let args = if name == "tail" && args.iter().any(is_plus) {
            rewritten = args
                .iter()
                .map(|a| {
                    if is_plus(a) {
                        format!("-n{a}")
                    } else {
                        a.clone()
                    }
                })
                .collect();
            &rewritten[..]
        } else {
            args
        };
        let mut c = record.classify(args)?;
        if name == "sed" {
            c.class = c.class.join(sed_script_class(args));
        }
        if name == "tail" && args.iter().any(|a| a.starts_with("-n+") || a == "+") {
            // `tail +N` drops a global prefix: not decomposable as a
            // uniform map (only the first chunk is affected).
            c.class = c.class.join(ParClass::NonParallelizable);
        }
        c.stream_argv.insert(0, name.clone());
        Some(c)
    }

    /// `xargs -n 1 CMD…` is as parallelizable as `CMD` itself (§2's
    /// `xargs -n 1 curl` and Fig. 3).
    fn classify_xargs(&self, args: &[String]) -> Option<Classification> {
        let record = self.records.get("xargs")?;
        let base = record.classify(args)?;
        // Find the inner command (first non-option arg, skipping -n's
        // value).
        let mut inner_start = None;
        let mut i = 0;
        while i < args.len() {
            if args[i] == "-n" {
                i += 2;
                continue;
            }
            if args[i].starts_with('-') && args[i].len() > 1 {
                i += 1;
                continue;
            }
            inner_start = Some(i);
            break;
        }
        let class = match inner_start {
            None => ParClass::Stateless, // Default `echo`.
            // Argument-echoing commands are per-token maps under
            // xargs, even though they are class E standalone (they
            // consume no stream input on their own).
            Some(s) if args[s] == "echo" || args[s] == "printf" => ParClass::Stateless,
            Some(s) => {
                let inner_class = self
                    .classify(&args[s..])
                    .map(|c| c.class)
                    .unwrap_or(ParClass::SideEffectful);
                // The inner command runs per input *token*; stateless
                // and even side-effect-free pure commands applied per
                // token keep xargs a per-line map. Anything worse
                // poisons the construct.
                if inner_class <= ParClass::Pure {
                    ParClass::Stateless
                } else {
                    inner_class
                }
            }
        };
        Some(Classification { class, ..base })
    }
}

/// Conservative class contribution of a sed script.
///
/// Plain `s///` and `y///` are per-line rewrites (class S); anything
/// with addresses, `d`, `p`, or `q` is order-sensitive and forces
/// class N.
fn sed_script_class(args: &[String]) -> ParClass {
    let mut scripts: Vec<&String> = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-e" => {
                if let Some(s) = it.next() {
                    scripts.push(s);
                }
            }
            "-n" => return ParClass::NonParallelizable,
            "-E" | "-r" => {}
            s if s.starts_with('-') => {}
            _ => {
                scripts.push(a);
                break; // Remaining args are files.
            }
        }
    }
    for s in scripts {
        let t = s.trim_start();
        let per_line = t.starts_with("s") || t.starts_with("y");
        if !per_line {
            return ParClass::NonParallelizable;
        }
        // Multiple `;`-chained commands: all must be s/y.
        for part in split_top_level(t) {
            let p = part.trim_start();
            if !(p.is_empty() || p.starts_with('s') || p.starts_with('y')) {
                return ParClass::NonParallelizable;
            }
        }
    }
    ParClass::Stateless
}

/// Splits a sed script on `;` outside of s-expression bodies (an
/// approximation sufficient for classification).
fn split_top_level(s: &str) -> Vec<String> {
    let bytes = s.as_bytes();
    if bytes.len() >= 2 && (bytes[0] == b's' || bytes[0] == b'y') {
        let delim = bytes[1];
        // Count delimiters; after the third, `;` separates commands.
        let mut seen = 0;
        let mut i = 2;
        while i < bytes.len() && seen < 2 {
            if bytes[i] == b'\\' {
                i += 2;
                continue;
            }
            if bytes[i] == delim {
                seen += 1;
            }
            i += 1;
        }
        // Skip flags.
        while i < bytes.len() && bytes[i] != b';' {
            i += 1;
        }
        if i < bytes.len() {
            let mut rest = split_top_level(&s[i + 1..]);
            rest.insert(0, s[..i].to_string());
            return rest;
        }
        return vec![s.to_string()];
    }
    s.split(';').map(|p| p.to_string()).collect()
}

/// Maps a class-P invocation to its aggregator argv (§5.2).
///
/// The names refer to runtime commands implemented in `pash-runtime`
/// (its registry extends the coreutils registry with them). Returns
/// `None` when no aggregator is known — the node then stays
/// sequential.
pub fn aggregator_for(argv: &[String]) -> Option<Vec<String>> {
    let (name, args) = argv.split_first()?;
    let flags: Vec<&String> = args.iter().filter(|a| a.starts_with('-')).collect();
    match name.as_str() {
        // sort: merge phase of merge-sort, same ordering flags
        // ("on GNU systems … `sort -m`", §5.2).
        "sort" => {
            let mut agg = vec!["pash-agg-sort".to_string()];
            let mut it = args.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "-k" | "-t" => {
                        agg.push(a.clone());
                        if let Some(v) = it.next() {
                            agg.push(v.clone());
                        }
                    }
                    s if s.starts_with("--parallel") => {}
                    s if s.starts_with('-') => agg.push(a.clone()),
                    // File arguments are not part of the aggregator.
                    _ => {}
                }
            }
            Some(agg)
        }
        // uniq / uniq -c: boundary-condition combiners.
        "uniq" => {
            if flags.iter().any(|f| f.contains('d') || f.contains('u')) {
                None
            } else if flags.iter().any(|f| f.contains('c')) {
                Some(vec!["pash-agg-uniq-c".to_string()])
            } else {
                Some(vec!["pash-agg-uniq".to_string()])
            }
        }
        // wc: adds per-part count vectors, any flag subset.
        "wc" => {
            let mut agg = vec!["pash-agg-wc".to_string()];
            agg.extend(flags.iter().map(|f| f.to_string()));
            Some(agg)
        }
        // grep -c: sum of partial counts.
        "grep" => {
            if flags
                .iter()
                .any(|f| !f.starts_with("--") && f.contains('c'))
            {
                Some(vec!["pash-agg-sum".to_string()])
            } else {
                None
            }
        }
        // tac: consume stream descriptors in reverse order.
        "tac" => Some(vec!["pash-agg-tac".to_string()]),
        // head/tail: re-apply over the concatenation.
        "head" | "tail" => {
            if args
                .iter()
                .any(|a| a.starts_with('+') || a.starts_with("-n+"))
            {
                None
            } else {
                Some(argv.to_vec())
            }
        }
        // The Bi-grams-opt custom aggregator (§6.1).
        "bigrams-aux" => Some(vec!["pash-agg-bigram".to_string()]),
        // cat -n and nl would need renumbering; not provided.
        _ => None,
    }
}

/// Maps a class-P invocation to a distinct *map* command for its
/// parallel copies, when the plain command does not serve (§3.2,
/// Custom Aggregators). Returns `None` when copies run the original.
pub fn map_for(argv: &[String]) -> Option<Vec<String>> {
    match argv.first().map(|s| s.as_str()) {
        // The map role emits boundary markers the aggregator consumes;
        // sequential runs must not see them.
        Some("bigrams-aux") => Some(vec!["bigrams-aux".to_string(), "--marked".to_string()]),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    fn class_of(parts: &[&str]) -> Option<ParClass> {
        AnnotationLibrary::standard()
            .classify(&argv(parts))
            .map(|c| c.class)
    }

    #[test]
    fn stdlib_parses_and_is_populated() {
        let lib = AnnotationLibrary::standard();
        assert!(lib.len() >= 25);
        assert!(lib.knows("comm"));
        assert!(lib.knows("bigrams-aux"));
    }

    #[test]
    fn flags_refine_classes() {
        // cat defaults to S; -n moves it to P (§3.2).
        assert_eq!(class_of(&["cat", "f"]), Some(ParClass::Stateless));
        assert_eq!(class_of(&["cat", "-n", "f"]), Some(ParClass::Pure));
    }

    #[test]
    fn grep_count_is_pure() {
        assert_eq!(class_of(&["grep", "x"]), Some(ParClass::Stateless));
        assert_eq!(class_of(&["grep", "-c", "x"]), Some(ParClass::Pure));
        assert_eq!(class_of(&["grep", "-iv", "999"]), Some(ParClass::Stateless));
    }

    #[test]
    fn comm_flag_dependent() {
        assert_eq!(
            class_of(&["comm", "-13", "d", "-"]),
            Some(ParClass::Stateless)
        );
        assert_eq!(class_of(&["comm", "a", "b"]), Some(ParClass::Pure));
    }

    #[test]
    fn sed_script_refinement() {
        assert_eq!(class_of(&["sed", "s/a/b/"]), Some(ParClass::Stateless));
        assert_eq!(class_of(&["sed", "s;^;prefix;"]), Some(ParClass::Stateless));
        assert_eq!(class_of(&["sed", "2d"]), Some(ParClass::NonParallelizable));
        assert_eq!(
            class_of(&["sed", "-n", "/x/p"]),
            Some(ParClass::NonParallelizable)
        );
        assert_eq!(
            class_of(&["sed", "s/a/b/;3q"]),
            Some(ParClass::NonParallelizable)
        );
    }

    #[test]
    fn xargs_inherits_inner_class() {
        assert_eq!(
            class_of(&["xargs", "-n", "1", "fetch"]),
            Some(ParClass::Stateless)
        );
        assert_eq!(
            class_of(&["xargs", "-n", "1", "sha1sum"]),
            Some(ParClass::NonParallelizable)
        );
        assert_eq!(class_of(&["xargs", "echo"]), Some(ParClass::Stateless));
    }

    #[test]
    fn tail_plus_is_not_parallelizable() {
        assert_eq!(class_of(&["tail", "-n", "5"]), Some(ParClass::Pure));
        assert_eq!(class_of(&["tail", "+2"]), Some(ParClass::NonParallelizable));
    }

    #[test]
    fn uniq_d_u_not_parallelizable() {
        assert_eq!(class_of(&["uniq"]), Some(ParClass::Pure));
        assert_eq!(class_of(&["uniq", "-c"]), Some(ParClass::Pure));
        assert_eq!(class_of(&["uniq", "-d"]), Some(ParClass::NonParallelizable));
    }

    #[test]
    fn unknown_command_is_none() {
        assert_eq!(class_of(&["kubectl", "get", "pods"]), None);
    }

    #[test]
    fn aggregators_for_pure_commands() {
        assert_eq!(
            aggregator_for(&argv(&["sort", "-rn"])),
            Some(argv(&["pash-agg-sort", "-rn"]))
        );
        assert_eq!(
            aggregator_for(&argv(&["sort", "-k", "2", "-n"])),
            Some(argv(&["pash-agg-sort", "-k", "2", "-n"]))
        );
        assert_eq!(
            aggregator_for(&argv(&["uniq", "-c"])),
            Some(argv(&["pash-agg-uniq-c"]))
        );
        assert_eq!(
            aggregator_for(&argv(&["uniq"])),
            Some(argv(&["pash-agg-uniq"]))
        );
        assert_eq!(
            aggregator_for(&argv(&["wc", "-lw"])),
            Some(argv(&["pash-agg-wc", "-lw"]))
        );
        assert_eq!(
            aggregator_for(&argv(&["grep", "-c", "x"])),
            Some(argv(&["pash-agg-sum"]))
        );
        assert_eq!(
            aggregator_for(&argv(&["head", "-n", "1"])),
            Some(argv(&["head", "-n", "1"]))
        );
        assert_eq!(aggregator_for(&argv(&["tail", "+2"])), None);
        assert_eq!(aggregator_for(&argv(&["uniq", "-d"])), None);
        assert_eq!(aggregator_for(&argv(&["paste", "a", "b"])), None);
    }

    #[test]
    fn custom_record_registration() {
        let mut lib = AnnotationLibrary::empty();
        lib.register_source("mycmd { | _ => (S, [stdin], [stdout]) }")
            .expect("register");
        assert_eq!(
            lib.classify(&argv(&["mycmd"])).map(|c| c.class),
            Some(ParClass::Stateless)
        );
    }

    #[test]
    fn fetch_under_xargs_matches_fig3() {
        // Fig. 3 parallelizes `xargs -n1 curl -s`; ours is `fetch`.
        let c = AnnotationLibrary::standard()
            .classify(&argv(&["xargs", "-n", "1", "fetch"]))
            .expect("classify");
        assert_eq!(c.class, ParClass::Stateless);
        assert_eq!(c.inputs, vec![crate::annot::InputSlot::Stdin]);
    }
}
