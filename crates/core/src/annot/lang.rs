//! Parser for the annotation description language (Appendix A).
//!
//! ```text
//! <command>      ::= <name> [takes <option>…] '{' <pred-list> '}'
//! <pred-list>    ::= '|' <predicate> <pred-list>
//!                  | '|' 'otherwise' '=>' <assignment>
//! <predicate>    ::= <option-pred> '=>' <assignment>
//! <option-pred>  ::= <option>
//!                  | 'value' <option> '=' <string>
//!                  | 'not' <option-pred>
//!                  | <option-pred> 'or' <option-pred>
//!                  | <option-pred> 'and' <option-pred>
//!                  | '(' <option-pred> ')'
//! <assignment>   ::= '(' <category> ',' '[' <inputs> ']' ',' '[' <outputs> ']' ')'
//! <input>        ::= 'stdin' | 'args[' i ']' | 'args[' i? ':' j? ']'
//! <output>       ::= 'stdout' | 'args[' i ']'
//! ```
//!
//! `/\` and `\/` are accepted for `and` / `or`, `_` for `otherwise`
//! (as in the paper's `comm` example).

use crate::annot::{AnnotationRecord, Assignment, Clause, IoSpec, OutSpec, Pred};
use crate::classes::ParClass;
use crate::Error;

/// Parses a single annotation record.
pub fn parse_record(src: &str) -> Result<AnnotationRecord, Error> {
    let mut records = parse_records(src)?;
    match records.len() {
        1 => Ok(records.pop().expect("length checked")),
        n => Err(Error::annotation(format!("expected 1 record, found {n}"))),
    }
}

/// Parses a `<command-list>`: one or more records.
pub fn parse_records(src: &str) -> Result<Vec<AnnotationRecord>, Error> {
    let tokens = tokenize(src)?;
    let mut p = P { tokens, pos: 0 };
    let mut out = Vec::new();
    while !p.at_end() {
        out.push(p.record()?);
    }
    Ok(out)
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Name(String),
    Str(String),
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Colon,
    Pipe,
    Arrow,
    Eq,
    And,
    Or,
}

fn tokenize(src: &str) -> Result<Vec<Tok>, Error> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '#' => {
                // Comment to end of line.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '{' => {
                out.push(Tok::LBrace);
                i += 1;
            }
            '}' => {
                out.push(Tok::RBrace);
                i += 1;
            }
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            '[' => {
                out.push(Tok::LBracket);
                i += 1;
            }
            ']' => {
                out.push(Tok::RBracket);
                i += 1;
            }
            ',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            ':' => {
                out.push(Tok::Colon);
                i += 1;
            }
            '|' => {
                out.push(Tok::Pipe);
                i += 1;
            }
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(Error::annotation("unterminated string"));
                }
                out.push(Tok::Str(src[start..j].to_string()));
                i = j + 1;
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Tok::Arrow);
                    i += 2;
                } else {
                    out.push(Tok::Eq);
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'\\') => {
                out.push(Tok::And);
                i += 2;
            }
            '\\' if bytes.get(i + 1) == Some(&b'/') => {
                out.push(Tok::Or);
                i += 2;
            }
            _ => {
                // A name: runs to whitespace or a special character.
                let start = i;
                while i < bytes.len()
                    && !" \t\n\r{}()[],:|\"=".contains(bytes[i] as char)
                    && !(bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'\\'))
                    && !(bytes[i] == b'\\' && bytes.get(i + 1) == Some(&b'/'))
                {
                    i += 1;
                }
                let word = &src[start..i];
                match word {
                    "and" => out.push(Tok::And),
                    "or" => out.push(Tok::Or),
                    _ => out.push(Tok::Name(word.to_string())),
                }
            }
        }
    }
    Ok(out)
}

struct P {
    tokens: Vec<Tok>,
    pos: usize,
}

impl P {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<Tok, Error> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| Error::annotation("unexpected end of record"))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, t: Tok) -> Result<(), Error> {
        let got = self.next()?;
        if got == t {
            Ok(())
        } else {
            Err(Error::annotation(format!("expected {t:?}, found {got:?}")))
        }
    }

    fn name(&mut self) -> Result<String, Error> {
        match self.next()? {
            Tok::Name(n) => Ok(n),
            other => Err(Error::annotation(format!("expected name, found {other:?}"))),
        }
    }

    fn record(&mut self) -> Result<AnnotationRecord, Error> {
        let name = self.name()?;
        let mut takes_value = Vec::new();
        if self.peek() == Some(&Tok::Name("takes".to_string())) {
            self.next()?;
            while let Some(Tok::Name(n)) = self.peek() {
                if n.starts_with('-') {
                    takes_value.push(n.clone());
                    self.next()?;
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::LBrace)?;
        let mut clauses = Vec::new();
        while self.peek() == Some(&Tok::Pipe) {
            self.next()?;
            let pred = if matches!(self.peek(), Some(Tok::Name(n)) if n == "otherwise" || n == "_")
            {
                self.next()?;
                Pred::Otherwise
            } else {
                self.pred_or()?
            };
            self.expect(Tok::Arrow)?;
            let assign = self.assignment()?;
            clauses.push(Clause { pred, assign });
        }
        self.expect(Tok::RBrace)?;
        if clauses.is_empty() {
            return Err(Error::annotation(format!("record `{name}` has no clauses")));
        }
        Ok(AnnotationRecord {
            name,
            takes_value,
            clauses,
        })
    }

    fn pred_or(&mut self) -> Result<Pred, Error> {
        let mut left = self.pred_and()?;
        while self.peek() == Some(&Tok::Or) {
            self.next()?;
            let right = self.pred_and()?;
            left = Pred::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn pred_and(&mut self) -> Result<Pred, Error> {
        let mut left = self.pred_atom()?;
        while self.peek() == Some(&Tok::And) {
            self.next()?;
            let right = self.pred_atom()?;
            left = Pred::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn pred_atom(&mut self) -> Result<Pred, Error> {
        match self.next()? {
            Tok::LParen => {
                let p = self.pred_or()?;
                self.expect(Tok::RParen)?;
                Ok(p)
            }
            Tok::Name(n) if n == "not" || n == "!" => Ok(Pred::Not(Box::new(self.pred_atom()?))),
            Tok::Name(n) if n == "value" => {
                let opt = self.name()?;
                self.expect(Tok::Eq)?;
                let v = match self.next()? {
                    Tok::Str(s) => s,
                    Tok::Name(s) => s,
                    other => {
                        return Err(Error::annotation(format!(
                            "expected value string, found {other:?}"
                        )))
                    }
                };
                Ok(Pred::Value(opt, v))
            }
            Tok::Name(n) if n.starts_with('-') => Ok(Pred::Option(n)),
            other => Err(Error::annotation(format!(
                "expected option predicate, found {other:?}"
            ))),
        }
    }

    fn assignment(&mut self) -> Result<Assignment, Error> {
        self.expect(Tok::LParen)?;
        let cat = self.name()?;
        let class = ParClass::from_keyword(&cat)
            .ok_or_else(|| Error::annotation(format!("unknown category `{cat}`")))?;
        self.expect(Tok::Comma)?;
        self.expect(Tok::LBracket)?;
        let mut inputs = Vec::new();
        while self.peek() != Some(&Tok::RBracket) {
            inputs.push(self.io_spec()?);
            if self.peek() == Some(&Tok::Comma) {
                self.next()?;
            }
        }
        self.expect(Tok::RBracket)?;
        self.expect(Tok::Comma)?;
        self.expect(Tok::LBracket)?;
        let mut outputs = Vec::new();
        while self.peek() != Some(&Tok::RBracket) {
            match self.io_spec()? {
                IoSpec::Stdin => {
                    return Err(Error::annotation("stdin cannot be an output"));
                }
                IoSpec::Arg(i) if i == usize::MAX => outputs.push(OutSpec::Stdout),
                IoSpec::Arg(i) => outputs.push(OutSpec::Arg(i)),
                IoSpec::ArgRange(..) => {
                    return Err(Error::annotation("ranges not allowed in outputs"));
                }
            }
            if self.peek() == Some(&Tok::Comma) {
                self.next()?;
            }
        }
        self.expect(Tok::RBracket)?;
        self.expect(Tok::RParen)?;
        Ok(Assignment {
            class,
            inputs,
            outputs,
        })
    }

    /// Parses `stdin`, `stdout`, `args[i]`, or `args[i:j]`.
    fn io_spec(&mut self) -> Result<IoSpec, Error> {
        let n = self.name()?;
        match n.as_str() {
            "stdin" => Ok(IoSpec::Stdin),
            "stdout" => {
                // Encoded as Arg(usize::MAX) sentinel? No: handled by
                // the caller via OutSpec; reaching here means `stdout`
                // appeared in an output list. Use a dedicated spec.
                Ok(IoSpec::Arg(usize::MAX))
            }
            "args" | "arg" => {
                self.expect(Tok::LBracket)?;
                let lo = match self.peek() {
                    Some(Tok::Name(d)) if d.chars().all(|c| c.is_ascii_digit()) => {
                        let v = d.parse().map_err(|_| Error::annotation("bad index"))?;
                        self.next()?;
                        Some(v)
                    }
                    _ => None,
                };
                if self.peek() == Some(&Tok::Colon) {
                    self.next()?;
                    let hi = match self.peek() {
                        Some(Tok::Name(d)) if d.chars().all(|c| c.is_ascii_digit()) => {
                            let v = d.parse().map_err(|_| Error::annotation("bad index"))?;
                            self.next()?;
                            Some(v)
                        }
                        _ => None,
                    };
                    self.expect(Tok::RBracket)?;
                    Ok(IoSpec::ArgRange(lo, hi))
                } else {
                    self.expect(Tok::RBracket)?;
                    let i = lo.ok_or_else(|| Error::annotation("args[] needs an index"))?;
                    Ok(IoSpec::Arg(i))
                }
            }
            other => Err(Error::annotation(format!("unknown io spec `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_comm_example() {
        let rec = parse_record(
            r#"comm {
                | -1 /\ -3 => (S, [args[1]], [stdout])
                | -2 /\ -3 => (S, [args[0]], [stdout])
                | _ => (P, [args[0], args[1]], [stdout])
            }"#,
        )
        .expect("parse");
        assert_eq!(rec.name, "comm");
        assert_eq!(rec.clauses.len(), 3);
        assert!(matches!(rec.clauses[0].pred, Pred::And(..)));
        assert_eq!(rec.clauses[2].pred, Pred::Otherwise);
        assert_eq!(rec.clauses[2].assign.class, ParClass::Pure);
    }

    #[test]
    fn parses_keyword_operators() {
        let rec = parse_record(
            "x { | -a and -b or not -c => (S, [stdin], [stdout]) | _ => (E, [stdin], [stdout]) }",
        )
        .expect("parse");
        // `or` binds looser than `and`.
        match &rec.clauses[0].pred {
            Pred::Or(l, _) => assert!(matches!(**l, Pred::And(..))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_arg_ranges() {
        let rec = parse_record("x { | _ => (S, [args[1:]], [stdout]) }").expect("parse");
        assert_eq!(
            rec.clauses[0].assign.inputs,
            vec![IoSpec::ArgRange(Some(1), None)]
        );
        let rec = parse_record("x { | _ => (S, [args[:2]], [stdout]) }").expect("parse");
        assert_eq!(
            rec.clauses[0].assign.inputs,
            vec![IoSpec::ArgRange(None, Some(2))]
        );
    }

    #[test]
    fn parses_takes_clause() {
        let rec =
            parse_record("head takes -n -c { | _ => (P, [args[0:]], [stdout]) }").expect("parse");
        assert_eq!(rec.takes_value, vec!["-n", "-c"]);
    }

    #[test]
    fn parses_multiple_records() {
        let recs = parse_records(
            "a { | _ => (S, [stdin], [stdout]) }\n# comment\nb { | _ => (P, [stdin], [stdout]) }",
        )
        .expect("parse");
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].name, "b");
    }

    #[test]
    fn value_predicate_with_string() {
        let rec = parse_record(
            r#"x { | value -d = ";" => (S, [stdin], [stdout]) | _ => (N, [stdin], [stdout]) }"#,
        )
        .expect("parse");
        assert_eq!(rec.clauses[0].pred, Pred::Value("-d".into(), ";".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_record("x { }").is_err());
        assert!(parse_record("x { | -a (S, [stdin], [stdout]) }").is_err());
        assert!(parse_record("x").is_err());
        assert!(parse_record("x { | _ => (Q, [stdin], [stdout]) }").is_err());
    }

    #[test]
    fn output_to_arg() {
        let rec = parse_record("x { | _ => (P, [stdin], [args[0]]) }").expect("parse");
        assert_eq!(rec.clauses[0].assign.outputs, vec![OutSpec::Arg(0)]);
    }
}
