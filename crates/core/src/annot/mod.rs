//! Extensibility annotations (§3.2, Appendix A).
//!
//! An [`AnnotationRecord`] describes a command's parallelizability as a
//! list of clauses, each guarded by a predicate over the command's
//! options. Evaluating a record against a concrete invocation yields a
//! [`Classification`]: the class, the ordered streamed inputs, the
//! static ("configuration") inputs, and the output.
//!
//! Extensions over the paper's grammar (both documented in DESIGN.md):
//! * `takes -x -y` declares options that consume a following value, so
//!   that `head -n 1` does not mistake `1` for a file;
//! * aggregator selection is code, not annotation syntax, mirroring
//!   the paper's "PaSh defines aggregators for many POSIX and GNU
//!   commands" (§3.2, Custom Aggregators).

pub mod lang;
pub mod stdlib;

use crate::classes::ParClass;

/// A parsed annotation record for one command.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnotationRecord {
    /// Command name.
    pub name: String,
    /// Options that consume a following argument.
    pub takes_value: Vec<String>,
    /// Guarded clauses, evaluated in order.
    pub clauses: Vec<Clause>,
}

/// One `| pred => assignment` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Clause {
    /// Guard over the option multiset.
    pub pred: Pred,
    /// The resulting assignment.
    pub assign: Assignment,
}

/// Option predicates.
#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    /// `otherwise` / `_` — always true.
    Otherwise,
    /// An option is present (e.g. `-1`).
    Option(String),
    /// `value -d = ","` — option present with this value.
    Value(String, String),
    /// Negation.
    Not(Box<Pred>),
    /// Conjunction (`and`, `/\`).
    And(Box<Pred>, Box<Pred>),
    /// Disjunction (`or`, `\/`).
    Or(Box<Pred>, Box<Pred>),
}

/// The right-hand side of a clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// Parallelizability class.
    pub class: ParClass,
    /// Streamed inputs, in consumption order.
    pub inputs: Vec<IoSpec>,
    /// Outputs (only the first is used by the DFG).
    pub outputs: Vec<OutSpec>,
}

/// Input selectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoSpec {
    /// Standard input.
    Stdin,
    /// The i-th non-option argument (0-based).
    Arg(usize),
    /// A slice of the non-option arguments.
    ArgRange(Option<usize>, Option<usize>),
}

/// Output selectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutSpec {
    /// Standard output.
    Stdout,
    /// The i-th non-option argument names the output file.
    Arg(usize),
}

/// A resolved input slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InputSlot {
    /// The command reads standard input at this position.
    Stdin,
    /// The command reads this file at this position.
    File(String),
}

/// The result of classifying a concrete invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Classification {
    /// Parallelizability class of this invocation.
    pub class: ParClass,
    /// Streamed inputs in consumption order.
    pub inputs: Vec<InputSlot>,
    /// Static configuration inputs (file arguments *not* streamed;
    /// replicated to every parallel copy, §3.2's `comm -13` example).
    pub static_files: Vec<String>,
    /// The argv with streamed file arguments replaced: the first
    /// streamed positional becomes `-` (read from stdin), later ones
    /// become stream markers (see [`stream_marker`]). This preserves
    /// positional arity — `comm -23 t1 t2` must still see two
    /// operands after t1 is rerouted through a pipe.
    pub stream_argv: Vec<String>,
    /// Whether output goes to stdout (always true in the benchmarks).
    pub output_stdout: bool,
}

/// Placeholder in `stream_argv` for the k-th streamed input.
///
/// Markers never appear in emitted scripts or executed argv: the
/// back-end replaces them with FIFO/file names and the executor with
/// virtual stream paths; parallel copies strip them (each copy reads
/// its single source on stdin).
pub fn stream_marker(k: usize) -> String {
    format!("\u{1}PASH_STREAM{k}\u{1}")
}

/// Recognizes a stream marker, returning its input index.
pub fn parse_stream_marker(s: &str) -> Option<usize> {
    let inner = s.strip_prefix('\u{1}')?.strip_suffix('\u{1}')?;
    inner.strip_prefix("PASH_STREAM")?.parse().ok()
}

impl AnnotationRecord {
    /// Evaluates the record against an invocation's arguments
    /// (excluding the command name).
    ///
    /// The returned `stream_argv` also excludes the name; library-
    /// level classification prepends it. Returns `None` when no
    /// clause matches (callers treat the command conservatively).
    pub fn classify(&self, args: &[String]) -> Option<Classification> {
        let (options, positional, pos_indices) = split_options(args, &self.takes_value);
        for clause in &self.clauses {
            if eval_pred(&clause.pred, &options, args) {
                return Some(resolve(
                    self,
                    &clause.assign,
                    args,
                    &positional,
                    &pos_indices,
                ));
            }
        }
        None
    }
}

/// Splits args into options and positional (non-option) arguments.
///
/// Returns `(option tokens incl. expanded singles, positional values,
/// positional indices into args)`.
fn split_options(
    args: &[String],
    takes_value: &[String],
) -> (Vec<String>, Vec<String>, Vec<usize>) {
    let mut options = Vec::new();
    let mut positional = Vec::new();
    let mut pos_indices = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a != "-" && a.starts_with('-') && a.len() > 1 {
            options.push(a.clone());
            // Expand combined single-letter flags: `-rn` ⇒ `-r`, `-n`.
            if !a.starts_with("--")
                && a.len() > 2
                && a[1..].chars().all(|c| c.is_ascii_alphanumeric())
            {
                for c in a[1..].chars() {
                    options.push(format!("-{c}"));
                }
            }
            if takes_value.iter().any(|t| t == a) {
                // The following token is this option's value.
                if i + 1 < args.len() {
                    options.push(format!("{a}={}", args[i + 1]));
                    i += 1;
                }
            }
        } else {
            positional.push(a.clone());
            pos_indices.push(i);
        }
        i += 1;
    }
    (options, positional, pos_indices)
}

fn eval_pred(p: &Pred, options: &[String], _args: &[String]) -> bool {
    match p {
        Pred::Otherwise => true,
        Pred::Option(o) => options.iter().any(|x| x == o),
        Pred::Value(o, v) => options.iter().any(|x| x == &format!("{o}={v}")),
        Pred::Not(inner) => !eval_pred(inner, options, _args),
        Pred::And(a, b) => eval_pred(a, options, _args) && eval_pred(b, options, _args),
        Pred::Or(a, b) => eval_pred(a, options, _args) || eval_pred(b, options, _args),
    }
}

fn resolve(
    record: &AnnotationRecord,
    assign: &Assignment,
    args: &[String],
    positional: &[String],
    pos_indices: &[usize],
) -> Classification {
    let _ = record;
    // Resolve streamed inputs and remember which positional indices
    // they occupy (`None` for slots without a positional, i.e. the
    // `stdin` keyword).
    let mut inputs = Vec::new();
    let mut slot_positions: Vec<Option<usize>> = Vec::new();
    for spec in &assign.inputs {
        match spec {
            IoSpec::Stdin => {
                inputs.push(InputSlot::Stdin);
                slot_positions.push(None);
            }
            IoSpec::Arg(i) => {
                if let Some(v) = positional.get(*i) {
                    slot_positions.push(Some(pos_indices[*i]));
                    inputs.push(slot_for(v));
                }
            }
            IoSpec::ArgRange(lo, hi) => {
                let lo = lo.unwrap_or(0);
                let hi = hi.unwrap_or(positional.len()).min(positional.len());
                for i in lo..hi {
                    slot_positions.push(Some(pos_indices[i]));
                    inputs.push(slot_for(&positional[i]));
                }
            }
        }
    }
    // A command with no named inputs reads stdin.
    if inputs.is_empty() {
        inputs.push(InputSlot::Stdin);
        slot_positions.push(None);
    }
    // Static configuration files: positional args not streamed, that
    // look like readable inputs, are left in argv (each copy re-reads
    // them). We only *report* them for the DFG's bookkeeping.
    let streamed_positions: Vec<usize> = slot_positions.iter().flatten().copied().collect();
    let static_files: Vec<String> = positional
        .iter()
        .zip(pos_indices)
        .filter(|(_, idx)| !streamed_positions.contains(idx))
        .map(|(v, _)| v.clone())
        .collect();
    // argv for execution: the first streamed slot routes via stdin
    // (its positional, if any, becomes `-`); later streamed
    // positionals become markers.
    let mut stream_argv: Vec<String> = args.to_vec();
    for (k, pos) in slot_positions.iter().enumerate() {
        if let Some(p) = pos {
            stream_argv[*p] = if k == 0 {
                "-".to_string()
            } else {
                stream_marker(k)
            };
        }
    }
    Classification {
        class: assign.class,
        inputs,
        static_files,
        stream_argv,
        output_stdout: assign
            .outputs
            .first()
            .map(|o| *o == OutSpec::Stdout)
            .unwrap_or(true),
    }
}

fn slot_for(v: &str) -> InputSlot {
    if v == "-" {
        InputSlot::Stdin
    } else {
        InputSlot::File(v.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comm_record() -> AnnotationRecord {
        lang::parse_record(
            r#"comm {
                | -1 /\ -3 => (S, [args[1]], [stdout])
                | -2 /\ -3 => (S, [args[0]], [stdout])
                | otherwise => (P, [args[0], args[1]], [stdout])
            }"#,
        )
        .expect("parse comm record")
    }

    fn classify(rec: &AnnotationRecord, args: &[&str]) -> Classification {
        rec.classify(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
            .expect("classify")
    }

    #[test]
    fn comm_paper_example_first_clause() {
        let rec = comm_record();
        let c = classify(&rec, &["-13", "dict.txt", "-"]);
        assert_eq!(c.class, ParClass::Stateless);
        assert_eq!(c.inputs, vec![InputSlot::Stdin]);
        assert_eq!(c.static_files, vec!["dict.txt".to_string()]);
        // argv keeps the static file and the streamed `-` operand.
        assert_eq!(c.stream_argv, vec!["-13", "dict.txt", "-"]);
    }

    #[test]
    fn comm_general_clause_is_pure() {
        let rec = comm_record();
        let c = classify(&rec, &["f1", "f2"]);
        assert_eq!(c.class, ParClass::Pure);
        assert_eq!(
            c.inputs,
            vec![InputSlot::File("f1".into()), InputSlot::File("f2".into())]
        );
        assert!(c.static_files.is_empty());
    }

    #[test]
    fn combined_flags_match_separated_predicates() {
        let rec = comm_record();
        let a = classify(&rec, &["-13", "d", "w"]);
        let b = classify(&rec, &["-1", "-3", "d", "w"]);
        assert_eq!(a.class, b.class);
    }

    #[test]
    fn no_args_defaults_to_stdin() {
        let rec =
            lang::parse_record("tr { | otherwise => (S, [stdin], [stdout]) }").expect("parse");
        let c = classify(&rec, &["a-z", "A-Z"]);
        assert_eq!(c.inputs, vec![InputSlot::Stdin]);
        // tr's sets stay in argv.
        assert_eq!(c.stream_argv, vec!["a-z", "A-Z"]);
    }

    #[test]
    fn arg_range_collects_files() {
        let rec =
            lang::parse_record("grep { | otherwise => (S, [args[1:]], [stdout]) }").expect("parse");
        let c = classify(&rec, &["-v", "pat", "f1", "f2"]);
        assert_eq!(
            c.inputs,
            vec![InputSlot::File("f1".into()), InputSlot::File("f2".into())]
        );
        // First streamed positional becomes `-`, the second a marker.
        assert_eq!(
            c.stream_argv,
            vec![
                "-v".to_string(),
                "pat".to_string(),
                "-".to_string(),
                stream_marker(1)
            ]
        );
    }

    #[test]
    fn takes_value_protects_option_arguments() {
        let rec =
            lang::parse_record("head takes -n -c { | otherwise => (P, [args[0:]], [stdout]) }")
                .expect("parse");
        let c = classify(&rec, &["-n", "1"]);
        // `1` is -n's value, not a file.
        assert_eq!(c.inputs, vec![InputSlot::Stdin]);
        assert_eq!(c.stream_argv, vec!["-n", "1"]);
    }

    #[test]
    fn value_predicate() {
        let rec = lang::parse_record(
            r#"x takes -d { | value -d = "," => (S, [stdin], [stdout]) | otherwise => (N, [stdin], [stdout]) }"#,
        )
        .expect("parse");
        let c = classify(&rec, &["-d", ","]);
        assert_eq!(c.class, ParClass::Stateless);
        let c = classify(&rec, &["-d", ";"]);
        assert_eq!(c.class, ParClass::NonParallelizable);
    }

    #[test]
    fn not_and_or_predicates() {
        let rec = lang::parse_record(
            "x { | not -a and ( -b or -c ) => (S, [stdin], [stdout]) | otherwise => (E, [stdin], [stdout]) }",
        )
        .expect("parse");
        assert_eq!(classify(&rec, &["-b"]).class, ParClass::Stateless);
        assert_eq!(classify(&rec, &["-a", "-b"]).class, ParClass::SideEffectful);
        assert_eq!(classify(&rec, &[]).class, ParClass::SideEffectful);
    }

    #[test]
    fn no_matching_clause_returns_none() {
        let rec = lang::parse_record("x { | -z => (S, [stdin], [stdout]) }").expect("parse");
        assert!(rec.classify(&[]).is_none());
    }
}
