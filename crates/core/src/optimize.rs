//! Profile-guided choice of per-region parallelization shape.
//!
//! PaSh picks one global width and split policy up front, but the best
//! choice varies per stage: commutative aggregators scale wide under
//! round-robin, merge-heavy sorts flatten past 8-way, and skewed
//! inputs punish segment splits. This pass makes the choice measured
//! and local: it compiles the script at a ladder of candidate shapes,
//! prices every candidate *region* through a [`CandidatePricer`] (the
//! simulator's fluid-rate model, optionally calibrated from runtime
//! profiles), and lowers the per-region argmin.
//!
//! The pass only selects among plan shapes the compiler could already
//! produce — every candidate is a `(width, split)` point that the
//! differential suite proves byte-identical to the sequential run —
//! so adaptivity is output-invariant by construction.
//!
//! Dependency direction: this crate cannot see the simulator, so the
//! pricing side is a trait. `pash-sim` implements it (`SimPricer`);
//! the runtime's profile store supplies [`MeasuredRate`]s that
//! calibrate the pricer's cost model when warm.

use std::collections::HashMap;
use std::sync::Arc;

use crate::compile::{compile_cached, Compiled, PashConfig, RegionShape};
use crate::dfg::transform::SplitPolicy;
use crate::plan::RegionPlan;
use crate::Error;

/// A decay-merged throughput observation for one command, as the
/// runtime's profile store reports it and the simulator's cost model
/// consumes it. Lives here because core is the only crate both sides
/// can name.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredRate {
    /// Observed processing rate in MB/s of input consumed.
    pub mb_per_s: f64,
    /// Observed bytes-out / bytes-in ratio.
    pub out_ratio: f64,
    /// Total observation weight (decayed sample mass) behind the
    /// estimate — pricing trusts heavier estimates more.
    pub weight: f64,
}

/// Measured rates keyed by command name (`argv[0]`).
pub type MeasuredRates = HashMap<String, MeasuredRate>;

/// Prices one candidate region plan, in (simulated) seconds. Lower is
/// better. Implementations must be deterministic: the optimizer's
/// choice feeds cache keys.
pub trait CandidatePricer {
    /// Estimated wall-clock seconds for the region.
    fn price_region(&self, r: &RegionPlan) -> f64;
}

/// Optimizer knobs.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Widths are swept in powers of two up to this clamp (inclusive;
    /// the clamp itself is a candidate even when not a power of two).
    pub max_width: usize,
    /// Split policies to consider at widths > 1.
    pub splits: Vec<SplitPolicy>,
    /// Prefer the *smallest* shape whose price is within this relative
    /// margin of the best price. Keeps choices stable under pricing
    /// jitter and avoids burning cores for a 1% simulated win.
    pub hysteresis: f64,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            max_width: 16,
            splits: vec![SplitPolicy::Sized, SplitPolicy::RoundRobin],
            hysteresis: 0.02,
        }
    }
}

impl OptimizerConfig {
    /// The candidate width ladder: 1, then powers of two up to the
    /// clamp, then the clamp itself.
    pub fn widths(&self) -> Vec<usize> {
        let max = self.max_width.max(1);
        let mut widths = vec![1];
        let mut w = 2;
        while w <= max {
            widths.push(w);
            w *= 2;
        }
        if widths.last() != Some(&max) {
            widths.push(max);
        }
        widths
    }

    /// All candidate shapes, cheapest-first (ascending width; split
    /// order as configured). Width 1 has a single `Off` candidate —
    /// splits are meaningless without fan-out.
    pub fn candidates(&self) -> Vec<RegionShape> {
        let mut out = Vec::new();
        for width in self.widths() {
            if width <= 1 {
                out.push(RegionShape {
                    width: 1,
                    split: SplitPolicy::Off,
                });
            } else {
                for &split in &self.splits {
                    out.push(RegionShape { width, split });
                }
            }
        }
        out
    }
}

/// One region's decision, with the evidence.
#[derive(Debug, Clone)]
pub struct RegionChoice {
    /// Region index (plan-step order).
    pub region: usize,
    /// The chosen shape.
    pub shape: RegionShape,
    /// The chosen shape's price, in simulated seconds.
    pub priced_seconds: f64,
    /// The best fixed global candidate's price for this region (the
    /// floor the choice was measured against).
    pub best_seconds: f64,
    /// The worst candidate's price for this region.
    pub worst_seconds: f64,
}

/// The optimizer's result: the lowered plan plus the decision trail.
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The configuration that produced `compiled` (base config with
    /// `per_region` filled in).
    pub config: PashConfig,
    /// The compiled program at the chosen shapes.
    pub compiled: Arc<Compiled>,
    /// Per-region decisions, indexed by region.
    pub choices: Vec<RegionChoice>,
}

impl Optimized {
    /// The widest chosen width (what a "chosen width" summary metric
    /// reports for multi-region scripts).
    pub fn chosen_width(&self) -> usize {
        self.choices
            .iter()
            .map(|c| c.shape.width)
            .max()
            .unwrap_or(1)
    }

    /// The split policy of the widest chosen region.
    pub fn chosen_split(&self) -> SplitPolicy {
        self.choices
            .iter()
            .max_by_key(|c| c.shape.width)
            .map(|c| c.shape.split)
            .unwrap_or(SplitPolicy::Off)
    }
}

/// Chooses a per-region `(width, split)` shape for `src` by pricing
/// every candidate region through `pricer`, then compiles the chosen
/// shape. `base` supplies everything the optimizer does not decide
/// (eager policy, agg tree, env); its `width`/`split`/`per_region` are
/// ignored.
///
/// All candidate compilations go through [`compile_cached`], so a
/// daemon re-optimizing a hot script pays no repeated front-end work.
pub fn optimize(
    src: &str,
    base: &PashConfig,
    pricer: &dyn CandidatePricer,
    ocfg: &OptimizerConfig,
) -> Result<Optimized, Error> {
    let shapes = ocfg.candidates();
    let mut candidates = Vec::with_capacity(shapes.len());
    for shape in shapes {
        let cfg = PashConfig {
            width: shape.width,
            split: shape.split,
            per_region: Vec::new(),
            ..base.clone()
        };
        candidates.push((shape, compile_cached(src, &cfg)?));
    }
    // All candidates share the front-end, so they agree on the region
    // count; use the first as the reference.
    let region_count = candidates
        .first()
        .map(|(_, c)| c.plan.region_count())
        .unwrap_or(0);

    let mut choices = Vec::with_capacity(region_count);
    let mut per_region = Vec::with_capacity(region_count);
    for region in 0..region_count {
        // Price this region under every candidate shape.
        let priced: Vec<(RegionShape, f64)> = candidates
            .iter()
            .filter_map(|(shape, c)| {
                c.plan
                    .regions()
                    .nth(region)
                    .map(|r| (*shape, pricer.price_region(r)))
            })
            .collect();
        let best = priced.iter().map(|(_, s)| *s).fold(f64::INFINITY, f64::min);
        let worst = priced.iter().map(|(_, s)| *s).fold(0.0f64, f64::max);
        // Candidates are ordered cheapest-shape-first, so the first
        // one within the hysteresis band of the best price is the
        // smallest acceptable shape.
        let (shape, seconds) = priced
            .iter()
            .find(|(_, s)| *s <= best * (1.0 + ocfg.hysteresis))
            .copied()
            .unwrap_or((
                RegionShape {
                    width: 1,
                    split: SplitPolicy::Off,
                },
                best,
            ));
        per_region.push(shape);
        choices.push(RegionChoice {
            region,
            shape,
            priced_seconds: seconds,
            best_seconds: best,
            worst_seconds: worst,
        });
    }

    let config = PashConfig {
        // The global width/split are the widest region's choice so
        // that code reading only the globals sees something sensible;
        // `per_region` is what actually binds.
        width: per_region.iter().map(|s| s.width).max().unwrap_or(1),
        split: per_region
            .iter()
            .max_by_key(|s| s.width)
            .map(|s| s.split)
            .unwrap_or(SplitPolicy::Off),
        per_region,
        ..base.clone()
    };
    let compiled = compile_cached(src, &config)?;
    Ok(Optimized {
        config,
        compiled,
        choices,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Prices a region by node count — wider is pricier, so the
    /// optimizer must collapse to width 1.
    struct NodeCountPricer;

    impl CandidatePricer for NodeCountPricer {
        fn price_region(&self, r: &RegionPlan) -> f64 {
            r.nodes.len() as f64
        }
    }

    /// Prices a region by 1/nodes — wider is always cheaper, so the
    /// optimizer must saturate at the clamp.
    struct InverseNodePricer;

    impl CandidatePricer for InverseNodePricer {
        fn price_region(&self, r: &RegionPlan) -> f64 {
            1.0 / r.nodes.len() as f64
        }
    }

    #[test]
    fn width_ladder_covers_clamp() {
        let cfg = OptimizerConfig {
            max_width: 12,
            ..Default::default()
        };
        assert_eq!(cfg.widths(), vec![1, 2, 4, 8, 12]);
        let cfg = OptimizerConfig {
            max_width: 16,
            ..Default::default()
        };
        assert_eq!(cfg.widths(), vec![1, 2, 4, 8, 16]);
        let cfg = OptimizerConfig {
            max_width: 1,
            ..Default::default()
        };
        assert_eq!(cfg.widths(), vec![1]);
    }

    #[test]
    fn serial_pricer_collapses_to_width_one() {
        let out = optimize(
            "cat in.txt | tr A-Z a-z | sort > out.txt",
            &PashConfig::default(),
            &NodeCountPricer,
            &OptimizerConfig::default(),
        )
        .expect("optimize");
        assert_eq!(out.chosen_width(), 1);
        assert_eq!(out.compiled.stats.nodes.commands, 2);
    }

    #[test]
    fn parallel_pricer_saturates_at_clamp() {
        let ocfg = OptimizerConfig {
            max_width: 8,
            ..Default::default()
        };
        let out = optimize(
            "cat in.txt | tr A-Z a-z | sort > out.txt",
            &PashConfig::default(),
            &InverseNodePricer,
            &ocfg,
        )
        .expect("optimize");
        assert_eq!(out.chosen_width(), 8);
        assert!(out.choices[0].worst_seconds >= out.choices[0].best_seconds);
    }

    #[test]
    fn per_region_override_binds_in_compile() {
        let src = "cat a.txt | tr A-Z a-z > b.txt\ncat c.txt | tr a-z A-Z > d.txt";
        let narrow = crate::compile::compile(
            src,
            &PashConfig {
                width: 1,
                ..Default::default()
            },
        )
        .expect("compile");
        assert_eq!(narrow.plan.region_count(), 2);
        let cfg = PashConfig {
            width: 2,
            per_region: vec![
                RegionShape {
                    width: 1,
                    split: SplitPolicy::Off,
                },
                RegionShape {
                    width: 4,
                    split: SplitPolicy::Sized,
                },
            ],
            ..Default::default()
        };
        let mixed = crate::compile::compile(src, &cfg).expect("compile");
        let sizes: Vec<usize> = mixed.plan.regions().map(|r| r.nodes.len()).collect();
        let seq_sizes: Vec<usize> = narrow.plan.regions().map(|r| r.nodes.len()).collect();
        assert_eq!(sizes[0], seq_sizes[0], "region 0 pinned to width 1");
        assert!(
            sizes[1] > seq_sizes[1] * 2,
            "region 1 widened to 4 copies + merge"
        );
    }

    #[test]
    fn cache_key_distinguishes_per_region_shapes() {
        let base = PashConfig::default();
        let shaped = PashConfig {
            per_region: vec![RegionShape {
                width: 4,
                split: SplitPolicy::RoundRobin,
            }],
            ..Default::default()
        };
        assert_ne!(base.cache_key(), shaped.cache_key());
        assert!(
            base.cache_key().len() < shaped.cache_key().len(),
            "empty per_region must leave legacy keys untouched"
        );
    }

    #[test]
    fn region_fingerprint_is_local() {
        let one = crate::compile::compile("tr A-Z a-z < a.txt > b.txt", &PashConfig::default())
            .expect("compile");
        let two = crate::compile::compile(
            "tr A-Z a-z < a.txt > b.txt\necho done > s.txt",
            &PashConfig::default(),
        )
        .expect("compile");
        let f1 = one.plan.regions().next().expect("region").fingerprint();
        let f2 = two.plan.regions().next().expect("region").fingerprint();
        assert_eq!(f1, f2, "region fingerprint must ignore sibling steps");
        assert_ne!(one.plan.fingerprint(), two.plan.fingerprint());
    }
}
