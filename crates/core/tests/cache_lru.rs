//! The bounded compile cache, exercised against the process-global
//! instance. This lives in its own integration binary (its own OS
//! process) so shrinking the global capacity cannot perturb the unit
//! suites that rely on hits staying resident.

use std::sync::Arc;

use pash_core::compile::{cache_stats, compile_cached, set_cache_capacity, PashConfig};

/// One test fn on purpose: the global cache is process state, and
/// parallel test threads inside this binary would race its capacity.
#[test]
fn global_cache_is_lru_bounded() {
    set_cache_capacity(8);
    let cfg = PashConfig::default();

    // A pinned entry we keep touching; it must survive the churn.
    let pinned_src = "grep keep lru-pinned.txt > o";
    let pinned = compile_cached(pinned_src, &cfg).expect("compile");

    let before = cache_stats();
    for i in 0..24 {
        let src = format!("grep x lru-churn-{i}.txt > o");
        compile_cached(&src, &cfg).expect("compile");
        // Touch the pinned entry so it is never the stalest.
        let again = compile_cached(pinned_src, &cfg).expect("compile");
        assert!(
            Arc::ptr_eq(&pinned, &again),
            "freshly-touched entry evicted at churn step {i}"
        );
    }
    let after = cache_stats();
    assert!(
        after.evictions >= before.evictions + 16,
        "24 inserts into an 8-entry cache must evict (before {before:?}, after {after:?})"
    );
    assert!(after.misses >= before.misses + 24);

    // An entry that churned out misses on re-lookup (recompiles).
    let miss_floor = cache_stats().misses;
    compile_cached("grep x lru-churn-0.txt > o", &cfg).expect("compile");
    assert!(
        cache_stats().misses > miss_floor,
        "evicted entry should recompile"
    );

    // Restore the default for any code that runs after us in-process.
    set_cache_capacity(pash_core::compile::DEFAULT_CACHE_CAPACITY);
}
