//! Filesystem abstraction used by file-reading commands.
//!
//! Two implementations:
//! * [`MemFs`] — an in-memory tree for hermetic tests, the threaded
//!   executor, and the benchmark harness;
//! * [`RealFs`] — the host filesystem (used by `pashc` and examples).

use std::collections::HashMap;
use std::io::{self, BufRead, Read, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Abstract filesystem interface.
pub trait Fs: Send + Sync {
    /// Opens a file for reading.
    fn open(&self, path: &str) -> io::Result<Box<dyn Read + Send>>;

    /// Creates (truncates) a file for writing.
    fn create(&self, path: &str) -> io::Result<Box<dyn Write + Send>>;

    /// Returns the size of a file in bytes (used by the size-aware
    /// splitter and the segment reader).
    fn size(&self, path: &str) -> io::Result<u64>;

    /// Lists file names under a directory prefix, sorted.
    fn list(&self, dir: &str) -> io::Result<Vec<String>>;

    /// Opens a file with buffering.
    fn open_buffered(&self, path: &str) -> io::Result<Box<dyn BufRead + Send>> {
        Ok(Box::new(io::BufReader::new(self.open(path)?)))
    }

    /// Reads the byte range `[start, end)` of a file (clamped to the
    /// file length). The default implementation opens the file and
    /// skips to `start`; backends with random access override it so a
    /// k-wide stage reads O(len/k) bytes per copy instead of the
    /// whole file.
    fn read_range(&self, path: &str, start: u64, end: u64) -> io::Result<Vec<u8>> {
        // Open before the empty-range check so a missing file is an
        // error on every backend, empty range or not.
        let mut r = self.open(path)?;
        if end <= start {
            return Ok(Vec::new());
        }
        io::copy(&mut Read::by_ref(&mut r).take(start), &mut io::sink())?;
        let mut out = Vec::new();
        r.take(end - start).read_to_end(&mut out)?;
        Ok(out)
    }
}

type FileMap = Arc<Mutex<HashMap<String, Arc<Vec<u8>>>>>;

/// An in-memory filesystem.
///
/// Cloning is cheap (shared storage). Writes become visible when the
/// returned writer is dropped.
#[derive(Default, Clone)]
pub struct MemFs {
    files: FileMap,
}

impl MemFs {
    /// Creates an empty in-memory filesystem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a file.
    pub fn add(&self, path: impl Into<String>, contents: impl Into<Vec<u8>>) {
        self.files
            .lock()
            .expect("MemFs lock poisoned")
            .insert(normalize(&path.into()), Arc::new(contents.into()));
    }

    /// Adds (or replaces) a file without copying the contents — the
    /// `Arc` is shared with the caller. This is how cached corpora are
    /// mounted into per-test filesystems at zero marginal cost.
    pub fn add_shared(&self, path: impl Into<String>, contents: Arc<Vec<u8>>) {
        self.files
            .lock()
            .expect("MemFs lock poisoned")
            .insert(normalize(&path.into()), contents);
    }

    /// Returns an independent filesystem holding the same files.
    ///
    /// Contents are `Arc`-shared (no byte copies), but the trees are
    /// separate: writes to the snapshot do not touch `self` — unlike
    /// [`Clone`], which shares the tree itself.
    pub fn snapshot(&self) -> MemFs {
        let files = self.files.lock().expect("MemFs lock poisoned").clone();
        MemFs {
            files: Arc::new(Mutex::new(files)),
        }
    }

    /// Reads a whole file.
    pub fn read(&self, path: &str) -> io::Result<Vec<u8>> {
        self.files
            .lock()
            .expect("MemFs lock poisoned")
            .get(&normalize(path))
            .map(|a| a.as_ref().clone())
            .ok_or_else(|| not_found(path))
    }

    /// Lists every file with its shared contents, sorted by path.
    ///
    /// The `Arc`s are the storage cells themselves, so a caller can
    /// detect "this file changed since the snapshot was taken" by
    /// pointer comparison — no byte reads — which is how the service
    /// diffs a run's filesystem against its template.
    pub fn entries(&self) -> Vec<(String, Arc<Vec<u8>>)> {
        let mut v: Vec<(String, Arc<Vec<u8>>)> = self
            .files
            .lock()
            .expect("MemFs lock poisoned")
            .iter()
            .map(|(k, a)| (k.clone(), a.clone()))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Lists all paths, sorted.
    pub fn paths(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .files
            .lock()
            .expect("MemFs lock poisoned")
            .keys()
            .cloned()
            .collect();
        v.sort();
        v
    }
}

fn normalize(p: &str) -> String {
    p.trim_start_matches("./").to_string()
}

fn not_found(path: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::NotFound,
        format!("{path}: no such file or directory"),
    )
}

impl Fs for MemFs {
    fn open(&self, path: &str) -> io::Result<Box<dyn Read + Send>> {
        let data = self
            .files
            .lock()
            .expect("MemFs lock poisoned")
            .get(&normalize(path))
            .cloned()
            .ok_or_else(|| not_found(path))?;
        Ok(Box::new(ArcReader { data, pos: 0 }))
    }

    fn create(&self, path: &str) -> io::Result<Box<dyn Write + Send>> {
        Ok(Box::new(MemWriter {
            path: normalize(path),
            buf: Vec::new(),
            files: self.files.clone(),
        }))
    }

    fn size(&self, path: &str) -> io::Result<u64> {
        self.files
            .lock()
            .expect("MemFs lock poisoned")
            .get(&normalize(path))
            .map(|a| a.len() as u64)
            .ok_or_else(|| not_found(path))
    }

    fn read_range(&self, path: &str, start: u64, end: u64) -> io::Result<Vec<u8>> {
        let data = self
            .files
            .lock()
            .expect("MemFs lock poisoned")
            .get(&normalize(path))
            .cloned()
            .ok_or_else(|| not_found(path))?;
        let len = data.len() as u64;
        let s = start.min(len) as usize;
        let e = (end.min(len) as usize).max(s);
        Ok(data[s..e].to_vec())
    }

    fn list(&self, dir: &str) -> io::Result<Vec<String>> {
        let prefix = if dir.is_empty() || dir == "." {
            String::new()
        } else {
            format!("{}/", normalize(dir).trim_end_matches('/'))
        };
        let mut v: Vec<String> = self
            .files
            .lock()
            .expect("MemFs lock poisoned")
            .keys()
            .filter(|k| k.starts_with(&prefix))
            .cloned()
            .collect();
        v.sort();
        Ok(v)
    }
}

/// A reader over shared immutable file contents.
struct ArcReader {
    data: Arc<Vec<u8>>,
    pos: usize,
}

impl Read for ArcReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let remaining = &self.data[self.pos.min(self.data.len())..];
        let n = remaining.len().min(buf.len());
        buf[..n].copy_from_slice(&remaining[..n]);
        self.pos += n;
        Ok(n)
    }
}

/// A buffered writer that publishes contents on drop.
struct MemWriter {
    path: String,
    buf: Vec<u8>,
    files: FileMap,
}

impl Write for MemWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.buf.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for MemWriter {
    fn drop(&mut self) {
        self.files
            .lock()
            .expect("MemFs lock poisoned")
            .insert(self.path.clone(), Arc::new(std::mem::take(&mut self.buf)));
    }
}

/// The host filesystem, rooted at a directory.
pub struct RealFs {
    root: PathBuf,
}

impl RealFs {
    /// Creates a host filesystem rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Self { root: root.into() }
    }

    fn resolve(&self, path: &str) -> PathBuf {
        if path.starts_with('/') {
            PathBuf::from(path)
        } else {
            self.root.join(path)
        }
    }
}

impl Fs for RealFs {
    fn open(&self, path: &str) -> io::Result<Box<dyn Read + Send>> {
        Ok(Box::new(std::fs::File::open(self.resolve(path))?))
    }

    fn create(&self, path: &str) -> io::Result<Box<dyn Write + Send>> {
        let p = self.resolve(path);
        if let Some(parent) = p.parent() {
            std::fs::create_dir_all(parent)?;
        }
        Ok(Box::new(std::fs::File::create(p)?))
    }

    fn size(&self, path: &str) -> io::Result<u64> {
        Ok(std::fs::metadata(self.resolve(path))?.len())
    }

    fn read_range(&self, path: &str, start: u64, end: u64) -> io::Result<Vec<u8>> {
        use std::io::Seek;
        let mut f = std::fs::File::open(self.resolve(path))?;
        if end <= start {
            return Ok(Vec::new());
        }
        f.seek(io::SeekFrom::Start(start))?;
        let mut out = Vec::new();
        f.take(end - start).read_to_end(&mut out)?;
        Ok(out)
    }

    fn list(&self, dir: &str) -> io::Result<Vec<String>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(self.resolve(dir))? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                out.push(format!(
                    "{}/{}",
                    dir.trim_end_matches('/'),
                    entry.file_name().to_string_lossy()
                ));
            }
        }
        out.sort();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memfs_roundtrip() {
        let fs = MemFs::new();
        fs.add("a.txt", b"hello".to_vec());
        let mut r = fs.open("a.txt").expect("open");
        let mut buf = Vec::new();
        r.read_to_end(&mut buf).expect("read");
        assert_eq!(buf, b"hello");
        assert_eq!(fs.size("a.txt").expect("size"), 5);
    }

    #[test]
    fn memfs_missing_file() {
        let fs = MemFs::new();
        assert!(fs.open("nope").is_err());
        assert!(fs.size("nope").is_err());
    }

    #[test]
    fn memfs_write_commits_on_drop() {
        let fs = MemFs::new();
        {
            let mut w = fs.create("out.txt").expect("create");
            w.write_all(b"data").expect("write");
        }
        assert_eq!(fs.read("out.txt").expect("read"), b"data");
    }

    #[test]
    fn memfs_list_prefix() {
        let fs = MemFs::new();
        fs.add("d/a", b"1".to_vec());
        fs.add("d/b", b"2".to_vec());
        fs.add("e/c", b"3".to_vec());
        assert_eq!(fs.list("d").expect("list"), vec!["d/a", "d/b"]);
    }

    #[test]
    fn memfs_normalizes_dot_slash() {
        let fs = MemFs::new();
        fs.add("./x", b"1".to_vec());
        assert!(fs.open("x").is_ok());
    }

    #[test]
    fn memfs_writer_outlives_handle() {
        let w = {
            let fs = MemFs::new();
            fs.create("late.txt").expect("create")
        };
        // The writer holds shared storage; dropping it after the
        // creating handle is gone must be fine.
        drop(w);
    }

    #[test]
    fn memfs_clone_shares_storage() {
        let a = MemFs::new();
        let b = a.clone();
        a.add("x", b"1".to_vec());
        assert_eq!(b.read("x").expect("read"), b"1");
    }

    #[test]
    fn memfs_snapshot_isolates_writes() {
        let a = MemFs::new();
        a.add("x", b"1".to_vec());
        let b = a.snapshot();
        assert_eq!(b.read("x").expect("read"), b"1");
        b.add("y", b"2".to_vec());
        assert!(a.read("y").is_err(), "snapshot write leaked to source");
        a.add("z", b"3".to_vec());
        assert!(b.read("z").is_err(), "source write leaked to snapshot");
    }

    #[test]
    fn memfs_add_shared_mounts_without_copy() {
        let fs = MemFs::new();
        let data = Arc::new(b"shared".to_vec());
        fs.add_shared("s.txt", data.clone());
        assert_eq!(fs.read("s.txt").expect("read"), b"shared");
        // Two references: the caller's and the filesystem's.
        assert_eq!(Arc::strong_count(&data), 2);
    }

    #[test]
    fn memfs_read_range_native() {
        let fs = MemFs::new();
        fs.add("r.txt", b"0123456789".to_vec());
        assert_eq!(fs.read_range("r.txt", 2, 5).expect("range"), b"234");
        assert_eq!(
            fs.read_range("r.txt", 0, 100).expect("range"),
            b"0123456789"
        );
        assert_eq!(fs.read_range("r.txt", 7, 7).expect("range"), b"");
        assert_eq!(fs.read_range("r.txt", 20, 30).expect("range"), b"");
        assert!(fs.read_range("nope", 0, 1).is_err());
        // A missing file is an error even for an empty range.
        assert!(fs.read_range("nope", 3, 3).is_err());
    }

    #[test]
    fn default_read_range_matches_native() {
        // A wrapper that hides MemFs's override, forcing the trait's
        // open+skip fallback.
        struct OpenOnly(MemFs);
        impl Fs for OpenOnly {
            fn open(&self, path: &str) -> io::Result<Box<dyn Read + Send>> {
                self.0.open(path)
            }
            fn create(&self, path: &str) -> io::Result<Box<dyn Write + Send>> {
                self.0.create(path)
            }
            fn size(&self, path: &str) -> io::Result<u64> {
                self.0.size(path)
            }
            fn list(&self, dir: &str) -> io::Result<Vec<String>> {
                self.0.list(dir)
            }
        }
        let fs = MemFs::new();
        fs.add("r.txt", b"abcdefghij".to_vec());
        let fallback = OpenOnly(fs.clone());
        for (s, e) in [(0, 0), (0, 4), (3, 9), (5, 100), (9, 3)] {
            assert_eq!(
                fallback.read_range("r.txt", s, e).expect("fallback"),
                fs.read_range("r.txt", s, e).expect("native"),
                "range [{s}, {e})"
            );
        }
        // Missing files error through the fallback too, even when the
        // requested range is empty.
        assert!(fallback.read_range("nope", 0, 0).is_err());
        assert!(fallback.read_range("nope", 0, 5).is_err());
    }

    #[test]
    fn realfs_read_range_seeks() {
        let dir = std::env::temp_dir().join(format!("pash-fs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let fs = RealFs::new(&dir);
        {
            let mut w = fs.create("f.txt").expect("create");
            w.write_all(b"hello world").expect("write");
        }
        assert_eq!(fs.read_range("f.txt", 6, 11).expect("range"), b"world");
        assert_eq!(fs.read_range("f.txt", 6, 6).expect("range"), b"");
        std::fs::remove_dir_all(&dir).ok();
    }
}
