//! `pashc` — a multi-call binary exposing every command in the crate
//! (like busybox), so that PaSh-compiled scripts run hermetically under
//! any POSIX `/bin/sh`:
//!
//! ```text
//! pashc grep -c foo < input
//! ```

use std::io::{self, BufRead, Write};
use std::sync::Arc;

use pash_coreutils::fs::RealFs;
use pash_coreutils::{CmdIo, Registry};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(&args) {
        Ok(c) => c,
        Err(e) if e.kind() == io::ErrorKind::BrokenPipe => pash_coreutils::SIGPIPE_STATUS,
        Err(e) => {
            eprintln!("pashc: {e}");
            1
        }
    };
    std::process::exit(code);
}

fn run(args: &[String]) -> io::Result<i32> {
    let (name, rest) = match args.split_first() {
        Some(x) => x,
        None => {
            eprintln!("usage: pashc COMMAND [ARGS…]");
            eprintln!("commands: {}", Registry::standard().names().join(" "));
            return Ok(2);
        }
    };
    let registry = Registry::standard();
    let cmd = registry
        .get(name)
        .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("{name}: not found")))?;
    let stdin = io::stdin();
    let stdout = io::stdout();
    let stderr = io::stderr();
    let mut in_lock: Box<dyn BufRead> = Box::new(stdin.lock());
    let mut out_lock: Box<dyn Write> = Box::new(io::BufWriter::new(stdout.lock()));
    let mut err_lock: Box<dyn Write> = Box::new(stderr.lock());
    let cwd = std::env::current_dir()?;
    let mut cio = CmdIo {
        stdin: &mut in_lock,
        stdout: &mut out_lock,
        stderr: &mut err_lock,
        fs: Arc::new(RealFs::new(cwd)),
        registry: &registry,
    };
    let status = cmd.run(&rest.to_vec(), &mut cio)?;
    cio.stdout.flush()?;
    Ok(status)
}
