//! Line-oriented I/O helpers shared by the commands.
//!
//! UNIX streams are newline-delimited byte sequences (§2.1 of the
//! paper); these helpers implement that discipline once: iteration
//! over lines *without* their terminator, and writing lines *with*
//! one.

use std::io::{self, BufRead, Write};

/// Calls `f` for each line (newline stripped). `f` returns `false` to
/// stop early.
///
/// A final line without a trailing newline is still delivered.
pub fn for_each_line<R: BufRead + ?Sized>(
    r: &mut R,
    mut f: impl FnMut(&[u8]) -> io::Result<bool>,
) -> io::Result<()> {
    let mut buf = Vec::with_capacity(256);
    loop {
        buf.clear();
        let n = r.read_until(b'\n', &mut buf)?;
        if n == 0 {
            return Ok(());
        }
        if buf.last() == Some(&b'\n') {
            buf.pop();
        }
        if !f(&buf)? {
            return Ok(());
        }
    }
}

/// Reads all lines into owned vectors (newlines stripped).
pub fn read_all_lines<R: BufRead + ?Sized>(r: &mut R) -> io::Result<Vec<Vec<u8>>> {
    let mut out = Vec::new();
    for_each_line(r, |line| {
        out.push(line.to_vec());
        Ok(true)
    })?;
    Ok(out)
}

/// Writes a line followed by a newline, as one `write_all`.
///
/// On an unbuffered edge, two writes mean two lock acquisitions per
/// line; assembling `line + "\n"` on the stack first halves that. The
/// window is kept small (a few cache lines) so its zeroing cost stays
/// negligible; longer lines (rare) fall back to two writes rather
/// than allocate per line.
pub fn write_line<W: Write + ?Sized>(w: &mut W, line: &[u8]) -> io::Result<()> {
    const STACK: usize = 256;
    if line.len() < STACK {
        let mut buf = [0u8; STACK];
        buf[..line.len()].copy_from_slice(line);
        buf[line.len()] = b'\n';
        w.write_all(&buf[..line.len() + 1])
    } else {
        w.write_all(line)?;
        w.write_all(b"\n")
    }
}

/// Splits a line into fields on a single-byte delimiter.
pub fn split_fields(line: &[u8], delim: u8) -> Vec<&[u8]> {
    line.split(|&b| b == delim).collect()
}

/// Splits a line into whitespace-separated fields (runs of blanks
/// collapse, leading blanks ignored) — the `awk`/`sort -k` default.
pub fn split_whitespace(line: &[u8]) -> Vec<&[u8]> {
    line.split(|b| b.is_ascii_whitespace())
        .filter(|f| !f.is_empty())
        .collect()
}

/// Parses a decimal prefix of a byte string as `f64`, the way
/// `sort -n` does: optional blanks, optional sign, digits, optional
/// fraction. Unparsable values compare as 0.
pub fn numeric_prefix(s: &[u8]) -> f64 {
    let mut i = 0;
    while i < s.len() && (s[i] == b' ' || s[i] == b'\t') {
        i += 1;
    }
    let start = i;
    if i < s.len() && (s[i] == b'-' || s[i] == b'+') {
        i += 1;
    }
    let mut seen_digit = false;
    while i < s.len() && s[i].is_ascii_digit() {
        i += 1;
        seen_digit = true;
    }
    if i < s.len() && s[i] == b'.' {
        i += 1;
        while i < s.len() && s[i].is_ascii_digit() {
            i += 1;
            seen_digit = true;
        }
    }
    if !seen_digit {
        return 0.0;
    }
    std::str::from_utf8(&s[start..i])
        .ok()
        .and_then(|t| t.parse().ok())
        .unwrap_or(0.0)
}

/// Parses a list spec like `1,3-5,7-` into sorted half-open ranges
/// (1-based, end `usize::MAX` for open ranges) — the `cut -f`/`-c`
/// argument format.
pub fn parse_ranges(spec: &str) -> Option<Vec<(usize, usize)>> {
    let mut out = Vec::new();
    for part in spec.split(',') {
        if part.is_empty() {
            return None;
        }
        let (lo, hi) = match part.split_once('-') {
            None => {
                let n: usize = part.parse().ok()?;
                (n, n)
            }
            Some(("", hi)) => (1, hi.parse().ok()?),
            Some((lo, "")) => (lo.parse().ok()?, usize::MAX),
            Some((lo, hi)) => (lo.parse().ok()?, hi.parse().ok()?),
        };
        if lo == 0 || hi < lo {
            return None;
        }
        out.push((lo, hi));
    }
    out.sort_unstable();
    Some(out)
}

/// Tests membership of a 1-based index in parsed ranges.
pub fn in_ranges(ranges: &[(usize, usize)], idx: usize) -> bool {
    ranges.iter().any(|&(lo, hi)| idx >= lo && idx <= hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn lines_with_and_without_trailing_newline() {
        let mut r = BufReader::new(&b"a\nb\nc"[..]);
        let lines = read_all_lines(&mut r).expect("read");
        assert_eq!(lines, vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()]);
    }

    #[test]
    fn empty_input_no_lines() {
        let mut r = BufReader::new(&b""[..]);
        assert!(read_all_lines(&mut r).expect("read").is_empty());
    }

    #[test]
    fn empty_lines_preserved() {
        let mut r = BufReader::new(&b"a\n\nb\n"[..]);
        let lines = read_all_lines(&mut r).expect("read");
        assert_eq!(lines.len(), 3);
        assert!(lines[1].is_empty());
    }

    #[test]
    fn early_stop() {
        let mut r = BufReader::new(&b"1\n2\n3\n"[..]);
        let mut seen = 0;
        for_each_line(&mut r, |_| {
            seen += 1;
            Ok(seen < 2)
        })
        .expect("iterate");
        assert_eq!(seen, 2);
    }

    #[test]
    fn numeric_prefix_parsing() {
        assert_eq!(numeric_prefix(b"42abc"), 42.0);
        assert_eq!(numeric_prefix(b"  -3.5x"), -3.5);
        assert_eq!(numeric_prefix(b"abc"), 0.0);
        assert_eq!(numeric_prefix(b""), 0.0);
        assert_eq!(numeric_prefix(b"+7"), 7.0);
    }

    #[test]
    fn ranges_parse_and_match() {
        let r = parse_ranges("1,3-5,8-").expect("parse");
        assert!(in_ranges(&r, 1));
        assert!(!in_ranges(&r, 2));
        assert!(in_ranges(&r, 4));
        assert!(in_ranges(&r, 100));
        assert!(parse_ranges("0").is_none());
        assert!(parse_ranges("5-2").is_none());
        assert!(parse_ranges("").is_none());
    }

    #[test]
    fn whitespace_split() {
        assert_eq!(
            split_whitespace(b"  a\t b  c "),
            vec![&b"a"[..], &b"b"[..], &b"c"[..]]
        );
    }
}
