//! Sort key extraction and comparison, shared between `sort` and the
//! runtime's `sort -m`-style merge aggregator.
//!
//! Keeping one implementation guarantees that the parallel merge uses
//! exactly the sequential comparator — the invariant the map/aggregate
//! law for `sort` rests on.

use std::cmp::Ordering;

use crate::lines::{numeric_prefix, split_fields, split_whitespace};

/// One `-k POS1[,POS2]` key definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeySpec {
    /// 1-based first field of the key.
    pub start_field: usize,
    /// 1-based last field (inclusive); `None` = to end of line.
    pub end_field: Option<usize>,
    /// `n` modifier: numeric comparison.
    pub numeric: bool,
    /// `r` modifier: reverse this key.
    pub reverse: bool,
    /// Whether any per-key modifier was given (overrides globals).
    pub has_modifiers: bool,
}

/// A full sort ordering specification.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SortSpec {
    /// Global `-n`.
    pub numeric: bool,
    /// Global `-r`.
    pub reverse: bool,
    /// `-u`: drop duplicate keys.
    pub unique: bool,
    /// `-t SEP`: field separator (default: whitespace runs).
    pub separator: Option<u8>,
    /// `-k` keys, in priority order; empty = whole line.
    pub keys: Vec<KeySpec>,
}

impl SortSpec {
    /// Parses one `-k` argument such as `2`, `2,3`, `2n`, `2,2nr`.
    ///
    /// Character offsets (`F.C`) are accepted but the character part is
    /// ignored (field granularity), matching what the PaSh benchmarks
    /// need.
    pub fn parse_key(arg: &str) -> Option<KeySpec> {
        fn parse_pos(s: &str) -> Option<(usize, bool, bool, bool)> {
            let mut field = String::new();
            let mut it = s.chars().peekable();
            while let Some(c) = it.peek() {
                if c.is_ascii_digit() {
                    field.push(*c);
                    it.next();
                } else {
                    break;
                }
            }
            // Optional `.C` character offset (ignored).
            if it.peek() == Some(&'.') {
                it.next();
                while it.peek().map(|c| c.is_ascii_digit()).unwrap_or(false) {
                    it.next();
                }
            }
            let mut numeric = false;
            let mut reverse = false;
            let mut modified = false;
            for c in it {
                match c {
                    'n' => {
                        numeric = true;
                        modified = true;
                    }
                    'r' => {
                        reverse = true;
                        modified = true;
                    }
                    'b' => modified = true, // Ignore-leading-blanks: our default.
                    _ => return None,
                }
            }
            let f: usize = field.parse().ok()?;
            if f == 0 {
                return None;
            }
            Some((f, numeric, reverse, modified))
        }
        match arg.split_once(',') {
            None => {
                let (f, n, r, m) = parse_pos(arg)?;
                Some(KeySpec {
                    start_field: f,
                    end_field: None,
                    numeric: n,
                    reverse: r,
                    has_modifiers: m,
                })
            }
            Some((a, b)) => {
                let (f1, n1, r1, m1) = parse_pos(a)?;
                let (f2, n2, r2, m2) = parse_pos(b)?;
                Some(KeySpec {
                    start_field: f1,
                    end_field: Some(f2),
                    numeric: n1 || n2,
                    reverse: r1 || r2,
                    has_modifiers: m1 || m2,
                })
            }
        }
    }

    /// Compares two lines under this specification.
    pub fn compare(&self, a: &[u8], b: &[u8]) -> Ordering {
        if self.keys.is_empty() {
            let ord = if self.numeric {
                compare_numeric(a, b)
            } else {
                a.cmp(b)
            };
            return if self.reverse { ord.reverse() } else { ord };
        }
        for key in &self.keys {
            let ka = extract_key(a, key, self.separator);
            let kb = extract_key(b, key, self.separator);
            let (numeric, reverse) = if key.has_modifiers {
                (key.numeric, key.reverse)
            } else {
                (self.numeric || key.numeric, self.reverse || key.reverse)
            };
            let ord = if numeric {
                compare_numeric(&ka, &kb)
            } else {
                ka.cmp(&kb)
            };
            let ord = if reverse { ord.reverse() } else { ord };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        // Last-resort comparison on the whole line (GNU default).
        let ord = a.cmp(b);
        if self.reverse {
            ord.reverse()
        } else {
            ord
        }
    }

    /// True when two lines compare equal *as keys* (for `-u`).
    pub fn key_equal(&self, a: &[u8], b: &[u8]) -> bool {
        if self.keys.is_empty() {
            if self.numeric {
                return compare_numeric(a, b) == Ordering::Equal;
            }
            return a == b;
        }
        for key in &self.keys {
            let ka = extract_key(a, key, self.separator);
            let kb = extract_key(b, key, self.separator);
            let numeric = if key.has_modifiers {
                key.numeric
            } else {
                self.numeric || key.numeric
            };
            let eq = if numeric {
                compare_numeric(&ka, &kb) == Ordering::Equal
            } else {
                ka == kb
            };
            if !eq {
                return false;
            }
        }
        true
    }
}

fn compare_numeric(a: &[u8], b: &[u8]) -> Ordering {
    numeric_prefix(a)
        .partial_cmp(&numeric_prefix(b))
        .unwrap_or(Ordering::Equal)
}

/// Extracts the key bytes for one `-k` spec.
fn extract_key(line: &[u8], key: &KeySpec, separator: Option<u8>) -> Vec<u8> {
    let fields: Vec<&[u8]> = match separator {
        Some(sep) => split_fields(line, sep),
        None => split_whitespace(line),
    };
    let start = key.start_field.saturating_sub(1);
    let end = key
        .end_field
        .map(|e| e.min(fields.len()))
        .unwrap_or(fields.len());
    if start >= fields.len() || start >= end {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, f) in fields[start..end].iter().enumerate() {
        if i > 0 {
            out.push(separator.unwrap_or(b' '));
        }
        out.extend_from_slice(f);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(args: &str) -> SortSpec {
        // Tiny builder: "n", "r", "k2", "k2n", "t:" joined by spaces.
        let mut s = SortSpec::default();
        for a in args.split_whitespace() {
            match a {
                "n" => s.numeric = true,
                "r" => s.reverse = true,
                "u" => s.unique = true,
                _ if a.starts_with('t') => s.separator = Some(a.as_bytes()[1]),
                _ if a.starts_with('k') => s.keys.push(SortSpec::parse_key(&a[1..]).expect("key")),
                other => panic!("bad spec {other}"),
            }
        }
        s
    }

    #[test]
    fn plain_lexicographic() {
        let s = spec("");
        assert_eq!(s.compare(b"apple", b"banana"), Ordering::Less);
        assert_eq!(s.compare(b"b", b"b"), Ordering::Equal);
    }

    #[test]
    fn numeric_global() {
        let s = spec("n");
        assert_eq!(s.compare(b"9", b"10"), Ordering::Less);
        assert_eq!(s.compare(b"-2", b"1"), Ordering::Less);
    }

    #[test]
    fn reverse_global() {
        let s = spec("r");
        assert_eq!(s.compare(b"a", b"b"), Ordering::Greater);
    }

    #[test]
    fn reverse_numeric() {
        let s = spec("r n");
        assert_eq!(s.compare(b"10", b"9"), Ordering::Less);
    }

    #[test]
    fn key_second_field() {
        let s = spec("k2");
        assert_eq!(s.compare(b"x banana", b"y apple"), Ordering::Greater);
    }

    #[test]
    fn key_numeric_modifier() {
        let s = spec("k2n");
        assert_eq!(s.compare(b"a 9", b"b 10"), Ordering::Less);
    }

    #[test]
    fn key_with_custom_separator() {
        let s = spec("t: k2");
        assert_eq!(s.compare(b"x:bb", b"y:aa"), Ordering::Greater);
    }

    #[test]
    fn key_range() {
        let s = spec("k2,3");
        assert_eq!(
            s.compare(b"_ a z _", b"_ a z X"),
            s.compare(b"_ a z _", b"_ a z X")
        );
        assert_eq!(s.compare(b"_ b c", b"_ b d"), Ordering::Less);
    }

    #[test]
    fn last_resort_whole_line() {
        let s = spec("k2");
        // Equal keys fall back to full-line order.
        assert_eq!(s.compare(b"a same", b"b same"), Ordering::Less);
    }

    #[test]
    fn missing_field_sorts_empty() {
        let s = spec("k3");
        assert_eq!(s.compare(b"a b", b"a b c"), Ordering::Less);
    }

    #[test]
    fn parse_key_forms() {
        assert!(SortSpec::parse_key("2").is_some());
        assert!(SortSpec::parse_key("2,3").is_some());
        assert!(SortSpec::parse_key("2.1,2.5").is_some());
        let k = SortSpec::parse_key("2nr").expect("key");
        assert!(k.numeric && k.reverse && k.has_modifiers);
        assert!(SortSpec::parse_key("0").is_none());
        assert!(SortSpec::parse_key("x").is_none());
    }

    #[test]
    fn key_equality_for_unique() {
        let s = spec("k1n");
        assert!(s.key_equal(b"01 x", b"1 y"));
        assert!(!s.key_equal(b"1 x", b"2 x"));
    }
}
