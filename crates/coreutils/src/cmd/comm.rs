//! `comm` — select or reject lines common to two sorted files.
//!
//! The paper's running annotation example (§3.2): with `-13` or `-23`
//! one input becomes a static "configuration" input and `comm` drops
//! to class S; in the general case it is class P.

use std::io;

use crate::lines::read_all_lines;
use crate::{open_input, CmdIo, Command, ExitStatus};

/// `comm [-1] [-2] [-3] file1 file2`.
pub struct Comm;

impl Command for Comm {
    fn name(&self) -> &'static str {
        "comm"
    }

    fn run(&self, args: &[String], io: &mut CmdIo<'_>) -> io::Result<ExitStatus> {
        let mut show1 = true;
        let mut show2 = true;
        let mut show3 = true;
        let mut files: Vec<&str> = Vec::new();
        for a in args {
            match a.as_str() {
                "-" => files.push("-"),
                s if s.starts_with('-')
                    && s.len() > 1
                    && s[1..].chars().all(|c| "123".contains(c)) =>
                {
                    for c in s[1..].chars() {
                        match c {
                            '1' => show1 = false,
                            '2' => show2 = false,
                            '3' => show3 = false,
                            _ => unreachable!("guard checked flag set"),
                        }
                    }
                }
                other => files.push(other),
            }
        }
        if files.len() != 2 {
            return crate::usage_error(io, "comm", "needs exactly two files");
        }
        let mut r1 = open_input(&io.fs, files[0], io.stdin)?;
        let a = read_all_lines(&mut r1)?;
        let mut r2 = open_input(&io.fs, files[1], io.stdin)?;
        let b = read_all_lines(&mut r2)?;

        // Column layout: col2 indented by one tab, col3 by the number
        // of preceding selected columns.
        let tab2: &[u8] = if show1 { b"\t" } else { b"" };
        let mut tab3: Vec<u8> = Vec::new();
        if show1 {
            tab3.push(b'\t');
        }
        if show2 {
            tab3.push(b'\t');
        }

        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() || j < b.len() {
            let ord = match (a.get(i), b.get(j)) {
                (Some(x), Some(y)) => x.cmp(y),
                (Some(_), None) => std::cmp::Ordering::Less,
                (None, Some(_)) => std::cmp::Ordering::Greater,
                (None, None) => break,
            };
            match ord {
                std::cmp::Ordering::Less => {
                    if show1 {
                        io.stdout.write_all(&a[i])?;
                        io.stdout.write_all(b"\n")?;
                    }
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    if show2 {
                        io.stdout.write_all(tab2)?;
                        io.stdout.write_all(&b[j])?;
                        io.stdout.write_all(b"\n")?;
                    }
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    if show3 {
                        io.stdout.write_all(&tab3)?;
                        io.stdout.write_all(&a[i])?;
                        io.stdout.write_all(b"\n")?;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        Ok(0)
    }
}

#[cfg(test)]
mod tests {
    use crate::fs::MemFs;
    use crate::{run_command, Registry};
    use std::sync::Arc;

    fn comm(args: &[&str], stdin: &str) -> String {
        let mut argv = vec!["comm"];
        argv.extend(args);
        let fs = Arc::new(MemFs::new());
        fs.add("f1", b"a\nb\nc\nd\n".to_vec());
        fs.add("f2", b"b\nd\ne\n".to_vec());
        fs.add("dict", b"apple\nbanana\n".to_vec());
        let out = run_command(&Registry::standard(), fs, &argv, stdin.as_bytes()).expect("run");
        String::from_utf8(out.stdout).expect("utf8")
    }

    #[test]
    fn three_columns() {
        assert_eq!(comm(&["f1", "f2"], ""), "a\n\t\tb\nc\n\t\td\n\te\n");
    }

    #[test]
    fn suppress_first_and_third() {
        // Lines unique to the second input.
        assert_eq!(comm(&["-13", "f1", "f2"], ""), "e\n");
    }

    #[test]
    fn suppress_second_and_third() {
        // Lines unique to the first input — the Spell idiom
        // `comm -23 sorted-words dict`.
        assert_eq!(comm(&["-23", "f1", "f2"], ""), "a\nc\n");
    }

    #[test]
    fn common_only() {
        assert_eq!(comm(&["-12", "f1", "f2"], ""), "b\nd\n");
    }

    #[test]
    fn stdin_as_dash() {
        // The Spell pipeline feeds candidate words on stdin.
        assert_eq!(comm(&["-13", "dict", "-"], "apple\nzebra\n"), "zebra\n");
    }

    #[test]
    fn separate_flags() {
        assert_eq!(
            comm(&["-1", "-3", "f1", "f2"], ""),
            comm(&["-13", "f1", "f2"], "")
        );
    }

    #[test]
    fn wrong_arity_is_usage_error() {
        let out = run_command(
            &Registry::standard(),
            Arc::new(MemFs::new()),
            &["comm", "only-one"],
            b"",
        )
        .expect("run");
        assert_eq!(out.status, 2);
    }
}
