//! `xargs` — build and run command lines from standard input.
//!
//! Supports `-n N` (arguments per invocation) and an inner command
//! resolved from the registry. This is the construct PaSh's Fig. 3
//! parallelizes (`xargs -n 1 curl -s` fed by `split`).

use std::io::{self};

use crate::{CmdIo, Command, ExitStatus};

/// The `xargs` command.
pub struct Xargs;

impl Command for Xargs {
    fn name(&self) -> &'static str {
        "xargs"
    }

    fn run(&self, args: &[String], io: &mut CmdIo<'_>) -> io::Result<ExitStatus> {
        let mut per_call: Option<usize> = None;
        let mut inner: Vec<String> = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "-n" if inner.is_empty() => {
                    per_call = it.next().and_then(|s| s.parse().ok());
                }
                s if s.starts_with("-n") && s.len() > 2 && inner.is_empty() => {
                    per_call = s[2..].parse().ok();
                }
                other => inner.push(other.to_string()),
            }
        }
        if inner.is_empty() {
            inner.push("echo".to_string());
        }
        let cmd = io.registry.get(&inner[0]).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("xargs: {}: command not found", inner[0]),
            )
        })?;

        // Collect whitespace-separated tokens from stdin.
        let mut tokens: Vec<String> = Vec::new();
        let mut buf = String::new();
        io.stdin.read_to_string(&mut buf)?;
        tokens.extend(buf.split_whitespace().map(|s| s.to_string()));

        if tokens.is_empty() {
            return Ok(0);
        }
        let n = per_call.unwrap_or(tokens.len().max(1)).max(1);
        let mut status = 0;
        for chunk in tokens.chunks(n) {
            let mut argv: Vec<String> = inner[1..].to_vec();
            argv.extend(chunk.iter().cloned());
            let mut empty = io::BufReader::new(&b""[..]);
            let mut inner_io = CmdIo {
                stdin: &mut empty,
                stdout: io.stdout,
                stderr: io.stderr,
                fs: io.fs.clone(),
                registry: io.registry,
            };
            let s = cmd.run(&argv, &mut inner_io)?;
            if s != 0 {
                status = 123;
            }
        }
        Ok(status)
    }
}

#[cfg(test)]
mod tests {
    use crate::fs::MemFs;
    use crate::{run_command, Registry};
    use std::sync::Arc;

    fn xargs(argv: &[&str], input: &str) -> String {
        let fs = Arc::new(MemFs::new());
        fs.add("x1", b"alpha\nbeta\n".to_vec());
        fs.add("x2", b"gamma\n".to_vec());
        let out = run_command(&Registry::standard(), fs, argv, input.as_bytes()).expect("run");
        String::from_utf8(out.stdout).expect("utf8")
    }

    #[test]
    fn default_echo() {
        assert_eq!(xargs(&["xargs"], "a b\nc\n"), "a b c\n");
    }

    #[test]
    fn n1_one_per_invocation() {
        assert_eq!(xargs(&["xargs", "-n", "1", "echo"], "a b c"), "a\nb\nc\n");
    }

    #[test]
    fn n2_pairs() {
        assert_eq!(
            xargs(&["xargs", "-n2", "echo"], "a b c d e"),
            "a b\nc d\ne\n"
        );
    }

    #[test]
    fn inner_command_with_fixed_args() {
        assert_eq!(
            xargs(&["xargs", "-n", "1", "echo", "got:"], "x y"),
            "got: x\ngot: y\n"
        );
    }

    #[test]
    fn cat_files_from_stdin() {
        // The `xargs -n 1 curl -s` shape: inner command reads the named
        // files and concatenates their contents.
        assert_eq!(
            xargs(&["xargs", "-n", "1", "cat"], "x1 x2"),
            "alpha\nbeta\ngamma\n"
        );
    }

    #[test]
    fn wc_over_files() {
        // The Shortest-scripts shape: xargs wc -l.
        let out = xargs(&["xargs", "wc", "-l"], "x1 x2");
        assert!(out.contains("x1"));
        assert!(out.contains("total"));
    }

    #[test]
    fn empty_input_runs_nothing() {
        assert_eq!(xargs(&["xargs", "echo"], ""), "");
    }

    #[test]
    fn unknown_inner_command_errors() {
        let fs = Arc::new(MemFs::new());
        assert!(run_command(&Registry::standard(), fs, &["xargs", "nope"], b"x").is_err());
    }
}
