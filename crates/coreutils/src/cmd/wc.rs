//! `wc` — count lines, words, bytes.

use std::io;

use crate::{open_input, CmdIo, Command, ExitStatus};

/// `wc [-lwcm] [file…]`.
///
/// The paper's example of a *trivially* parallelizable-pure command:
/// the aggregator adds per-part count vectors, whatever flag subset is
/// active (`wc -lw`, `wc -lwc`, … — §5.2).
pub struct Wc;

/// One file's counts.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Counts {
    /// Newline count.
    pub lines: u64,
    /// Word count.
    pub words: u64,
    /// Byte count.
    pub bytes: u64,
}

/// Counts a byte stream (shared with the runtime `wc` aggregator).
pub fn count_stream<R: io::BufRead + ?Sized>(r: &mut R) -> io::Result<Counts> {
    let mut c = Counts::default();
    let mut in_word = false;
    let mut buf = [0u8; 64 * 1024];
    loop {
        let n = io::Read::read(r, &mut buf)?;
        if n == 0 {
            break;
        }
        c.bytes += n as u64;
        for &b in &buf[..n] {
            if b == b'\n' {
                c.lines += 1;
            }
            if b.is_ascii_whitespace() {
                in_word = false;
            } else if !in_word {
                in_word = true;
                c.words += 1;
            }
        }
    }
    Ok(c)
}

/// Which columns to print, in canonical order (lines, words, bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Selection {
    /// `-l`
    pub lines: bool,
    /// `-w`
    pub words: bool,
    /// `-c` / `-m` (byte/char counts coincide for our byte streams).
    pub bytes: bool,
}

impl Selection {
    /// Formats one counts row under this selection.
    pub fn format(&self, c: &Counts, label: Option<&str>) -> String {
        let mut cols: Vec<String> = Vec::new();
        if self.lines {
            cols.push(format!("{:7}", c.lines));
        }
        if self.words {
            cols.push(format!("{:7}", c.words));
        }
        if self.bytes {
            cols.push(format!("{:7}", c.bytes));
        }
        let mut row = cols.join(" ");
        if let Some(l) = label {
            row.push(' ');
            row.push_str(l);
        }
        row
    }
}

/// Parses wc flags into a selection (shared with the aggregator).
pub fn parse_selection(args: &[String]) -> (Selection, Vec<String>) {
    let mut sel = Selection {
        lines: false,
        words: false,
        bytes: false,
    };
    let mut any = false;
    let mut files = Vec::new();
    for a in args {
        if a.starts_with('-') && a.len() > 1 && a[1..].chars().all(|c| "lwcm".contains(c)) {
            for c in a[1..].chars() {
                any = true;
                match c {
                    'l' => sel.lines = true,
                    'w' => sel.words = true,
                    'c' | 'm' => sel.bytes = true,
                    _ => unreachable!("guard checked flag set"),
                }
            }
        } else {
            files.push(a.clone());
        }
    }
    if !any {
        sel = Selection {
            lines: true,
            words: true,
            bytes: true,
        };
    }
    (sel, files)
}

impl Command for Wc {
    fn name(&self) -> &'static str {
        "wc"
    }

    fn run(&self, args: &[String], io: &mut CmdIo<'_>) -> io::Result<ExitStatus> {
        let (sel, mut files) = parse_selection(args);
        let from_stdin = files.is_empty();
        if from_stdin {
            files.push("-".to_string());
        }
        let mut total = Counts::default();
        let many = files.len() > 1;
        for f in &files {
            let mut r = open_input(&io.fs, f, io.stdin)?;
            let c = count_stream(&mut *r)?;
            total.lines += c.lines;
            total.words += c.words;
            total.bytes += c.bytes;
            let label = if from_stdin { None } else { Some(f.as_str()) };
            writeln!(io.stdout, "{}", sel.format(&c, label))?;
        }
        if many {
            writeln!(io.stdout, "{}", sel.format(&total, Some("total")))?;
        }
        Ok(0)
    }
}

#[cfg(test)]
mod tests {
    use crate::fs::MemFs;
    use crate::{run_command, Registry};
    use std::sync::Arc;

    fn wc(args: &[&str], input: &str) -> String {
        let mut argv = vec!["wc"];
        argv.extend(args);
        let fs = Arc::new(MemFs::new());
        fs.add("w1", b"one two\nthree\n".to_vec());
        fs.add("w2", b"x\n".to_vec());
        let out = run_command(&Registry::standard(), fs, &argv, input.as_bytes()).expect("run");
        String::from_utf8(out.stdout).expect("utf8")
    }

    #[test]
    fn lines_only() {
        assert_eq!(wc(&["-l"], "a\nb\nc\n").trim(), "3");
    }

    #[test]
    fn words_only() {
        assert_eq!(wc(&["-w"], "one two  three\nfour\n").trim(), "4");
    }

    #[test]
    fn bytes_only() {
        assert_eq!(wc(&["-c"], "abcd").trim(), "4");
    }

    #[test]
    fn default_all_three() {
        let row = wc(&[], "a b\n");
        let cols: Vec<&str> = row.split_whitespace().collect();
        assert_eq!(cols, vec!["1", "2", "4"]);
    }

    #[test]
    fn combined_lw() {
        let row = wc(&["-lw"], "a b\nc\n");
        let cols: Vec<&str> = row.split_whitespace().collect();
        assert_eq!(cols, vec!["2", "3"]);
    }

    #[test]
    fn multiple_files_with_total() {
        let out = wc(&["-l", "w1", "w2"], "");
        assert!(out.contains("w1"));
        assert!(out.contains("w2"));
        assert!(out.lines().last().expect("total row").contains("total"));
        let total_line = out.lines().last().expect("total row");
        assert!(total_line.split_whitespace().next() == Some("3"));
    }

    #[test]
    fn no_trailing_newline_still_counts_words() {
        let row = wc(&["-lw"], "no newline here");
        let cols: Vec<&str> = row.split_whitespace().collect();
        assert_eq!(cols, vec!["0", "3"]);
    }
}
