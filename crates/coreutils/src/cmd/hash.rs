//! `sha1sum` — the paper's class-N exemplar.

use std::io::{self, Read};

use crate::sha1::Sha1;
use crate::{open_input, CmdIo, Command, ExitStatus};

/// `sha1sum [file…]` — print `<hex>  <name>` per input.
pub struct Sha1Sum;

impl Command for Sha1Sum {
    fn name(&self) -> &'static str {
        "sha1sum"
    }

    fn run(&self, args: &[String], io: &mut CmdIo<'_>) -> io::Result<ExitStatus> {
        let mut files: Vec<&str> = args.iter().map(|s| s.as_str()).collect();
        if files.is_empty() {
            files.push("-");
        }
        for f in files {
            let mut r = open_input(&io.fs, f, io.stdin)?;
            let mut h = Sha1::new();
            let mut buf = [0u8; 64 * 1024];
            loop {
                let n = r.read(&mut buf)?;
                if n == 0 {
                    break;
                }
                h.update(&buf[..n]);
            }
            writeln!(io.stdout, "{}  {}", crate::sha1::to_hex(&h.finish()), f)?;
        }
        Ok(0)
    }
}

#[cfg(test)]
mod tests {
    use crate::fs::MemFs;
    use crate::{run_command, Registry};
    use std::sync::Arc;

    #[test]
    fn hashes_stdin() {
        let out = run_command(
            &Registry::standard(),
            Arc::new(MemFs::new()),
            &["sha1sum"],
            b"abc",
        )
        .expect("run");
        let s = String::from_utf8(out.stdout).expect("utf8");
        assert!(s.starts_with("a9993e364706816aba3e25717850c26c9cd0d89d"));
    }

    #[test]
    fn hashes_files_with_names() {
        let fs = Arc::new(MemFs::new());
        fs.add("page1", b"".to_vec());
        let out = run_command(&Registry::standard(), fs, &["sha1sum", "page1"], b"").expect("run");
        let s = String::from_utf8(out.stdout).expect("utf8");
        assert_eq!(s, "da39a3ee5e6b4b0d3255bfef95601890afd80709  page1\n");
    }
}
