//! Small utility commands: `rev`, `seq`, `echo`, `paste`, `fold`,
//! `tee`, `nl`, `true`, `false`.

use std::io::{self, Write};

use crate::lines::{for_each_line, read_all_lines, write_line};
use crate::{open_input, CmdIo, Command, ExitStatus};

/// `rev` — reverse the bytes of each line (class S).
pub struct Rev;

impl Command for Rev {
    fn name(&self) -> &'static str {
        "rev"
    }

    fn run(&self, args: &[String], io: &mut CmdIo<'_>) -> io::Result<ExitStatus> {
        let mut files: Vec<&str> = args.iter().map(|s| s.as_str()).collect();
        if files.is_empty() {
            files.push("-");
        }
        for f in files {
            let mut r = open_input(&io.fs, f, io.stdin)?;
            for_each_line(&mut r, |line| {
                let rev: Vec<u8> = line.iter().rev().copied().collect();
                write_line(io.stdout, &rev)?;
                Ok(true)
            })?;
        }
        Ok(0)
    }
}

/// `seq [first [incr]] last` — print a number sequence.
pub struct Seq;

impl Command for Seq {
    fn name(&self) -> &'static str {
        "seq"
    }

    fn run(&self, args: &[String], io: &mut CmdIo<'_>) -> io::Result<ExitStatus> {
        let nums: Vec<i64> = args.iter().filter_map(|a| a.parse().ok()).collect();
        let (first, incr, last) = match nums.as_slice() {
            [l] => (1, 1, *l),
            [f, l] => (*f, 1, *l),
            [f, i, l] => (*f, *i, *l),
            _ => return crate::usage_error(io, "seq", "expected 1-3 numeric arguments"),
        };
        if incr == 0 {
            return crate::usage_error(io, "seq", "increment must be non-zero");
        }
        let mut v = first;
        while (incr > 0 && v <= last) || (incr < 0 && v >= last) {
            writeln!(io.stdout, "{v}")?;
            v += incr;
        }
        Ok(0)
    }
}

/// `echo [args…]` (class E in the study: writes depend on arguments
/// only, consuming no input).
pub struct Echo;

impl Command for Echo {
    fn name(&self) -> &'static str {
        "echo"
    }

    fn run(&self, args: &[String], io: &mut CmdIo<'_>) -> io::Result<ExitStatus> {
        let mut newline = true;
        let mut words: &[String] = args;
        if words.first().map(|s| s.as_str()) == Some("-n") {
            newline = false;
            words = &words[1..];
        }
        io.stdout.write_all(words.join(" ").as_bytes())?;
        if newline {
            io.stdout.write_all(b"\n")?;
        }
        Ok(0)
    }
}

/// `paste [-d LIST] file…` — merge corresponding lines.
pub struct Paste;

impl Command for Paste {
    fn name(&self) -> &'static str {
        "paste"
    }

    fn run(&self, args: &[String], io: &mut CmdIo<'_>) -> io::Result<ExitStatus> {
        let mut delims: Vec<u8> = vec![b'\t'];
        let mut serial = false;
        let mut files: Vec<String> = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "-d" => {
                    if let Some(d) = it.next() {
                        delims = crate::cmd::tr::expand_set(d);
                        if delims.is_empty() {
                            delims.push(b'\t');
                        }
                    }
                }
                "-s" => serial = true,
                "-" => files.push("-".to_string()),
                s if s.starts_with("-d") && s.len() > 2 => {
                    delims = crate::cmd::tr::expand_set(&s[2..]);
                }
                other => files.push(other.to_string()),
            }
        }
        if files.is_empty() {
            files.push("-".to_string());
        }
        let mut columns: Vec<Vec<Vec<u8>>> = Vec::new();
        for f in &files {
            let mut r = open_input(&io.fs, f, io.stdin)?;
            columns.push(read_all_lines(&mut r)?);
        }
        if serial {
            for (ci, col) in columns.iter().enumerate() {
                let mut out: Vec<u8> = Vec::new();
                for (i, line) in col.iter().enumerate() {
                    if i > 0 {
                        out.push(delims[(i - 1) % delims.len()]);
                    }
                    out.extend_from_slice(line);
                }
                let _ = ci;
                write_line(io.stdout, &out)?;
            }
            return Ok(0);
        }
        let rows = columns.iter().map(|c| c.len()).max().unwrap_or(0);
        for row in 0..rows {
            let mut out: Vec<u8> = Vec::new();
            for (ci, col) in columns.iter().enumerate() {
                if ci > 0 {
                    out.push(delims[(ci - 1) % delims.len()]);
                }
                if let Some(line) = col.get(row) {
                    out.extend_from_slice(line);
                }
            }
            write_line(io.stdout, &out)?;
        }
        Ok(0)
    }
}

/// `fold [-w WIDTH]` — wrap lines to a width (class S within lines).
pub struct Fold;

impl Command for Fold {
    fn name(&self) -> &'static str {
        "fold"
    }

    fn run(&self, args: &[String], io: &mut CmdIo<'_>) -> io::Result<ExitStatus> {
        let mut width = 80usize;
        let mut files: Vec<String> = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "-w" => {
                    width = it
                        .next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&w| w > 0)
                        .unwrap_or(80)
                }
                s if s.starts_with("-w") && s.len() > 2 => {
                    width = s[2..].parse().unwrap_or(80);
                }
                other => files.push(other.to_string()),
            }
        }
        if files.is_empty() {
            files.push("-".to_string());
        }
        for f in &files {
            let mut r = open_input(&io.fs, f, io.stdin)?;
            for_each_line(&mut r, |line| {
                if line.is_empty() {
                    write_line(io.stdout, b"")?;
                    return Ok(true);
                }
                for chunk in line.chunks(width) {
                    write_line(io.stdout, chunk)?;
                }
                Ok(true)
            })?;
        }
        Ok(0)
    }
}

/// `tee [file…]` — copy stdin to stdout and to files.
pub struct Tee;

impl Command for Tee {
    fn name(&self) -> &'static str {
        "tee"
    }

    fn run(&self, args: &[String], io: &mut CmdIo<'_>) -> io::Result<ExitStatus> {
        let files: Vec<&String> = args.iter().filter(|a| !a.starts_with('-')).collect();
        let mut writers: Vec<Box<dyn Write + Send>> = Vec::new();
        for f in &files {
            writers.push(io.fs.create(f)?);
        }
        let mut buf = [0u8; 64 * 1024];
        loop {
            let n = io.stdin.read(&mut buf)?;
            if n == 0 {
                break;
            }
            io.stdout.write_all(&buf[..n])?;
            for w in &mut writers {
                w.write_all(&buf[..n])?;
            }
        }
        Ok(0)
    }
}

/// `nl` — number non-empty lines (a `cat -n` relative; class P).
pub struct Nl;

impl Command for Nl {
    fn name(&self) -> &'static str {
        "nl"
    }

    fn run(&self, args: &[String], io: &mut CmdIo<'_>) -> io::Result<ExitStatus> {
        let mut files: Vec<&str> = args.iter().map(|s| s.as_str()).collect();
        if files.is_empty() {
            files.push("-");
        }
        let mut n = 0u64;
        for f in files {
            let mut r = open_input(&io.fs, f, io.stdin)?;
            for_each_line(&mut r, |line| {
                if line.is_empty() {
                    write_line(io.stdout, b"")?;
                } else {
                    n += 1;
                    write!(io.stdout, "{n:6}\t")?;
                    write_line(io.stdout, line)?;
                }
                Ok(true)
            })?;
        }
        Ok(0)
    }
}

/// `true` — succeed (class E in the study: no data path).
pub struct True;

impl Command for True {
    fn name(&self) -> &'static str {
        "true"
    }

    fn run(&self, _args: &[String], _io: &mut CmdIo<'_>) -> io::Result<ExitStatus> {
        Ok(0)
    }
}

/// `false` — fail.
pub struct False;

impl Command for False {
    fn name(&self) -> &'static str {
        "false"
    }

    fn run(&self, _args: &[String], _io: &mut CmdIo<'_>) -> io::Result<ExitStatus> {
        Ok(1)
    }
}

#[cfg(test)]
mod tests {
    use crate::fs::MemFs;
    use crate::{run_command, Registry};
    use std::sync::Arc;

    fn run(argv: &[&str], input: &str) -> String {
        let fs = Arc::new(MemFs::new());
        fs.add("c1", b"a\nb\nc\n".to_vec());
        fs.add("c2", b"1\n2\n".to_vec());
        let out = run_command(&Registry::standard(), fs, argv, input.as_bytes()).expect("run");
        String::from_utf8(out.stdout).expect("utf8")
    }

    #[test]
    fn rev_lines() {
        assert_eq!(run(&["rev"], "abc\nxy\n"), "cba\nyx\n");
    }

    #[test]
    fn seq_forms() {
        assert_eq!(run(&["seq", "3"], ""), "1\n2\n3\n");
        assert_eq!(run(&["seq", "2", "4"], ""), "2\n3\n4\n");
        assert_eq!(run(&["seq", "1", "2", "5"], ""), "1\n3\n5\n");
        assert_eq!(run(&["seq", "3", "-1", "1"], ""), "3\n2\n1\n");
    }

    #[test]
    fn echo_basic() {
        assert_eq!(run(&["echo", "a", "b"], ""), "a b\n");
        assert_eq!(run(&["echo", "-n", "x"], ""), "x");
    }

    #[test]
    fn paste_two_files() {
        assert_eq!(run(&["paste", "c1", "c2"], ""), "a\t1\nb\t2\nc\t\n");
    }

    #[test]
    fn paste_custom_delim() {
        assert_eq!(run(&["paste", "-d", " ", "c1", "c2"], ""), "a 1\nb 2\nc \n");
    }

    #[test]
    fn paste_serial() {
        assert_eq!(run(&["paste", "-s", "c2"], ""), "1\t2\n");
    }

    #[test]
    fn fold_width() {
        assert_eq!(run(&["fold", "-w", "2"], "abcde\n"), "ab\ncd\ne\n");
    }

    #[test]
    fn tee_writes_file_and_stdout() {
        let fs = Arc::new(MemFs::new());
        let out = run_command(
            &Registry::standard(),
            fs.clone(),
            &["tee", "copy"],
            b"data\n",
        )
        .expect("run");
        assert_eq!(out.stdout, b"data\n");
        assert_eq!(fs.read("copy").expect("copy"), b"data\n");
    }

    #[test]
    fn nl_numbers_nonempty() {
        let out = run(&["nl"], "a\n\nb\n");
        assert!(out.contains("1\ta"));
        assert!(out.contains("2\tb"));
    }

    #[test]
    fn true_false_statuses() {
        let fs = Arc::new(MemFs::new());
        let t = run_command(&Registry::standard(), fs.clone(), &["true"], b"").expect("run");
        assert_eq!(t.status, 0);
        let f = run_command(&Registry::standard(), fs, &["false"], b"").expect("run");
        assert_eq!(f.status, 1);
    }
}
