//! Command implementations and the standard registry.

pub mod cat;
pub mod comm;
pub mod custom;
pub mod cut;
pub mod diff;
pub mod grep;
pub mod hash;
pub mod headtail;
pub mod misc;
pub mod sed;
pub mod sort;
pub mod tr;
pub mod uniq;
pub mod wc;
pub mod xargs;

use std::sync::Arc;

use crate::Command;

/// All commands shipped by this crate.
pub fn all_commands() -> Vec<Arc<dyn Command>> {
    vec![
        Arc::new(cat::Cat),
        Arc::new(cat::Tac),
        Arc::new(tr::Tr),
        Arc::new(cut::Cut),
        Arc::new(grep::Grep),
        Arc::new(sed::Sed),
        Arc::new(sort::Sort),
        Arc::new(uniq::Uniq),
        Arc::new(wc::Wc),
        Arc::new(headtail::Head),
        Arc::new(headtail::Tail),
        Arc::new(comm::Comm),
        Arc::new(misc::Rev),
        Arc::new(misc::Seq),
        Arc::new(misc::Echo),
        Arc::new(misc::Paste),
        Arc::new(misc::Fold),
        Arc::new(misc::Tee),
        Arc::new(misc::Nl),
        Arc::new(misc::True),
        Arc::new(misc::False),
        Arc::new(xargs::Xargs),
        Arc::new(hash::Sha1Sum),
        Arc::new(diff::Diff),
        Arc::new(custom::Fetch),
        Arc::new(custom::Unrle),
        Arc::new(custom::HtmlToText),
        Arc::new(custom::WordStem),
        Arc::new(custom::BigramsAux),
        Arc::new(custom::AwkReorder),
    ]
}
