//! `grep` — print lines matching a pattern.

use std::io::{self, BufRead};

use pash_regex::memmem::{count_bytes, memchr, memrchr};
use pash_regex::{Matcher, Regex, Syntax};

use crate::lines::{for_each_line, write_line};
use crate::{open_input, CmdIo, Command, ExitStatus};

/// `grep [-EFivcnwm] PATTERN [file…]`.
///
/// Stateless per line in its filter form; `-c` moves it to class P
/// (counts from parallel parts must be summed by an aggregator).
///
/// Matching is tiered (see `pash_regex::Matcher`): `-F` and plain
/// literal patterns run as pure substring search, and any pattern with
/// a required literal takes the buffer-scan path below — whole chunks
/// are skimmed for candidate positions at `memmem` speed and only
/// candidate lines pay for a real match, instead of restarting the
/// regex engine once per line.
pub struct Grep;

struct Opts {
    ere: bool,
    fixed: bool,
    ignore_case: bool,
    invert: bool,
    count: bool,
    line_numbers: bool,
    word: bool,
    max: Option<u64>,
}

/// Cross-file match accounting.
struct Tally {
    any: bool,
    count: u64,
    emitted: u64,
    stop: bool,
    /// Current line number (reset per file).
    line_no: u64,
}

/// Target chunk size for the buffer-scan path.
const SCAN_CHUNK: usize = 256 * 1024;

impl Command for Grep {
    fn name(&self) -> &'static str {
        "grep"
    }

    fn run(&self, args: &[String], io: &mut CmdIo<'_>) -> io::Result<ExitStatus> {
        let mut o = Opts {
            ere: false,
            fixed: false,
            ignore_case: false,
            invert: false,
            count: false,
            line_numbers: false,
            word: false,
            max: None,
        };
        let mut pattern: Option<String> = None;
        let mut files: Vec<String> = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "-m" => {
                    o.max = it.next().and_then(|s| s.parse().ok());
                }
                "-e" => pattern = it.next().cloned(),
                s if s.starts_with('-') && s.len() > 1 && cluster_is_valid(&s[1..]) => {
                    if apply_cluster(&s[1..], &mut o) {
                        // A bare trailing `m` takes its count from the
                        // next argument (`-vm 3`).
                        o.max = it.next().and_then(|s| s.parse().ok());
                    }
                }
                other => {
                    if pattern.is_none() {
                        pattern = Some(other.to_string());
                    } else {
                        files.push(other.to_string());
                    }
                }
            }
        }
        let pattern = match pattern {
            Some(p) => p,
            None => return crate::usage_error(io, "grep", "missing pattern"),
        };
        let re = build_regex(&pattern, &o)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let mut m = re.matcher();
        if files.is_empty() {
            files.push("-".to_string());
        }
        let mut t = Tally {
            any: false,
            count: 0,
            emitted: 0,
            stop: false,
            line_no: 0,
        };
        for f in &files {
            let mut r = open_input(&io.fs, f, io.stdin)?;
            t.line_no = 0;
            if m.has_candidate_filter() {
                scan_reader(&mut m, r.as_mut(), &o, io, &mut t)?;
            } else {
                for_each_line(&mut r, |line| {
                    t.line_no += 1;
                    let matched = m.is_match(line) != o.invert;
                    if matched {
                        emit_line(line, &o, io, &mut t)?;
                    }
                    Ok(!t.stop)
                })?;
            }
            if t.stop {
                break;
            }
        }
        if o.count {
            writeln!(io.stdout, "{}", t.count)?;
        }
        Ok(if t.any { 0 } else { 1 })
    }
}

/// True when every char of a combined flag is a known single-letter
/// option — allowing one trailing `m`, optionally with an attached
/// count (`-m2`, `-vm2`, `-vm`).
fn cluster_is_valid(body: &str) -> bool {
    match body.find('m') {
        None => body.chars().all(|c| "EFivcnw".contains(c)),
        Some(i) => {
            body[..i].chars().all(|c| "EFivcnw".contains(c))
                && (body[i + 1..].is_empty() || body[i + 1..].chars().all(|c| c.is_ascii_digit()))
        }
    }
}

/// Applies a pre-validated flag cluster; returns true when a bare
/// trailing `m` still needs its count from the next argument.
fn apply_cluster(body: &str, o: &mut Opts) -> bool {
    let (flags, max) = match body.find('m') {
        None => (body, None),
        Some(i) => (&body[..i], Some(&body[i + 1..])),
    };
    for c in flags.chars() {
        match c {
            'E' => o.ere = true,
            'F' => o.fixed = true,
            'i' => o.ignore_case = true,
            'v' => o.invert = true,
            'c' => o.count = true,
            'n' => o.line_numbers = true,
            'w' => o.word = true,
            _ => unreachable!("cluster pre-validated"),
        }
    }
    match max {
        None => false,
        Some("") => true,
        Some(digits) => {
            o.max = digits.parse().ok();
            false
        }
    }
}

/// Emits one matched line (or just counts it), honoring `-c`, `-n`,
/// and the `-m` early exit.
fn emit_line(line: &[u8], o: &Opts, io: &mut CmdIo<'_>, t: &mut Tally) -> io::Result<()> {
    t.any = true;
    t.count += 1;
    if !o.count {
        if o.line_numbers {
            write!(io.stdout, "{}:", t.line_no)?;
        }
        write_line(io.stdout, line)?;
    }
    t.emitted += 1;
    if let Some(mx) = o.max {
        if t.emitted >= mx {
            t.stop = true;
        }
    }
    Ok(())
}

/// Lines in a region: `\n` stripped, final unterminated line included.
fn lines_of(region: &[u8]) -> impl Iterator<Item = &[u8]> {
    region.split_inclusive(|&b| b == b'\n').map(|l| {
        if l.last() == Some(&b'\n') {
            &l[..l.len() - 1]
        } else {
            l
        }
    })
}

/// Number of lines in a region (a final unterminated line counts).
fn line_count(region: &[u8]) -> u64 {
    let nl = count_bytes(b'\n', region) as u64;
    nl + u64::from(region.last().is_some_and(|&b| b != b'\n'))
}

/// Handles a region proven to contain no candidate line: without `-v`
/// it is skipped wholesale (newlines counted word-at-a-time for `-n`);
/// with `-v` every line matches — emitted as one bulk write when no
/// per-line bookkeeping (`-n`, `-m`) is needed.
fn on_gap(gap: &[u8], o: &Opts, io: &mut CmdIo<'_>, t: &mut Tally) -> io::Result<()> {
    let n = line_count(gap);
    if n == 0 {
        return Ok(());
    }
    if !o.invert {
        t.line_no += n;
        return Ok(());
    }
    if o.max.is_none() && (o.count || !o.line_numbers) {
        t.line_no += n;
        t.any = true;
        t.count += n;
        t.emitted += n;
        if !o.count {
            io.stdout.write_all(gap)?;
            if gap.last() != Some(&b'\n') {
                // The per-line path always terminates the final line.
                io.stdout.write_all(b"\n")?;
            }
        }
        return Ok(());
    }
    for line in lines_of(gap) {
        t.line_no += 1;
        emit_line(line, o, io, t)?;
        if t.stop {
            return Ok(());
        }
    }
    Ok(())
}

/// The buffer-scan loop: read big chunks, cut them at the last
/// newline, and let the matcher's candidate filter skip non-matching
/// stretches without a per-line regex restart.
fn scan_reader(
    m: &mut Matcher,
    r: &mut dyn BufRead,
    o: &Opts,
    io: &mut CmdIo<'_>,
    t: &mut Tally,
) -> io::Result<()> {
    let mut buf: Vec<u8> = Vec::with_capacity(SCAN_CHUNK + 4096);
    loop {
        let mut eof = false;
        let mut have_nl = memrchr(b'\n', &buf).is_some();
        while !eof && (buf.len() < SCAN_CHUNK || !have_nl) {
            let chunk = r.fill_buf()?;
            if chunk.is_empty() {
                eof = true;
                break;
            }
            if !have_nl && memchr(b'\n', chunk).is_some() {
                have_nl = true;
            }
            let n = chunk.len();
            buf.extend_from_slice(chunk);
            r.consume(n);
        }
        let region_end = if eof {
            buf.len()
        } else {
            memrchr(b'\n', &buf).map(|i| i + 1).expect("have_nl set")
        };
        if region_end > 0 {
            scan_region(m, &buf[..region_end], o, io, t)?;
            if t.stop {
                return Ok(());
            }
            buf.drain(..region_end);
        }
        if eof {
            return Ok(());
        }
    }
}

/// Scans one region of complete lines (the final line of the input may
/// be unterminated).
fn scan_region(
    m: &mut Matcher,
    region: &[u8],
    o: &Opts,
    io: &mut CmdIo<'_>,
    t: &mut Tally,
) -> io::Result<()> {
    let mut pos = 0usize;
    while pos < region.len() {
        let hit = match m.candidate(&region[pos..]) {
            None => {
                // No candidate anywhere ahead: the rest of the region
                // is non-matching lines.
                on_gap(&region[pos..], o, io, t)?;
                return Ok(());
            }
            Some(off) => pos + off,
        };
        // `pos` is always line-aligned, so the candidate's line starts
        // at the last newline before the hit (or at `pos`).
        let line_start = pos + memrchr(b'\n', &region[pos..hit]).map_or(0, |i| i + 1);
        if line_start > pos {
            on_gap(&region[pos..line_start], o, io, t)?;
            if t.stop {
                return Ok(());
            }
        }
        let line_end = memchr(b'\n', &region[hit..]).map_or(region.len(), |i| hit + i);
        let line = &region[line_start..line_end];
        t.line_no += 1;
        if m.is_match(line) != o.invert {
            emit_line(line, o, io, t)?;
            if t.stop {
                return Ok(());
            }
        }
        pos = line_end + 1;
    }
    Ok(())
}

fn build_regex(pattern: &str, o: &Opts) -> Result<Regex, pash_regex::Error> {
    let base = if o.fixed {
        escape_fixed(pattern)
    } else {
        pattern.to_string()
    };
    let syntax = if o.ere || o.fixed {
        Syntax::Ere
    } else {
        Syntax::Bre
    };
    let wrapped = if o.word {
        // \b is supported by the engine in both syntaxes.
        format!(r"\b({base})\b")
    } else {
        base
    };
    let wrapped = if o.word && syntax == Syntax::Bre {
        // BRE grouping uses escaped parens.
        format!(r"\b\({pattern}\)\b")
    } else {
        wrapped
    };
    Regex::with_flags(&wrapped, syntax, o.ignore_case)
}

/// Escapes ERE metacharacters for `-F` fixed-string matching.
///
/// The escaped pattern parses back to a pure literal, so the tier
/// picker recognizes it and `-F` runs as plain `memmem` — no automaton
/// is ever built for fixed strings.
fn escape_fixed(s: &str) -> String {
    let mut out = String::with_capacity(s.len() * 2);
    for c in s.chars() {
        if "\\^$.[]|()*+?{}".contains(c) {
            out.push('\\');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::fs::MemFs;
    use crate::{run_command, Captured, Registry};
    use std::sync::Arc;

    fn grep(args: &[&str], input: &str) -> Captured {
        let mut argv = vec!["grep"];
        argv.extend(args);
        let fs = Arc::new(MemFs::new());
        fs.add("f1", b"apple\nbanana\n".to_vec());
        fs.add("f2", b"cherry\napricot\n".to_vec());
        run_command(&Registry::standard(), fs, &argv, input.as_bytes()).expect("run")
    }

    fn out(args: &[&str], input: &str) -> String {
        String::from_utf8(grep(args, input).stdout).expect("utf8")
    }

    #[test]
    fn basic_filter() {
        assert_eq!(out(&["gz"], "a.gz\nb.txt\nc.gz\n"), "a.gz\nc.gz\n");
    }

    #[test]
    fn invert() {
        assert_eq!(out(&["-v", "gz"], "a.gz\nb.txt\n"), "b.txt\n");
    }

    #[test]
    fn case_insensitive() {
        // The NOAA filter: grep -iv 999.
        assert_eq!(out(&["-iv", "999"], "0123\n0999\nAbCd\n"), "0123\nAbCd\n");
        assert_eq!(out(&["-i", "abc"], "xABCy\n"), "xABCy\n");
    }

    #[test]
    fn count() {
        assert_eq!(out(&["-c", "a"], "a\nb\nca\n"), "2\n");
    }

    #[test]
    fn count_with_no_matches() {
        let c = grep(&["-c", "zzz"], "a\nb\n");
        assert_eq!(String::from_utf8(c.stdout).expect("utf8"), "0\n");
        assert_eq!(c.status, 1);
    }

    #[test]
    fn exit_status_reflects_match() {
        assert_eq!(grep(&["a"], "abc\n").status, 0);
        assert_eq!(grep(&["z"], "abc\n").status, 1);
    }

    #[test]
    fn ere_alternation() {
        assert_eq!(out(&["-E", "a|c"], "a\nb\nc\n"), "a\nc\n");
    }

    #[test]
    fn bre_default_plus_literal() {
        assert_eq!(out(&["a+"], "a+\naa\n"), "a+\n");
    }

    #[test]
    fn fixed_strings() {
        assert_eq!(out(&["-F", "a.b"], "a.b\naxb\n"), "a.b\n");
    }

    #[test]
    fn line_numbers() {
        assert_eq!(out(&["-n", "b"], "a\nb\nc\nb\n"), "2:b\n4:b\n");
    }

    #[test]
    fn word_match() {
        assert_eq!(out(&["-w", "cat"], "cat\nconcat\ncat!\n"), "cat\ncat!\n");
    }

    #[test]
    fn files_in_order() {
        assert_eq!(out(&["ap", "f1", "f2"], ""), "apple\napricot\n");
    }

    #[test]
    fn max_count_stops_early() {
        assert_eq!(out(&["-m", "2", "a"], "a1\na2\na3\n"), "a1\na2\n");
    }

    #[test]
    fn max_count_attached_value() {
        // `-m2` (attached) must behave exactly like `-m 2` (separate).
        assert_eq!(out(&["-m2", "a"], "a1\na2\na3\n"), "a1\na2\n");
        assert_eq!(out(&["-m1", "a"], "a1\na2\n"), "a1\n");
    }

    #[test]
    fn max_count_in_cluster() {
        assert_eq!(out(&["-vm2", "x"], "a\nx\nb\nc\n"), "a\nb\n");
        assert_eq!(out(&["-nm2", "a"], "a1\nb\na2\na3\n"), "1:a1\n3:a2\n");
        // Bare trailing m in a cluster takes the next argument.
        assert_eq!(out(&["-vm", "1", "x"], "a\nx\nb\n"), "a\n");
    }

    #[test]
    fn max_count_spans_files() {
        assert_eq!(
            out(&["-m", "3", "a", "f1", "f2"], ""),
            "apple\nbanana\napricot\n"
        );
        assert_eq!(out(&["-m2", "a", "f1", "f2"], ""), "apple\nbanana\n");
    }

    #[test]
    fn max_count_with_count_flag_caps_count() {
        assert_eq!(out(&["-cm2", "a"], "a1\na2\na3\n"), "2\n");
    }

    #[test]
    fn line_numbers_reset_per_file() {
        assert_eq!(out(&["-n", "ap", "f1", "f2"], ""), "1:apple\n2:apricot\n");
    }

    #[test]
    fn line_numbers_with_invert() {
        // The scan path counts skipped lines word-at-a-time; numbers
        // must stay exact either way.
        assert_eq!(out(&["-vn", "b"], "a\nb\nc\nd\n"), "1:a\n3:c\n4:d\n");
    }

    #[test]
    fn line_numbers_on_candidate_lines_only() {
        // Lines 1..3 carry no candidate literal; line 4 does.
        assert_eq!(out(&["-n", "needle"], "x\ny\nz\nneedle\nw\n"), "4:needle\n");
    }

    #[test]
    fn explicit_e_pattern() {
        assert_eq!(out(&["-e", "-x"], "-x\nyy\n"), "-x\n");
    }

    #[test]
    fn unterminated_final_line() {
        assert_eq!(out(&["b"], "a\nb"), "b\n");
        assert_eq!(out(&["-v", "a"], "a\nb"), "b\n");
        assert_eq!(out(&["-c", "b"], "a\nb"), "1\n");
    }

    #[test]
    fn anchored_patterns_are_line_relative() {
        assert_eq!(out(&["^b"], "ab\nba\n"), "ba\n");
        assert_eq!(out(&["b$"], "ab\nba\n"), "ab\n");
        assert_eq!(out(&["-E", "^$"], "a\n\nb\n"), "\n");
    }

    #[test]
    fn scan_path_handles_large_input() {
        // Forces multiple 256 KiB chunks through the scan loop with a
        // match near the end.
        let mut input = "filler line without the token\n".repeat(20_000);
        input.push_str("the needle line\n");
        input.push_str(&"more filler\n".repeat(5));
        assert_eq!(out(&["needle"], &input), "the needle line\n");
        assert_eq!(out(&["-c", "needle"], &input), "1\n");
        let c = grep(&["-c", "-v", "needle"], &input);
        assert_eq!(String::from_utf8(c.stdout).expect("utf8"), "20005\n");
    }
}
