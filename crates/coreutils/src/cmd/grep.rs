//! `grep` — print lines matching a pattern.

use std::io;

use pash_regex::{Regex, Syntax};

use crate::lines::{for_each_line, write_line};
use crate::{open_input, CmdIo, Command, ExitStatus};

/// `grep [-EFivcnwm] PATTERN [file…]`.
///
/// Stateless per line in its filter form; `-c` moves it to class P
/// (counts from parallel parts must be summed by an aggregator).
pub struct Grep;

struct Opts {
    ere: bool,
    fixed: bool,
    ignore_case: bool,
    invert: bool,
    count: bool,
    line_numbers: bool,
    word: bool,
    max: Option<u64>,
}

impl Command for Grep {
    fn name(&self) -> &'static str {
        "grep"
    }

    fn run(&self, args: &[String], io: &mut CmdIo<'_>) -> io::Result<ExitStatus> {
        let mut o = Opts {
            ere: false,
            fixed: false,
            ignore_case: false,
            invert: false,
            count: false,
            line_numbers: false,
            word: false,
            max: None,
        };
        let mut pattern: Option<String> = None;
        let mut files: Vec<String> = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "-E" => o.ere = true,
                "-F" => o.fixed = true,
                "-i" => o.ignore_case = true,
                "-v" => o.invert = true,
                "-c" => o.count = true,
                "-n" => o.line_numbers = true,
                "-w" => o.word = true,
                "-m" => {
                    o.max = it.next().and_then(|s| s.parse().ok());
                }
                "-e" => pattern = it.next().cloned(),
                s if s.starts_with('-')
                    && s.len() > 1
                    && s[1..].chars().all(|c| "EFivcnw".contains(c)) =>
                {
                    for c in s[1..].chars() {
                        match c {
                            'E' => o.ere = true,
                            'F' => o.fixed = true,
                            'i' => o.ignore_case = true,
                            'v' => o.invert = true,
                            'c' => o.count = true,
                            'n' => o.line_numbers = true,
                            'w' => o.word = true,
                            _ => unreachable!("guard checked flag set"),
                        }
                    }
                }
                other => {
                    if pattern.is_none() {
                        pattern = Some(other.to_string());
                    } else {
                        files.push(other.to_string());
                    }
                }
            }
        }
        let pattern = match pattern {
            Some(p) => p,
            None => return crate::usage_error(io, "grep", "missing pattern"),
        };
        let re = build_regex(&pattern, &o)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        if files.is_empty() {
            files.push("-".to_string());
        }
        let mut any = false;
        let mut count: u64 = 0;
        let mut emitted: u64 = 0;
        'files: for f in &files {
            let mut r = open_input(&io.fs, f, io.stdin)?;
            let mut line_no: u64 = 0;
            let mut stop = false;
            for_each_line(&mut r, |line| {
                line_no += 1;
                let matched = re.is_match(line) != o.invert;
                if matched {
                    any = true;
                    count += 1;
                    if !o.count {
                        if o.line_numbers {
                            write!(io.stdout, "{line_no}:")?;
                        }
                        write_line(io.stdout, line)?;
                    }
                    emitted += 1;
                    if let Some(m) = o.max {
                        if emitted >= m {
                            stop = true;
                            return Ok(false);
                        }
                    }
                }
                Ok(true)
            })?;
            if stop {
                break 'files;
            }
        }
        if o.count {
            writeln!(io.stdout, "{count}")?;
        }
        Ok(if any { 0 } else { 1 })
    }
}

fn build_regex(pattern: &str, o: &Opts) -> Result<Regex, pash_regex::Error> {
    let base = if o.fixed {
        escape_fixed(pattern)
    } else {
        pattern.to_string()
    };
    let syntax = if o.ere || o.fixed {
        Syntax::Ere
    } else {
        Syntax::Bre
    };
    let wrapped = if o.word {
        // \b is supported by the engine in both syntaxes.
        format!(r"\b({base})\b")
    } else {
        base
    };
    let wrapped = if o.word && syntax == Syntax::Bre {
        // BRE grouping uses escaped parens.
        format!(r"\b\({pattern}\)\b")
    } else {
        wrapped
    };
    Regex::with_flags(&wrapped, syntax, o.ignore_case)
}

/// Escapes ERE metacharacters for `-F` fixed-string matching.
fn escape_fixed(s: &str) -> String {
    let mut out = String::with_capacity(s.len() * 2);
    for c in s.chars() {
        if "\\^$.[]|()*+?{}".contains(c) {
            out.push('\\');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::fs::MemFs;
    use crate::{run_command, Captured, Registry};
    use std::sync::Arc;

    fn grep(args: &[&str], input: &str) -> Captured {
        let mut argv = vec!["grep"];
        argv.extend(args);
        let fs = Arc::new(MemFs::new());
        fs.add("f1", b"apple\nbanana\n".to_vec());
        fs.add("f2", b"cherry\napricot\n".to_vec());
        run_command(&Registry::standard(), fs, &argv, input.as_bytes()).expect("run")
    }

    fn out(args: &[&str], input: &str) -> String {
        String::from_utf8(grep(args, input).stdout).expect("utf8")
    }

    #[test]
    fn basic_filter() {
        assert_eq!(out(&["gz"], "a.gz\nb.txt\nc.gz\n"), "a.gz\nc.gz\n");
    }

    #[test]
    fn invert() {
        assert_eq!(out(&["-v", "gz"], "a.gz\nb.txt\n"), "b.txt\n");
    }

    #[test]
    fn case_insensitive() {
        // The NOAA filter: grep -iv 999.
        assert_eq!(out(&["-iv", "999"], "0123\n0999\nAbCd\n"), "0123\nAbCd\n");
        assert_eq!(out(&["-i", "abc"], "xABCy\n"), "xABCy\n");
    }

    #[test]
    fn count() {
        assert_eq!(out(&["-c", "a"], "a\nb\nca\n"), "2\n");
    }

    #[test]
    fn count_with_no_matches() {
        let c = grep(&["-c", "zzz"], "a\nb\n");
        assert_eq!(String::from_utf8(c.stdout).expect("utf8"), "0\n");
        assert_eq!(c.status, 1);
    }

    #[test]
    fn exit_status_reflects_match() {
        assert_eq!(grep(&["a"], "abc\n").status, 0);
        assert_eq!(grep(&["z"], "abc\n").status, 1);
    }

    #[test]
    fn ere_alternation() {
        assert_eq!(out(&["-E", "a|c"], "a\nb\nc\n"), "a\nc\n");
    }

    #[test]
    fn bre_default_plus_literal() {
        assert_eq!(out(&["a+"], "a+\naa\n"), "a+\n");
    }

    #[test]
    fn fixed_strings() {
        assert_eq!(out(&["-F", "a.b"], "a.b\naxb\n"), "a.b\n");
    }

    #[test]
    fn line_numbers() {
        assert_eq!(out(&["-n", "b"], "a\nb\nc\nb\n"), "2:b\n4:b\n");
    }

    #[test]
    fn word_match() {
        assert_eq!(out(&["-w", "cat"], "cat\nconcat\ncat!\n"), "cat\ncat!\n");
    }

    #[test]
    fn files_in_order() {
        assert_eq!(out(&["ap", "f1", "f2"], ""), "apple\napricot\n");
    }

    #[test]
    fn max_count_stops_early() {
        assert_eq!(out(&["-m", "2", "a"], "a1\na2\na3\n"), "a1\na2\n");
    }

    #[test]
    fn explicit_e_pattern() {
        assert_eq!(out(&["-e", "-x"], "-x\nyy\n"), "-x\n");
    }
}
