//! `cat` and `tac`.

use std::io::{self, Read};

use crate::lines::{read_all_lines, write_line};
use crate::{open_input, CmdIo, Command, ExitStatus};

/// `cat [-n] [file…]` — concatenate inputs in argument order.
///
/// The quintessential *streaming* command (§4.1): it consumes its
/// inputs strictly in order. With `-n` it numbers output lines and
/// moves from class S to class P (the annotation stdlib encodes this).
pub struct Cat;

impl Command for Cat {
    fn name(&self) -> &'static str {
        "cat"
    }

    fn run(&self, args: &[String], io: &mut CmdIo<'_>) -> io::Result<ExitStatus> {
        let mut number = false;
        let mut files: Vec<&str> = Vec::new();
        for a in args {
            match a.as_str() {
                "-n" => number = true,
                "-u" => {} // Unbuffered: accepted, no-op.
                other => files.push(other),
            }
        }
        if files.is_empty() {
            files.push("-");
        }
        let mut line_no: u64 = 0;
        for f in files {
            let mut r = open_input(&io.fs, f, io.stdin)?;
            if number {
                crate::lines::for_each_line(&mut r, |line| {
                    line_no += 1;
                    write!(io.stdout, "{line_no:6}\t")?;
                    write_line(io.stdout, line)?;
                    Ok(true)
                })?;
            } else {
                let mut buf = [0u8; 64 * 1024];
                loop {
                    let n = r.read(&mut buf)?;
                    if n == 0 {
                        break;
                    }
                    io.stdout.write_all(&buf[..n])?;
                }
            }
        }
        Ok(0)
    }
}

/// `tac [file…]` — concatenate with lines in reverse order.
///
/// A *parallelizable pure* command: its aggregator consumes partial
/// outputs in reverse stream order (§5.2).
pub struct Tac;

impl Command for Tac {
    fn name(&self) -> &'static str {
        "tac"
    }

    fn run(&self, args: &[String], io: &mut CmdIo<'_>) -> io::Result<ExitStatus> {
        let mut files: Vec<&str> = args.iter().map(|s| s.as_str()).collect();
        if files.is_empty() {
            files.push("-");
        }
        let mut lines = Vec::new();
        for f in files {
            let mut r = open_input(&io.fs, f, io.stdin)?;
            lines.extend(read_all_lines(&mut r)?);
        }
        for line in lines.iter().rev() {
            write_line(io.stdout, line)?;
        }
        Ok(0)
    }
}

#[cfg(test)]
mod tests {
    use crate::fs::MemFs;
    use crate::{run_command, Registry};
    use std::sync::Arc;

    fn run(argv: &[&str], input: &[u8]) -> Vec<u8> {
        let fs = Arc::new(MemFs::new());
        fs.add("f1", b"one\ntwo\n".to_vec());
        fs.add("f2", b"three\n".to_vec());
        run_command(&Registry::standard(), fs, argv, input)
            .expect("run")
            .stdout
    }

    #[test]
    fn cat_stdin() {
        assert_eq!(run(&["cat"], b"a\nb\n"), b"a\nb\n");
    }

    #[test]
    fn cat_files_in_order() {
        assert_eq!(run(&["cat", "f1", "f2"], b""), b"one\ntwo\nthree\n");
        assert_eq!(run(&["cat", "f2", "f1"], b""), b"three\none\ntwo\n");
    }

    #[test]
    fn cat_dash_mixes_stdin() {
        assert_eq!(run(&["cat", "f2", "-"], b"tail\n"), b"three\ntail\n");
    }

    #[test]
    fn cat_n_numbers_lines() {
        let out = run(&["cat", "-n", "f1"], b"");
        let s = String::from_utf8(out).expect("utf8");
        assert!(s.contains("1\tone"));
        assert!(s.contains("2\ttwo"));
    }

    #[test]
    fn cat_n_continues_across_files() {
        let out = run(&["cat", "-n", "f1", "f2"], b"");
        let s = String::from_utf8(out).expect("utf8");
        assert!(s.contains("3\tthree"));
    }

    #[test]
    fn tac_reverses() {
        assert_eq!(run(&["tac"], b"a\nb\nc\n"), b"c\nb\na\n");
    }

    #[test]
    fn tac_across_files() {
        assert_eq!(run(&["tac", "f1", "f2"], b""), b"three\ntwo\none\n");
    }

    #[test]
    fn cat_empty_input() {
        assert_eq!(run(&["cat"], b""), b"");
    }
}
