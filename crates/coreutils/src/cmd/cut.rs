//! `cut` — select fields or character columns from each line.

use std::io;

use crate::lines::{for_each_line, in_ranges, parse_ranges, write_line};
use crate::{open_input, CmdIo, Command, ExitStatus};

/// `cut -f LIST [-d DELIM] [-s]` and `cut -c LIST`.
///
/// Stateless (class S): each line maps to at most one output line.
/// The paper's Fig. 1 calls it twice with different flag sets — the
/// annotation record resolves both to S.
pub struct Cut;

impl Command for Cut {
    fn name(&self) -> &'static str {
        "cut"
    }

    fn run(&self, args: &[String], io: &mut CmdIo<'_>) -> io::Result<ExitStatus> {
        let mut fields: Option<String> = None;
        let mut chars: Option<String> = None;
        let mut delim = b'\t';
        let mut suppress = false;
        let mut files: Vec<String> = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "-f" => fields = it.next().cloned(),
                "-c" => chars = it.next().cloned(),
                "-d" => {
                    let d = it.next().ok_or_else(|| {
                        io::Error::new(io::ErrorKind::InvalidInput, "-d needs arg")
                    })?;
                    delim = *d.as_bytes().first().unwrap_or(&b'\t');
                }
                "-s" => suppress = true,
                _ if a.starts_with("-f") => fields = Some(a[2..].to_string()),
                _ if a.starts_with("-c") => chars = Some(a[2..].to_string()),
                _ if a.starts_with("-d") => delim = *a.as_bytes().get(2).unwrap_or(&b'\t'),
                _ => files.push(a.clone()),
            }
        }
        let (ranges, by_fields) = match (&fields, &chars) {
            (Some(f), None) => (parse_ranges(f), true),
            (None, Some(c)) => (parse_ranges(c), false),
            _ => return crate::usage_error(io, "cut", "specify exactly one of -f or -c"),
        };
        let ranges = match ranges {
            Some(r) => r,
            None => return crate::usage_error(io, "cut", "invalid list"),
        };
        if files.is_empty() {
            files.push("-".to_string());
        }
        for f in &files {
            let mut r = open_input(&io.fs, f, io.stdin)?;
            for_each_line(&mut r, |line| {
                if by_fields {
                    if !line.contains(&delim) {
                        if !suppress {
                            write_line(io.stdout, line)?;
                        }
                        return Ok(true);
                    }
                    let parts: Vec<&[u8]> = line.split(|&b| b == delim).collect();
                    let mut out: Vec<u8> = Vec::new();
                    let mut first = true;
                    for (i, p) in parts.iter().enumerate() {
                        if in_ranges(&ranges, i + 1) {
                            if !first {
                                out.push(delim);
                            }
                            out.extend_from_slice(p);
                            first = false;
                        }
                    }
                    write_line(io.stdout, &out)?;
                } else {
                    let out: Vec<u8> = line
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| in_ranges(&ranges, i + 1))
                        .map(|(_, &b)| b)
                        .collect();
                    write_line(io.stdout, &out)?;
                }
                Ok(true)
            })?;
        }
        Ok(0)
    }
}

#[cfg(test)]
mod tests {
    use crate::fs::MemFs;
    use crate::{run_command, Registry};
    use std::sync::Arc;

    fn cut(args: &[&str], input: &str) -> String {
        let mut argv = vec!["cut"];
        argv.extend(args);
        let out = run_command(
            &Registry::standard(),
            Arc::new(MemFs::new()),
            &argv,
            input.as_bytes(),
        )
        .expect("run");
        String::from_utf8(out.stdout).expect("utf8")
    }

    #[test]
    fn fields_tab_default() {
        assert_eq!(cut(&["-f", "2"], "a\tb\tc\n"), "b\n");
    }

    #[test]
    fn fields_custom_delim() {
        assert_eq!(
            cut(&["-d", " ", "-f", "9"], "1 2 3 4 5 6 7 8 nine ten\n"),
            "nine\n"
        );
    }

    #[test]
    fn field_ranges() {
        assert_eq!(cut(&["-d", ",", "-f", "1,3-4"], "a,b,c,d,e\n"), "a,c,d\n");
    }

    #[test]
    fn open_range() {
        assert_eq!(cut(&["-d", ",", "-f", "2-"], "a,b,c\n"), "b,c\n");
    }

    #[test]
    fn line_without_delimiter_passes_through() {
        assert_eq!(cut(&["-d", ",", "-f", "2"], "nodelim\n"), "nodelim\n");
    }

    #[test]
    fn suppress_lines_without_delimiter() {
        assert_eq!(cut(&["-d", ",", "-f", "2", "-s"], "nodelim\na,b\n"), "b\n");
    }

    #[test]
    fn characters() {
        // The NOAA temperature extraction shape: cut -c 89-92.
        assert_eq!(cut(&["-c", "2-4"], "abcdef\n"), "bcd\n");
        assert_eq!(cut(&["-c", "1,3"], "abc\n"), "ac\n");
    }

    #[test]
    fn characters_past_end() {
        assert_eq!(cut(&["-c", "5-9"], "abc\n"), "\n");
    }

    #[test]
    fn attached_flag_forms() {
        assert_eq!(cut(&["-d,", "-f2"], "a,b,c\n"), "b\n");
    }

    #[test]
    fn invalid_list_is_usage_error() {
        let out = run_command(
            &Registry::standard(),
            Arc::new(MemFs::new()),
            &["cut", "-f", "0"],
            b"",
        )
        .expect("run");
        assert_eq!(out.status, 2);
    }
}
