//! Benchmark-specific commands (the paper's non-POSIX stages).
//!
//! These model the paper's use-case stages that are not POSIX/GNU
//! commands but become parallelizable through one-line annotations
//! (§6.4): a local-mirror `fetch` (for `curl`), an `unrle` decompressor
//! (for `gunzip`), `html-to-text` and `word-stem` (the JavaScript and
//! Python stages of the web-indexing pipeline), and `bigrams-aux` (the
//! optimized Bi-grams kernel with a custom aggregator).

use std::io;

use crate::lines::{for_each_line, write_line};
use crate::{open_input, CmdIo, Command, ExitStatus};

/// `fetch [url…]` — reads each "URL" (a path in the local mirror) and
/// concatenates the contents, simulating `curl -s`.
///
/// Annotated stateless: under `xargs -n 1 fetch` each input line maps
/// to the referenced document.
pub struct Fetch;

impl Command for Fetch {
    fn name(&self) -> &'static str {
        "fetch"
    }

    fn run(&self, args: &[String], io: &mut CmdIo<'_>) -> io::Result<ExitStatus> {
        // Strip URL schemes: the workload generator lays mirrors out as
        // plain paths.
        let mut urls: Vec<String> = args.iter().map(|a| strip_scheme(a)).collect();
        if urls.is_empty() {
            // Read URLs from stdin, one per line.
            let mut collected = Vec::new();
            for_each_line(io.stdin, |line| {
                collected.push(strip_scheme(&String::from_utf8_lossy(line)));
                Ok(true)
            })?;
            urls = collected;
        }
        for u in &urls {
            let mut r = io.fs.open_buffered(u)?;
            let mut buf = [0u8; 64 * 1024];
            loop {
                let n = io::Read::read(&mut r, &mut buf)?;
                if n == 0 {
                    break;
                }
                io.stdout.write_all(&buf[..n])?;
            }
        }
        Ok(0)
    }
}

fn strip_scheme(u: &str) -> String {
    for scheme in ["ftp://", "http://", "https://"] {
        if let Some(rest) = u.strip_prefix(scheme) {
            // Drop the host component.
            return match rest.split_once('/') {
                Some((_host, path)) => path.to_string(),
                None => rest.to_string(),
            };
        }
    }
    u.to_string()
}

/// `unrle` — decode the workload generator's line-level run-length
/// format: `N<TAB>text` expands to N copies of `text`.
///
/// Stands in for `gunzip` (no offline gzip implementation): a real
/// decompression stage, stateless per record.
pub struct Unrle;

impl Command for Unrle {
    fn name(&self) -> &'static str {
        "unrle"
    }

    fn run(&self, args: &[String], io: &mut CmdIo<'_>) -> io::Result<ExitStatus> {
        let mut files: Vec<&str> = args.iter().map(|s| s.as_str()).collect();
        if files.is_empty() {
            files.push("-");
        }
        for f in files {
            let mut r = open_input(&io.fs, f, io.stdin)?;
            for_each_line(&mut r, |line| {
                match line.iter().position(|&b| b == b'\t') {
                    Some(tab) => {
                        let n: u64 = std::str::from_utf8(&line[..tab])
                            .ok()
                            .and_then(|s| s.parse().ok())
                            .unwrap_or(1);
                        for _ in 0..n {
                            write_line(io.stdout, &line[tab + 1..])?;
                        }
                    }
                    None => write_line(io.stdout, line)?,
                }
                Ok(true)
            })?;
        }
        Ok(0)
    }
}

/// Encodes the `unrle` format (used by tests and generators).
pub fn rle_encode(lines: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        let mut j = i + 1;
        while j < lines.len() && lines[j] == lines[i] {
            j += 1;
        }
        out.extend_from_slice(format!("{}\t", j - i).as_bytes());
        out.extend_from_slice(&lines[i]);
        out.push(b'\n');
        i = j;
    }
    out
}

/// `html-to-text` — strip tags and decode basic entities.
///
/// Models the web-indexing pipeline's HTML extraction stage (the
/// costliest stage of §6.4). Stateless per line for the generator's
/// one-tag-per-line pages.
pub struct HtmlToText;

impl Command for HtmlToText {
    fn name(&self) -> &'static str {
        "html-to-text"
    }

    fn run(&self, _args: &[String], io: &mut CmdIo<'_>) -> io::Result<ExitStatus> {
        for_each_line(io.stdin, |line| {
            let mut out: Vec<u8> = Vec::with_capacity(line.len());
            let mut in_tag = false;
            let mut i = 0;
            while i < line.len() {
                match line[i] {
                    b'<' => in_tag = true,
                    b'>' => in_tag = false,
                    b'&' if !in_tag => {
                        // Decode a small entity set.
                        let rest = &line[i..];
                        let (text, used) = decode_entity(rest);
                        out.extend_from_slice(text);
                        i += used;
                        continue;
                    }
                    b if !in_tag => out.push(b),
                    _ => {}
                }
                i += 1;
            }
            let trimmed: Vec<u8> = String::from_utf8_lossy(&out).trim().as_bytes().to_vec();
            if !trimmed.is_empty() {
                write_line(io.stdout, &trimmed)?;
            }
            Ok(true)
        })?;
        Ok(0)
    }
}

fn decode_entity(rest: &[u8]) -> (&'static [u8], usize) {
    const TABLE: [(&[u8], &[u8]); 5] = [
        (b"&amp;", b"&"),
        (b"&lt;", b"<"),
        (b"&gt;", b">"),
        (b"&quot;", b"\""),
        (b"&nbsp;", b" "),
    ];
    for (ent, text) in TABLE {
        if rest.starts_with(ent) {
            return (text, ent.len());
        }
    }
    (b"&", 1)
}

/// `word-stem` — a crude suffix-stripping stemmer, one word per line.
///
/// Models the Python stemming stage of §6.4; stateless.
pub struct WordStem;

impl Command for WordStem {
    fn name(&self) -> &'static str {
        "word-stem"
    }

    fn run(&self, _args: &[String], io: &mut CmdIo<'_>) -> io::Result<ExitStatus> {
        for_each_line(io.stdin, |line| {
            write_line(io.stdout, stem(line))?;
            Ok(true)
        })?;
        Ok(0)
    }
}

/// Strips common English suffixes (a Porter-stemmer sketch).
pub fn stem(word: &[u8]) -> &[u8] {
    const SUFFIXES: [&[u8]; 8] = [
        b"ational", b"ization", b"fulness", b"ing", b"edly", b"tion", b"ies", b"s",
    ];
    for s in SUFFIXES {
        if word.len() > s.len() + 2 && word.ends_with(s) {
            return &word[..word.len() - s.len()];
        }
    }
    word
}

/// `bigrams-aux` — emit adjacent word pairs from a one-word-per-line
/// stream, with boundary markers for the custom aggregator.
///
/// This is the §6.1 "Bi-grams-opt" kernel: a map command (class P)
/// whose aggregator stitches chunk boundaries back together. The first
/// and last words of the chunk are emitted as `\x01F\t<word>` and
/// `\x01L\t<word>` marker lines, which `bigram-agg` (in the runtime
/// crate) consumes.
pub struct BigramsAux;

impl Command for BigramsAux {
    fn name(&self) -> &'static str {
        "bigrams-aux"
    }

    fn run(&self, args: &[String], io: &mut CmdIo<'_>) -> io::Result<ExitStatus> {
        // `--marked` is the map role: boundary markers are emitted for
        // the aggregator to stitch; the plain form is the sequential
        // command (no markers).
        let marked = args.iter().any(|a| a == "--marked");
        let mut prev: Option<Vec<u8>> = None;
        let mut first: Option<Vec<u8>> = None;
        for_each_line(io.stdin, |line| {
            if first.is_none() {
                first = Some(line.to_vec());
                if marked {
                    let mut marker = b"\x01F\t".to_vec();
                    marker.extend_from_slice(line);
                    write_line(io.stdout, &marker)?;
                }
            }
            if let Some(p) = &prev {
                let mut pair = p.clone();
                pair.push(b' ');
                pair.extend_from_slice(line);
                write_line(io.stdout, &pair)?;
            }
            prev = Some(line.to_vec());
            Ok(true)
        })?;
        if marked {
            if let Some(p) = &prev {
                let mut marker = b"\x01L\t".to_vec();
                marker.extend_from_slice(p);
                write_line(io.stdout, &marker)?;
            }
        }
        Ok(0)
    }
}

/// `awk-reorder` — prints the second field followed by the whole
/// line, mimicking the Unix50 solutions' `awk "{print \$2, \$0}"`.
///
/// Deliberately *not* annotated: it models the general `awk` stages
/// PaSh cannot parallelize (§6.2's no-speedup group); the front-end
/// treats it conservatively.
pub struct AwkReorder;

impl Command for AwkReorder {
    fn name(&self) -> &'static str {
        "awk-reorder"
    }

    fn run(&self, args: &[String], io: &mut CmdIo<'_>) -> io::Result<ExitStatus> {
        let mut files: Vec<&str> = args.iter().map(|s| s.as_str()).collect();
        if files.is_empty() {
            files.push("-");
        }
        for f in files {
            let mut r = open_input(&io.fs, f, io.stdin)?;
            for_each_line(&mut r, |line| {
                let fields = crate::lines::split_whitespace(line);
                let mut out: Vec<u8> = Vec::with_capacity(line.len() + 8);
                if let Some(second) = fields.get(1) {
                    out.extend_from_slice(second);
                    out.push(b' ');
                }
                out.extend_from_slice(line);
                write_line(io.stdout, &out)?;
                Ok(true)
            })?;
        }
        Ok(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::MemFs;
    use crate::{run_command, Registry};
    use std::sync::Arc;

    fn run(argv: &[&str], input: &str) -> String {
        let fs = Arc::new(MemFs::new());
        fs.add("mirror/2015/f1", b"doc-one\n".to_vec());
        fs.add("mirror/2015/f2", b"doc-two\n".to_vec());
        let out = run_command(&Registry::standard(), fs, argv, input.as_bytes()).expect("run");
        String::from_utf8(out.stdout).expect("utf8")
    }

    #[test]
    fn fetch_args() {
        assert_eq!(run(&["fetch", "mirror/2015/f1"], ""), "doc-one\n");
    }

    #[test]
    fn fetch_strips_scheme() {
        assert_eq!(
            run(&["fetch", "ftp://host.example/mirror/2015/f2"], ""),
            "doc-two\n"
        );
    }

    #[test]
    fn fetch_from_stdin() {
        assert_eq!(
            run(&["fetch"], "mirror/2015/f1\nmirror/2015/f2\n"),
            "doc-one\ndoc-two\n"
        );
    }

    #[test]
    fn unrle_expands() {
        assert_eq!(run(&["unrle"], "3\tx\n1\ty\n"), "x\nx\nx\ny\n");
    }

    #[test]
    fn unrle_passthrough_without_tab() {
        assert_eq!(run(&["unrle"], "plain\n"), "plain\n");
    }

    #[test]
    fn rle_roundtrip() {
        let lines: Vec<Vec<u8>> = ["a", "a", "b", "a"]
            .iter()
            .map(|s| s.as_bytes().to_vec())
            .collect();
        let enc = rle_encode(&lines);
        let out = run(&["unrle"], std::str::from_utf8(&enc).expect("utf8"));
        assert_eq!(out, "a\na\nb\na\n");
    }

    #[test]
    fn html_to_text_strips_tags() {
        assert_eq!(
            run(
                &["html-to-text"],
                "<p>Hello <b>world</b></p>\n<div></div>\n"
            ),
            "Hello world\n"
        );
    }

    #[test]
    fn html_entities_decoded() {
        assert_eq!(
            run(&["html-to-text"], "a &amp; b &lt;c&gt;\n"),
            "a & b <c>\n"
        );
    }

    #[test]
    fn word_stem_strips_suffixes() {
        assert_eq!(
            run(&["word-stem"], "running\ncats\ntables\n"),
            "runn\ncat\ntable\n"
        );
    }

    #[test]
    fn bigrams_aux_plain_pairs() {
        let out = run(&["bigrams-aux"], "a\nb\nc\n");
        assert_eq!(out, "a b\nb c\n");
    }

    #[test]
    fn bigrams_aux_marked_pairs() {
        let out = run(&["bigrams-aux", "--marked"], "a\nb\nc\n");
        assert_eq!(out, "\u{1}F\ta\na b\nb c\n\u{1}L\tc\n");
    }

    #[test]
    fn awk_reorder_prepends_second_field() {
        assert_eq!(run(&["awk-reorder"], "a b c\nx\n"), "b a b c\nx\n");
    }

    #[test]
    fn bigrams_aux_empty() {
        assert_eq!(run(&["bigrams-aux"], ""), "");
    }
}
