//! `sort` — sort or merge lines.
//!
//! Supports `-n`, `-r`, `-u`, `-k POS1[,POS2]`, `-t SEP`, `-m`
//! (merge pre-sorted inputs — the aggregation phase PaSh uses, spelled
//! `sort -m` on GNU systems, §5.2), and `--parallel=N` (an internal
//! threaded sort used as the §6.5 baseline).

use std::io;

use crate::lines::{read_all_lines, write_line};
use crate::sortkeys::SortSpec;
use crate::{open_input, CmdIo, Command, ExitStatus};

/// The `sort` command (class P: map = sort, aggregate = merge).
pub struct Sort;

/// Parsed invocation.
pub struct SortArgs {
    /// Ordering specification.
    pub spec: SortSpec,
    /// `-m`: inputs are pre-sorted, merge only.
    pub merge: bool,
    /// `--parallel=N` thread count (1 = sequential).
    pub parallel: usize,
    /// Input files (empty = stdin).
    pub files: Vec<String>,
}

/// Parses sort arguments (shared with the runtime merge aggregator).
pub fn parse_args(args: &[String]) -> Result<SortArgs, String> {
    let mut out = SortArgs {
        spec: SortSpec::default(),
        merge: false,
        parallel: 1,
        files: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-n" => out.spec.numeric = true,
            "-r" => out.spec.reverse = true,
            "-u" => out.spec.unique = true,
            "-m" => out.merge = true,
            "-k" => {
                let k = it.next().ok_or("missing -k argument")?;
                out.spec
                    .keys
                    .push(SortSpec::parse_key(k).ok_or_else(|| format!("bad key `{k}`"))?);
            }
            "-t" => {
                let t = it.next().ok_or("missing -t argument")?;
                out.spec.separator = t.as_bytes().first().copied();
            }
            s if s.starts_with("--parallel=") => {
                out.parallel = s["--parallel=".len()..]
                    .parse()
                    .map_err(|_| format!("bad --parallel in `{s}`"))?;
            }
            s if s.starts_with("-k") && s.len() > 2 => {
                out.spec
                    .keys
                    .push(SortSpec::parse_key(&s[2..]).ok_or_else(|| format!("bad key `{s}`"))?);
            }
            s if s.starts_with("-t") && s.len() > 2 => {
                out.spec.separator = s.as_bytes().get(2).copied();
            }
            s if s.starts_with('-')
                && s.len() > 1
                && s[1..].chars().all(|c| "nrum".contains(c)) =>
            {
                for c in s[1..].chars() {
                    match c {
                        'n' => out.spec.numeric = true,
                        'r' => out.spec.reverse = true,
                        'u' => out.spec.unique = true,
                        'm' => out.merge = true,
                        _ => unreachable!("guard checked flag set"),
                    }
                }
            }
            other => out.files.push(other.to_string()),
        }
    }
    Ok(out)
}

impl Command for Sort {
    fn name(&self) -> &'static str {
        "sort"
    }

    fn run(&self, args: &[String], io: &mut CmdIo<'_>) -> io::Result<ExitStatus> {
        let parsed = match parse_args(args) {
            Ok(p) => p,
            Err(e) => return crate::usage_error(io, "sort", &e),
        };
        let mut files = parsed.files.clone();
        if files.is_empty() {
            files.push("-".to_string());
        }
        if parsed.merge {
            // K-way merge of pre-sorted inputs.
            let mut readers = Vec::new();
            for f in &files {
                let mut r = open_input(&io.fs, f, io.stdin)?;
                readers.push(read_all_lines(&mut r)?);
            }
            let merged = merge_sorted(&parsed.spec, readers);
            write_out(io, &parsed.spec, merged)?;
            return Ok(0);
        }
        let mut lines = Vec::new();
        for f in &files {
            let mut r = open_input(&io.fs, f, io.stdin)?;
            lines.extend(read_all_lines(&mut r)?);
        }
        let sorted = if parsed.parallel > 1 {
            parallel_sort(&parsed.spec, lines, parsed.parallel)
        } else {
            let spec = parsed.spec.clone();
            let mut l = lines;
            l.sort_by(|a, b| spec.compare(a, b));
            l
        };
        write_out(io, &parsed.spec, sorted)?;
        Ok(0)
    }
}

fn write_out(io: &mut CmdIo<'_>, spec: &SortSpec, lines: Vec<Vec<u8>>) -> io::Result<()> {
    let mut last: Option<&Vec<u8>> = None;
    for line in &lines {
        if spec.unique {
            if let Some(prev) = last {
                if spec.key_equal(prev, line) {
                    continue;
                }
            }
        }
        write_line(io.stdout, line)?;
        last = Some(line);
    }
    Ok(())
}

/// Stable k-way merge of pre-sorted runs (the `sort -m` aggregator).
pub fn merge_sorted(spec: &SortSpec, mut runs: Vec<Vec<Vec<u8>>>) -> Vec<Vec<u8>> {
    // Positions into each run; pick the smallest head each step
    // (ties resolved by run index for stability).
    let mut pos = vec![0usize; runs.len()];
    let total: usize = runs.iter().map(|r| r.len()).sum();
    let mut out = Vec::with_capacity(total);
    loop {
        let mut best: Option<usize> = None;
        for (i, run) in runs.iter().enumerate() {
            if pos[i] >= run.len() {
                continue;
            }
            match best {
                None => best = Some(i),
                Some(b) => {
                    if spec.compare(&run[pos[i]], &runs[b][pos[b]]) == std::cmp::Ordering::Less {
                        best = Some(i);
                    }
                }
            }
        }
        match best {
            None => break,
            Some(b) => {
                out.push(std::mem::take(&mut runs[b][pos[b]]));
                pos[b] += 1;
            }
        }
    }
    out
}

/// Internal threaded sort: chunk, sort chunks in parallel, merge.
///
/// This models GNU `sort --parallel` for the §6.5 microbenchmark.
fn parallel_sort(spec: &SortSpec, lines: Vec<Vec<u8>>, threads: usize) -> Vec<Vec<u8>> {
    let threads = threads.max(1).min(lines.len().max(1));
    let chunk = lines.len().div_ceil(threads);
    let mut chunks: Vec<Vec<Vec<u8>>> = Vec::new();
    let mut rest = lines;
    while !rest.is_empty() {
        let tail = rest.split_off(chunk.min(rest.len()));
        chunks.push(rest);
        rest = tail;
    }
    let sorted: Vec<Vec<Vec<u8>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|mut c| {
                scope.spawn(move || {
                    c.sort_by(|a, b| spec.compare(a, b));
                    c
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sort worker panicked"))
            .collect()
    });
    merge_sorted(spec, sorted)
}

#[cfg(test)]
mod tests {
    use crate::fs::MemFs;
    use crate::{run_command, Registry};
    use std::sync::Arc;

    fn sort(args: &[&str], input: &str) -> String {
        let mut argv = vec!["sort"];
        argv.extend(args);
        let fs = Arc::new(MemFs::new());
        fs.add("s1", b"a\nc\ne\n".to_vec());
        fs.add("s2", b"b\nd\nf\n".to_vec());
        let out = run_command(&Registry::standard(), fs, &argv, input.as_bytes()).expect("run");
        String::from_utf8(out.stdout).expect("utf8")
    }

    #[test]
    fn lexicographic() {
        assert_eq!(sort(&[], "b\na\nc\n"), "a\nb\nc\n");
    }

    #[test]
    fn numeric() {
        assert_eq!(sort(&["-n"], "10\n9\n-2\n"), "-2\n9\n10\n");
    }

    #[test]
    fn reverse_numeric() {
        // The NOAA max-temperature idiom: sort -rn | head -n 1.
        assert_eq!(sort(&["-rn"], "0450\n0300\n0500\n"), "0500\n0450\n0300\n");
    }

    #[test]
    fn unique() {
        assert_eq!(sort(&["-u"], "b\na\nb\na\n"), "a\nb\n");
    }

    #[test]
    fn key_sort() {
        assert_eq!(
            sort(&["-k", "2", "-n"], "x 10\ny 2\nz 33\n"),
            "y 2\nx 10\nz 33\n"
        );
    }

    #[test]
    fn key_sort_with_separator() {
        assert_eq!(sort(&["-t", ":", "-k", "2"], "a:z\nb:y\n"), "b:y\na:z\n");
    }

    #[test]
    fn merge_presorted_files() {
        assert_eq!(sort(&["-m", "s1", "s2"], ""), "a\nb\nc\nd\ne\nf\n");
    }

    #[test]
    fn merge_is_stable_for_equal_keys() {
        let fs = Arc::new(MemFs::new());
        fs.add("m1", b"1 first\n".to_vec());
        fs.add("m2", b"1 second\n".to_vec());
        let out = run_command(
            &Registry::standard(),
            fs,
            &["sort", "-m", "-n", "-k", "1", "m1", "m2"],
            b"",
        )
        .expect("run");
        // With equal numeric keys, last-resort comparison orders
        // "1 first" < "1 second".
        assert_eq!(out.stdout, b"1 first\n1 second\n");
    }

    #[test]
    fn parallel_matches_sequential() {
        let input: String = (0..500).map(|i| format!("{}\n", (i * 37) % 101)).collect();
        let seq = sort(&["-n"], &input);
        let par = sort(&["-n", "--parallel=4"], &input);
        assert_eq!(seq, par);
    }

    #[test]
    fn sort_empty_input() {
        assert_eq!(sort(&[], ""), "");
    }

    #[test]
    fn sort_stability_equal_lines() {
        assert_eq!(sort(&[], "same\nsame\n"), "same\nsame\n");
    }

    #[test]
    fn bad_key_is_usage_error() {
        let out = run_command(
            &Registry::standard(),
            Arc::new(MemFs::new()),
            &["sort", "-k", "x"],
            b"",
        )
        .expect("run");
        assert_eq!(out.status, 2);
    }
}
