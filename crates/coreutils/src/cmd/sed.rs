//! `sed` — a stream-editor subset.
//!
//! Supported script forms (enough for every script in the paper's
//! evaluation):
//! * `s/RE/REPL/[g]` with an arbitrary delimiter (`s;^;prefix;` as in
//!   Fig. 1) and `\1…\9`/`&` in the replacement;
//! * `y/SET1/SET2/` transliteration;
//! * `[addr]d` deletion and `[addr]p` printing (with `-n`);
//! * `q` quit;
//! * addresses: line numbers, `$`, and `/RE/`.
//!
//! Flags: `-n` (suppress auto-print), `-e SCRIPT` (multiple), `-E`
//! (ERE).

use std::io;

use pash_regex::{Matcher, Regex, Syntax};

use crate::lines::{for_each_line, write_line};
use crate::{open_input, CmdIo, Command, ExitStatus};

/// The `sed` command.
///
/// `s///` without addresses is stateless; line-number addresses and
/// `q` make invocations order-sensitive, which the annotation stdlib
/// classifies conservatively (class N).
pub struct Sed;

#[derive(Debug, Clone)]
enum Address {
    Line(u64),
    /// `N,M` inclusive line range.
    Range(u64, u64),
    Last,
    Pattern(String),
}

#[derive(Debug, Clone)]
enum Instruction {
    Subst {
        addr: Option<Address>,
        re: String,
        repl: String,
        global: bool,
        print: bool,
    },
    Translit {
        from: Vec<u8>,
        to: Vec<u8>,
    },
    Delete(Option<Address>),
    Print(Option<Address>),
    Quit(Option<Address>),
}

impl Command for Sed {
    fn name(&self) -> &'static str {
        "sed"
    }

    fn run(&self, args: &[String], io: &mut CmdIo<'_>) -> io::Result<ExitStatus> {
        let mut quiet = false;
        let mut ere = false;
        let mut scripts: Vec<String> = Vec::new();
        let mut files: Vec<String> = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "-n" => quiet = true,
                "-E" | "-r" => ere = true,
                "-e" => {
                    if let Some(s) = it.next() {
                        scripts.push(s.clone());
                    }
                }
                other => {
                    if scripts.is_empty() {
                        scripts.push(other.to_string());
                    } else {
                        files.push(other.to_string());
                    }
                }
            }
        }
        if scripts.is_empty() {
            return crate::usage_error(io, "sed", "missing script");
        }
        let syntax = if ere { Syntax::Ere } else { Syntax::Bre };
        let mut instructions = Vec::new();
        for s in &scripts {
            for part in split_script(s) {
                instructions.push(
                    parse_instruction(&part)
                        .ok_or_else(|| invalid(format!("invalid sed script `{part}`")))?,
                );
            }
        }
        // Pre-compile matchers (tiered engines with per-instruction
        // DFA caches that persist across the whole stream).
        let mut compiled: Vec<Option<Matcher>> = Vec::new();
        let mut addr_res: Vec<Option<Matcher>> = Vec::new();
        // Whether each substitution's replacement references capture
        // groups (`\1`…`\9`): only those pay for slot tracking; plain
        // replacements run on the find tier.
        let mut wants_caps: Vec<bool> = Vec::new();
        for inst in &instructions {
            let (re, addr, caps) = match inst {
                Instruction::Subst { re, addr, repl, .. } => {
                    (Some(re.as_str()), addr.as_ref(), repl_uses_groups(repl))
                }
                Instruction::Delete(a) | Instruction::Print(a) | Instruction::Quit(a) => {
                    (None, a.as_ref(), false)
                }
                Instruction::Translit { .. } => (None, None, false),
            };
            compiled.push(match re {
                Some(r) => Some(compile(r, syntax)?),
                None => None,
            });
            addr_res.push(match addr {
                Some(Address::Pattern(p)) => Some(compile(p, syntax)?),
                _ => None,
            });
            wants_caps.push(caps);
        }
        if files.is_empty() {
            files.push("-".to_string());
        }

        let mut line_no: u64 = 0;
        let mut quit = false;
        for f in &files {
            if quit {
                break;
            }
            let mut r = open_input(&io.fs, f, io.stdin)?;
            for_each_line(&mut r, |line| {
                line_no += 1;
                let mut pattern_space = line.to_vec();
                let mut deleted = false;
                let mut extra_prints = 0usize;
                for (i, inst) in instructions.iter().enumerate() {
                    match inst {
                        Instruction::Subst {
                            addr,
                            repl,
                            global,
                            print,
                            ..
                        } => {
                            if addr_hits(addr, line_no, &mut addr_res[i], &pattern_space) {
                                let m = compiled[i].as_mut().expect("subst has regex");
                                let (new, n) =
                                    substitute(m, &pattern_space, repl, *global, wants_caps[i]);
                                if n > 0 {
                                    pattern_space = new;
                                    if *print {
                                        extra_prints += 1;
                                    }
                                }
                            }
                        }
                        Instruction::Translit { from, to } => {
                            for b in pattern_space.iter_mut() {
                                if let Some(pos) = from.iter().position(|x| x == b) {
                                    *b = *to.get(pos).copied().as_ref().unwrap_or(b);
                                }
                            }
                        }
                        Instruction::Delete(addr) => {
                            if addr_hits(addr, line_no, &mut addr_res[i], &pattern_space) {
                                deleted = true;
                                break;
                            }
                        }
                        Instruction::Print(addr) => {
                            if addr_hits(addr, line_no, &mut addr_res[i], &pattern_space) {
                                extra_prints += 1;
                            }
                        }
                        Instruction::Quit(addr) => {
                            if addr_hits(addr, line_no, &mut addr_res[i], &pattern_space) {
                                quit = true;
                            }
                        }
                    }
                }
                if !deleted {
                    for _ in 0..extra_prints {
                        write_line(io.stdout, &pattern_space)?;
                    }
                    if !quiet {
                        write_line(io.stdout, &pattern_space)?;
                    }
                }
                Ok(!quit)
            })?;
        }
        Ok(0)
    }
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidInput, msg)
}

fn compile(re: &str, syntax: Syntax) -> io::Result<Matcher> {
    Regex::new(re, syntax)
        .map(|r| r.matcher())
        .map_err(|e| invalid(e.to_string()))
}

/// Does an address select the current line?
fn addr_hits(
    addr: &Option<Address>,
    line_no: u64,
    m: &mut Option<Matcher>,
    pattern_space: &[u8],
) -> bool {
    match addr {
        None => true,
        Some(Address::Line(n)) => line_no == *n,
        Some(Address::Range(a, b)) => line_no >= *a && line_no <= *b,
        Some(Address::Last) => false, // `$` unsupported w/o lookahead; see note.
        Some(Address::Pattern(_)) => m
            .as_mut()
            .map(|re| re.is_match(pattern_space))
            .unwrap_or(false),
    }
}

/// Does a replacement string reference capture groups (`\1`…`\9`)?
///
/// `&` only needs the whole-match span, which the find tier already
/// produces; numbered groups force the Pike VM's slot tracking. The
/// walk is escape-aware, mirroring `apply_replacement`: in `\\1` the
/// digit is literal text, not a group reference.
fn repl_uses_groups(repl: &str) -> bool {
    let b = repl.as_bytes();
    let mut i = 0;
    while i + 1 < b.len() {
        if b[i] == b'\\' {
            if b[i + 1].is_ascii_digit() && b[i + 1] != b'0' {
                return true;
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    false
}

/// Splits a script on `;` at top level (not inside s/// bodies).
fn split_script(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = s.as_bytes();
    let mut cur = String::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if (c == 's' || c == 'y') && i + 1 < bytes.len() && cur.trim().is_empty() {
            // Consume the whole s/// or y/// with its delimiter.
            let delim = bytes[i + 1];
            let mut sections = 0;
            let mut j = i + 2;
            cur.push(c);
            cur.push(delim as char);
            while j < bytes.len() && sections < 2 {
                if bytes[j] == b'\\' && j + 1 < bytes.len() {
                    cur.push('\\');
                    cur.push(bytes[j + 1] as char);
                    j += 2;
                    continue;
                }
                if bytes[j] == delim {
                    sections += 1;
                }
                cur.push(bytes[j] as char);
                j += 1;
            }
            // Trailing flags.
            while j < bytes.len() && bytes[j] != b';' {
                cur.push(bytes[j] as char);
                j += 1;
            }
            i = j;
            continue;
        }
        if c == ';' {
            if !cur.trim().is_empty() {
                out.push(cur.trim().to_string());
            }
            cur.clear();
        } else {
            cur.push(c);
        }
        i += 1;
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

fn parse_address(s: &str) -> (Option<Address>, &str) {
    let bytes = s.as_bytes();
    if bytes.is_empty() {
        return (None, s);
    }
    if bytes[0] == b'$' {
        return (Some(Address::Last), &s[1..]);
    }
    if bytes[0].is_ascii_digit() {
        let end = s.find(|c: char| !c.is_ascii_digit()).unwrap_or(s.len());
        let n: u64 = s[..end].parse().unwrap_or(0);
        // Range form `N,M`.
        if s[end..].starts_with(',') {
            let rest = &s[end + 1..];
            let end2 = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            if end2 > 0 {
                let m: u64 = rest[..end2].parse().unwrap_or(n);
                return (Some(Address::Range(n, m)), &rest[end2..]);
            }
        }
        return (Some(Address::Line(n)), &s[end..]);
    }
    if bytes[0] == b'/' {
        if let Some(close) = s[1..].find('/') {
            return (
                Some(Address::Pattern(s[1..1 + close].to_string())),
                &s[close + 2..],
            );
        }
    }
    (None, s)
}

fn parse_instruction(s: &str) -> Option<Instruction> {
    let (addr, rest) = parse_address(s);
    let bytes = rest.as_bytes();
    match bytes.first()? {
        b's' => {
            let delim = *bytes.get(1)?;
            let mut parts = vec![String::new()];
            let mut i = 2;
            while i < bytes.len() && parts.len() <= 2 {
                if bytes[i] == b'\\' && i + 1 < bytes.len() {
                    if bytes[i + 1] == delim {
                        parts.last_mut()?.push(delim as char);
                    } else {
                        parts.last_mut()?.push('\\');
                        parts.last_mut()?.push(bytes[i + 1] as char);
                    }
                    i += 2;
                    continue;
                }
                if bytes[i] == delim {
                    parts.push(String::new());
                } else {
                    parts.last_mut()?.push(bytes[i] as char);
                }
                i += 1;
            }
            if parts.len() != 3 {
                return None;
            }
            // Everything after the closing delimiter is flags.
            if i < bytes.len() {
                let tail: String = rest[i..].to_string();
                parts[2].push_str(&tail);
            }
            let flags = &parts[2];
            Some(Instruction::Subst {
                addr,
                re: parts[0].clone(),
                repl: parts[1].clone(),
                global: flags.contains('g'),
                print: flags.contains('p'),
            })
        }
        b'y' => {
            let delim = *bytes.get(1)? as char;
            let body: Vec<&str> = rest[2..].split(delim).collect();
            if body.len() < 2 {
                return None;
            }
            let from = crate::cmd::tr::expand_set(body[0]);
            let to = crate::cmd::tr::expand_set(body[1]);
            if from.len() != to.len() {
                return None;
            }
            Some(Instruction::Translit { from, to })
        }
        b'd' if rest.len() == 1 => Some(Instruction::Delete(addr)),
        b'p' if rest.len() == 1 => Some(Instruction::Print(addr)),
        b'q' if rest.len() == 1 => Some(Instruction::Quit(addr)),
        _ => None,
    }
}

/// Applies a substitution; returns the new line and match count.
///
/// `wants_caps` is whether the replacement references `\1`…`\9`; only
/// then does the loop run the capture engine — otherwise each match is
/// located by the (much faster) find tier and `&`/literal replacements
/// are spliced from the whole-match span alone.
fn substitute(
    re: &mut Matcher,
    line: &[u8],
    repl: &str,
    global: bool,
    wants_caps: bool,
) -> (Vec<u8>, usize) {
    let mut out = Vec::with_capacity(line.len());
    let mut at = 0usize;
    let mut n = 0usize;
    while at <= line.len() {
        let caps = if wants_caps {
            match re.captures_at(line, at) {
                Some(c) => c,
                None => break,
            }
        } else {
            match re.find_at(line, at) {
                Some(span) => vec![Some(span)],
                None => break,
            }
        };
        let (s, e) = caps[0].expect("group 0 present");
        out.extend_from_slice(&line[at..s]);
        apply_replacement(repl, line, &caps, &mut out);
        n += 1;
        if e == s {
            // Empty match: copy one byte to make progress.
            if s < line.len() {
                out.push(line[s]);
            }
            at = s + 1;
        } else {
            at = e;
        }
        if !global {
            break;
        }
    }
    if at <= line.len() {
        out.extend_from_slice(&line[at.min(line.len())..]);
    }
    if n == 0 {
        (line.to_vec(), 0)
    } else {
        (out, n)
    }
}

fn apply_replacement(repl: &str, line: &[u8], caps: &[Option<(usize, usize)>], out: &mut Vec<u8>) {
    let bytes = repl.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if i + 1 < bytes.len() => {
                let c = bytes[i + 1];
                if c.is_ascii_digit() {
                    let g = (c - b'0') as usize;
                    if let Some(Some((s, e))) = caps.get(g) {
                        out.extend_from_slice(&line[*s..*e]);
                    }
                } else if c == b'n' {
                    out.push(b'\n');
                } else {
                    out.push(c);
                }
                i += 2;
            }
            b'&' => {
                if let Some(Some((s, e))) = caps.first() {
                    out.extend_from_slice(&line[*s..*e]);
                }
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::fs::MemFs;
    use crate::{run_command, Registry};
    use std::sync::Arc;

    fn sed(args: &[&str], input: &str) -> String {
        let mut argv = vec!["sed"];
        argv.extend(args);
        let out = run_command(
            &Registry::standard(),
            Arc::new(MemFs::new()),
            &argv,
            input.as_bytes(),
        )
        .expect("run");
        String::from_utf8(out.stdout).expect("utf8")
    }

    #[test]
    fn substitute_first() {
        assert_eq!(sed(&["s/a/X/"], "banana\n"), "bXnana\n");
    }

    #[test]
    fn substitute_global() {
        assert_eq!(sed(&["s/a/X/g"], "banana\n"), "bXnXnX\n");
    }

    #[test]
    fn alternate_delimiter_prefix_insert() {
        // The Fig. 1 idiom: sed "s;^;URL/;".
        assert_eq!(
            sed(&["s;^;ftp://host/2015/;"], "file1.gz\n"),
            "ftp://host/2015/file1.gz\n"
        );
    }

    #[test]
    fn prefix_text_insert() {
        assert_eq!(
            sed(&["s/^/Maximum temperature for 2015 is: /"], "0450\n"),
            "Maximum temperature for 2015 is: 0450\n"
        );
    }

    #[test]
    fn ampersand_in_replacement() {
        assert_eq!(sed(&["s/b/[&]/"], "abc\n"), "a[b]c\n");
    }

    #[test]
    fn backreference_in_replacement() {
        assert_eq!(sed(&[r"s/\(a*\)b/<\1>/"], "aaab\n"), "<aaa>\n");
    }

    #[test]
    fn delete_by_pattern() {
        assert_eq!(sed(&["/^#/d"], "#c\nkeep\n#d\n"), "keep\n");
    }

    #[test]
    fn delete_by_line_number() {
        assert_eq!(sed(&["2d"], "a\nb\nc\n"), "a\nc\n");
    }

    #[test]
    fn quiet_print() {
        assert_eq!(sed(&["-n", "/b/p"], "a\nb\nc\n"), "b\n");
    }

    #[test]
    fn print_duplicates_without_quiet() {
        assert_eq!(sed(&["/b/p"], "a\nb\n"), "a\nb\nb\n");
    }

    #[test]
    fn range_address_print() {
        assert_eq!(sed(&["-n", "1,2p"], "a\nb\nc\n"), "a\nb\n");
    }

    #[test]
    fn range_address_delete() {
        assert_eq!(sed(&["2,3d"], "a\nb\nc\nd\n"), "a\nd\n");
    }

    #[test]
    fn quit_by_line() {
        assert_eq!(sed(&["2q"], "a\nb\nc\n"), "a\nb\n");
    }

    #[test]
    fn transliterate() {
        assert_eq!(sed(&["y/abc/xyz/"], "aabbcc\n"), "xxyyzz\n");
    }

    #[test]
    fn multiple_expressions() {
        assert_eq!(sed(&["-e", "s/a/1/", "-e", "s/b/2/"], "ab\n"), "12\n");
    }

    #[test]
    fn semicolon_separated_script() {
        assert_eq!(sed(&["s/a/1/;s/b/2/"], "ab\n"), "12\n");
    }

    #[test]
    fn ere_mode() {
        assert_eq!(sed(&["-E", "s/(a|b)+/X/"], "aababc\n"), "Xc\n");
    }

    #[test]
    fn addressed_substitution() {
        assert_eq!(sed(&["2s/a/X/"], "a\na\n"), "a\nX\n");
    }

    #[test]
    fn no_match_leaves_line() {
        assert_eq!(sed(&["s/zzz/x/"], "abc\n"), "abc\n");
    }

    #[test]
    fn escaped_backslash_before_digit_is_literal() {
        // `\\1` in the replacement is a literal backslash then `1`,
        // not a group reference (and must not force the capture tier).
        assert_eq!(sed(&[r"s/b/\\1/"], "abc\n"), "a\\1c\n");
        assert!(!super::repl_uses_groups(r"\\1"));
        assert!(super::repl_uses_groups(r"<\1>"));
        assert!(super::repl_uses_groups(r"\\\2"));
        assert!(!super::repl_uses_groups(r"\n&\\"));
    }
}
