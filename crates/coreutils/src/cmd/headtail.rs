//! `head` and `tail`.

use std::collections::VecDeque;
use std::io;

use crate::lines::{for_each_line, write_line};
use crate::{open_input, CmdIo, Command, ExitStatus};

/// `head [-n N] [-c N] [file…]`.
///
/// `head` exits after N lines; under a pipe this is what triggers the
/// dangling-FIFO problem of §5.2 (its producers must be SIGPIPE'd).
pub struct Head;

impl Command for Head {
    fn name(&self) -> &'static str {
        "head"
    }

    fn run(&self, args: &[String], io: &mut CmdIo<'_>) -> io::Result<ExitStatus> {
        let mut n_lines: Option<u64> = None;
        let mut n_bytes: Option<u64> = None;
        let mut files: Vec<String> = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "-n" => n_lines = it.next().and_then(|s| s.parse().ok()),
                "-c" => n_bytes = it.next().and_then(|s| s.parse().ok()),
                s if s.starts_with("-n") && s.len() > 2 => n_lines = s[2..].parse().ok(),
                s if s.starts_with("-c") && s.len() > 2 => n_bytes = s[2..].parse().ok(),
                s if s.starts_with('-')
                    && s[1..].chars().all(|c| c.is_ascii_digit())
                    && s.len() > 1 =>
                {
                    n_lines = s[1..].parse().ok()
                }
                other => files.push(other.to_string()),
            }
        }
        let n_lines = n_lines.unwrap_or(10);
        if files.is_empty() {
            files.push("-".to_string());
        }
        for f in &files {
            let mut r = open_input(&io.fs, f, io.stdin)?;
            if let Some(max) = n_bytes {
                let mut remaining = max;
                let mut buf = [0u8; 8192];
                while remaining > 0 {
                    let want = (remaining as usize).min(buf.len());
                    let n = io::Read::read(&mut r, &mut buf[..want])?;
                    if n == 0 {
                        break;
                    }
                    io.stdout.write_all(&buf[..n])?;
                    remaining -= n as u64;
                }
            } else {
                let mut seen = 0u64;
                for_each_line(&mut r, |line| {
                    if seen >= n_lines {
                        return Ok(false);
                    }
                    write_line(io.stdout, line)?;
                    seen += 1;
                    Ok(seen < n_lines)
                })?;
            }
        }
        Ok(0)
    }
}

/// `tail [-n N | -n +N] [file…]`.
///
/// `tail -n +N` (start *from* line N) is the stream-shifting idiom the
/// Bi-grams benchmark uses; it is stateless-after-a-prefix, annotated
/// conservatively as P.
pub struct Tail;

impl Command for Tail {
    fn name(&self) -> &'static str {
        "tail"
    }

    fn run(&self, args: &[String], io: &mut CmdIo<'_>) -> io::Result<ExitStatus> {
        let mut from_start: Option<u64> = None;
        let mut last: u64 = 10;
        let mut files: Vec<String> = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "-n" => match it.next() {
                    Some(v) if v.starts_with('+') => from_start = v[1..].parse().ok(),
                    Some(v) => last = v.parse().unwrap_or(10),
                    None => {}
                },
                s if s.starts_with("-n+") => from_start = s[3..].parse().ok(),
                s if s.starts_with("+") && s[1..].chars().all(|c| c.is_ascii_digit()) => {
                    // Historic form: `tail +2`.
                    from_start = s[1..].parse().ok();
                }
                s if s.starts_with("-n") && s.len() > 2 => last = s[2..].parse().unwrap_or(10),
                other => files.push(other.to_string()),
            }
        }
        if files.is_empty() {
            files.push("-".to_string());
        }
        for f in &files {
            let mut r = open_input(&io.fs, f, io.stdin)?;
            match from_start {
                Some(start) => {
                    let mut line_no = 0u64;
                    for_each_line(&mut r, |line| {
                        line_no += 1;
                        if line_no >= start {
                            write_line(io.stdout, line)?;
                        }
                        Ok(true)
                    })?;
                }
                None => {
                    let mut ring: VecDeque<Vec<u8>> = VecDeque::with_capacity(last as usize + 1);
                    for_each_line(&mut r, |line| {
                        if ring.len() as u64 >= last {
                            ring.pop_front();
                        }
                        if last > 0 {
                            ring.push_back(line.to_vec());
                        }
                        Ok(true)
                    })?;
                    for line in ring {
                        write_line(io.stdout, &line)?;
                    }
                }
            }
        }
        Ok(0)
    }
}

#[cfg(test)]
mod tests {
    use crate::fs::MemFs;
    use crate::{run_command, Registry};
    use std::sync::Arc;

    fn run(argv: &[&str], input: &str) -> String {
        let out = run_command(
            &Registry::standard(),
            Arc::new(MemFs::new()),
            argv,
            input.as_bytes(),
        )
        .expect("run");
        String::from_utf8(out.stdout).expect("utf8")
    }

    #[test]
    fn head_default_ten() {
        let input: String = (1..=15).map(|i| format!("{i}\n")).collect();
        let out = run(&["head"], &input);
        assert_eq!(out.lines().count(), 10);
    }

    #[test]
    fn head_n_one() {
        // The max-temperature idiom: sort -rn | head -n 1.
        assert_eq!(run(&["head", "-n", "1"], "500\n450\n300\n"), "500\n");
    }

    #[test]
    fn head_attached_n() {
        assert_eq!(run(&["head", "-n2"], "a\nb\nc\n"), "a\nb\n");
    }

    #[test]
    fn head_legacy_dash_number() {
        assert_eq!(run(&["head", "-2"], "a\nb\nc\n"), "a\nb\n");
    }

    #[test]
    fn head_bytes() {
        assert_eq!(run(&["head", "-c", "3"], "abcdef"), "abc");
    }

    #[test]
    fn head_short_input() {
        assert_eq!(run(&["head", "-n", "5"], "a\nb\n"), "a\nb\n");
    }

    #[test]
    fn tail_last_n() {
        assert_eq!(run(&["tail", "-n", "2"], "a\nb\nc\nd\n"), "c\nd\n");
    }

    #[test]
    fn tail_from_line() {
        // The Bi-grams stream shift: tail +2.
        assert_eq!(run(&["tail", "-n", "+2"], "a\nb\nc\n"), "b\nc\n");
        assert_eq!(run(&["tail", "+2"], "a\nb\nc\n"), "b\nc\n");
    }

    #[test]
    fn tail_n_zero() {
        assert_eq!(run(&["tail", "-n", "0"], "a\nb\n"), "");
    }

    #[test]
    fn tail_from_line_past_end() {
        assert_eq!(run(&["tail", "-n", "+10"], "a\nb\n"), "");
    }
}
