//! `uniq` — filter adjacent duplicate lines.

use std::io;

use crate::lines::{for_each_line, write_line};
use crate::{open_input, CmdIo, Command, ExitStatus};

/// `uniq [-c] [-d] [-u] [-i] [file]`.
///
/// Class P: parallel parts need an aggregator that re-examines the
/// boundary between adjacent parts (§5.2's `uniq` combiner).
pub struct Uniq;

impl Command for Uniq {
    fn name(&self) -> &'static str {
        "uniq"
    }

    fn run(&self, args: &[String], io: &mut CmdIo<'_>) -> io::Result<ExitStatus> {
        let mut count = false;
        let mut only_dup = false;
        let mut only_uniq = false;
        let mut ignore_case = false;
        let mut files: Vec<&str> = Vec::new();
        for a in args {
            match a.as_str() {
                "-c" => count = true,
                "-d" => only_dup = true,
                "-u" => only_uniq = true,
                "-i" => ignore_case = true,
                "-ci" | "-ic" => {
                    count = true;
                    ignore_case = true;
                }
                other => files.push(other),
            }
        }
        if files.is_empty() {
            files.push("-");
        }
        let eq = |a: &[u8], b: &[u8]| {
            if ignore_case {
                a.eq_ignore_ascii_case(b)
            } else {
                a == b
            }
        };
        let mut current: Option<(Vec<u8>, u64)> = None;
        let flush = |io: &mut CmdIo<'_>, group: &Option<(Vec<u8>, u64)>| -> io::Result<()> {
            if let Some((line, n)) = group {
                let selected = if only_dup {
                    *n > 1
                } else if only_uniq {
                    *n == 1
                } else {
                    true
                };
                if selected {
                    if count {
                        write!(io.stdout, "{n:7} ")?;
                    }
                    write_line(io.stdout, line)?;
                }
            }
            Ok(())
        };
        for f in files {
            let mut r = open_input(&io.fs, f, io.stdin)?;
            for_each_line(&mut r, |line| {
                match &mut current {
                    Some((prev, n)) if eq(prev, line) => *n += 1,
                    _ => {
                        flush(io, &current)?;
                        current = Some((line.to_vec(), 1));
                    }
                }
                Ok(true)
            })?;
        }
        flush(io, &current)?;
        Ok(0)
    }
}

#[cfg(test)]
mod tests {
    use crate::fs::MemFs;
    use crate::{run_command, Registry};
    use std::sync::Arc;

    fn uniq(args: &[&str], input: &str) -> String {
        let mut argv = vec!["uniq"];
        argv.extend(args);
        let out = run_command(
            &Registry::standard(),
            Arc::new(MemFs::new()),
            &argv,
            input.as_bytes(),
        )
        .expect("run");
        String::from_utf8(out.stdout).expect("utf8")
    }

    #[test]
    fn adjacent_dedup() {
        assert_eq!(uniq(&[], "a\na\nb\na\n"), "a\nb\na\n");
    }

    #[test]
    fn count() {
        assert_eq!(uniq(&["-c"], "a\na\nb\n"), "      2 a\n      1 b\n");
    }

    #[test]
    fn only_duplicates() {
        assert_eq!(uniq(&["-d"], "a\na\nb\nc\nc\n"), "a\nc\n");
    }

    #[test]
    fn only_uniques() {
        assert_eq!(uniq(&["-u"], "a\na\nb\nc\nc\n"), "b\n");
    }

    #[test]
    fn ignore_case() {
        assert_eq!(uniq(&["-i"], "A\na\nb\n"), "A\nb\n");
    }

    #[test]
    fn empty_input() {
        assert_eq!(uniq(&[], ""), "");
    }

    #[test]
    fn single_line() {
        assert_eq!(uniq(&["-c"], "only\n"), "      1 only\n");
    }
}
