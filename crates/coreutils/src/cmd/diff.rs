//! `diff` — compare two files line by line (normal output format).
//!
//! `diff` is the evaluation's stand-in for a *non-parallelizable pure*
//! data path (the Diff benchmark, Tab. 2): its output depends on a
//! global alignment of both inputs, so PaSh leaves it sequential. The
//! implementation is a Myers O(ND) shortest-edit-script diff.

use std::io;

use crate::lines::read_all_lines;
use crate::{open_input, CmdIo, Command, ExitStatus};

/// `diff file1 file2` (normal format: `aNcM`-style hunks).
pub struct Diff;

impl Command for Diff {
    fn name(&self) -> &'static str {
        "diff"
    }

    fn run(&self, args: &[String], io: &mut CmdIo<'_>) -> io::Result<ExitStatus> {
        let files: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
        if files.len() != 2 {
            return crate::usage_error(io, "diff", "needs exactly two files");
        }
        let mut r1 = open_input(&io.fs, files[0], io.stdin)?;
        let a = read_all_lines(&mut r1)?;
        let mut r2 = open_input(&io.fs, files[1], io.stdin)?;
        let b = read_all_lines(&mut r2)?;
        let hunks = diff_hunks(&a, &b);
        let changed = !hunks.is_empty();
        for h in hunks {
            write_hunk(io, &a, &b, &h)?;
        }
        Ok(if changed { 1 } else { 0 })
    }
}

/// One contiguous change region (0-based, half-open).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hunk {
    /// Removed range in `a`.
    pub a: (usize, usize),
    /// Added range in `b`.
    pub b: (usize, usize),
}

/// Computes change hunks with a Myers shortest-edit-script.
pub fn diff_hunks(a: &[Vec<u8>], b: &[Vec<u8>]) -> Vec<Hunk> {
    // Longest-common-subsequence via Myers; collect matched pairs.
    let matches = lcs_matches(a, b);
    let mut hunks = Vec::new();
    let (mut ai, mut bi) = (0usize, 0usize);
    for &(ma, mb) in matches.iter().chain(std::iter::once(&(a.len(), b.len()))) {
        if ai < ma || bi < mb {
            hunks.push(Hunk {
                a: (ai, ma),
                b: (bi, mb),
            });
        }
        ai = ma + 1;
        bi = mb + 1;
    }
    hunks
}

/// Myers O(ND) LCS: returns matched index pairs in order.
fn lcs_matches(a: &[Vec<u8>], b: &[Vec<u8>]) -> Vec<(usize, usize)> {
    let n = a.len() as isize;
    let m = b.len() as isize;
    let max = (n + m) as usize;
    if max == 0 {
        return Vec::new();
    }
    let offset = max as isize;
    let mut v = vec![0isize; 2 * max + 1];
    let mut trace: Vec<Vec<isize>> = Vec::new();
    'outer: for d in 0..=(max as isize) {
        trace.push(v.clone());
        let mut k = -d;
        while k <= d {
            let idx = (k + offset) as usize;
            let mut x = if k == -d || (k != d && v[idx - 1] < v[idx + 1]) {
                v[idx + 1]
            } else {
                v[idx - 1] + 1
            };
            let mut y = x - k;
            while x < n && y < m && a[x as usize] == b[y as usize] {
                x += 1;
                y += 1;
            }
            v[idx] = x;
            if x >= n && y >= m {
                break 'outer;
            }
            k += 2;
        }
    }
    // Backtrack to collect the matched (diagonal) steps.
    let mut matches = Vec::new();
    let (mut x, mut y) = (n, m);
    for d in (0..trace.len() as isize).rev() {
        if x == 0 && y == 0 {
            break;
        }
        let v = &trace[d as usize];
        let k = x - y;
        let idx = (k + offset) as usize;
        let prev_k = if k == -d || (k != d && v[idx - 1] < v[idx + 1]) {
            k + 1
        } else {
            k - 1
        };
        let prev_x = v[(prev_k + offset) as usize];
        let prev_y = prev_x - prev_k;
        // Diagonal run from the end of the previous op.
        while x > prev_x.max(if prev_k < k { prev_x + 1 } else { prev_x })
            && y > prev_y.max(if prev_k > k { prev_y + 1 } else { prev_y })
        {
            x -= 1;
            y -= 1;
            matches.push((x as usize, y as usize));
        }
        if d > 0 {
            x = prev_x;
            y = prev_y;
        } else {
            // d == 0: pure diagonal to the origin.
            while x > 0 && y > 0 {
                x -= 1;
                y -= 1;
                matches.push((x as usize, y as usize));
            }
            break;
        }
    }
    matches.reverse();
    matches
}

fn range_str(lo: usize, hi: usize) -> String {
    // Normal-diff 1-based inclusive ranges.
    if hi - lo <= 1 {
        format!("{}", hi)
    } else {
        format!("{},{}", lo + 1, hi)
    }
}

fn write_hunk(io: &mut CmdIo<'_>, a: &[Vec<u8>], b: &[Vec<u8>], h: &Hunk) -> io::Result<()> {
    let (as_, ae) = h.a;
    let (bs, be) = h.b;
    let op = if as_ == ae {
        'a'
    } else if bs == be {
        'd'
    } else {
        'c'
    };
    let left = if as_ == ae {
        format!("{as_}")
    } else {
        range_str(as_, ae)
    };
    let right = if bs == be {
        format!("{bs}")
    } else {
        range_str(bs, be)
    };
    writeln!(io.stdout, "{left}{op}{right}")?;
    for line in &a[as_..ae] {
        io.stdout.write_all(b"< ")?;
        io.stdout.write_all(line)?;
        io.stdout.write_all(b"\n")?;
    }
    if op == 'c' {
        writeln!(io.stdout, "---")?;
    }
    for line in &b[bs..be] {
        io.stdout.write_all(b"> ")?;
        io.stdout.write_all(line)?;
        io.stdout.write_all(b"\n")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::MemFs;
    use crate::{run_command, Registry};
    use std::sync::Arc;

    fn lines(s: &str) -> Vec<Vec<u8>> {
        s.lines().map(|l| l.as_bytes().to_vec()).collect()
    }

    fn diff(a: &str, b: &str) -> (String, i32) {
        let fs = Arc::new(MemFs::new());
        fs.add("a", a.as_bytes().to_vec());
        fs.add("b", b.as_bytes().to_vec());
        let out = run_command(&Registry::standard(), fs, &["diff", "a", "b"], b"").expect("run");
        (String::from_utf8(out.stdout).expect("utf8"), out.status)
    }

    #[test]
    fn identical_files() {
        let (out, status) = diff("a\nb\n", "a\nb\n");
        assert_eq!(out, "");
        assert_eq!(status, 0);
    }

    #[test]
    fn pure_addition() {
        let (out, status) = diff("a\nc\n", "a\nb\nc\n");
        assert!(out.contains("> b"));
        assert_eq!(status, 1);
    }

    #[test]
    fn pure_deletion() {
        let (out, _) = diff("a\nb\nc\n", "a\nc\n");
        assert!(out.contains("< b"));
    }

    #[test]
    fn change() {
        let (out, _) = diff("a\nx\nc\n", "a\ny\nc\n");
        assert!(out.contains("< x"));
        assert!(out.contains("---"));
        assert!(out.contains("> y"));
    }

    #[test]
    fn hunks_cover_all_differences() {
        let a = lines("1\n2\n3\n4\n5");
        let b = lines("1\nX\n3\nY\nZ\n5");
        let hs = diff_hunks(&a, &b);
        assert!(!hs.is_empty());
        // Reconstruct b from a + hunks to verify completeness.
        let mut rebuilt: Vec<Vec<u8>> = Vec::new();
        let mut ai = 0usize;
        for h in &hs {
            while ai < h.a.0 {
                rebuilt.push(a[ai].clone());
                ai += 1;
            }
            ai = h.a.1;
            for bi in h.b.0..h.b.1 {
                rebuilt.push(b[bi].clone());
            }
        }
        while ai < a.len() {
            rebuilt.push(a[ai].clone());
            ai += 1;
        }
        assert_eq!(rebuilt, b);
    }

    #[test]
    fn empty_vs_nonempty() {
        let (out, _) = diff("", "a\n");
        assert!(out.contains("> a"));
        let (out, _) = diff("a\n", "");
        assert!(out.contains("< a"));
    }

    #[test]
    fn diff_is_order_sensitive() {
        // The N-class property: diff of concatenated halves is not the
        // concatenation of diffs of halves.
        let a1 = lines("x\ny");
        let b1 = lines("y\nx");
        assert!(!diff_hunks(&a1, &b1).is_empty());
    }
}
