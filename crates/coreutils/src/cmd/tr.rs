//! `tr` — translate, squeeze, or delete characters.
//!
//! Supports `tr SET1 SET2`, `-d SET1`, `-s SET1 [SET2]`, `-c`
//! (complement), and combinations such as the classic word-splitting
//! idiom `tr -cs A-Za-z '\n'`.

use std::io::{self};

use crate::{CmdIo, Command, ExitStatus};

/// The `tr` command. Stateless even *within* lines (§3.1 notes ~1/3 of
/// class S commands share this property).
pub struct Tr;

impl Command for Tr {
    fn name(&self) -> &'static str {
        "tr"
    }

    fn run(&self, args: &[String], io: &mut CmdIo<'_>) -> io::Result<ExitStatus> {
        let mut complement = false;
        let mut delete = false;
        let mut squeeze = false;
        let mut sets: Vec<&str> = Vec::new();
        for a in args {
            if let Some(flags) = a.strip_prefix('-') {
                if a == "-" || flags.chars().any(|c| !"cds".contains(c)) {
                    sets.push(a);
                    continue;
                }
                for c in flags.chars() {
                    match c {
                        'c' => complement = true,
                        'd' => delete = true,
                        's' => squeeze = true,
                        _ => unreachable!("filtered above"),
                    }
                }
            } else {
                sets.push(a);
            }
        }
        let set1 = match sets.first() {
            Some(s) => expand_set(s),
            None => return crate::usage_error(io, "tr", "missing operand"),
        };
        let mut member = [false; 256];
        for &b in &set1 {
            member[b as usize] = true;
        }
        if complement {
            for m in member.iter_mut() {
                *m = !*m;
            }
        }

        // Build the translation table when two sets are given.
        let mut table: [u8; 256] = std::array::from_fn(|i| i as u8);
        let translating = !delete && sets.len() >= 2;
        if translating {
            let set2 = expand_set(sets[1]);
            if set2.is_empty() {
                return crate::usage_error(io, "tr", "empty SET2");
            }
            if complement {
                // Complemented translation: map every member byte to
                // the last byte of SET2 (GNU behaviour for -c).
                let last = *set2.last().expect("non-empty set2");
                for (i, m) in member.iter().enumerate() {
                    if *m {
                        table[i] = last;
                    }
                }
            } else {
                for (i, &from) in set1.iter().enumerate() {
                    let to = *set2.get(i).or(set2.last()).expect("non-empty set2");
                    table[from as usize] = to;
                }
            }
        }
        // The squeeze set: after translation, squeeze runs of bytes in
        // SET2 (or SET1 when deleting/squeezing only).
        let mut squeeze_member = [false; 256];
        if squeeze {
            if translating {
                for &b in &expand_set(sets[1]) {
                    squeeze_member[b as usize] = true;
                }
            } else {
                let src = if delete {
                    // `-ds SET1 SET2`: squeeze SET2 after deleting SET1.
                    sets.get(1).map(|s| expand_set(s)).unwrap_or_default()
                } else {
                    set1.clone()
                };
                for &b in &src {
                    squeeze_member[b as usize] = true;
                }
                if !delete && complement {
                    // `tr -cs A-Za-z '\n'` style: squeeze translated
                    // output (single-set complement squeeze).
                    squeeze_member = member;
                }
            }
        }

        let mut buf = [0u8; 64 * 1024];
        let mut out = Vec::with_capacity(64 * 1024);
        let mut last_squeezed: Option<u8> = None;
        loop {
            let n = io.stdin.read(&mut buf)?;
            if n == 0 {
                break;
            }
            out.clear();
            for &b in &buf[..n] {
                let mut b = b;
                if delete && member[b as usize] {
                    continue;
                }
                if translating {
                    // The table is identity for non-members.
                    b = table[b as usize];
                }
                if squeeze && squeeze_member[b as usize] {
                    if last_squeezed == Some(b) {
                        continue;
                    }
                    last_squeezed = Some(b);
                } else {
                    last_squeezed = None;
                }
                out.push(b);
            }
            io.stdout.write_all(&out)?;
        }
        Ok(0)
    }
}

/// Expands a `tr` set: escapes, ranges (`a-z`), classes (`[:upper:]`).
pub fn expand_set(spec: &str) -> Vec<u8> {
    let bytes = spec.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        // POSIX class.
        if bytes[i] == b'[' && i + 1 < bytes.len() && bytes[i + 1] == b':' {
            if let Some(end) = spec[i..].find(":]") {
                let name = &spec[i + 2..i + end];
                out.extend(class_bytes(name));
                i += end + 2;
                continue;
            }
        }
        let (c, used) = unescape_at(bytes, i);
        // Range?
        if i + used < bytes.len() && bytes[i + used] == b'-' && i + used + 1 < bytes.len() {
            let (hi, used2) = unescape_at(bytes, i + used + 1);
            if hi >= c {
                for b in c..=hi {
                    out.push(b);
                }
                i += used + 1 + used2;
                continue;
            }
        }
        out.push(c);
        i += used;
    }
    out
}

/// Decodes one byte at `i`, handling `\n`-style escapes.
fn unescape_at(bytes: &[u8], i: usize) -> (u8, usize) {
    if bytes[i] == b'\\' && i + 1 < bytes.len() {
        let c = match bytes[i + 1] {
            b'n' => b'\n',
            b't' => b'\t',
            b'r' => b'\r',
            b'0' => 0,
            b'\\' => b'\\',
            other => other,
        };
        (c, 2)
    } else {
        (bytes[i], 1)
    }
}

fn class_bytes(name: &str) -> Vec<u8> {
    let mut out = Vec::new();
    match name {
        "upper" => out.extend(b'A'..=b'Z'),
        "lower" => out.extend(b'a'..=b'z'),
        "digit" => out.extend(b'0'..=b'9'),
        "alpha" => {
            out.extend(b'A'..=b'Z');
            out.extend(b'a'..=b'z');
        }
        "alnum" => {
            out.extend(b'0'..=b'9');
            out.extend(b'A'..=b'Z');
            out.extend(b'a'..=b'z');
        }
        "space" => out.extend([b' ', b'\t', b'\n', b'\r', 0x0B, 0x0C]),
        "blank" => out.extend([b' ', b'\t']),
        "punct" => {
            out.extend(b'!'..=b'/');
            out.extend(b':'..=b'@');
            out.extend(b'['..=b'`');
            out.extend(b'{'..=b'~');
        }
        _ => {}
    }
    out
}

#[cfg(test)]
mod tests {
    use super::expand_set;
    use crate::fs::MemFs;
    use crate::{run_command, Registry};
    use std::sync::Arc;

    fn tr(args: &[&str], input: &str) -> String {
        let mut argv = vec!["tr"];
        argv.extend(args);
        let out = run_command(
            &Registry::standard(),
            Arc::new(MemFs::new()),
            &argv,
            input.as_bytes(),
        )
        .expect("run");
        String::from_utf8(out.stdout).expect("utf8")
    }

    #[test]
    fn simple_translate() {
        assert_eq!(tr(&["abc", "xyz"], "aabbcc"), "xxyyzz");
    }

    #[test]
    fn range_translate_case() {
        assert_eq!(tr(&["a-z", "A-Z"], "Hello, World!"), "HELLO, WORLD!");
    }

    #[test]
    fn uneven_sets_pad_with_last() {
        assert_eq!(tr(&["abc", "x"], "cab"), "xxx");
    }

    #[test]
    fn delete() {
        assert_eq!(tr(&["-d", "aeiou"], "education"), "dctn");
    }

    #[test]
    fn squeeze_single_set() {
        assert_eq!(tr(&["-s", " "], "a   b  c"), "a b c");
    }

    #[test]
    fn squeeze_after_translate() {
        assert_eq!(tr(&["-s", "ab", "xy"], "aabb"), "xy");
    }

    #[test]
    fn complement_squeeze_word_split() {
        // The classic word-splitting idiom from Wf / Top-n.
        assert_eq!(
            tr(&["-cs", "A-Za-z", "\\n"], "one, two!!three"),
            "one\ntwo\nthree"
        );
    }

    #[test]
    fn complement_delete() {
        assert_eq!(tr(&["-cd", "0-9"], "a1b2c3"), "123");
    }

    #[test]
    fn escapes_in_sets() {
        assert_eq!(tr(&["\\n", " "], "a\nb\n"), "a b ");
        assert_eq!(tr(&["\\t", " "], "a\tb"), "a b");
    }

    #[test]
    fn posix_classes() {
        assert_eq!(tr(&["[:upper:]", "[:lower:]"], "ABCdef"), "abcdef");
        assert_eq!(tr(&["-d", "[:digit:]"], "a1b2"), "ab");
    }

    #[test]
    fn expand_set_ranges() {
        assert_eq!(expand_set("a-e"), b"abcde".to_vec());
        assert_eq!(expand_set("A-Za-z").len(), 52);
        assert_eq!(expand_set("abc"), b"abc".to_vec());
    }

    #[test]
    fn squeeze_resets_between_runs() {
        assert_eq!(tr(&["-s", "a"], "aabaa"), "aba");
    }

    #[test]
    fn delete_then_squeeze() {
        assert_eq!(tr(&["-ds", "x", "a"], "xaxaxaax"), "a");
    }
}
