//! SHA-1, implemented from scratch (FIPS 180-1).
//!
//! `sha1sum` is the paper's exemplar of a *non-parallelizable pure*
//! command (§3.1): its internal state depends on all prior input in a
//! non-trivial way, so PaSh must never split its input. Having a real
//! implementation lets the test suite check that classification
//! end-to-end.

/// Streaming SHA-1 hasher.
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    len_bits: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            len_bits: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Absorbs input bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.len_bits = self.len_bits.wrapping_add((data.len() as u64) * 8);
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.process(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.process(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finalizes and returns the 20-byte digest.
    pub fn finish(mut self) -> [u8; 20] {
        let len_bits = self.len_bits;
        self.update_padding();
        let mut block = self.buf;
        if self.buf_len > 56 {
            for b in &mut block[self.buf_len..] {
                *b = 0;
            }
            self.process(&block.clone());
            block = [0u8; 64];
        } else {
            for b in &mut block[self.buf_len..] {
                *b = 0;
            }
        }
        block[56..].copy_from_slice(&len_bits.to_be_bytes());
        self.process(&block);
        let mut out = [0u8; 20];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    /// Hex digest of the input.
    pub fn hex_digest(data: &[u8]) -> String {
        let mut h = Sha1::new();
        h.update(data);
        to_hex(&h.finish())
    }

    fn update_padding(&mut self) {
        // Append the 0x80 marker byte into the buffer.
        self.buf[self.buf_len] = 0x80;
        self.buf_len += 1;
    }

    fn process(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, wi) in w.iter_mut().take(16).enumerate() {
            *wi = u32::from_be_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// Lowercase hex encoding.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    // Known-answer tests from FIPS 180-1 / RFC 3174.
    #[test]
    fn empty_string() {
        assert_eq!(
            Sha1::hex_digest(b""),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            Sha1::hex_digest(b"abc"),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            Sha1::hex_digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            Sha1::hex_digest(&data),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let oneshot = Sha1::hex_digest(&data);
        let mut h = Sha1::new();
        for chunk in data.chunks(37) {
            h.update(chunk);
        }
        assert_eq!(to_hex(&h.finish()), oneshot);
    }

    #[test]
    fn order_sensitivity() {
        // The N-class property: splitting and hashing parts does not
        // compose into the hash of the whole.
        let whole = Sha1::hex_digest(b"hello world");
        let parts = format!(
            "{}{}",
            Sha1::hex_digest(b"hello "),
            Sha1::hex_digest(b"world")
        );
        assert_ne!(whole, parts[..40]);
    }
}
