//! From-scratch implementations of the POSIX/GNU commands used by the
//! PaSh benchmarks.
//!
//! Every command implements [`Command`] over an abstract I/O context
//! ([`CmdIo`]), so the same implementation runs (i) in-process inside
//! the threaded DFG executor, (ii) under the `pashc` multi-call binary
//! from a real `/bin/sh`, and (iii) inside unit tests against an
//! in-memory filesystem.
//!
//! The commands implement exactly the flags that the PaSh annotation
//! standard library mentions, so annotation fidelity is guaranteed by
//! construction (see `DESIGN.md` §2).
//!
//! # Examples
//!
//! ```
//! use pash_coreutils::{run_command, Registry, fs::MemFs};
//! use std::sync::Arc;
//!
//! let reg = Registry::standard();
//! let fs = Arc::new(MemFs::new());
//! let out = run_command(&reg, fs, &["tr", "a-z", "A-Z"], b"hello\n").unwrap();
//! assert_eq!(out.stdout, b"HELLO\n");
//! ```

pub mod cmd;
pub mod fs;
pub mod lines;
pub mod sha1;
pub mod sortkeys;

use std::collections::HashMap;
use std::io::{self, BufRead, Write};
use std::sync::Arc;

use fs::Fs;

/// Exit status of a command (0 = success, like the shell).
pub type ExitStatus = i32;

/// Exit status conventionally reported for a SIGPIPE death.
pub const SIGPIPE_STATUS: ExitStatus = 141;

/// I/O context handed to a command invocation.
pub struct CmdIo<'a> {
    /// Standard input.
    pub stdin: &'a mut dyn BufRead,
    /// Standard output.
    pub stdout: &'a mut dyn Write,
    /// Standard error.
    pub stderr: &'a mut dyn Write,
    /// Filesystem used to resolve file arguments.
    pub fs: Arc<dyn Fs>,
    /// Command registry (used by `xargs` to run inner commands).
    pub registry: &'a Registry,
}

/// A runnable command.
pub trait Command: Send + Sync {
    /// The command's name as invoked from a script.
    fn name(&self) -> &'static str;

    /// Runs the command.
    ///
    /// `args` excludes the command name. A [`io::ErrorKind::BrokenPipe`]
    /// error is the analogue of dying from SIGPIPE and is handled by
    /// callers.
    fn run(&self, args: &[String], io: &mut CmdIo<'_>) -> io::Result<ExitStatus>;
}

/// A name → command table.
#[derive(Clone)]
pub struct Registry {
    table: Arc<HashMap<&'static str, Arc<dyn Command>>>,
}

impl Registry {
    /// Builds a registry from a list of commands.
    pub fn from_commands(cmds: Vec<Arc<dyn Command>>) -> Self {
        let mut table = HashMap::new();
        for c in cmds {
            table.insert(c.name(), c);
        }
        Registry {
            table: Arc::new(table),
        }
    }

    /// The full standard registry of this crate.
    pub fn standard() -> Self {
        Self::from_commands(cmd::all_commands())
    }

    /// Looks up a command by name.
    pub fn get(&self, name: &str) -> Option<Arc<dyn Command>> {
        self.table.get(name).cloned()
    }

    /// Lists the registered command names, sorted.
    pub fn names(&self) -> Vec<&'static str> {
        let mut v: Vec<&'static str> = self.table.keys().copied().collect();
        v.sort_unstable();
        v
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("commands", &self.table.len())
            .finish()
    }
}

/// Captured output of [`run_command`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Captured {
    /// Bytes written to stdout.
    pub stdout: Vec<u8>,
    /// Bytes written to stderr.
    pub stderr: Vec<u8>,
    /// Exit status.
    pub status: ExitStatus,
}

/// Convenience runner: executes `argv` with `input` on stdin and
/// captures stdout/stderr.
///
/// # Errors
///
/// Returns an error when the command is unknown or when it fails with
/// an I/O error other than `BrokenPipe`.
pub fn run_command(
    registry: &Registry,
    fs: Arc<dyn Fs>,
    argv: &[&str],
    input: &[u8],
) -> io::Result<Captured> {
    let (name, args) = argv
        .split_first()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "empty argv"))?;
    let cmd = registry
        .get(name)
        .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("{name}: not found")))?;
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut stdin = io::BufReader::new(input);
    let mut stdout = Vec::new();
    let mut stderr = Vec::new();
    let status = {
        let mut cio = CmdIo {
            stdin: &mut stdin,
            stdout: &mut stdout,
            stderr: &mut stderr,
            fs,
            registry,
        };
        match cmd.run(&args, &mut cio) {
            Ok(s) => s,
            Err(e) if e.kind() == io::ErrorKind::BrokenPipe => SIGPIPE_STATUS,
            Err(e) => return Err(e),
        }
    };
    Ok(Captured {
        stdout,
        stderr,
        status,
    })
}

/// Runs a registry command as a standalone OS process would: over the
/// given stdin/stdout handles with the host's standard error. This is
/// the real-fd `CmdIo` construction shared by the multi-call binaries
/// (`pashc`, `pash-rt`) — unlike [`run_command`] nothing is captured,
/// so bytes stream straight through the process's descriptors.
pub fn run_standalone(
    registry: &Registry,
    fs: Arc<dyn Fs>,
    name: &str,
    args: &[String],
    stdin: &mut dyn BufRead,
    stdout: &mut dyn Write,
) -> io::Result<ExitStatus> {
    let cmd = registry
        .get(name)
        .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("{name}: not found")))?;
    let stderr = io::stderr();
    let mut err = stderr.lock();
    let mut cio = CmdIo {
        stdin,
        stdout,
        stderr: &mut err,
        fs,
        registry,
    };
    let status = cmd.run(args, &mut cio)?;
    cio.stdout.flush()?;
    Ok(status)
}

/// Opens an input source: `-` means "the rest of stdin".
pub fn open_input(
    fs: &Arc<dyn Fs>,
    path: &str,
    stdin: &mut dyn BufRead,
) -> io::Result<Box<dyn BufRead + Send>> {
    if path == "-" {
        // Drain stdin into a buffer: commands that interleave stdin
        // with files need an owned reader.
        let mut buf = Vec::new();
        stdin.read_to_end(&mut buf)?;
        Ok(Box::new(io::BufReader::new(io::Cursor::new(buf))))
    } else {
        fs.open_buffered(path)
    }
}

/// Writes a usage error to stderr and returns status 2.
pub fn usage_error(io: &mut CmdIo<'_>, name: &str, msg: &str) -> io::Result<ExitStatus> {
    writeln!(io.stderr, "{name}: {msg}")?;
    Ok(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::MemFs;

    #[test]
    fn registry_lookup() {
        let reg = Registry::standard();
        assert!(reg.get("cat").is_some());
        assert!(reg.get("definitely-not-a-command").is_none());
        assert!(reg.names().len() > 20);
    }

    #[test]
    fn run_command_unknown_fails() {
        let reg = Registry::standard();
        let fs = Arc::new(MemFs::new());
        assert!(run_command(&reg, fs, &["nope"], b"").is_err());
    }

    #[test]
    fn run_command_empty_argv_fails() {
        let reg = Registry::standard();
        let fs = Arc::new(MemFs::new());
        assert!(run_command(&reg, fs, &[], b"").is_err());
    }
}
