//! Parser and unparser integration tests, including round-trip
//! properties over generated ASTs.

use pash_parser::ast::{
    AndOrOp, Command, CompoundCommand, Pipeline, RedirOp, Separator, SimpleCommand,
};
use pash_parser::parse;
use pash_parser::unparse::program_to_string;

fn first_pipeline(src: &str) -> Pipeline {
    let prog = parse(src).expect("parse");
    prog.commands[0].items[0].0.first.clone()
}

fn simple(cmd: &Command) -> &SimpleCommand {
    match cmd {
        Command::Simple(sc) => sc,
        other => panic!("expected simple command, got {other:?}"),
    }
}

fn words(sc: &SimpleCommand) -> Vec<String> {
    sc.words
        .iter()
        .map(|w| w.as_static_str().unwrap_or_else(|| format!("{w:?}")))
        .collect()
}

#[test]
fn simple_command_words() {
    let p = first_pipeline("grep -v foo file.txt");
    let sc = simple(&p.commands[0]);
    assert_eq!(words(sc), vec!["grep", "-v", "foo", "file.txt"]);
}

#[test]
fn pipeline_of_three() {
    let p = first_pipeline("cat f | tr a b | sort");
    assert_eq!(p.commands.len(), 3);
    assert_eq!(words(simple(&p.commands[2])), vec!["sort"]);
}

#[test]
fn bang_pipeline() {
    let p = first_pipeline("! grep x f");
    assert!(p.bang);
}

#[test]
fn and_or_chain() {
    let prog = parse("a && b || c").expect("parse");
    let ao = &prog.commands[0].items[0].0;
    assert_eq!(ao.rest.len(), 2);
    assert_eq!(ao.rest[0].0, AndOrOp::AndIf);
    assert_eq!(ao.rest[1].0, AndOrOp::OrIf);
}

#[test]
fn async_separator() {
    let prog = parse("a & b").expect("parse");
    let items = &prog.commands[0].items;
    assert_eq!(items.len(), 2);
    assert_eq!(items[0].1, Separator::Async);
    assert_eq!(items[1].1, Separator::Seq);
}

#[test]
fn semicolon_separator() {
    let prog = parse("a; b; c").expect("parse");
    assert_eq!(prog.commands[0].items.len(), 3);
}

#[test]
fn newline_separates_complete_commands() {
    let prog = parse("a\nb\n").expect("parse");
    assert_eq!(prog.commands.len(), 2);
}

#[test]
fn assignments_prefix() {
    let p = first_pipeline("x=1 y=$x cmd arg");
    let sc = simple(&p.commands[0]);
    assert_eq!(sc.assignments.len(), 2);
    assert_eq!(sc.assignments[0].name, "x");
    assert_eq!(words(sc), vec!["cmd", "arg"]);
}

#[test]
fn assignment_only_command() {
    let p = first_pipeline("base=ftp://example.org/data");
    let sc = simple(&p.commands[0]);
    assert!(sc.words.is_empty());
    assert_eq!(sc.assignments[0].name, "base");
    assert_eq!(
        sc.assignments[0].value.as_static_str().as_deref(),
        Some("ftp://example.org/data")
    );
}

#[test]
fn equals_in_later_word_is_not_assignment() {
    let p = first_pipeline("cmd x=1");
    let sc = simple(&p.commands[0]);
    assert!(sc.assignments.is_empty());
    assert_eq!(words(sc), vec!["cmd", "x=1"]);
}

#[test]
fn redirections_parsed() {
    let p = first_pipeline("sort < in.txt > out.txt 2>> err.log");
    let sc = simple(&p.commands[0]);
    assert_eq!(sc.redirects.len(), 3);
    assert_eq!(sc.redirects[0].op, RedirOp::Read);
    assert_eq!(sc.redirects[1].op, RedirOp::Write);
    assert_eq!(sc.redirects[2].op, RedirOp::Append);
    assert_eq!(sc.redirects[2].fd, Some(2));
}

#[test]
fn redirect_before_words() {
    let p = first_pipeline("> out.txt echo hi");
    let sc = simple(&p.commands[0]);
    assert_eq!(sc.redirects.len(), 1);
    assert_eq!(words(sc), vec!["echo", "hi"]);
}

#[test]
fn subshell() {
    let p = first_pipeline("(a; b)");
    match &p.commands[0] {
        Command::Compound(CompoundCommand::Subshell(body), _) => {
            assert_eq!(body[0].items.len(), 2);
        }
        other => panic!("expected subshell, got {other:?}"),
    }
}

#[test]
fn brace_group_with_redirect() {
    let p = first_pipeline("{ a; b; } > out");
    match &p.commands[0] {
        Command::Compound(CompoundCommand::BraceGroup(_), rs) => {
            assert_eq!(rs.len(), 1);
        }
        other => panic!("expected brace group, got {other:?}"),
    }
}

#[test]
fn if_elif_else() {
    let src = "if a; then b; elif c; then d; else e; fi";
    let p = first_pipeline(src);
    match &p.commands[0] {
        Command::Compound(
            CompoundCommand::If {
                branches,
                else_body,
            },
            _,
        ) => {
            assert_eq!(branches.len(), 2);
            assert!(else_body.is_some());
        }
        other => panic!("expected if, got {other:?}"),
    }
}

#[test]
fn while_loop() {
    let p = first_pipeline("while test -f x; do sleep 1; done");
    assert!(matches!(
        &p.commands[0],
        Command::Compound(CompoundCommand::While { .. }, _)
    ));
}

#[test]
fn until_loop() {
    let p = first_pipeline("until test -f x; do sleep 1; done");
    assert!(matches!(
        &p.commands[0],
        Command::Compound(CompoundCommand::Until { .. }, _)
    ));
}

#[test]
fn for_loop_with_words() {
    let p = first_pipeline("for y in 2015 2016 2017; do echo $y; done");
    match &p.commands[0] {
        Command::Compound(CompoundCommand::For { var, words, body }, _) => {
            assert_eq!(var, "y");
            assert_eq!(words.as_ref().expect("words").len(), 3);
            assert_eq!(body.len(), 1);
        }
        other => panic!("expected for, got {other:?}"),
    }
}

#[test]
fn for_loop_multiline_paper_example() {
    // The shape of the paper's Fig. 1.
    let src = "base=ftp://ftp.ncdc.noaa.gov/pub/data/noaa\nfor y in {2015..2020}; do\n curl $base/$y | grep gz | sort -rn | head -n 1\ndone\n";
    let prog = parse(src).expect("parse");
    assert_eq!(prog.commands.len(), 2);
    match &prog.commands[1].items[0].0.first.commands[0] {
        Command::Compound(CompoundCommand::For { var, body, .. }, _) => {
            assert_eq!(var, "y");
            let inner = &body[0].items[0].0.first;
            assert_eq!(inner.commands.len(), 4);
        }
        other => panic!("expected for, got {other:?}"),
    }
}

#[test]
fn case_statement() {
    let src = "case $x in a|b) echo ab ;; *) echo other ;; esac";
    let p = first_pipeline(src);
    match &p.commands[0] {
        Command::Compound(CompoundCommand::Case { arms, .. }, _) => {
            assert_eq!(arms.len(), 2);
            assert_eq!(arms[0].patterns.len(), 2);
        }
        other => panic!("expected case, got {other:?}"),
    }
}

#[test]
fn function_definition() {
    let p = first_pipeline("f() { echo hi; }");
    match &p.commands[0] {
        Command::FunctionDef { name, body } => {
            assert_eq!(name, "f");
            assert!(matches!(
                **body,
                Command::Compound(CompoundCommand::BraceGroup(_), _)
            ));
        }
        other => panic!("expected function, got {other:?}"),
    }
}

#[test]
fn heredoc_body_attached() {
    let src = "cat <<EOF\nhello\nworld\nEOF\n";
    let p = first_pipeline(src);
    let sc = simple(&p.commands[0]);
    assert_eq!(sc.redirects.len(), 1);
    assert_eq!(sc.redirects[0].heredoc.as_deref(), Some("hello\nworld\n"));
}

#[test]
fn two_heredocs_in_order() {
    let src = "cat <<A <<B\nbody-a\nA\nbody-b\nB\n";
    let p = first_pipeline(src);
    let sc = simple(&p.commands[0]);
    assert_eq!(sc.redirects[0].heredoc.as_deref(), Some("body-a\n"));
    assert_eq!(sc.redirects[1].heredoc.as_deref(), Some("body-b\n"));
}

#[test]
fn pipe_continues_after_newline() {
    let prog = parse("cat f |\n grep x").expect("parse");
    assert_eq!(prog.commands[0].items[0].0.first.commands.len(), 2);
}

#[test]
fn empty_program() {
    assert!(parse("").expect("parse").is_empty());
    assert!(parse("\n\n# just a comment\n").expect("parse").is_empty());
}

#[test]
fn error_on_lone_operator() {
    assert!(parse("| cat").is_err());
    assert!(parse("cat |").is_err());
}

#[test]
fn error_on_unterminated_if() {
    assert!(parse("if a; then b;").is_err());
}

#[test]
fn fig1_weather_script_parses() {
    let src = r#"base="ftp://ftp.ncdc.noaa.gov/pub/data/noaa";
for y in {2015..2020}; do
 curl $base/$y | grep gz | tr -s " " | cut -d " " -f9 |
 sed "s;^;$base/$y/;" | xargs -n 1 curl -s | gunzip |
 cut -c 89-92 | grep -iv 999 | sort -rn | head -n 1 |
 sed "s/^/Maximum temperature for $y is: /"
done"#;
    let prog = parse(src).expect("parse");
    assert_eq!(prog.commands.len(), 2);
}

// --- Round-trip tests -------------------------------------------------

fn roundtrip(src: &str) {
    let p1 = parse(src).unwrap_or_else(|e| panic!("parse `{src}`: {e}"));
    let printed = program_to_string(&p1);
    let p2 = parse(&printed)
        .unwrap_or_else(|e| panic!("reparse failed for `{printed}` (from `{src}`): {e}"));
    assert_eq!(
        p1, p2,
        "round-trip mismatch:\n  src: {src}\n  printed: {printed}"
    );
}

#[test]
fn roundtrip_corpus() {
    for src in [
        "cat f | grep x | sort > out",
        "a && b || c; d & e",
        "x=1 cmd 'a b' \"c $x d\"",
        "for y in 1 2 3; do echo $y; done",
        "if a; then b; else c; fi",
        "while a; do b; done",
        "case $v in x) a ;; y|z) b ;; esac",
        "( a; b ) | c",
        "{ a; b; } > f",
        "f() { echo hi; }",
        "grep 'pat with spaces' f1 f2 2> err",
        "echo $((1+2)) $(ls | wc -l)",
        "cmd --flag=value sub/dir/file.txt",
        "sort -k 2,2 -t '\t' f",
        "echo \"quoted \\\" dquote\" 'single '\\'' quote'",
        "cmd <in >out 2>&1",
        "! true",
        "sed \"s;^;$base/$y/;\" f",
    ] {
        roundtrip(src);
    }
}

#[test]
fn unparse_is_idempotent() {
    for src in [
        "cat f | grep x | sort > out",
        "for y in 1 2 3; do echo $y; done & wait",
        "if a; then b; fi",
    ] {
        let p1 = parse(src).expect("parse");
        let s1 = program_to_string(&p1);
        let p2 = parse(&s1).expect("reparse");
        let s2 = program_to_string(&p2);
        assert_eq!(s1, s2);
    }
}

// --- Property tests ---------------------------------------------------

mod prop {
    use super::*;
    use proptest::prelude::*;

    /// Generates random "safe" words (no metacharacters in literals).
    fn arb_word() -> impl Strategy<Value = String> {
        proptest::string::string_regex("[a-zA-Z0-9_./-]{1,8}").expect("regex strategy")
    }

    fn arb_simple_command() -> impl Strategy<Value = String> {
        (arb_word(), proptest::collection::vec(arb_word(), 0..4)).prop_map(|(cmd, args)| {
            let mut s = cmd;
            for a in args {
                s.push(' ');
                s.push_str(&a);
            }
            s
        })
    }

    fn arb_pipeline() -> impl Strategy<Value = String> {
        proptest::collection::vec(arb_simple_command(), 1..4).prop_map(|cs| cs.join(" | "))
    }

    fn arb_script() -> impl Strategy<Value = String> {
        proptest::collection::vec(
            (arb_pipeline(), prop_oneof!["; ", " && ", " || ", " & "]),
            1..4,
        )
        .prop_map(|items| {
            let mut s = String::new();
            for (i, (p, sep)) in items.iter().enumerate() {
                s.push_str(p);
                if i + 1 < items.len() {
                    s.push_str(sep);
                }
            }
            s
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn parse_unparse_roundtrip(src in arb_script()) {
            let p1 = parse(&src).expect("generated scripts parse");
            let printed = program_to_string(&p1);
            let p2 = parse(&printed).expect("printed scripts parse");
            prop_assert_eq!(p1, p2);
        }

        #[test]
        fn single_quoting_roundtrips(s in "[ -~]{0,12}") {
            // Any printable string can be single-quoted and survives.
            let src = format!("echo '{}'", s.replace('\'', ""));
            let p1 = parse(&src).expect("parse");
            let printed = program_to_string(&p1);
            let p2 = parse(&printed).expect("reparse");
            prop_assert_eq!(p1, p2);
        }

        #[test]
        fn parser_never_panics(src in "[ -~\\n]{0,64}") {
            let _ = parse(&src);
        }
    }
}
