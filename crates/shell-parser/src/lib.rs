//! A POSIX shell front-end: lexer, parser, AST, static expander, and
//! unparser.
//!
//! This crate is the "libdash" substrate of the PaSh reproduction. It
//! parses POSIX shell scripts into a quoting-preserving AST
//! ([`ast::Program`]), decides what is statically known
//! ([`expand::StaticEnv`]), and prints ASTs back to scripts
//! ([`unparse`]) — the round trip PaSh's compiler is built on.
//!
//! # Examples
//!
//! ```
//! use pash_parser::{parse, unparse::program_to_string};
//!
//! let prog = parse("cat in.txt | grep -c foo > out.txt").unwrap();
//! let printed = program_to_string(&prog);
//! let reparsed = parse(&printed).unwrap();
//! assert_eq!(prog, reparsed);
//! ```

pub mod ast;
pub mod expand;
pub mod lexer;
pub mod parse;
pub mod unparse;
pub mod word;

pub use ast::Program;
pub use parse::parse;
pub use word::{Word, WordPart};

/// A lexing or parsing error with a byte offset into the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    offset: usize,
}

impl Error {
    pub(crate) fn new(msg: impl Into<String>, offset: usize) -> Self {
        Self {
            msg: msg.into(),
            offset,
        }
    }

    /// Byte offset in the source where the error was detected.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shell parse error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for Error {}
