//! Static word expansion.
//!
//! PaSh's front-end is conservative: a program fragment is only
//! parallelized when the compiler can determine the *runtime* value of
//! the words involved. This module implements that decision procedure:
//! given a static environment (variables whose values are known at
//! compile time), a word either expands to concrete fields or is
//! reported as [`WordExpansion::Dynamic`], in which case the region
//! containing it is left untouched.
//!
//! As an extension (used by the paper's running example,
//! `{2015..2020}`), fully-literal words undergo bash-style brace
//! expansion.

use std::collections::HashMap;

use crate::word::{Word, WordPart};

/// Variables with compile-time-known values.
#[derive(Debug, Clone, Default)]
pub struct StaticEnv {
    map: HashMap<String, String>,
}

impl StaticEnv {
    /// Creates an empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds a variable.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.map.insert(name.into(), value.into());
    }

    /// Looks up a variable.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.map.get(name).map(|s| s.as_str())
    }

    /// Removes a variable (e.g. after a dynamic reassignment).
    pub fn unset(&mut self, name: &str) {
        self.map.remove(name);
    }

    /// All bindings in name order (deterministic — cache keys and
    /// plan dumps depend on it).
    pub fn sorted_vars(&self) -> Vec<(&str, &str)> {
        let mut vars: Vec<(&str, &str)> = self
            .map
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        vars.sort_unstable();
        vars
    }
}

impl<K: Into<String>, V: Into<String>> FromIterator<(K, V)> for StaticEnv {
    fn from_iter<T: IntoIterator<Item = (K, V)>>(iter: T) -> Self {
        let mut env = StaticEnv::new();
        for (k, v) in iter {
            env.set(k, v);
        }
        env
    }
}

/// Result of statically expanding one word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WordExpansion {
    /// The word expands to these fields (after field splitting and
    /// brace expansion).
    Fields(Vec<String>),
    /// The word's value cannot be determined at compile time.
    Dynamic,
}

/// Expands a word with field splitting (as in command arguments).
pub fn expand_word(w: &Word, env: &StaticEnv) -> WordExpansion {
    // Brace expansion first, on fully-literal words only (quoted braces
    // must not expand).
    if let [WordPart::Literal(s)] = w.parts.as_slice() {
        if s.contains('{') {
            let expanded = brace_expand(s);
            if expanded.len() > 1 {
                return WordExpansion::Fields(expanded);
            }
        }
    }
    // Accumulate fields: unquoted parameter values are field-split.
    let mut fields: Vec<String> = Vec::new();
    let mut current = String::new();
    let mut started = false;
    for p in &w.parts {
        match p {
            WordPart::Literal(s) | WordPart::SingleQuoted(s) => {
                current.push_str(s);
                started = true;
            }
            WordPart::DoubleQuoted(inner) => {
                for ip in inner {
                    match ip {
                        WordPart::Literal(s) | WordPart::SingleQuoted(s) => current.push_str(s),
                        WordPart::Param(pe) if pe.op.is_none() => match env.get(&pe.name) {
                            Some(v) => current.push_str(v),
                            None => return WordExpansion::Dynamic,
                        },
                        _ => return WordExpansion::Dynamic,
                    }
                }
                started = true;
            }
            WordPart::Param(pe) if pe.op.is_none() => match env.get(&pe.name) {
                Some(v) => {
                    // Field splitting on whitespace.
                    let mut it = v.split([' ', '\t', '\n']).filter(|s| !s.is_empty());
                    match it.next() {
                        None => {
                            // Empty value: field may vanish entirely.
                        }
                        Some(first) => {
                            current.push_str(first);
                            started = true;
                            for part in it {
                                fields.push(std::mem::take(&mut current));
                                current.push_str(part);
                            }
                        }
                    }
                }
                None => return WordExpansion::Dynamic,
            },
            WordPart::Param(_) | WordPart::CommandSubst(_) | WordPart::Arith(_) => {
                return WordExpansion::Dynamic
            }
        }
    }
    if started || !current.is_empty() {
        fields.push(current);
    }
    WordExpansion::Fields(fields)
}

/// Expands a word without field splitting (assignment values,
/// redirection targets).
pub fn expand_word_single(w: &Word, env: &StaticEnv) -> Option<String> {
    let mut out = String::new();
    for p in &w.parts {
        match p {
            WordPart::Literal(s) | WordPart::SingleQuoted(s) => out.push_str(s),
            WordPart::DoubleQuoted(inner) => {
                for ip in inner {
                    match ip {
                        WordPart::Literal(s) | WordPart::SingleQuoted(s) => out.push_str(s),
                        WordPart::Param(pe) if pe.op.is_none() => out.push_str(env.get(&pe.name)?),
                        _ => return None,
                    }
                }
            }
            WordPart::Param(pe) if pe.op.is_none() => out.push_str(env.get(&pe.name)?),
            _ => return None,
        }
    }
    Some(out)
}

/// Bash-style brace expansion over a literal string.
///
/// Supports comma lists `{a,b,c}` and integer ranges `{1..5}`, applied
/// left-to-right and recursively. Returns the input unchanged (as a
/// single field) when no expansion applies.
pub fn brace_expand(s: &str) -> Vec<String> {
    // Find the first balanced `{…}` containing `,` or `..`.
    let bytes = s.as_bytes();
    let mut open = None;
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'{' => {
                if depth == 0 {
                    open = Some(i);
                }
                depth += 1;
            }
            b'}' => {
                if depth > 0 {
                    depth -= 1;
                    if depth == 0 {
                        let start = open.expect("matched open");
                        let inner = &s[start + 1..i];
                        if let Some(alternatives) = brace_alternatives(inner) {
                            let prefix = &s[..start];
                            let suffix = &s[i + 1..];
                            let mut out = Vec::new();
                            for alt in alternatives {
                                let combined = format!("{prefix}{alt}{suffix}");
                                out.extend(brace_expand(&combined));
                            }
                            return out;
                        }
                        open = None;
                    }
                }
            }
            _ => {}
        }
    }
    vec![s.to_string()]
}

/// Splits brace-interior into alternatives, or `None` if not expandable.
fn brace_alternatives(inner: &str) -> Option<Vec<String>> {
    // Integer range `m..n`.
    if let Some((a, b)) = inner.split_once("..") {
        if let (Ok(m), Ok(n)) = (a.parse::<i64>(), b.parse::<i64>()) {
            let width = if a.starts_with('0') && a.len() > 1 {
                a.len()
            } else {
                0
            };
            let mut out = Vec::new();
            let step: i64 = if m <= n { 1 } else { -1 };
            let mut v = m;
            loop {
                out.push(if width > 0 {
                    format!("{v:0width$}")
                } else {
                    v.to_string()
                });
                if v == n {
                    break;
                }
                v += step;
            }
            return Some(out);
        }
        return None;
    }
    // Comma list at depth 0.
    if !inner.contains(',') {
        return None;
    }
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for c in inner.chars() {
        match c {
            '{' => {
                depth += 1;
                cur.push(c);
            }
            '}' => {
                depth = depth.saturating_sub(1);
                cur.push(c);
            }
            ',' if depth == 0 => out.push(std::mem::take(&mut cur)),
            _ => cur.push(c),
        }
    }
    out.push(cur);
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::{ParamExp, Word, WordPart};

    fn env() -> StaticEnv {
        [("x", "hello"), ("base", "/data"), ("multi", "a b  c")]
            .into_iter()
            .collect()
    }

    #[test]
    fn literal_word() {
        let w = Word::literal("abc");
        assert_eq!(
            expand_word(&w, &env()),
            WordExpansion::Fields(vec!["abc".into()])
        );
    }

    #[test]
    fn known_param_substitutes() {
        let w = Word::param("x");
        assert_eq!(
            expand_word(&w, &env()),
            WordExpansion::Fields(vec!["hello".into()])
        );
    }

    #[test]
    fn unknown_param_is_dynamic() {
        let w = Word::param("nope");
        assert_eq!(expand_word(&w, &env()), WordExpansion::Dynamic);
    }

    #[test]
    fn unquoted_param_field_splits() {
        let w = Word::param("multi");
        assert_eq!(
            expand_word(&w, &env()),
            WordExpansion::Fields(vec!["a".into(), "b".into(), "c".into()])
        );
    }

    #[test]
    fn quoted_param_does_not_split() {
        let w = Word {
            parts: vec![WordPart::DoubleQuoted(vec![WordPart::Param(ParamExp {
                name: "multi".into(),
                op: None,
            })])],
        };
        assert_eq!(
            expand_word(&w, &env()),
            WordExpansion::Fields(vec!["a b  c".into()])
        );
    }

    #[test]
    fn concatenation_of_parts() {
        let w = Word {
            parts: vec![
                WordPart::Param(ParamExp {
                    name: "base".into(),
                    op: None,
                }),
                WordPart::Literal("/2015".into()),
            ],
        };
        assert_eq!(
            expand_word(&w, &env()),
            WordExpansion::Fields(vec!["/data/2015".into()])
        );
    }

    #[test]
    fn command_subst_is_dynamic() {
        let w = Word {
            parts: vec![WordPart::CommandSubst("ls".into())],
        };
        assert_eq!(expand_word(&w, &env()), WordExpansion::Dynamic);
    }

    #[test]
    fn param_with_op_is_dynamic() {
        let w = Word {
            parts: vec![WordPart::Param(ParamExp {
                name: "x".into(),
                op: Some(":-y".into()),
            })],
        };
        assert_eq!(expand_word(&w, &env()), WordExpansion::Dynamic);
    }

    #[test]
    fn brace_range() {
        assert_eq!(
            brace_expand("{2015..2018}"),
            vec!["2015", "2016", "2017", "2018"]
        );
        assert_eq!(brace_expand("{3..1}"), vec!["3", "2", "1"]);
    }

    #[test]
    fn brace_list_with_affixes() {
        assert_eq!(brace_expand("f{a,b}.txt"), vec!["fa.txt", "fb.txt"]);
    }

    #[test]
    fn brace_nested() {
        assert_eq!(brace_expand("{a,b{1,2}}"), vec!["a", "b1", "b2"]);
    }

    #[test]
    fn brace_zero_padded() {
        assert_eq!(brace_expand("{08..10}"), vec!["08", "09", "10"]);
    }

    #[test]
    fn brace_no_expansion() {
        assert_eq!(brace_expand("{abc}"), vec!["{abc}"]);
        assert_eq!(brace_expand("plain"), vec!["plain"]);
    }

    #[test]
    fn brace_in_word_expansion() {
        let w = Word::literal("{1..3}");
        assert_eq!(
            expand_word(&w, &StaticEnv::new()),
            WordExpansion::Fields(vec!["1".into(), "2".into(), "3".into()])
        );
    }

    #[test]
    fn expand_single_no_split() {
        let w = Word::param("multi");
        assert_eq!(expand_word_single(&w, &env()).as_deref(), Some("a b  c"));
    }

    #[test]
    fn empty_unquoted_param_vanishes() {
        let mut e = StaticEnv::new();
        e.set("empty", "");
        let w = Word::param("empty");
        assert_eq!(expand_word(&w, &e), WordExpansion::Fields(vec![]));
    }
}
