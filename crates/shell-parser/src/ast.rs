//! Abstract syntax tree for POSIX shell programs.
//!
//! The grammar follows POSIX.1-2017 §2.10 ("Shell Grammar"), with the
//! shapes PaSh's front-end needs: pipelines, and-or lists, `;`/`&`
//! separators, redirections, and the compound commands. Words retain
//! their internal quoting structure (see [`crate::word`]) so that the
//! unparser can reproduce a faithful script and the expander can decide
//! what is statically known.

use crate::word::Word;

/// A whole shell program: a sequence of complete commands.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Top-level commands in source order.
    pub commands: Vec<CompleteCommand>,
}

/// One complete command: an and-or list with `;`/`&` separators.
///
/// `a && b; c & d` is one complete command with three items:
/// `(a && b, Seq)`, `(c, Async)`, `(d, Seq)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompleteCommand {
    /// The and-or chains and the separator *after* each.
    pub items: Vec<(AndOr, Separator)>,
}

/// Separator after an and-or chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Separator {
    /// `;` or newline: sequential composition (a barrier for PaSh).
    Seq,
    /// `&`: asynchronous composition (task parallelism).
    Async,
}

/// A chain of pipelines joined by `&&` / `||`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AndOr {
    /// First pipeline in the chain.
    pub first: Pipeline,
    /// Remaining pipelines with the operator that precedes each.
    pub rest: Vec<(AndOrOp, Pipeline)>,
}

/// Logical connector between pipelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AndOrOp {
    /// `&&` — run next only on success (a barrier for PaSh).
    AndIf,
    /// `||` — run next only on failure (a barrier for PaSh).
    OrIf,
}

/// A pipeline: one or more commands joined by `|`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pipeline {
    /// Leading `!` (status negation).
    pub bang: bool,
    /// The piped commands, in order.
    pub commands: Vec<Command>,
}

/// Any command that can appear in a pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// A simple command: assignments, words, redirections.
    Simple(SimpleCommand),
    /// A compound command with optional redirections applied to it.
    Compound(CompoundCommand, Vec<Redirect>),
    /// `name() compound-command` function definition.
    FunctionDef {
        /// Function name.
        name: String,
        /// Function body (with its redirections).
        body: Box<Command>,
    },
}

/// A simple command.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SimpleCommand {
    /// Leading `NAME=value` assignment words.
    pub assignments: Vec<Assignment>,
    /// Command name and arguments (possibly empty for pure assignments).
    pub words: Vec<Word>,
    /// Redirections, in source order.
    pub redirects: Vec<Redirect>,
}

/// A variable assignment `name=value`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// Variable name.
    pub name: String,
    /// Assigned word (may be empty).
    pub value: Word,
}

/// Compound commands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompoundCommand {
    /// `{ list; }`
    BraceGroup(Vec<CompleteCommand>),
    /// `( list )` — runs in a subshell.
    Subshell(Vec<CompleteCommand>),
    /// `for name [in words]; do list; done`
    For {
        /// Loop variable name.
        var: String,
        /// Iteration words; `None` means `in "$@"` implicitly.
        words: Option<Vec<Word>>,
        /// Loop body.
        body: Vec<CompleteCommand>,
    },
    /// `case word in pattern) list ;; … esac`
    Case {
        /// Subject word.
        word: Word,
        /// The arms, in order.
        arms: Vec<CaseArm>,
    },
    /// `if list; then list; [elif list; then list;]… [else list;] fi`
    If {
        /// `(condition, then-body)` for `if` and each `elif`.
        branches: Vec<(Vec<CompleteCommand>, Vec<CompleteCommand>)>,
        /// Optional `else` body.
        else_body: Option<Vec<CompleteCommand>>,
    },
    /// `while list; do list; done`
    While {
        /// Loop condition.
        cond: Vec<CompleteCommand>,
        /// Loop body.
        body: Vec<CompleteCommand>,
    },
    /// `until list; do list; done`
    Until {
        /// Loop condition.
        cond: Vec<CompleteCommand>,
        /// Loop body.
        body: Vec<CompleteCommand>,
    },
}

/// One `pattern[|pattern]…) list ;;` arm of a `case`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseArm {
    /// Alternative patterns.
    pub patterns: Vec<Word>,
    /// Arm body.
    pub body: Vec<CompleteCommand>,
}

/// A redirection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Redirect {
    /// Explicit file descriptor (`2>`), if any.
    pub fd: Option<u32>,
    /// Redirection operator.
    pub op: RedirOp,
    /// Target word (file name, fd number, or here-doc delimiter).
    pub target: Word,
    /// Body of a here-document, if `op` is a here-doc operator.
    pub heredoc: Option<String>,
}

/// Redirection operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedirOp {
    /// `<`
    Read,
    /// `>`
    Write,
    /// `>>`
    Append,
    /// `<<`
    Heredoc,
    /// `<<-`
    HeredocDash,
    /// `<&`
    DupRead,
    /// `>&`
    DupWrite,
    /// `<>`
    ReadWrite,
    /// `>|`
    Clobber,
}

impl Program {
    /// Returns true when the program contains no commands.
    pub fn is_empty(&self) -> bool {
        self.commands.is_empty()
    }
}

impl Pipeline {
    /// Builds a single-command pipeline.
    pub fn single(cmd: Command) -> Self {
        Pipeline {
            bang: false,
            commands: vec![cmd],
        }
    }
}

impl AndOr {
    /// Builds a chain containing exactly one pipeline.
    pub fn single(p: Pipeline) -> Self {
        AndOr {
            first: p,
            rest: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::Word;

    #[test]
    fn builders_compose() {
        let cmd = Command::Simple(SimpleCommand {
            words: vec![Word::literal("ls")],
            ..Default::default()
        });
        let p = Pipeline::single(cmd);
        assert!(!p.bang);
        assert_eq!(p.commands.len(), 1);
        let ao = AndOr::single(p);
        assert!(ao.rest.is_empty());
    }

    #[test]
    fn program_default_is_empty() {
        assert!(Program::default().is_empty());
    }
}
