//! AST → shell-script text.
//!
//! The unparser is the back half of PaSh's "script → DFG → script"
//! round trip: non-parallelizable subtrees are printed back verbatim
//! (modulo formatting), and compiled regions are spliced in as new
//! commands. The output must reparse to an equivalent AST — this is
//! property-tested in the crate tests.

use crate::ast::{
    AndOr, AndOrOp, Command, CompleteCommand, CompoundCommand, Pipeline, Program, RedirOp,
    Redirect, Separator,
};
use crate::word::{Word, WordPart};

/// Renders a whole program, one complete command per line.
pub fn program_to_string(p: &Program) -> String {
    let mut out = String::new();
    for cc in &p.commands {
        out.push_str(&complete_command_to_string(cc));
        out.push('\n');
    }
    out
}

/// Renders one complete command.
pub fn complete_command_to_string(cc: &CompleteCommand) -> String {
    let mut out = String::new();
    for (i, (ao, sep)) in cc.items.iter().enumerate() {
        out.push_str(&and_or_to_string(ao));
        match sep {
            Separator::Async => out.push_str(" &"),
            Separator::Seq => {
                if i + 1 < cc.items.len() {
                    out.push(';');
                }
            }
        }
        if i + 1 < cc.items.len() {
            out.push(' ');
        }
    }
    out
}

fn and_or_to_string(ao: &AndOr) -> String {
    let mut out = pipeline_to_string(&ao.first);
    for (op, p) in &ao.rest {
        out.push_str(match op {
            AndOrOp::AndIf => " && ",
            AndOrOp::OrIf => " || ",
        });
        out.push_str(&pipeline_to_string(p));
    }
    out
}

/// Renders a pipeline.
pub fn pipeline_to_string(p: &Pipeline) -> String {
    let mut out = String::new();
    if p.bang {
        out.push_str("! ");
    }
    let parts: Vec<String> = p.commands.iter().map(command_to_string).collect();
    out.push_str(&parts.join(" | "));
    out
}

/// Renders one command.
pub fn command_to_string(c: &Command) -> String {
    match c {
        Command::Simple(sc) => {
            let mut parts: Vec<String> = Vec::new();
            for a in &sc.assignments {
                parts.push(format!("{}={}", a.name, word_to_string(&a.value)));
            }
            for w in &sc.words {
                parts.push(word_to_string(w));
            }
            for r in &sc.redirects {
                parts.push(redirect_to_string(r));
            }
            parts.join(" ")
        }
        Command::FunctionDef { name, body } => {
            format!("{name}() {}", command_to_string(body))
        }
        Command::Compound(cc, redirects) => {
            let mut out = compound_to_string(cc);
            for r in redirects {
                out.push(' ');
                out.push_str(&redirect_to_string(r));
            }
            out
        }
    }
}

fn list_to_string(body: &[CompleteCommand]) -> String {
    body.iter()
        .map(complete_command_to_string)
        .collect::<Vec<_>>()
        .join("; ")
}

fn compound_to_string(cc: &CompoundCommand) -> String {
    match cc {
        CompoundCommand::BraceGroup(body) => format!("{{ {}; }}", list_to_string(body)),
        CompoundCommand::Subshell(body) => format!("( {} )", list_to_string(body)),
        CompoundCommand::For { var, words, body } => {
            let mut out = format!("for {var}");
            if let Some(ws) = words {
                out.push_str(" in");
                for w in ws {
                    out.push(' ');
                    out.push_str(&word_to_string(w));
                }
            }
            out.push_str("; do ");
            out.push_str(&list_to_string(body));
            out.push_str("; done");
            out
        }
        CompoundCommand::Case { word, arms } => {
            let mut out = format!("case {} in", word_to_string(word));
            for arm in arms {
                out.push(' ');
                let pats: Vec<String> = arm.patterns.iter().map(word_to_string).collect();
                out.push_str(&pats.join("|"));
                out.push_str(") ");
                out.push_str(&list_to_string(&arm.body));
                out.push_str(" ;;");
            }
            out.push_str(" esac");
            out
        }
        CompoundCommand::If {
            branches,
            else_body,
        } => {
            let mut out = String::new();
            for (i, (cond, body)) in branches.iter().enumerate() {
                out.push_str(if i == 0 { "if " } else { " elif " });
                out.push_str(&list_to_string(cond));
                out.push_str("; then ");
                out.push_str(&list_to_string(body));
                out.push(';');
            }
            if let Some(eb) = else_body {
                out.push_str(" else ");
                out.push_str(&list_to_string(eb));
                out.push(';');
            }
            out.push_str(" fi");
            out
        }
        CompoundCommand::While { cond, body } => format!(
            "while {}; do {}; done",
            list_to_string(cond),
            list_to_string(body)
        ),
        CompoundCommand::Until { cond, body } => format!(
            "until {}; do {}; done",
            list_to_string(cond),
            list_to_string(body)
        ),
    }
}

fn redirect_to_string(r: &Redirect) -> String {
    let mut out = String::new();
    if let Some(fd) = r.fd {
        out.push_str(&fd.to_string());
    }
    out.push_str(match r.op {
        RedirOp::Read => "<",
        RedirOp::Write => ">",
        RedirOp::Append => ">>",
        RedirOp::Heredoc => "<<",
        RedirOp::HeredocDash => "<<-",
        RedirOp::DupRead => "<&",
        RedirOp::DupWrite => ">&",
        RedirOp::ReadWrite => "<>",
        RedirOp::Clobber => ">|",
    });
    out.push_str(&word_to_string(&r.target));
    // NOTE: here-doc bodies are re-emitted by program-level printers
    // that own line structure; inline rendering keeps the operator and
    // delimiter only, which is sufficient for the PaSh back-end (it
    // never moves here-docs into compiled regions).
    out
}

/// Renders a word with quoting that reproduces its parts.
pub fn word_to_string(w: &Word) -> String {
    let mut out = String::new();
    for p in &w.parts {
        part_to_string(p, &mut out, false);
    }
    if out.is_empty() {
        out.push_str("''");
    }
    out
}

fn part_to_string(p: &WordPart, out: &mut String, inside_double: bool) {
    match p {
        WordPart::Literal(s) => {
            if inside_double {
                for c in s.chars() {
                    if matches!(c, '$' | '`' | '"' | '\\') {
                        out.push('\\');
                    }
                    out.push(c);
                }
            } else {
                out.push_str(&escape_unquoted(s));
            }
        }
        WordPart::SingleQuoted(s) => {
            out.push('\'');
            // A single quote cannot appear inside single quotes; close,
            // escape, reopen.
            for c in s.chars() {
                if c == '\'' {
                    out.push_str("'\\''");
                } else {
                    out.push(c);
                }
            }
            out.push('\'');
        }
        WordPart::DoubleQuoted(inner) => {
            out.push('"');
            for ip in inner {
                part_to_string(ip, out, true);
            }
            out.push('"');
        }
        WordPart::Param(pe) => {
            match &pe.op {
                Some(op) if op == "#" => {
                    out.push_str("${#");
                    out.push_str(&pe.name);
                    out.push('}');
                }
                Some(op) => {
                    out.push_str("${");
                    out.push_str(&pe.name);
                    out.push_str(op);
                    out.push('}');
                }
                None => {
                    // Brace unconditionally: `${x}` is always safe.
                    out.push_str("${");
                    out.push_str(&pe.name);
                    out.push('}');
                }
            }
        }
        WordPart::CommandSubst(s) => {
            out.push_str("$(");
            out.push_str(s);
            out.push(')');
        }
        WordPart::Arith(s) => {
            out.push_str("$((");
            out.push_str(s);
            out.push_str("))");
        }
    }
}

/// Backslash-escapes shell metacharacters in unquoted text.
fn escape_unquoted(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        if matches!(
            c,
            '|' | '&' | ';' | '<' | '>' | '(' | ')' | '$' | '`' | '\\' | '"' | '\'' | ' ' | '\t'
        ) {
            out.push('\\');
            out.push(c);
        } else if c == '\n' {
            // A literal newline inside a word must be quoted.
            out.push_str("'\n'");
        } else {
            out.push(c);
        }
    }
    out
}
