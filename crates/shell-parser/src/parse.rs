//! Recursive-descent parser for the POSIX shell grammar (§2.10).

use crate::ast::{
    AndOr, AndOrOp, Assignment, CaseArm, Command, CompleteCommand, CompoundCommand, Pipeline,
    Program, RedirOp, Redirect, Separator, SimpleCommand,
};
use crate::lexer::{Lexer, Op, Token};
use crate::word::{Word, WordPart};
use crate::Error;

/// Parses a shell script into a [`Program`].
///
/// # Examples
///
/// ```
/// let prog = pash_parser::parse("cat f | grep x > out").unwrap();
/// assert_eq!(prog.commands.len(), 1);
/// ```
pub fn parse(src: &str) -> Result<Program, Error> {
    let mut p = Parser::new(src);
    let prog = p.parse_program()?;
    Ok(prog)
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    lookahead: Option<Token>,
    /// Here-doc bodies drained from the lexer, in source order.
    bodies: Vec<String>,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            lexer: Lexer::new(src),
            lookahead: None,
            bodies: Vec::new(),
        }
    }

    fn peek(&mut self) -> Result<&Token, Error> {
        if self.lookahead.is_none() {
            self.lookahead = Some(self.lexer.next_token()?);
            self.drain_bodies();
        }
        Ok(self.lookahead.as_ref().expect("just filled"))
    }

    fn next(&mut self) -> Result<Token, Error> {
        let t = match self.lookahead.take() {
            Some(t) => t,
            None => {
                let t = self.lexer.next_token()?;
                self.drain_bodies();
                t
            }
        };
        Ok(t)
    }

    fn drain_bodies(&mut self) {
        while let Some(b) = self.lexer.take_heredoc_body() {
            self.bodies.push(b);
        }
    }

    /// True when the lookahead is the reserved word `w` (unquoted).
    fn at_reserved(&mut self, w: &str) -> bool {
        matches!(self.peek(), Ok(Token::Word(word)) if is_literal(word, w))
    }

    fn eat_reserved(&mut self, w: &str) -> Result<bool, Error> {
        if self.at_reserved(w) {
            self.next()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn expect_reserved(&mut self, w: &str) -> Result<(), Error> {
        if self.eat_reserved(w)? {
            Ok(())
        } else {
            Err(Error::new(
                format!("expected `{w}`, found {:?}", self.peek()?),
                self.lexer.offset(),
            ))
        }
    }

    fn eat_op(&mut self, op: Op) -> Result<bool, Error> {
        if matches!(self.peek()?, Token::Op(o) if *o == op) {
            self.next()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn expect_op(&mut self, op: Op) -> Result<(), Error> {
        if self.eat_op(op)? {
            Ok(())
        } else {
            Err(Error::new(
                format!("expected `{op:?}`, found {:?}", self.peek()?),
                self.lexer.offset(),
            ))
        }
    }

    /// Skips zero or more newlines.
    fn linebreak(&mut self) -> Result<(), Error> {
        while matches!(self.peek()?, Token::Newline) {
            self.next()?;
        }
        Ok(())
    }

    fn parse_program(&mut self) -> Result<Program, Error> {
        let mut prog = Program::default();
        self.linebreak()?;
        while !matches!(self.peek()?, Token::Eof) {
            let cc = self.parse_complete_command()?;
            prog.commands.push(cc);
            self.linebreak()?;
        }
        // Fill here-doc bodies in global source order.
        let bodies = std::mem::take(&mut self.bodies);
        let mut queue = bodies.into_iter();
        for cc in &mut prog.commands {
            fill_cc(cc, &mut queue)?;
        }
        Ok(prog)
    }

    /// Parses one complete command (a `;`/`&`-separated list).
    fn parse_complete_command(&mut self) -> Result<CompleteCommand, Error> {
        let mut items = Vec::new();
        loop {
            let ao = self.parse_and_or()?;
            let sep = match self.peek()? {
                Token::Op(Op::Amp) => {
                    self.next()?;
                    Separator::Async
                }
                Token::Op(Op::Semi) => {
                    self.next()?;
                    Separator::Seq
                }
                _ => Separator::Seq,
            };
            items.push((ao, sep));
            match self.peek()? {
                Token::Newline | Token::Eof => break,
                Token::Op(Op::RParen) | Token::Op(Op::DSemi) => break,
                Token::Word(w)
                    if ["then", "do", "done", "fi", "else", "elif", "esac", "}"]
                        .iter()
                        .any(|k| is_literal(w, k)) =>
                {
                    break
                }
                _ => {}
            }
        }
        Ok(CompleteCommand { items })
    }

    fn parse_and_or(&mut self) -> Result<AndOr, Error> {
        let first = self.parse_pipeline()?;
        let mut rest = Vec::new();
        loop {
            let op = match self.peek()? {
                Token::Op(Op::AndIf) => AndOrOp::AndIf,
                Token::Op(Op::OrIf) => AndOrOp::OrIf,
                _ => break,
            };
            self.next()?;
            self.linebreak()?;
            rest.push((op, self.parse_pipeline()?));
        }
        Ok(AndOr { first, rest })
    }

    fn parse_pipeline(&mut self) -> Result<Pipeline, Error> {
        let bang = self.eat_reserved("!")?;
        let mut commands = vec![self.parse_command()?];
        while self.eat_op(Op::Pipe)? {
            self.linebreak()?;
            commands.push(self.parse_command()?);
        }
        Ok(Pipeline { bang, commands })
    }

    fn parse_command(&mut self) -> Result<Command, Error> {
        // Compound commands and reserved words first.
        if matches!(self.peek()?, Token::Op(Op::LParen)) {
            self.next()?;
            let body =
                self.parse_compound_list(|p| matches!(p.peek(), Ok(Token::Op(Op::RParen))))?;
            self.expect_op(Op::RParen)?;
            let redirects = self.parse_redirect_list()?;
            return Ok(Command::Compound(
                CompoundCommand::Subshell(body),
                redirects,
            ));
        }
        if self.at_reserved("{") {
            self.next()?;
            let body = self.parse_compound_list(|p| p.at_reserved("}"))?;
            self.expect_reserved("}")?;
            let redirects = self.parse_redirect_list()?;
            return Ok(Command::Compound(
                CompoundCommand::BraceGroup(body),
                redirects,
            ));
        }
        if self.at_reserved("if") {
            return self.parse_if();
        }
        if self.at_reserved("for") {
            return self.parse_for();
        }
        if self.at_reserved("while") {
            return self.parse_while_until(true);
        }
        if self.at_reserved("until") {
            return self.parse_while_until(false);
        }
        if self.at_reserved("case") {
            return self.parse_case();
        }
        self.parse_simple_or_function()
    }

    /// Parses a list of complete commands until `stop` matches.
    fn parse_compound_list(
        &mut self,
        stop: impl Fn(&mut Self) -> bool,
    ) -> Result<Vec<CompleteCommand>, Error> {
        let mut out = Vec::new();
        self.linebreak()?;
        while !stop(self) && !matches!(self.peek()?, Token::Eof) {
            out.push(self.parse_complete_command()?);
            self.linebreak()?;
        }
        Ok(out)
    }

    fn parse_if(&mut self) -> Result<Command, Error> {
        self.expect_reserved("if")?;
        let mut branches = Vec::new();
        let cond = self.parse_compound_list(|p| p.at_reserved("then"))?;
        self.expect_reserved("then")?;
        let body = self.parse_compound_list(|p| {
            p.at_reserved("fi") || p.at_reserved("else") || p.at_reserved("elif")
        })?;
        branches.push((cond, body));
        let mut else_body = None;
        loop {
            if self.eat_reserved("elif")? {
                let cond = self.parse_compound_list(|p| p.at_reserved("then"))?;
                self.expect_reserved("then")?;
                let body = self.parse_compound_list(|p| {
                    p.at_reserved("fi") || p.at_reserved("else") || p.at_reserved("elif")
                })?;
                branches.push((cond, body));
            } else if self.eat_reserved("else")? {
                else_body = Some(self.parse_compound_list(|p| p.at_reserved("fi"))?);
            } else {
                break;
            }
        }
        self.expect_reserved("fi")?;
        let redirects = self.parse_redirect_list()?;
        Ok(Command::Compound(
            CompoundCommand::If {
                branches,
                else_body,
            },
            redirects,
        ))
    }

    fn parse_for(&mut self) -> Result<Command, Error> {
        self.expect_reserved("for")?;
        let var = match self.next()? {
            Token::Word(w) => w
                .as_static_str()
                .ok_or_else(|| Error::new("dynamic for-loop variable", self.lexer.offset()))?,
            other => {
                return Err(Error::new(
                    format!("expected for-loop variable, found {other:?}"),
                    self.lexer.offset(),
                ))
            }
        };
        self.linebreak()?;
        let words = if self.eat_reserved("in")? {
            let mut ws = Vec::new();
            loop {
                match self.peek()? {
                    Token::Word(_) => {
                        if let Token::Word(w) = self.next()? {
                            ws.push(w);
                        }
                    }
                    _ => break,
                }
            }
            // Consume the separator (`;` or newline).
            if !self.eat_op(Op::Semi)? {
                self.linebreak()?;
            }
            Some(ws)
        } else {
            let _ = self.eat_op(Op::Semi)?;
            None
        };
        self.linebreak()?;
        self.expect_reserved("do")?;
        let body = self.parse_compound_list(|p| p.at_reserved("done"))?;
        self.expect_reserved("done")?;
        let redirects = self.parse_redirect_list()?;
        Ok(Command::Compound(
            CompoundCommand::For { var, words, body },
            redirects,
        ))
    }

    fn parse_while_until(&mut self, is_while: bool) -> Result<Command, Error> {
        self.expect_reserved(if is_while { "while" } else { "until" })?;
        let cond = self.parse_compound_list(|p| p.at_reserved("do"))?;
        self.expect_reserved("do")?;
        let body = self.parse_compound_list(|p| p.at_reserved("done"))?;
        self.expect_reserved("done")?;
        let redirects = self.parse_redirect_list()?;
        let cc = if is_while {
            CompoundCommand::While { cond, body }
        } else {
            CompoundCommand::Until { cond, body }
        };
        Ok(Command::Compound(cc, redirects))
    }

    fn parse_case(&mut self) -> Result<Command, Error> {
        self.expect_reserved("case")?;
        let word = match self.next()? {
            Token::Word(w) => w,
            other => {
                return Err(Error::new(
                    format!("expected case subject, found {other:?}"),
                    self.lexer.offset(),
                ))
            }
        };
        self.linebreak()?;
        self.expect_reserved("in")?;
        self.linebreak()?;
        let mut arms = Vec::new();
        while !self.at_reserved("esac") {
            let _ = self.eat_op(Op::LParen)?;
            let mut patterns = Vec::new();
            loop {
                match self.next()? {
                    Token::Word(w) => patterns.push(w),
                    other => {
                        return Err(Error::new(
                            format!("expected case pattern, found {other:?}"),
                            self.lexer.offset(),
                        ))
                    }
                }
                if !self.eat_op(Op::Pipe)? {
                    break;
                }
            }
            self.expect_op(Op::RParen)?;
            let body = self.parse_compound_list(|p| {
                p.at_reserved("esac") || matches!(p.peek(), Ok(Token::Op(Op::DSemi)))
            })?;
            let _ = self.eat_op(Op::DSemi)?;
            self.linebreak()?;
            arms.push(CaseArm { patterns, body });
        }
        self.expect_reserved("esac")?;
        let redirects = self.parse_redirect_list()?;
        Ok(Command::Compound(
            CompoundCommand::Case { word, arms },
            redirects,
        ))
    }

    fn parse_simple_or_function(&mut self) -> Result<Command, Error> {
        let mut cmd = SimpleCommand::default();
        // Prefix: assignments and redirections.
        loop {
            if let Some(r) = self.try_parse_redirect()? {
                cmd.redirects.push(r);
                continue;
            }
            match self.peek()? {
                Token::Word(w) => {
                    if let Some((name, value)) = split_assignment(w) {
                        self.next()?;
                        cmd.assignments.push(Assignment { name, value });
                        continue;
                    }
                }
                _ => {}
            }
            break;
        }
        // Command word; check for function definition `name()`.
        if let Token::Word(_) = self.peek()? {
            let w = match self.next()? {
                Token::Word(w) => w,
                _ => unreachable!("peeked a word"),
            };
            if cmd.assignments.is_empty()
                && cmd.redirects.is_empty()
                && matches!(self.peek()?, Token::Op(Op::LParen))
            {
                if let Some(name) = w.as_static_str() {
                    if is_name(&name) {
                        self.next()?; // `(`
                        self.expect_op(Op::RParen)?;
                        self.linebreak()?;
                        let body = self.parse_command()?;
                        return Ok(Command::FunctionDef {
                            name,
                            body: Box::new(body),
                        });
                    }
                }
            }
            cmd.words.push(w);
        }
        // Suffix: words and redirections.
        loop {
            if let Some(r) = self.try_parse_redirect()? {
                cmd.redirects.push(r);
                continue;
            }
            match self.peek()? {
                Token::Word(_) => {
                    if let Token::Word(w) = self.next()? {
                        cmd.words.push(w);
                    }
                }
                _ => break,
            }
        }
        if cmd.words.is_empty() && cmd.assignments.is_empty() && cmd.redirects.is_empty() {
            return Err(Error::new(
                format!("expected a command, found {:?}", self.peek()?),
                self.lexer.offset(),
            ));
        }
        Ok(Command::Simple(cmd))
    }

    fn parse_redirect_list(&mut self) -> Result<Vec<Redirect>, Error> {
        let mut out = Vec::new();
        while let Some(r) = self.try_parse_redirect()? {
            out.push(r);
        }
        Ok(out)
    }

    /// Parses one redirection if the lookahead starts one.
    fn try_parse_redirect(&mut self) -> Result<Option<Redirect>, Error> {
        let fd = match self.peek()? {
            Token::IoNumber(n) => {
                let n = *n;
                self.next()?;
                Some(n)
            }
            _ => None,
        };
        let op = match self.peek()? {
            Token::Op(Op::Less) => RedirOp::Read,
            Token::Op(Op::Great) => RedirOp::Write,
            Token::Op(Op::DGreat) => RedirOp::Append,
            Token::Op(Op::DLess) => RedirOp::Heredoc,
            Token::Op(Op::DLessDash) => RedirOp::HeredocDash,
            Token::Op(Op::LessAnd) => RedirOp::DupRead,
            Token::Op(Op::GreatAnd) => RedirOp::DupWrite,
            Token::Op(Op::LessGreat) => RedirOp::ReadWrite,
            Token::Op(Op::Clobber) => RedirOp::Clobber,
            _ => {
                if let Some(n) = fd {
                    return Err(Error::new(
                        format!("io number {n} not followed by redirection"),
                        self.lexer.offset(),
                    ));
                }
                return Ok(None);
            }
        };
        self.next()?;
        let target = match self.next()? {
            Token::Word(w) => w,
            other => {
                return Err(Error::new(
                    format!("expected redirection target, found {other:?}"),
                    self.lexer.offset(),
                ))
            }
        };
        if matches!(op, RedirOp::Heredoc | RedirOp::HeredocDash) {
            let delim = target.as_static_str().ok_or_else(|| {
                Error::new("here-doc delimiter must be static", self.lexer.offset())
            })?;
            self.lexer
                .register_heredoc(delim, op == RedirOp::HeredocDash);
        }
        Ok(Some(Redirect {
            fd,
            op,
            target,
            heredoc: None,
        }))
    }
}

/// True if `w` is exactly the unquoted literal `s`.
fn is_literal(w: &Word, s: &str) -> bool {
    matches!(w.parts.as_slice(), [WordPart::Literal(l)] if l == s)
}

/// True for a valid shell identifier.
fn is_name(s: &str) -> bool {
    !s.is_empty()
        && !s.starts_with(|c: char| c.is_ascii_digit())
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Splits `NAME=value…` into an assignment if the word qualifies.
fn split_assignment(w: &Word) -> Option<(String, Word)> {
    let first = w.parts.first()?;
    let lit = match first {
        WordPart::Literal(s) => s,
        _ => return None,
    };
    let eq = lit.find('=')?;
    let name = &lit[..eq];
    if !is_name(name) {
        return None;
    }
    let mut value_parts = Vec::new();
    let rest = &lit[eq + 1..];
    if !rest.is_empty() {
        value_parts.push(WordPart::Literal(rest.to_string()));
    }
    value_parts.extend(w.parts[1..].iter().cloned());
    Some((name.to_string(), Word { parts: value_parts }))
}

/// Fills here-doc bodies into a complete command, in source order.
fn fill_cc(
    cc: &mut CompleteCommand,
    queue: &mut impl Iterator<Item = String>,
) -> Result<(), Error> {
    for (ao, _) in &mut cc.items {
        fill_pipeline(&mut ao.first, queue)?;
        for (_, p) in &mut ao.rest {
            fill_pipeline(p, queue)?;
        }
    }
    Ok(())
}

fn fill_pipeline(p: &mut Pipeline, queue: &mut impl Iterator<Item = String>) -> Result<(), Error> {
    for c in &mut p.commands {
        fill_command(c, queue)?;
    }
    Ok(())
}

fn fill_command(c: &mut Command, queue: &mut impl Iterator<Item = String>) -> Result<(), Error> {
    match c {
        Command::Simple(sc) => fill_redirects(&mut sc.redirects, queue),
        Command::FunctionDef { body, .. } => fill_command(body, queue),
        Command::Compound(cc, redirects) => {
            match cc {
                CompoundCommand::BraceGroup(body) | CompoundCommand::Subshell(body) => {
                    for item in body.iter_mut() {
                        fill_cc(item, queue)?;
                    }
                }
                CompoundCommand::For { body, .. } => {
                    for item in body.iter_mut() {
                        fill_cc(item, queue)?;
                    }
                }
                CompoundCommand::Case { arms, .. } => {
                    for arm in arms {
                        for item in arm.body.iter_mut() {
                            fill_cc(item, queue)?;
                        }
                    }
                }
                CompoundCommand::If {
                    branches,
                    else_body,
                } => {
                    for (cond, body) in branches {
                        for item in cond.iter_mut() {
                            fill_cc(item, queue)?;
                        }
                        for item in body.iter_mut() {
                            fill_cc(item, queue)?;
                        }
                    }
                    if let Some(eb) = else_body {
                        for item in eb.iter_mut() {
                            fill_cc(item, queue)?;
                        }
                    }
                }
                CompoundCommand::While { cond, body } | CompoundCommand::Until { cond, body } => {
                    for item in cond.iter_mut() {
                        fill_cc(item, queue)?;
                    }
                    for item in body.iter_mut() {
                        fill_cc(item, queue)?;
                    }
                }
            }
            fill_redirects(redirects, queue)
        }
    }
}

fn fill_redirects(
    rs: &mut [Redirect],
    queue: &mut impl Iterator<Item = String>,
) -> Result<(), Error> {
    for r in rs {
        if matches!(r.op, RedirOp::Heredoc | RedirOp::HeredocDash) && r.heredoc.is_none() {
            r.heredoc = Some(queue.next().ok_or_else(|| {
                Error::new("here-document body missing (unterminated script?)", 0)
            })?);
        }
    }
    Ok(())
}
