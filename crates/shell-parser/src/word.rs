//! Shell words with quoting structure preserved.
//!
//! A word is a sequence of parts; each part remembers how it was quoted
//! in the source. This is what allows (i) the unparser to reproduce an
//! equivalent script and (ii) the static expander to decide whether a
//! word's runtime value is knowable at compile time — the property
//! PaSh's conservative front-end is built on.

/// One component of a shell word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WordPart {
    /// Unquoted literal text (no expansion characters).
    Literal(String),
    /// `'…'` — single-quoted text, taken verbatim.
    SingleQuoted(String),
    /// `"…"` — double-quoted text; inner parts may expand.
    DoubleQuoted(Vec<WordPart>),
    /// A parameter expansion such as `$x` or `${x:-default}`.
    Param(ParamExp),
    /// `$(…)` or `` `…` `` — command substitution, kept as raw source.
    CommandSubst(String),
    /// `$((…))` — arithmetic expansion, kept as raw source.
    Arith(String),
}

/// A parameter expansion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamExp {
    /// Parameter name (`x`, `1`, `@`, `#`, `?`, …).
    pub name: String,
    /// Optional operator and word, e.g. `:-default`, kept raw.
    pub op: Option<String>,
}

/// A shell word: a non-empty sequence of parts.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Word {
    /// The parts, in source order.
    pub parts: Vec<WordPart>,
}

impl Word {
    /// Builds a word from a single unquoted literal.
    pub fn literal(s: impl Into<String>) -> Word {
        Word {
            parts: vec![WordPart::Literal(s.into())],
        }
    }

    /// Builds a word from a single-quoted string.
    pub fn single_quoted(s: impl Into<String>) -> Word {
        Word {
            parts: vec![WordPart::SingleQuoted(s.into())],
        }
    }

    /// Builds a word that expands a parameter, e.g. `$x`.
    pub fn param(name: impl Into<String>) -> Word {
        Word {
            parts: vec![WordPart::Param(ParamExp {
                name: name.into(),
                op: None,
            })],
        }
    }

    /// Returns the literal string if the word is fully static *text*
    /// (no expansions), joining literal and quoted parts.
    pub fn as_static_str(&self) -> Option<String> {
        let mut out = String::new();
        for p in &self.parts {
            match p {
                WordPart::Literal(s) | WordPart::SingleQuoted(s) => out.push_str(s),
                WordPart::DoubleQuoted(inner) => {
                    for ip in inner {
                        match ip {
                            WordPart::Literal(s) | WordPart::SingleQuoted(s) => out.push_str(s),
                            _ => return None,
                        }
                    }
                }
                _ => return None,
            }
        }
        Some(out)
    }

    /// True if any part is an expansion (parameter, command, arithmetic).
    pub fn has_expansion(&self) -> bool {
        fn part_has(p: &WordPart) -> bool {
            match p {
                WordPart::Param(_) | WordPart::CommandSubst(_) | WordPart::Arith(_) => true,
                WordPart::DoubleQuoted(inner) => inner.iter().any(part_has),
                WordPart::Literal(_) | WordPart::SingleQuoted(_) => false,
            }
        }
        self.parts.iter().any(part_has)
    }

    /// True if any *unquoted* literal part contains glob characters.
    pub fn has_glob(&self) -> bool {
        self.parts.iter().any(|p| match p {
            WordPart::Literal(s) => s.contains(['*', '?', '[']),
            _ => false,
        })
    }

    /// True when the word is empty (no parts).
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }
}

impl std::fmt::Display for Word {
    /// Renders the word back to shell syntax (see the unparser for the
    /// quoting rules).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", crate::unparse::word_to_string(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_str_for_mixed_quotes() {
        let w = Word {
            parts: vec![
                WordPart::Literal("a".into()),
                WordPart::SingleQuoted("b c".into()),
                WordPart::DoubleQuoted(vec![WordPart::Literal("d".into())]),
            ],
        };
        assert_eq!(w.as_static_str().as_deref(), Some("ab cd"));
    }

    #[test]
    fn static_str_rejects_expansion() {
        let w = Word::param("HOME");
        assert_eq!(w.as_static_str(), None);
        assert!(w.has_expansion());
    }

    #[test]
    fn expansion_inside_double_quotes_detected() {
        let w = Word {
            parts: vec![WordPart::DoubleQuoted(vec![WordPart::Param(ParamExp {
                name: "x".into(),
                op: None,
            })])],
        };
        assert!(w.has_expansion());
        assert_eq!(w.as_static_str(), None);
    }

    #[test]
    fn glob_detection_only_unquoted() {
        assert!(Word::literal("*.txt").has_glob());
        assert!(!Word::single_quoted("*.txt").has_glob());
    }
}
