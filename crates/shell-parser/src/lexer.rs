//! POSIX shell lexer.
//!
//! Token recognition follows POSIX.1-2017 §2.3, including maximal-munch
//! operators, quoting (`\`, `'…'`, `"…"`), comments, line
//! continuations, and here-document body collection.

use std::collections::VecDeque;

use crate::word::{ParamExp, Word, WordPart};
use crate::Error;

/// Shell operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `|`
    Pipe,
    /// `&`
    Amp,
    /// `;`
    Semi,
    /// `&&`
    AndIf,
    /// `||`
    OrIf,
    /// `;;`
    DSemi,
    /// `<`
    Less,
    /// `>`
    Great,
    /// `>>`
    DGreat,
    /// `<<`
    DLess,
    /// `<<-`
    DLessDash,
    /// `<&`
    LessAnd,
    /// `>&`
    GreatAnd,
    /// `<>`
    LessGreat,
    /// `>|`
    Clobber,
    /// `(`
    LParen,
    /// `)`
    RParen,
}

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// A (possibly multi-part) word.
    Word(Word),
    /// An operator.
    Op(Op),
    /// A digit string immediately preceding `<` or `>` (e.g. `2>`).
    IoNumber(u32),
    /// A newline (command terminator).
    Newline,
    /// End of input.
    Eof,
}

/// The lexer over a source string.
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    /// Here-docs announced on the current line: `(delimiter, strip_tabs)`.
    pending_heredocs: Vec<(String, bool)>,
    /// Bodies collected at the most recent newline, in announcement order.
    heredoc_bodies: VecDeque<String>,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            pending_heredocs: Vec::new(),
            heredoc_bodies: VecDeque::new(),
        }
    }

    /// Registers a here-doc whose body should be collected at the next
    /// newline. Called by the parser when it sees `<<`/`<<-` + delimiter.
    pub fn register_heredoc(&mut self, delimiter: String, strip_tabs: bool) {
        self.pending_heredocs.push((delimiter, strip_tabs));
    }

    /// Takes the next collected here-doc body, in announcement order.
    pub fn take_heredoc_body(&mut self) -> Option<String> {
        self.heredoc_bodies.pop_front()
    }

    /// Current byte offset (for error reporting).
    pub fn offset(&self) -> usize {
        self.pos
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    /// Skips blanks and line continuations; returns at a token start.
    fn skip_blanks(&mut self) {
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') => {
                    self.pos += 1;
                }
                Some(b'\\') if self.peek2() == Some(b'\n') => {
                    self.pos += 2;
                }
                _ => break,
            }
        }
    }

    /// Produces the next token.
    pub fn next_token(&mut self) -> Result<Token, Error> {
        self.skip_blanks();
        let b = match self.peek() {
            Some(b) => b,
            None => return Ok(Token::Eof),
        };
        // Comment: runs to end of line.
        if b == b'#' {
            while let Some(c) = self.peek() {
                if c == b'\n' {
                    break;
                }
                self.pos += 1;
            }
            return self.next_token();
        }
        if b == b'\n' {
            self.pos += 1;
            self.collect_heredocs()?;
            return Ok(Token::Newline);
        }
        if let Some(op) = self.try_operator() {
            return Ok(Token::Op(op));
        }
        // IO number: digits directly followed by `<` or `>`.
        if b.is_ascii_digit() {
            let start = self.pos;
            let mut i = self.pos;
            while i < self.src.len() && self.src[i].is_ascii_digit() {
                i += 1;
            }
            if matches!(self.src.get(i), Some(b'<') | Some(b'>')) {
                let n: u32 = std::str::from_utf8(&self.src[start..i])
                    .expect("digits are UTF-8")
                    .parse()
                    .map_err(|_| Error::new("io number out of range", start))?;
                self.pos = i;
                return Ok(Token::IoNumber(n));
            }
        }
        let w = self.lex_word()?;
        Ok(Token::Word(w))
    }

    /// Maximal-munch operator recognition.
    fn try_operator(&mut self) -> Option<Op> {
        let b = self.peek()?;
        let (op, len) = match b {
            b'|' => {
                if self.peek2() == Some(b'|') {
                    (Op::OrIf, 2)
                } else {
                    (Op::Pipe, 1)
                }
            }
            b'&' => {
                if self.peek2() == Some(b'&') {
                    (Op::AndIf, 2)
                } else {
                    (Op::Amp, 1)
                }
            }
            b';' => {
                if self.peek2() == Some(b';') {
                    (Op::DSemi, 2)
                } else {
                    (Op::Semi, 1)
                }
            }
            b'<' => match self.peek2() {
                Some(b'<') => {
                    if self.src.get(self.pos + 2) == Some(&b'-') {
                        (Op::DLessDash, 3)
                    } else {
                        (Op::DLess, 2)
                    }
                }
                Some(b'&') => (Op::LessAnd, 2),
                Some(b'>') => (Op::LessGreat, 2),
                _ => (Op::Less, 1),
            },
            b'>' => match self.peek2() {
                Some(b'>') => (Op::DGreat, 2),
                Some(b'&') => (Op::GreatAnd, 2),
                Some(b'|') => (Op::Clobber, 2),
                _ => (Op::Great, 1),
            },
            b'(' => (Op::LParen, 1),
            b')' => (Op::RParen, 1),
            _ => return None,
        };
        self.pos += len;
        Some(op)
    }

    /// Lexes one word (sequence of parts up to a metacharacter).
    fn lex_word(&mut self) -> Result<Word, Error> {
        let mut parts: Vec<WordPart> = Vec::new();
        let mut lit = String::new();
        macro_rules! flush {
            () => {
                if !lit.is_empty() {
                    parts.push(WordPart::Literal(std::mem::take(&mut lit)));
                }
            };
        }
        loop {
            let b = match self.peek() {
                Some(b) => b,
                None => break,
            };
            match b {
                b' ' | b'\t' | b'\n' | b'|' | b'&' | b';' | b'<' | b'>' | b'(' | b')' => break,
                b'\'' => {
                    self.pos += 1;
                    let s = self.read_until_unescaped(b'\'', false)?;
                    flush!();
                    parts.push(WordPart::SingleQuoted(s));
                }
                b'"' => {
                    self.pos += 1;
                    flush!();
                    let inner = self.lex_double_quoted()?;
                    parts.push(WordPart::DoubleQuoted(inner));
                }
                b'\\' => {
                    self.pos += 1;
                    match self.bump() {
                        Some(b'\n') => {} // Line continuation.
                        Some(c) => lit.push(c as char),
                        None => lit.push('\\'),
                    }
                }
                b'$' => {
                    flush!();
                    parts.push(self.lex_dollar()?);
                }
                b'`' => {
                    self.pos += 1;
                    let s = self.read_until_unescaped(b'`', true)?;
                    flush!();
                    parts.push(WordPart::CommandSubst(s));
                }
                _ => {
                    lit.push(b as char);
                    self.pos += 1;
                }
            }
        }
        if !lit.is_empty() {
            parts.push(WordPart::Literal(lit));
        }
        if parts.is_empty() {
            return Err(Error::new("empty word", self.pos));
        }
        Ok(Word { parts })
    }

    /// Reads the interior of a double-quoted string.
    fn lex_double_quoted(&mut self) -> Result<Vec<WordPart>, Error> {
        let mut parts: Vec<WordPart> = Vec::new();
        let mut lit = String::new();
        loop {
            let b = match self.bump() {
                Some(b) => b,
                None => return Err(Error::new("unterminated double quote", self.pos)),
            };
            match b {
                b'"' => break,
                b'\\' => match self.bump() {
                    // Only these are special after backslash in quotes.
                    Some(c @ (b'$' | b'`' | b'"' | b'\\')) => lit.push(c as char),
                    Some(b'\n') => {}
                    Some(c) => {
                        lit.push('\\');
                        lit.push(c as char);
                    }
                    None => return Err(Error::new("unterminated double quote", self.pos)),
                },
                b'$' => {
                    // `bump` consumed the `$`; rewind so lex_dollar sees it.
                    self.pos -= 1;
                    if !lit.is_empty() {
                        parts.push(WordPart::Literal(std::mem::take(&mut lit)));
                    }
                    parts.push(self.lex_dollar()?);
                }
                b'`' => {
                    let s = self.read_until_unescaped(b'`', true)?;
                    if !lit.is_empty() {
                        parts.push(WordPart::Literal(std::mem::take(&mut lit)));
                    }
                    parts.push(WordPart::CommandSubst(s));
                }
                _ => lit.push(b as char),
            }
        }
        if !lit.is_empty() {
            parts.push(WordPart::Literal(lit));
        }
        Ok(parts)
    }

    /// Lexes a `$…` expansion. The `$` has *not* been consumed.
    fn lex_dollar(&mut self) -> Result<WordPart, Error> {
        debug_assert_eq!(self.peek(), Some(b'$'));
        self.pos += 1;
        match self.peek() {
            Some(b'(') => {
                if self.peek2() == Some(b'(') {
                    // Arithmetic $((…)).
                    self.pos += 2;
                    let s = self.read_balanced_double_paren()?;
                    Ok(WordPart::Arith(s))
                } else {
                    self.pos += 1;
                    let s = self.read_balanced(b'(', b')')?;
                    Ok(WordPart::CommandSubst(s))
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let raw = self.read_balanced(b'{', b'}')?;
                Ok(parse_braced_param(&raw, self.pos)?)
            }
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
                let start = self.pos;
                while self
                    .peek()
                    .map(|c| c.is_ascii_alphanumeric() || c == b'_')
                    .unwrap_or(false)
                {
                    self.pos += 1;
                }
                let name = std::str::from_utf8(&self.src[start..self.pos])
                    .expect("identifier bytes")
                    .to_string();
                Ok(WordPart::Param(ParamExp { name, op: None }))
            }
            Some(c) if c.is_ascii_digit() => {
                self.pos += 1;
                Ok(WordPart::Param(ParamExp {
                    name: (c as char).to_string(),
                    op: None,
                }))
            }
            Some(c @ (b'@' | b'*' | b'#' | b'?' | b'-' | b'$' | b'!')) => {
                self.pos += 1;
                Ok(WordPart::Param(ParamExp {
                    name: (c as char).to_string(),
                    op: None,
                }))
            }
            // Bare `$` is a literal dollar sign.
            _ => Ok(WordPart::Literal("$".to_string())),
        }
    }

    /// Reads raw text until the closing delimiter, honouring nesting.
    fn read_balanced(&mut self, open: u8, close: u8) -> Result<String, Error> {
        let start = self.pos;
        let mut depth = 1usize;
        let mut in_single = false;
        let mut in_double = false;
        while let Some(b) = self.bump() {
            match b {
                b'\\' if !in_single => {
                    self.pos += 1;
                }
                b'\'' if !in_double => in_single = !in_single,
                b'"' if !in_single => in_double = !in_double,
                _ if in_single || in_double => {}
                b if b == open => depth += 1,
                b if b == close => {
                    depth -= 1;
                    if depth == 0 {
                        let s = std::str::from_utf8(&self.src[start..self.pos - 1])
                            .map_err(|_| Error::new("non-UTF8 input", start))?;
                        return Ok(s.to_string());
                    }
                }
                _ => {}
            }
        }
        Err(Error::new("unterminated substitution", start))
    }

    /// Reads up to the closing `))` of an arithmetic expansion.
    fn read_balanced_double_paren(&mut self) -> Result<String, Error> {
        let start = self.pos;
        let mut depth = 0usize;
        while let Some(b) = self.bump() {
            match b {
                b'(' => depth += 1,
                b')' => {
                    if depth == 0 {
                        if self.peek() == Some(b')') {
                            self.pos += 1;
                            let s = std::str::from_utf8(&self.src[start..self.pos - 2])
                                .map_err(|_| Error::new("non-UTF8 input", start))?;
                            return Ok(s.to_string());
                        }
                        return Err(Error::new("expected `))`", self.pos));
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
        Err(Error::new("unterminated arithmetic expansion", start))
    }

    /// Reads raw text until an unescaped `delim`.
    fn read_until_unescaped(&mut self, delim: u8, allow_escape: bool) -> Result<String, Error> {
        let start = self.pos;
        let mut out = String::new();
        while let Some(b) = self.bump() {
            if b == delim {
                return Ok(out);
            }
            if b == b'\\' && allow_escape {
                if let Some(c) = self.bump() {
                    if c != delim && c != b'\\' {
                        out.push('\\');
                    }
                    out.push(c as char);
                    continue;
                }
            }
            out.push(b as char);
        }
        Err(Error::new(
            format!("unterminated `{}` quote", delim as char),
            start,
        ))
    }

    /// After a newline, reads bodies for all pending here-docs.
    fn collect_heredocs(&mut self) -> Result<(), Error> {
        let pending = std::mem::take(&mut self.pending_heredocs);
        for (delim, strip) in pending {
            let mut body = String::new();
            loop {
                if self.pos >= self.src.len() {
                    return Err(Error::new(
                        format!("here-document `{delim}` not terminated"),
                        self.pos,
                    ));
                }
                // Read one raw line.
                let line_start = self.pos;
                while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                    self.pos += 1;
                }
                let mut line = std::str::from_utf8(&self.src[line_start..self.pos])
                    .map_err(|_| Error::new("non-UTF8 input", line_start))?;
                if self.pos < self.src.len() {
                    self.pos += 1; // Consume the newline.
                }
                if strip {
                    line = line.trim_start_matches('\t');
                }
                if line == delim {
                    break;
                }
                body.push_str(line);
                body.push('\n');
            }
            self.heredoc_bodies.push_back(body);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        let mut l = Lexer::new(src);
        let mut out = Vec::new();
        loop {
            let t = l.next_token().expect("lex");
            let eof = t == Token::Eof;
            out.push(t);
            if eof {
                break;
            }
        }
        out
    }

    fn word_str(t: &Token) -> String {
        match t {
            Token::Word(w) => w.as_static_str().unwrap_or_default(),
            other => panic!("not a word: {other:?}"),
        }
    }

    #[test]
    fn simple_words_and_pipe() {
        let t = toks("cat f | grep x");
        assert_eq!(t.len(), 6);
        assert_eq!(word_str(&t[0]), "cat");
        assert_eq!(t[2], Token::Op(Op::Pipe));
        assert_eq!(word_str(&t[4]), "x");
    }

    #[test]
    fn operators_maximal_munch() {
        let t = toks("a && b || c ; d ;; e & f");
        assert_eq!(t[1], Token::Op(Op::AndIf));
        assert_eq!(t[3], Token::Op(Op::OrIf));
        assert_eq!(t[5], Token::Op(Op::Semi));
        assert_eq!(t[7], Token::Op(Op::DSemi));
        assert_eq!(t[9], Token::Op(Op::Amp));
    }

    #[test]
    fn redirection_operators() {
        let t = toks("a > f >> g < h 2> e <& 3 >| c <> b");
        assert_eq!(t[1], Token::Op(Op::Great));
        assert_eq!(t[3], Token::Op(Op::DGreat));
        assert_eq!(t[5], Token::Op(Op::Less));
        assert_eq!(t[7], Token::IoNumber(2));
        assert_eq!(t[8], Token::Op(Op::Great));
        assert_eq!(t[10], Token::Op(Op::LessAnd));
        assert_eq!(t[12], Token::Op(Op::Clobber));
        assert_eq!(t[14], Token::Op(Op::LessGreat));
    }

    #[test]
    fn io_number_requires_adjacency() {
        // `2 >` is a word then an operator, not an IoNumber.
        let t = toks("echo 2 > f");
        assert_eq!(word_str(&t[1]), "2");
        assert_eq!(t[2], Token::Op(Op::Great));
    }

    #[test]
    fn quoting_single_double() {
        let t = toks(r#"echo 'a b' "c d" e\ f"#);
        assert_eq!(word_str(&t[1]), "a b");
        assert_eq!(word_str(&t[2]), "c d");
        assert_eq!(word_str(&t[3]), "e f");
    }

    #[test]
    fn comments_skipped() {
        let t = toks("echo a # trailing words | ;\necho b");
        // echo a NL echo b EOF.
        assert_eq!(t.len(), 6);
        assert_eq!(t[2], Token::Newline);
    }

    #[test]
    fn param_expansions() {
        let t = toks("echo $x ${y:-def} $1 $@ $?");
        match &t[1] {
            Token::Word(w) => match &w.parts[0] {
                WordPart::Param(p) => assert_eq!(p.name, "x"),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
        match &t[2] {
            Token::Word(w) => match &w.parts[0] {
                WordPart::Param(p) => {
                    assert_eq!(p.name, "y");
                    assert_eq!(p.op.as_deref(), Some(":-def"));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn command_substitution_nested() {
        let t = toks("echo $(cat $(ls))");
        match &t[1] {
            Token::Word(w) => match &w.parts[0] {
                WordPart::CommandSubst(s) => assert_eq!(s, "cat $(ls)"),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn backtick_substitution() {
        let t = toks("echo `ls -l`");
        match &t[1] {
            Token::Word(w) => match &w.parts[0] {
                WordPart::CommandSubst(s) => assert_eq!(s, "ls -l"),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn arithmetic_expansion() {
        let t = toks("echo $((1 + (2*3)))");
        match &t[1] {
            Token::Word(w) => match &w.parts[0] {
                WordPart::Arith(s) => assert_eq!(s, "1 + (2*3)"),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dollar_inside_double_quotes() {
        let t = toks(r#"echo "pre $x post""#);
        match &t[1] {
            Token::Word(w) => match &w.parts[0] {
                WordPart::DoubleQuoted(inner) => {
                    assert_eq!(inner.len(), 3);
                    assert!(matches!(inner[1], WordPart::Param(_)));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn line_continuation() {
        let t = toks("echo a\\\nb");
        assert_eq!(word_str(&t[1]), "ab");
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn heredoc_collection() {
        let mut l = Lexer::new("cat <<EOF\nline1\nline2\nEOF\necho done\n");
        // cat.
        assert!(matches!(l.next_token().expect("lex"), Token::Word(_)));
        assert_eq!(l.next_token().expect("lex"), Token::Op(Op::DLess));
        // Delimiter word.
        let d = l.next_token().expect("lex");
        assert_eq!(word_str(&d), "EOF");
        l.register_heredoc("EOF".into(), false);
        assert_eq!(l.next_token().expect("lex"), Token::Newline);
        assert_eq!(l.take_heredoc_body().as_deref(), Some("line1\nline2\n"));
        assert_eq!(word_str(&l.next_token().expect("lex")), "echo");
    }

    #[test]
    fn heredoc_dash_strips_tabs() {
        let mut l = Lexer::new("cat <<-EOF\n\tindented\n\tEOF\n");
        l.next_token().expect("lex");
        assert_eq!(l.next_token().expect("lex"), Token::Op(Op::DLessDash));
        l.next_token().expect("lex");
        l.register_heredoc("EOF".into(), true);
        assert_eq!(l.next_token().expect("lex"), Token::Newline);
        assert_eq!(l.take_heredoc_body().as_deref(), Some("indented\n"));
    }

    #[test]
    fn unterminated_quote_is_error() {
        let mut l = Lexer::new("echo 'abc");
        l.next_token().expect("lex");
        assert!(l.next_token().is_err());
    }

    #[test]
    fn special_params() {
        for (src, name) in [("$#", "#"), ("$$", "$"), ("$!", "!"), ("$*", "*")] {
            let t = toks(&format!("echo {src}"));
            match &t[1] {
                Token::Word(w) => match &w.parts[0] {
                    WordPart::Param(p) => assert_eq!(p.name, name),
                    other => panic!("unexpected {other:?}"),
                },
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn bare_dollar_is_literal() {
        let t = toks("echo a$ b");
        assert_eq!(word_str(&t[1]), "a$");
    }

    #[test]
    fn parens_are_operators() {
        let t = toks("(a)");
        assert_eq!(t[0], Token::Op(Op::LParen));
        assert_eq!(t[2], Token::Op(Op::RParen));
    }
}

/// Parses the interior of `${…}` into name + optional op.
fn parse_braced_param(raw: &str, at: usize) -> Result<WordPart, Error> {
    if raw.is_empty() {
        return Err(Error::new("empty parameter expansion", at));
    }
    let bytes = raw.as_bytes();
    // `${#name}` — length-of.
    if bytes[0] == b'#' && raw.len() > 1 {
        return Ok(WordPart::Param(ParamExp {
            name: raw[1..].to_string(),
            op: Some("#".to_string()),
        }));
    }
    let mut i = 0;
    if bytes[0].is_ascii_digit() || "@*#?-$!".contains(bytes[0] as char) {
        i = 1;
    } else {
        while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
    }
    if i == 0 {
        return Err(Error::new("invalid parameter name", at));
    }
    let name = raw[..i].to_string();
    let op = if i < raw.len() {
        Some(raw[i..].to_string())
    } else {
        None
    };
    Ok(WordPart::Param(ParamExp { name, op }))
}
