//! Round-robin split benchmarks: `r_split` vs the segment split on a
//! line-length-skewed corpus.
//!
//! Two views of the same question, recorded side by side in
//! `BENCH_dataplane.json`:
//!
//! * **runtime microbenchmarks** — the real splitters pushed through
//!   counting sinks, measuring per-byte dealing cost (framing tax,
//!   adaptive block sizing);
//! * **simulator series** — the whole-pipeline effect on the paper's
//!   64-core testbed model, where the general split's blocking pass
//!   and line-count skew cost wall-clock that `r_split`'s streaming
//!   uniform deal does not.
//!
//! The simulator is deterministic, so the r_split-vs-general speedup
//! it reports is a stable CI assertion, not a flaky timing race.

use std::io::{self, Write};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pash_core::compile::{compile, PashConfig};
use pash_core::dfg::transform::SplitPolicy;
use pash_runtime::split::{split_general, split_round_robin};
use pash_sim::cost::CostModel;
use pash_sim::engine::{simulate_program, InputSizes, SimConfig};

use crate::dataplane::{measure, Sample};

/// A byte-counting discard sink (same shape as dataplane's).
struct CountSink(Arc<AtomicUsize>);

impl Write for CountSink {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.fetch_add(buf.len(), Ordering::Relaxed);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// A corpus whose line lengths are heavily skewed: mostly short
/// records with a periodic run of very long ones — the shape that
/// makes line-count segmentation hand one worker most of the bytes.
pub fn skewed_corpus(seed: u64, bytes: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(bytes + 512);
    let mut x = seed | 1;
    let mut i = 0u64;
    while out.len() < bytes {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        // 1 line in 16 is ~60× longer than the rest, and the long
        // lines cluster in the second half of the file (so equal
        // line-count segments are very unequal byte-count segments).
        let long = i % 16 == 15 && out.len() > bytes / 2;
        if long {
            let word = [b'w', b'x', b'y', b'z'][(x >> 60) as usize % 4];
            out.extend(std::iter::repeat(word).take(480));
        } else {
            out.extend_from_slice(format!("rec {} {:04x}", i, (x >> 48) as u16).as_bytes());
        }
        out.push(b'\n');
        i += 1;
    }
    out.truncate(bytes);
    if out.last() != Some(&b'\n') {
        out.push(b'\n');
    }
    out
}

/// Byte share of each of `k` equal *line-count* segments of `corpus`
/// — the empirical skew a line-count segmenter would produce, fed to
/// the simulator as [`SimConfig::split_shares`].
pub fn line_count_shares(corpus: &[u8], k: usize) -> Vec<f64> {
    let lines: Vec<&[u8]> = corpus.split_inclusive(|&b| b == b'\n').collect();
    let k = k.max(1);
    let per = lines.len().div_ceil(k).max(1);
    let total = corpus.len().max(1) as f64;
    let mut shares: Vec<f64> = lines
        .chunks(per)
        .map(|c| c.iter().map(|l| l.len()).sum::<usize>() as f64 / total)
        .collect();
    shares.resize(k, 1e-9);
    shares
}

/// Times `split_round_robin` over `corpus` into `k` counting sinks.
pub fn time_rsplit(corpus: &[u8], k: usize, framed: bool) -> Duration {
    let counter = Arc::new(AtomicUsize::new(0));
    let mut outs: Vec<Box<dyn Write + Send>> = (0..k)
        .map(|_| Box::new(CountSink(counter.clone())) as Box<dyn Write + Send>)
        .collect();
    let mut r = io::BufReader::new(io::Cursor::new(corpus));
    let start = Instant::now();
    split_round_robin(&mut r, &mut outs, framed).expect("r_split");
    let elapsed = start.elapsed();
    assert!(
        counter.load(Ordering::Relaxed) >= corpus.len(),
        "r_split dropped bytes"
    );
    elapsed
}

/// Times the general splitter over the same corpus (the baseline the
/// runtime samples compare against).
pub fn time_general_split(corpus: &[u8], k: usize) -> Duration {
    let counter = Arc::new(AtomicUsize::new(0));
    let mut outs: Vec<Box<dyn Write + Send>> = (0..k)
        .map(|_| Box::new(CountSink(counter.clone())) as Box<dyn Write + Send>)
        .collect();
    let mut r = io::BufReader::new(io::Cursor::new(corpus));
    let start = Instant::now();
    split_general(&mut r, &mut outs).expect("split");
    start.elapsed()
}

/// The simulated pipeline: a heavy stateless stage downstream of an
/// aggregation point — the shape only a split node re-parallelizes.
const SIM_SCRIPT: &str = "cat in.txt | sort | grep '(a|b|c|d|e)+(f|g|h)*(ij|kl)+xyz' > out.txt";

/// Simulated input size: large enough that compute dominates the
/// per-region setup constants.
const SIM_INPUT_BYTES: f64 = 64e6;

/// Simulates [`SIM_SCRIPT`] at width 8 under the given split policy;
/// `shares` skews the general split's output distribution.
pub fn sim_split_seconds(split: SplitPolicy, shares: Option<Vec<f64>>) -> f64 {
    let cfg = PashConfig {
        width: 8,
        split,
        ..Default::default()
    };
    let compiled = compile(SIM_SCRIPT, &cfg).expect("compile sim script");
    let sizes: InputSizes = [("in.txt".to_string(), SIM_INPUT_BYTES)]
        .into_iter()
        .collect();
    let sim_cfg = SimConfig {
        split_shares: shares,
        ..Default::default()
    };
    simulate_program(&compiled.plan, &sizes, 0.0, &CostModel::default(), &sim_cfg).seconds
}

/// The r_split series: runtime splitter microbenchmarks on the skewed
/// corpus plus the deterministic simulator comparison.
pub fn run_series(bytes: usize, runs: usize) -> Vec<Sample> {
    let corpus = skewed_corpus(97, bytes);
    let shares = line_count_shares(&corpus, 8);
    let general_s = sim_split_seconds(SplitPolicy::General, Some(shares));
    let rr_s = sim_split_seconds(SplitPolicy::RoundRobin, None);
    let sim_sample = |name: &str, secs: f64| Sample {
        name: name.to_string(),
        bytes: SIM_INPUT_BYTES as usize,
        runs: 1,
        min: Duration::from_secs_f64(secs),
        median: Duration::from_secs_f64(secs),
        mean: Duration::from_secs_f64(secs),
    };
    vec![
        measure("rsplit_8way_framed", bytes, runs, || {
            time_rsplit(&corpus, 8, true)
        }),
        measure("rsplit_8way_raw", bytes, runs, || {
            time_rsplit(&corpus, 8, false)
        }),
        measure("split_8way_skewed", bytes, runs, || {
            time_general_split(&corpus, 8)
        }),
        sim_sample("sim_split_general_skewed", general_s),
        sim_sample("sim_split_rr", rr_s),
    ]
}

/// The simulated whole-pipeline speedup of `r_split` over the skewed
/// general split, from a [`run_series`] result.
pub fn rr_speedup(samples: &[Sample]) -> Option<f64> {
    let secs = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.median.as_secs_f64())
    };
    Some(secs("sim_split_general_skewed")? / secs("sim_split_rr")?.max(1e-9))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skewed_corpus_is_line_skewed() {
        let c = skewed_corpus(3, 64 * 1024);
        assert!(c.ends_with(b"\n"));
        let shares = line_count_shares(&c, 8);
        assert_eq!(shares.len(), 8);
        let sum: f64 = shares.iter().sum();
        assert!((sum - 1.0).abs() < 0.01, "shares sum to {sum}");
        // The skew the bench depends on: the largest line-count
        // segment carries well over its uniform 1/8 of the bytes.
        let max = shares.iter().cloned().fold(0.0f64, f64::max);
        assert!(max > 0.2, "corpus not skewed enough: max share {max:.3}");
    }

    #[test]
    fn series_reports_rr_speedup_on_skewed_corpus() {
        let samples = run_series(16 * 1024, 1);
        assert_eq!(samples.len(), 5);
        let speedup = rr_speedup(&samples).expect("sim samples present");
        assert!(
            speedup > 1.05,
            "r_split should beat the skewed general split: {speedup:.2}x"
        );
    }
}
