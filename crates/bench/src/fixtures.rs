//! Shared test fixtures: process-wide caches for the expensive bits
//! every integration suite needs — generated corpora, template
//! filesystems, and the standard registry.
//!
//! Workload generation used to dominate the integration suites' wall
//! clock; `tests/correctness.rs` fixed that with a `OnceLock`-cached
//! template-filesystem helper, and this module is that helper made
//! shared so `tests/properties.rs` and `tests/emitted_scripts.rs`
//! stop regenerating their own corpora per suite.

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::Command;
use std::sync::{Arc, Mutex, OnceLock};

use pash_coreutils::fs::MemFs;
use pash_coreutils::Registry;

/// Returns a fresh filesystem for `key`, building the workload corpus
/// only on the first request: corpora are cached as template
/// filesystems and each call gets an isolated `snapshot` (contents
/// stay `Arc`-shared, so the marginal cost is a map clone, not
/// regeneration).
pub fn cached_fs(key: String, build: impl FnOnce(&MemFs)) -> Arc<MemFs> {
    static CACHE: OnceLock<Mutex<HashMap<String, MemFs>>> = OnceLock::new();
    let mut map = CACHE
        .get_or_init(Default::default)
        .lock()
        .expect("corpus cache lock");
    let template = map.entry(key).or_insert_with(|| {
        let fs = MemFs::new();
        build(&fs);
        fs
    });
    Arc::new(template.snapshot())
}

/// A `text_corpus(seed, bytes)` result, generated once per process
/// and shared by `Arc`.
pub fn cached_corpus(seed: u64, bytes: usize) -> Arc<Vec<u8>> {
    static CACHE: OnceLock<Mutex<HashMap<(u64, usize), Arc<Vec<u8>>>>> = OnceLock::new();
    CACHE
        .get_or_init(Default::default)
        .lock()
        .expect("corpus cache lock")
        .entry((seed, bytes))
        .or_insert_with(|| Arc::new(pash_workloads::text_corpus(seed, bytes)))
        .clone()
}

/// The standard registry, constructed once per process. Registries
/// are cheap to clone but not free to build; suites that create one
/// per command invocation add up.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::standard)
}

/// Locates the workspace target directory from the current executable
/// (`target/<profile>/deps/<bin>` → `target/<profile>`).
pub fn target_dir() -> PathBuf {
    let mut p = std::env::current_exe().expect("test exe path");
    p.pop();
    if p.ends_with("deps") {
        p.pop();
    }
    p
}

fn build_runtime_binaries() -> Option<(PathBuf, PathBuf)> {
    let dir = target_dir();
    let pashc = dir.join("pashc");
    let pash_rt = dir.join("pash-rt");
    // Always invoke cargo: an up-to-date build is a fast no-op, and
    // skipping it when the files merely *exist* let suites run against
    // stale binaries from before the change under test.
    let profile_flag: &[&str] = if dir.ends_with("release") {
        &["--release"]
    } else {
        &[]
    };
    let status = Command::new(env!("CARGO"))
        .args(["build", "-p", "pash-runtime", "--bins"])
        .args(profile_flag)
        .status()
        .ok()?;
    if !status.success() || !pashc.exists() || !pash_rt.exists() {
        return None;
    }
    Some((pashc, pash_rt))
}

/// The multi-call binaries (`pashc`, `pash-rt`), built on first
/// request and shared process-wide. `None` when they cannot be built
/// (callers should skip, like the emitted-script suites always have).
pub fn runtime_binaries() -> Option<(PathBuf, PathBuf)> {
    static BINS: OnceLock<Option<(PathBuf, PathBuf)>> = OnceLock::new();
    BINS.get_or_init(build_runtime_binaries).clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_fs_builds_once_and_isolates_snapshots() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static BUILDS: AtomicUsize = AtomicUsize::new(0);
        let build = |fs: &MemFs| {
            BUILDS.fetch_add(1, Ordering::Relaxed);
            fs.add("a.txt", b"hello\n".to_vec());
        };
        let fs1 = cached_fs("fixtures-test".into(), build);
        let fs2 = cached_fs("fixtures-test".into(), build);
        assert_eq!(BUILDS.load(Ordering::Relaxed), 1, "template built once");
        // Snapshots are isolated: writes to one do not leak.
        fs1.add("extra.txt", b"x".to_vec());
        assert!(fs2.read("extra.txt").is_err());
        assert_eq!(fs2.read("a.txt").expect("shared template"), b"hello\n");
    }

    #[test]
    fn cached_corpus_shares_bytes() {
        let a = cached_corpus(99, 2048);
        let b = cached_corpus(99, 2048);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 2048);
        let c = cached_corpus(100, 2048);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn registry_is_shared() {
        let a = registry() as *const Registry;
        let b = registry() as *const Registry;
        assert_eq!(a, b);
        assert!(registry().get("sort").is_some());
    }
}
