//! Shared test fixtures: process-wide caches for the expensive bits
//! every integration suite needs — generated corpora, template
//! filesystems, and the standard registry.
//!
//! Workload generation used to dominate the integration suites' wall
//! clock; `tests/correctness.rs` fixed that with a `OnceLock`-cached
//! template-filesystem helper, and this module is that helper made
//! shared so `tests/properties.rs` and `tests/emitted_scripts.rs`
//! stop regenerating their own corpora per suite.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use pash_coreutils::fs::MemFs;
use pash_coreutils::Registry;

/// Returns a fresh filesystem for `key`, building the workload corpus
/// only on the first request: corpora are cached as template
/// filesystems and each call gets an isolated `snapshot` (contents
/// stay `Arc`-shared, so the marginal cost is a map clone, not
/// regeneration).
pub fn cached_fs(key: String, build: impl FnOnce(&MemFs)) -> Arc<MemFs> {
    static CACHE: OnceLock<Mutex<HashMap<String, MemFs>>> = OnceLock::new();
    let mut map = CACHE
        .get_or_init(Default::default)
        .lock()
        .expect("corpus cache lock");
    let template = map.entry(key).or_insert_with(|| {
        let fs = MemFs::new();
        build(&fs);
        fs
    });
    Arc::new(template.snapshot())
}

/// A `text_corpus(seed, bytes)` result, generated once per process
/// and shared by `Arc`.
pub fn cached_corpus(seed: u64, bytes: usize) -> Arc<Vec<u8>> {
    static CACHE: OnceLock<Mutex<HashMap<(u64, usize), Arc<Vec<u8>>>>> = OnceLock::new();
    CACHE
        .get_or_init(Default::default)
        .lock()
        .expect("corpus cache lock")
        .entry((seed, bytes))
        .or_insert_with(|| Arc::new(pash_workloads::text_corpus(seed, bytes)))
        .clone()
}

/// The standard registry, constructed once per process. Registries
/// are cheap to clone but not free to build; suites that create one
/// per command invocation add up.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::standard)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_fs_builds_once_and_isolates_snapshots() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static BUILDS: AtomicUsize = AtomicUsize::new(0);
        let build = |fs: &MemFs| {
            BUILDS.fetch_add(1, Ordering::Relaxed);
            fs.add("a.txt", b"hello\n".to_vec());
        };
        let fs1 = cached_fs("fixtures-test".into(), build);
        let fs2 = cached_fs("fixtures-test".into(), build);
        assert_eq!(BUILDS.load(Ordering::Relaxed), 1, "template built once");
        // Snapshots are isolated: writes to one do not leak.
        fs1.add("extra.txt", b"x".to_vec());
        assert!(fs2.read("extra.txt").is_err());
        assert_eq!(fs2.read("a.txt").expect("shared template"), b"hello\n");
    }

    #[test]
    fn cached_corpus_shares_bytes() {
        let a = cached_corpus(99, 2048);
        let b = cached_corpus(99, 2048);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 2048);
        let c = cached_corpus(100, 2048);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn registry_is_shared() {
        let a = registry() as *const Registry;
        let b = registry() as *const Registry;
        assert_eq!(a, b);
        assert!(registry().get("sort").is_some());
    }
}
