//! Benchmark harness regenerating every table and figure of the PaSh
//! paper.
//!
//! Each evaluation artifact has a binary that prints paper-style rows
//! (see DESIGN.md §3 for the experiment index):
//!
//! | artifact | binary |
//! |----------|--------|
//! | Tab. 1 (parallelizability study) | `tab1` |
//! | Tab. 2 (one-liner summary)       | `tab2` |
//! | Fig. 7 (speedup vs parallelism)  | `fig7` |
//! | Fig. 8 (Unix50)                  | `fig8` |
//! | §6.3 (NOAA weather)              | `noaa` |
//! | §6.4 (Wikipedia indexing)        | `wiki` |
//! | §6.5 (parallel sort)             | `micro_sort` |
//! | §6.5 (GNU parallel)              | `micro_parallel` |
//!
//! Criterion benches (one per artifact) live under `benches/`.

pub mod baseline;
pub mod dataplane;
pub mod faultsim;
pub mod fixtures;
pub mod regexbench;
pub mod rsplitbench;
pub mod suites {
    //! Benchmark script collections.
    pub mod oneliners;
    pub mod unix50;
    pub mod usecases;
}

use pash_core::compile::PashConfig;
use pash_core::dfg::transform::{EagerPolicy, SplitPolicy};

/// The Fig. 7 configuration axes, by their legend names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig7Config {
    /// `No Eager`: both eager and split disabled.
    NoEager,
    /// `Blocking Eager`: bounded relays only.
    BlockingEager,
    /// `Parallel`: eager enabled, no split nodes.
    Parallel,
    /// `Par + Split`: eager + general split.
    ParSplit,
    /// `Par + B.Split`: eager + input-aware split.
    ParBSplit,
}

impl Fig7Config {
    /// All configurations, in the figure's legend order.
    pub fn all() -> [Fig7Config; 5] {
        [
            Fig7Config::ParSplit,
            Fig7Config::ParBSplit,
            Fig7Config::Parallel,
            Fig7Config::BlockingEager,
            Fig7Config::NoEager,
        ]
    }

    /// The legend label.
    pub fn label(self) -> &'static str {
        match self {
            Fig7Config::NoEager => "No Eager",
            Fig7Config::BlockingEager => "Blocking Eager",
            Fig7Config::Parallel => "Parallel",
            Fig7Config::ParSplit => "Par + Split",
            Fig7Config::ParBSplit => "Par + B.Split",
        }
    }

    /// The compiler configuration at a width.
    pub fn pash_config(self, width: usize) -> PashConfig {
        let (eager, split) = match self {
            Fig7Config::NoEager => (EagerPolicy::Off, SplitPolicy::Off),
            Fig7Config::BlockingEager => (EagerPolicy::Blocking, SplitPolicy::Off),
            Fig7Config::Parallel => (EagerPolicy::Full, SplitPolicy::Off),
            Fig7Config::ParSplit => (EagerPolicy::Full, SplitPolicy::General),
            Fig7Config::ParBSplit => (EagerPolicy::Full, SplitPolicy::Sized),
        };
        PashConfig {
            width,
            eager,
            split,
            ..Default::default()
        }
    }
}

/// Formats seconds human-readably (paper style: `79m35s` / `3.2s`).
pub fn fmt_secs(s: f64) -> String {
    if s >= 60.0 {
        format!("{}m{:02.0}s", (s / 60.0) as u64, s % 60.0)
    } else {
        format!("{s:.2}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_axes_match_figure() {
        assert_eq!(Fig7Config::all().len(), 5);
        let c = Fig7Config::NoEager.pash_config(8);
        assert!(matches!(c.eager, EagerPolicy::Off));
        assert!(matches!(c.split, SplitPolicy::Off));
        let c = Fig7Config::ParBSplit.pash_config(8);
        assert!(matches!(c.split, SplitPolicy::Sized));
        assert_eq!(c.width, 8);
    }

    #[test]
    fn fmt_secs_forms() {
        assert_eq!(fmt_secs(3.25), "3.25s");
        assert_eq!(fmt_secs(125.0), "2m05s");
    }
}
