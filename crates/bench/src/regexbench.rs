//! Regex-engine microbenchmarks: the tiered matcher against the
//! Pike-VM-only baseline, measured **in the same run** on the same
//! corpora.
//!
//! The paper's regex-bound stages (`grep`/`sed` over oneliners,
//! unix50, and the "complex NFA regex" benchmark) spend their time in
//! exactly four pattern shapes, so that is the series:
//!
//! | series        | pattern shape              | expected winner      |
//! |---------------|----------------------------|----------------------|
//! | `fixed`       | plain literal (`grep -F`)  | memmem tier, ≫10×    |
//! | `prefix`      | literal-prefix ERE         | prefilter + DFA, ≫10×|
//! | `class_heavy` | classes only, no literal   | lazy DFA             |
//! | `adversarial` | NFA blow-up shape          | lazy DFA, stays linear|
//!
//! Each case is timed as a per-line `is_match` sweep (the `grep` inner
//! loop) for both engines, and the two engines' match counts are
//! asserted equal first — a benchmark that measures a wrong answer is
//! worse than no benchmark.

use std::time::{Duration, Instant};

use pash_regex::compile::compile;
use pash_regex::parser::parse;
use pash_regex::pikevm::PikeVm;
use pash_regex::{Regex, Syntax};

use crate::dataplane::{measure, Sample};

/// One benchmark case: a pattern and the corpus it scans.
pub struct Case {
    /// Series name (`fixed`, `prefix`, …).
    pub name: &'static str,
    /// The ERE under test.
    pub pattern: &'static str,
    /// Haystack bytes, newline-delimited lines.
    pub corpus: Vec<u8>,
}

/// Builds the four standard cases at roughly `bytes` of corpus each.
pub fn standard_cases(bytes: usize) -> Vec<Case> {
    // Literal-bearing cases: mostly-missing needle, a few real hits
    // spliced in so the verify path is exercised too.
    let mut text = pash_workloads::text_corpus(97, bytes);
    let hit_every = (bytes / 8).max(512);
    let mut at = hit_every;
    while at < text.len() {
        // Splice at a line boundary to keep lines realistic.
        if let Some(nl) = text[at..].iter().position(|&b| b == b'\n') {
            let pos = at + nl + 1;
            let hit = b"wombat1729 spliced hit line\n";
            text.splice(pos..pos, hit.iter().copied());
            at = pos + hit.len() + hit_every;
        } else {
            break;
        }
    }
    // Adversarial corpus: long runs of `a` — the worst case for the
    // `(a|a)*`-shaped pattern below, which blows up a backtracker.
    let mut adversarial = Vec::with_capacity(bytes + 64);
    while adversarial.len() < bytes {
        adversarial.extend(std::iter::repeat_n(b'a', 199));
        adversarial.push(b'\n');
    }
    vec![
        Case {
            name: "fixed",
            pattern: "wombat1729",
            corpus: text.clone(),
        },
        Case {
            name: "prefix",
            pattern: "wombat[0-9]+",
            corpus: text.clone(),
        },
        Case {
            name: "class_heavy",
            pattern: "[a-z]+[0-9][0-9a-z]*",
            corpus: text,
        },
        Case {
            name: "adversarial",
            pattern: "(a|a)*(a|aa)*b",
            corpus: adversarial,
        },
    ]
}

/// Counts matching lines with the tiered matcher; returns the wall
/// time via the out-param count for verification.
fn sweep_tiered(re: &Regex, corpus: &[u8], count: &mut usize) -> Duration {
    let mut m = re.matcher();
    let start = Instant::now();
    let mut n = 0usize;
    for line in corpus.split_inclusive(|&b| b == b'\n') {
        let line = line.strip_suffix(b"\n").unwrap_or(line);
        if m.is_match(line) {
            n += 1;
        }
    }
    *count = n;
    start.elapsed()
}

/// The same sweep on the Pike VM alone — the pre-tiering engine, and
/// still the capture/fallback tier.
fn sweep_pikevm(pattern: &str, corpus: &[u8], count: &mut usize) -> Duration {
    let prog = compile(&parse(pattern, Syntax::Ere).expect("parse")).expect("compile");
    let vm = PikeVm::new(&prog);
    let start = Instant::now();
    let mut n = 0usize;
    for line in corpus.split_inclusive(|&b| b == b'\n') {
        let line = line.strip_suffix(b"\n").unwrap_or(line);
        if vm.find_at(line, 0).is_some() {
            n += 1;
        }
    }
    *count = n;
    start.elapsed()
}

/// Runs every case through both engines; returns the samples
/// (`{case}_tiered` / `{case}_pikevm`, interleaved) after asserting
/// the engines agree on every corpus.
pub fn run_suite(bytes: usize, runs: usize) -> Vec<Sample> {
    let mut samples = Vec::new();
    for case in standard_cases(bytes) {
        let re = Regex::new(case.pattern, Syntax::Ere).expect("pattern compiles");
        let mut tiered_count = 0usize;
        let mut pike_count = 0usize;
        sweep_tiered(&re, &case.corpus, &mut tiered_count);
        sweep_pikevm(case.pattern, &case.corpus, &mut pike_count);
        assert_eq!(
            tiered_count, pike_count,
            "engines disagree on `{}`",
            case.pattern
        );
        let len = case.corpus.len();
        samples.push(measure(
            &format!("regex_{}_tiered", case.name),
            len,
            runs,
            || sweep_tiered(&re, &case.corpus, &mut tiered_count),
        ));
        samples.push(measure(
            &format!("regex_{}_pikevm", case.name),
            len,
            runs,
            || sweep_pikevm(case.pattern, &case.corpus, &mut pike_count),
        ));
    }
    samples
}

/// Per-case speedup of the tiered engine over the Pike VM, derived
/// from a suite's samples: `[(case, ×factor)]`.
pub fn speedups(samples: &[Sample]) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for s in samples {
        if let Some(case) = s.name.strip_suffix("_tiered") {
            let base = samples.iter().find(|b| b.name == format!("{case}_pikevm"));
            if let Some(base) = base {
                let ratio = s.throughput() / base.throughput().max(1e-9);
                out.push((
                    case.strip_prefix("regex_").unwrap_or(case).to_string(),
                    ratio,
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_runs_at_tiny_size() {
        let samples = run_suite(8 * 1024, 1);
        assert_eq!(samples.len(), 8);
        for s in &samples {
            assert!(s.throughput() > 0.0, "{} has zero throughput", s.name);
            assert!(s.to_json().contains(&s.name));
        }
        let sp = speedups(&samples);
        assert_eq!(sp.len(), 4);
        assert!(sp.iter().any(|(n, _)| n == "fixed"));
    }

    #[test]
    fn cases_have_some_hits_for_literal_patterns() {
        // The spliced hit lines keep the verify path honest.
        let cases = standard_cases(64 * 1024);
        let fixed = &cases[0];
        let re = Regex::new(fixed.pattern, Syntax::Ere).expect("compile");
        let mut n = 0usize;
        sweep_tiered(&re, &fixed.corpus, &mut n);
        assert!(n > 0, "no hit lines spliced into the corpus");
        // But the corpus is still overwhelmingly non-matching.
        let lines = fixed.corpus.split(|&b| b == b'\n').count();
        assert!(n * 4 < lines);
    }

    #[test]
    fn adversarial_case_is_linear_for_both_engines() {
        // Doubling the corpus should roughly double the work, never
        // square it; generous factor to stay robust under CI noise.
        let c1 = &standard_cases(16 * 1024)[3];
        let c2 = &standard_cases(64 * 1024)[3];
        let re = Regex::new(c1.pattern, Syntax::Ere).expect("compile");
        let mut n = 0usize;
        let t1 = sweep_tiered(&re, &c1.corpus, &mut n).max(Duration::from_micros(50));
        let t2 = sweep_tiered(&re, &c2.corpus, &mut n);
        let factor = t2.as_secs_f64() / t1.as_secs_f64();
        assert!(
            factor < 64.0,
            "4x corpus took {factor:.1}x the time — super-linear blow-up"
        );
    }
}
