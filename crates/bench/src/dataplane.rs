//! Data-plane microbenchmarks: the byte-shuffling primitives of §5.2
//! (pipes, splitters, segment reads, eager relays) measured in
//! isolation.
//!
//! The paper's speedups assume edges move data at memory bandwidth;
//! these benchmarks put a number on how close the runtime gets. They
//! are shared between the `dataplane` binary (which emits
//! `BENCH_dataplane.json` so successive PRs have a perf trajectory)
//! and the criterion bench of the same name.

use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pash_coreutils::fs::{Fs, MemFs};
use pash_coreutils::Registry;
use pash_runtime::agg::{run_aggregator, AggInput};
use pash_runtime::fileseg::read_segment;
use pash_runtime::pipe::pipe;
use pash_runtime::relay::{run_relay, RelayMode};
use pash_runtime::split::split_general;

/// A writer that counts bytes and discards them — the cheapest
/// possible sink, so the primitive under test dominates the time.
struct CountSink(Arc<AtomicUsize>);

impl Write for CountSink {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.fetch_add(buf.len(), Ordering::Relaxed);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Transfers `total` bytes through a `capacity`-byte pipe (writer
/// thread, reader on the caller's thread); returns the wall time.
pub fn time_pipe_transfer(capacity: usize, total: usize) -> Duration {
    let (mut w, mut r) = pipe(capacity);
    let chunk = vec![0x61u8; 64 * 1024];
    let start = Instant::now();
    std::thread::scope(|s| {
        let chunk = &chunk;
        s.spawn(move || {
            let mut left = total;
            while left > 0 {
                let n = chunk.len().min(left);
                if w.write_all(&chunk[..n]).is_err() {
                    break;
                }
                left -= n;
            }
            // Thread end drops the moved writer: EOF for the reader.
        });
        let mut buf = vec![0u8; 64 * 1024];
        let mut seen = 0usize;
        loop {
            let n = r.read(&mut buf).expect("pipe read");
            if n == 0 {
                break;
            }
            seen += n;
        }
        assert_eq!(seen, total, "pipe transfer lost bytes");
    });
    start.elapsed()
}

/// Splits `corpus` into `k` counting sinks; returns the wall time.
pub fn time_split(corpus: &[u8], k: usize) -> Duration {
    let counter = Arc::new(AtomicUsize::new(0));
    let mut outs: Vec<Box<dyn Write + Send>> = (0..k)
        .map(|_| Box::new(CountSink(counter.clone())) as Box<dyn Write + Send>)
        .collect();
    let mut r = io::BufReader::new(io::Cursor::new(corpus));
    let start = Instant::now();
    split_general(&mut r, &mut outs).expect("split");
    let elapsed = start.elapsed();
    assert!(
        counter.load(Ordering::Relaxed) >= corpus.len(),
        "split dropped bytes"
    );
    elapsed
}

/// Reads all `k` segments of `path` (the k-wide stage's aggregate
/// input I/O); returns the wall time.
pub fn time_segment_read(fs: &Arc<dyn Fs>, path: &str, k: usize) -> Duration {
    let expected = fs.size(path).expect("size") as usize;
    let start = Instant::now();
    let mut total = 0usize;
    for part in 0..k {
        total += read_segment(fs, path, part, k).expect("segment").len();
    }
    let elapsed = start.elapsed();
    assert_eq!(total, expected, "segments do not cover the file");
    elapsed
}

/// Splits a corpus into `k` contiguous sorted runs — the shape of the
/// partial outputs that parallel `sort` copies hand the aggregator.
pub fn sorted_chunks(corpus: &[u8], k: usize) -> Vec<Vec<u8>> {
    let mut lines: Vec<&[u8]> = corpus.split_inclusive(|&b| b == b'\n').collect();
    lines.sort_unstable();
    let k = k.max(1);
    let per = lines.len().div_ceil(k);
    lines
        .chunks(per.max(1))
        .map(|chunk| chunk.concat())
        .chain(std::iter::repeat_with(Vec::new))
        .take(k)
        .collect()
}

/// Merges `chunks` through the `sort` aggregator (the batched
/// [`pash_runtime::scan::LineScanner`] input path) into a counting
/// sink; returns the wall time.
pub fn time_agg_merge(registry: &Registry, fs: &Arc<dyn Fs>, chunks: &[Vec<u8>]) -> Duration {
    let total: usize = chunks.iter().map(|c| c.len()).sum();
    let inputs: Vec<AggInput> = chunks
        .iter()
        .map(|c| Box::new(io::Cursor::new(c.clone())) as AggInput)
        .collect();
    let counter = Arc::new(AtomicUsize::new(0));
    let mut out = CountSink(counter.clone());
    let argv = vec!["pash-agg-sort".to_string()];
    let start = Instant::now();
    run_aggregator(&argv, inputs, &mut out, registry, fs.clone()).expect("agg merge");
    let elapsed = start.elapsed();
    assert_eq!(counter.load(Ordering::Relaxed), total, "merge lost bytes");
    elapsed
}

/// Runs a full eager relay over `data`; returns the wall time.
pub fn time_relay(data: &[u8]) -> Duration {
    let owned = data.to_vec();
    let counter = Arc::new(AtomicUsize::new(0));
    let mut out = CountSink(counter.clone());
    let start = Instant::now();
    let n = run_relay(io::Cursor::new(owned), &mut out, RelayMode::Full).expect("relay");
    let elapsed = start.elapsed();
    assert_eq!(n as usize, data.len(), "relay lost bytes");
    elapsed
}

/// One benchmark's aggregated measurement.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Benchmark name.
    pub name: String,
    /// Bytes moved per iteration.
    pub bytes: usize,
    /// Timed iterations.
    pub runs: usize,
    /// Fastest iteration.
    pub min: Duration,
    /// Median iteration.
    pub median: Duration,
    /// Mean iteration.
    pub mean: Duration,
}

impl Sample {
    /// Throughput of the median iteration, in bytes per second.
    pub fn throughput(&self) -> f64 {
        self.bytes as f64 / self.median.as_secs_f64().max(1e-12)
    }

    /// One JSON object (hand-rolled; the workspace has no serde).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"bytes\":{},\"runs\":{},\"min_s\":{:.6},\"median_s\":{:.6},\"mean_s\":{:.6},\"throughput_bytes_per_s\":{:.0}}}",
            self.name,
            self.bytes,
            self.runs,
            self.min.as_secs_f64(),
            self.median.as_secs_f64(),
            self.mean.as_secs_f64(),
            self.throughput(),
        )
    }
}

/// Times `f` for `runs` iterations (after one warm-up) and aggregates.
pub fn measure(name: &str, bytes: usize, runs: usize, mut f: impl FnMut() -> Duration) -> Sample {
    let runs = runs.max(1);
    f(); // warm-up
    let mut times: Vec<Duration> = (0..runs).map(|_| f()).collect();
    times.sort_unstable();
    let mean = times.iter().sum::<Duration>() / times.len() as u32;
    Sample {
        name: name.to_string(),
        bytes,
        runs,
        min: times[0],
        median: times[times.len() / 2],
        mean,
    }
}

/// The standard suite at a given transfer size; `runs` iterations per
/// benchmark. Covers the four primitives the executor's edges use,
/// plus the aggregator merge path.
pub fn run_suite(bytes: usize, runs: usize) -> Vec<Sample> {
    let corpus = pash_workloads::text_corpus(41, bytes);
    let mem = MemFs::new();
    mem.add("seg.txt", corpus.clone());
    let fs: Arc<dyn Fs> = Arc::new(mem);
    let registry = Registry::standard();
    let chunks = sorted_chunks(&corpus, 8);
    let merge_bytes: usize = chunks.iter().map(|c| c.len()).sum();
    let chunks32 = sorted_chunks(&corpus, 32);
    let merge32_bytes: usize = chunks32.iter().map(|c| c.len()).sum();
    vec![
        measure("pipe_64k_cap", bytes, runs, || {
            time_pipe_transfer(64 * 1024, bytes)
        }),
        measure("pipe_4k_cap", bytes, runs, || {
            time_pipe_transfer(4 * 1024, bytes)
        }),
        measure("split_8way", bytes, runs, || time_split(&corpus, 8)),
        measure("segment_read_8way", bytes, runs, || {
            time_segment_read(&fs, "seg.txt", 8)
        }),
        measure("relay_full", bytes, runs, || time_relay(&corpus)),
        measure("agg_sort_merge_8way", merge_bytes, runs, || {
            time_agg_merge(&registry, &fs, &chunks)
        }),
        // High fan-in is where the loser tree's O(log k) replay beats
        // the old O(k) head scan.
        measure("agg_sort_merge_32way", merge32_bytes, runs, || {
            time_agg_merge(&registry, &fs, &chunks32)
        }),
    ]
}

/// Human-readable throughput, e.g. `312.4 MiB/s`.
pub fn fmt_throughput(bytes_per_sec: f64) -> String {
    const MIB: f64 = 1024.0 * 1024.0;
    if bytes_per_sec >= MIB * 1024.0 {
        format!("{:.2} GiB/s", bytes_per_sec / (MIB * 1024.0))
    } else if bytes_per_sec >= MIB {
        format!("{:.1} MiB/s", bytes_per_sec / MIB)
    } else {
        format!("{:.1} KiB/s", bytes_per_sec / 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_runs_at_tiny_size() {
        let samples = run_suite(4 * 1024, 1);
        assert_eq!(samples.len(), 7);
        for s in &samples {
            assert!(s.throughput() > 0.0, "{} has zero throughput", s.name);
            assert!(s.to_json().contains(&s.name));
        }
        assert!(samples.iter().any(|s| s.name == "agg_sort_merge_8way"));
        assert!(samples.iter().any(|s| s.name == "agg_sort_merge_32way"));
    }

    #[test]
    fn sorted_chunks_cover_and_order() {
        let corpus = pash_workloads::text_corpus(7, 4 * 1024);
        let chunks = sorted_chunks(&corpus, 8);
        assert_eq!(chunks.len(), 8);
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        assert_eq!(total, corpus.len());
        for c in &chunks {
            let lines: Vec<&[u8]> = c.split_inclusive(|&b| b == b'\n').collect();
            assert!(lines.windows(2).all(|w| w[0] <= w[1]), "chunk not sorted");
        }
    }

    #[test]
    fn throughput_formatting() {
        assert!(fmt_throughput(2.0 * 1024.0 * 1024.0).contains("MiB/s"));
        assert!(fmt_throughput(500.0).contains("KiB/s"));
    }
}
