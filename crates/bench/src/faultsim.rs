//! Fault-recovery cost series: what surviving an injected fault costs
//! on the simulated 64-core testbed.
//!
//! The runtime's supervisor retries a failed parallel region with
//! exponential backoff and, once the retry budget is exhausted,
//! re-executes the aligned width-1 sequential plan. The series prices
//! that state machine with the same fluid engine as the rest of the
//! bench suite, recording four deterministic points:
//!
//! * the fault-free sequential and parallel runtimes (the endpoints);
//! * a transient fault cleared by one retry;
//! * a persistent fault that burns the whole retry budget and falls
//!   back to sequential;
//! * the remote backend's ladder: a clean shipped run, a reroute after
//!   one dropped worker, and a dead pool degrading to the local rung.
//!
//! The headline numbers: [`fallback_overhead`] is the persistent-fault
//! episode relative to the *sequential* baseline — the supervisor's
//! guarantee is that even when parallelism is hostile, the user pays
//! only a bounded premium over never having parallelized at all.
//! [`remote_reroute_overhead`] is the dropped-worker episode relative
//! to the undisturbed remote run — losing a worker mid-region costs a
//! bounded constant, not a rerun-from-scratch cliff.

use std::time::Duration;

use pash_core::compile::PashConfig;
use pash_sim::{
    simulate_recovery_compiled, simulate_remote_recovery_compiled, CostModel, FaultProfile,
    InputSizes, RemoteProfile, SimConfig,
};

use crate::dataplane::Sample;

/// The priced pipeline: a stateless three-stage one-liner, the shape
/// the compiler parallelizes best (and thus the shape where a fault
/// hurts most).
const SCRIPT: &str =
    "cat in.txt | tr A-Z a-z | grep '(a|b|c|d|e)+(f|g|h)*(ij|kl)+xyz' | tr -d q > out.txt";

/// Parallel width for the faulted run.
const WIDTH: usize = 4;

/// Simulated input size: large enough that compute dominates the
/// per-region setup constants.
const SIM_INPUT_BYTES: f64 = 64e6;

fn price(fp: &FaultProfile) -> pash_sim::RecoveryReport {
    let cfg = PashConfig {
        width: WIDTH,
        ..Default::default()
    };
    let sizes: InputSizes = [("in.txt".to_string(), SIM_INPUT_BYTES)]
        .into_iter()
        .collect();
    simulate_recovery_compiled(
        SCRIPT,
        &cfg,
        &sizes,
        &CostModel::default(),
        &SimConfig::default(),
        fp,
    )
    .expect("compile fault sim script")
}

fn price_remote(rp: &RemoteProfile) -> pash_sim::RemoteRecoveryReport {
    let cfg = PashConfig {
        width: WIDTH,
        ..Default::default()
    };
    let sizes: InputSizes = [("in.txt".to_string(), SIM_INPUT_BYTES)]
        .into_iter()
        .collect();
    simulate_remote_recovery_compiled(
        SCRIPT,
        &cfg,
        &sizes,
        &CostModel::default(),
        &SimConfig::default(),
        rp,
    )
    .expect("compile fault sim script")
}

fn sim_sample(name: &str, secs: f64) -> Sample {
    Sample {
        name: name.to_string(),
        bytes: SIM_INPUT_BYTES as usize,
        runs: 1,
        min: Duration::from_secs_f64(secs),
        median: Duration::from_secs_f64(secs),
        mean: Duration::from_secs_f64(secs),
    }
}

/// The fault-recovery series (all simulator points; deterministic).
pub fn run_series() -> Vec<Sample> {
    let transient = price(&FaultProfile {
        retries: 1,
        fallback: false,
        ..Default::default()
    });
    let persistent = price(&FaultProfile::default());
    let remote = price_remote(&RemoteProfile::default());
    vec![
        sim_sample("sim_fault_free_seq", persistent.sequential_seconds),
        sim_sample("sim_fault_free_par4", persistent.parallel_seconds),
        sim_sample("sim_fault_transient_retry", transient.total_seconds),
        sim_sample("sim_fault_persistent_fallback", persistent.total_seconds),
        sim_sample("sim_remote_clean_par4", remote.remote_seconds),
        sim_sample("sim_remote_reroute", remote.reroute_seconds),
        sim_sample("sim_remote_dead_pool_local", remote.local_degraded_seconds),
    ]
}

/// Persistent-fault episode cost relative to the sequential baseline,
/// from a [`run_series`] result. The CI gate asserts this stays a
/// small constant: detection plus backoff plus one sequential rerun.
pub fn fallback_overhead(samples: &[Sample]) -> Option<f64> {
    let secs = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.median.as_secs_f64())
    };
    Some(secs("sim_fault_persistent_fallback")? / secs("sim_fault_free_seq")?.max(1e-9))
}

/// Remote reroute episode cost relative to the undisturbed remote run,
/// from a [`run_series`] result. The CI gate asserts this stays a
/// small constant: surviving one dropped worker costs the partial
/// doomed attempt plus one backoff plus a clean retry elsewhere.
pub fn remote_reroute_overhead(samples: &[Sample]) -> Option<f64> {
    let secs = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.median.as_secs_f64())
    };
    Some(secs("sim_remote_reroute")? / secs("sim_remote_clean_par4")?.max(1e-9))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_prices_the_recovery_ladder() {
        let samples = run_series();
        assert_eq!(samples.len(), 7);
        let secs = |name: &str| {
            samples
                .iter()
                .find(|s| s.name == name)
                .map(|s| s.median.as_secs_f64())
                .expect("sample present")
        };
        let seq = secs("sim_fault_free_seq");
        let par = secs("sim_fault_free_par4");
        let transient = secs("sim_fault_transient_retry");
        let persistent = secs("sim_fault_persistent_fallback");
        assert!(par < seq, "width-{WIDTH} run {par:.1}s !< seq {seq:.1}s");
        // One retry costs less than burning the budget and rerunning
        // sequentially; both cost more than the undisturbed run.
        assert!(par < transient && transient < persistent);
        // The fallback guarantee: a persistent fault costs the doomed
        // attempts plus one sequential rerun — bounded relative to
        // having never parallelized.
        let overhead = fallback_overhead(&samples).expect("sim samples present");
        assert!(
            overhead > 1.0 && overhead < 2.5,
            "fallback overhead {overhead:.2}x out of expected band"
        );
    }

    #[test]
    fn series_prices_the_remote_ladder() {
        let samples = run_series();
        let secs = |name: &str| {
            samples
                .iter()
                .find(|s| s.name == name)
                .map(|s| s.median.as_secs_f64())
                .expect("sample present")
        };
        let par = secs("sim_fault_free_par4");
        let clean = secs("sim_remote_clean_par4");
        let reroute = secs("sim_remote_reroute");
        let dead = secs("sim_remote_dead_pool_local");
        // Shipping over loopback adds a small constant; it must not
        // dwarf the work itself.
        assert!(clean > par && clean < 1.5 * par, "ship cost out of band");
        // One dropped worker costs the partial attempt plus a clean
        // retry; a dead pool costs every doomed attempt plus the local
        // run — strictly worse, still bounded.
        assert!(clean < reroute && reroute < dead);
        let overhead = remote_reroute_overhead(&samples).expect("sim samples present");
        assert!(
            overhead > 1.0 && overhead < 2.0,
            "remote reroute overhead {overhead:.2}x out of expected band"
        );
        let dead_x = dead / clean.max(1e-9);
        assert!(
            dead_x > overhead && dead_x < 3.5,
            "dead-pool overhead {dead_x:.2}x out of expected band"
        );
    }
}
