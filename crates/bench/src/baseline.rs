//! Baselines for §6.5: a GNU-`parallel`-style naive block
//! parallelizer, and helpers to compare its output against the
//! sequential reference.
//!
//! `naive_parallel` reproduces the "sprinkle `parallel` across the
//! entire program" strategy: split the input into contiguous blocks,
//! run the *whole* pipeline on each block independently, concatenate.
//! No aggregators, no command awareness — which is exactly why it
//! corrupts `sort`/`uniq -c`-style stages (92% wrong output in the
//! paper's bio pipeline).

use std::io;
use std::sync::Arc;

use pash_coreutils::fs::Fs;
use pash_coreutils::{run_command, Registry};

/// Runs a pipeline of commands sequentially over `input`.
pub fn run_pipeline_seq(
    stages: &[Vec<&str>],
    input: &[u8],
    registry: &Registry,
    fs: Arc<dyn Fs>,
) -> io::Result<Vec<u8>> {
    let mut data = input.to_vec();
    for argv in stages {
        let out = run_command(registry, fs.clone(), argv, &data)?;
        data = out.stdout;
    }
    Ok(data)
}

/// The naive GNU-`parallel` strategy: contiguous line blocks, whole
/// pipeline per block, concatenation of block outputs.
pub fn naive_parallel(
    stages: &[Vec<&str>],
    input: &[u8],
    blocks: usize,
    registry: &Registry,
    fs: Arc<dyn Fs>,
) -> io::Result<Vec<u8>> {
    let lines: Vec<&[u8]> = input.split_inclusive(|&b| b == b'\n').collect();
    let k = blocks.max(1);
    let per = lines.len().div_ceil(k);
    let mut out = Vec::new();
    for chunk in lines.chunks(per.max(1)) {
        let block: Vec<u8> = chunk.concat();
        out.extend(run_pipeline_seq(stages, &block, registry, fs.clone())?);
    }
    Ok(out)
}

/// Fraction of output lines that differ between two outputs
/// (symmetric difference over positions, as a percentage).
pub fn diff_fraction(a: &[u8], b: &[u8]) -> f64 {
    let la: Vec<&[u8]> = a.split(|&x| x == b'\n').collect();
    let lb: Vec<&[u8]> = b.split(|&x| x == b'\n').collect();
    let n = la.len().max(lb.len());
    if n == 0 {
        return 0.0;
    }
    let differing = (0..n)
        .filter(|&i| la.get(i).copied() != lb.get(i).copied())
        .count();
    differing as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use pash_coreutils::fs::MemFs;

    fn stages() -> Vec<Vec<&'static str>> {
        vec![
            vec!["tr", "A-Z", "a-z"],
            vec!["sort"],
            vec!["uniq", "-c"],
            vec!["sort", "-rn"],
        ]
    }

    #[test]
    fn sequential_pipeline_works() {
        let reg = Registry::standard();
        let out = run_pipeline_seq(&stages(), b"b\na\nB\na\n", &reg, Arc::new(MemFs::new()))
            .expect("run");
        let s = String::from_utf8(out).expect("utf8");
        assert!(s.starts_with("      2 a\n") || s.starts_with("      2 b\n"));
    }

    #[test]
    fn naive_parallel_single_block_matches_sequential() {
        let reg = Registry::standard();
        let fs: Arc<dyn Fs> = Arc::new(MemFs::new());
        let input = b"b\na\nB\na\nc\nC\n";
        let seq = run_pipeline_seq(&stages(), input, &reg, fs.clone()).expect("seq");
        let par = naive_parallel(&stages(), input, 1, &reg, fs).expect("par");
        assert_eq!(seq, par);
    }

    #[test]
    fn naive_parallel_corrupts_aggregating_stages() {
        // The §6.5 result: block-parallel `sort | uniq -c` double-
        // counts words that span blocks.
        let reg = Registry::standard();
        let fs: Arc<dyn Fs> = Arc::new(MemFs::new());
        let input: Vec<u8> = std::iter::repeat_n(b"same\n".to_vec(), 40)
            .flatten()
            .collect();
        let seq = run_pipeline_seq(&stages(), &input, &reg, fs.clone()).expect("seq");
        let par = naive_parallel(&stages(), &input, 4, &reg, fs).expect("par");
        assert_ne!(seq, par, "naive parallelism must corrupt the counts");
        assert!(diff_fraction(&seq, &par) > 0.5);
    }

    #[test]
    fn diff_fraction_bounds() {
        assert_eq!(diff_fraction(b"a\nb\n", b"a\nb\n"), 0.0);
        assert!(diff_fraction(b"a\n", b"b\n") > 0.0);
        assert_eq!(diff_fraction(b"", b""), 0.0);
    }
}
