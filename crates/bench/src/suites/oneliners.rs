//! The twelve classic one-liners of Tab. 2 / Fig. 7, expressed over
//! this repository's command set.

use pash_coreutils::fs::MemFs;
use pash_sim::InputSizes;
use pash_workloads as wl;

/// The expensive NFA pattern of the Grep benchmark.
pub const COMPLEX_PATTERN: &str = "(th|he|an)+(er|in)*(re|on)+ing";

/// One benchmark script with its metadata.
#[derive(Debug, Clone)]
pub struct Oneliner {
    /// Benchmark name as in Tab. 2.
    pub name: &'static str,
    /// Command-class structure as reported in Tab. 2.
    pub structure: &'static str,
    /// The script (reads `in.txt` / `in2.txt`, writes `out.txt`).
    pub script: String,
    /// Tab. 2's input-size column.
    pub paper_input: &'static str,
    /// Tab. 2's sequential-time column.
    pub paper_seq_time: &'static str,
    /// Whether Fig. 7 shows split configurations for this script.
    pub split_relevant: bool,
    /// Whether the script reads the secondary input `in2.txt`.
    pub two_inputs: bool,
    /// Intermediate files the script materializes (for sim sizing).
    pub intermediates: &'static [&'static str],
    /// Simulator input-scale factor: slow-throughput scripts (e.g.
    /// the spawn-bound Shortest-scripts) are simulated on
    /// proportionally smaller inputs; speedups are scale-stable.
    pub sim_scale: f64,
}

/// The full Tab. 2 suite.
pub fn all() -> Vec<Oneliner> {
    vec![
        Oneliner {
            name: "Grep",
            structure: "3xS",
            script: format!(
                "cat in.txt | tr A-Z a-z | grep '{COMPLEX_PATTERN}' | tr -d , > out.txt"
            ),
            paper_input: "1 GB",
            paper_seq_time: "79m35s",
            split_relevant: false,
            two_inputs: false,
            intermediates: &[],
            sim_scale: 1.0,
        },
        Oneliner {
            name: "Sort",
            structure: "S,P",
            script: "cat in.txt | tr A-Z a-z | sort > out.txt".to_string(),
            paper_input: "10 GB",
            paper_seq_time: "21m46s",
            split_relevant: false,
            two_inputs: false,
            intermediates: &[],
            sim_scale: 1.0,
        },
        Oneliner {
            name: "Top-n",
            structure: "2xS,4xP",
            script: "cat in.txt | tr -cs A-Za-z '\\n' | tr A-Z a-z | sort | uniq -c | sort -rn | head -n 100 > out.txt"
                .to_string(),
            paper_input: "10 GB",
            paper_seq_time: "78m45s",
            split_relevant: false,
            two_inputs: false,
            intermediates: &[],
            sim_scale: 1.0,
        },
        Oneliner {
            name: "Wf",
            structure: "3xS,3xP",
            script: "cat in.txt | tr -cs A-Za-z '\\n' | tr A-Z a-z | tr -d , | sort | uniq -c | sort -rn > out.txt"
                .to_string(),
            paper_input: "10 GB",
            paper_seq_time: "22m30s",
            split_relevant: true,
            two_inputs: false,
            intermediates: &[],
            sim_scale: 1.0,
        },
        Oneliner {
            name: "Grep-light",
            structure: "3xS",
            script: "cat in.txt | tr A-Z a-z | grep the | tr -s ' ' > out.txt".to_string(),
            paper_input: "100 GB",
            paper_seq_time: "1m38s",
            split_relevant: false,
            two_inputs: false,
            intermediates: &[],
            sim_scale: 1.0,
        },
        Oneliner {
            name: "Spell",
            structure: "4xS,3xP",
            script: "cat in.txt | tr -cs A-Za-z '\\n' | tr A-Z a-z | sed 's/s$//' | sort | uniq | comm -13 dict.txt - > out.txt"
                .to_string(),
            paper_input: "3 GB",
            paper_seq_time: "25m07s",
            split_relevant: true,
            two_inputs: false,
            intermediates: &[],
            sim_scale: 1.0,
        },
        Oneliner {
            name: "Shortest-scripts",
            structure: "5xS,2xP",
            script: "cat filelist.txt | grep sh | xargs -n 1 wc -l | sort -n | head -n 15 > out.txt"
                .to_string(),
            paper_input: "85 MB",
            paper_seq_time: "28m45s",
            split_relevant: false,
            two_inputs: false,
            intermediates: &[],
            // The xargs stage runs at fork speed (~0.08 MB/s); keep
            // its simulated runtime manageable.
            sim_scale: 0.02,
        },
        Oneliner {
            name: "Diff",
            structure: "2xS,3xP",
            script: "tr A-Z a-z < in.txt | sort > t1.txt & tr A-Z a-z < in2.txt | sort > t2.txt\ndiff t1.txt t2.txt | wc -l > out.txt"
                .to_string(),
            paper_input: "10 GB",
            paper_seq_time: "25m49s",
            split_relevant: false,
            two_inputs: true,
            intermediates: &["t1.txt", "t2.txt"],
            sim_scale: 1.0,
        },
        Oneliner {
            name: "Bi-grams",
            structure: "3xS,3xP",
            script: "cat in.txt | tr -cs A-Za-z '\\n' | tr A-Z a-z > w1.txt\ntail +2 w1.txt > w2.txt\npaste -d ' ' w1.txt w2.txt | sort | uniq -c > out.txt"
                .to_string(),
            paper_input: "3 GB",
            paper_seq_time: "38m09s",
            split_relevant: true,
            two_inputs: false,
            intermediates: &["w1.txt", "w2.txt"],
            sim_scale: 1.0,
        },
        Oneliner {
            name: "Bi-grams-opt",
            structure: "3xS,P",
            script: "cat in.txt | tr -cs A-Za-z '\\n' | tr A-Z a-z | bigrams-aux | sort | uniq -c > out.txt"
                .to_string(),
            paper_input: "3 GB",
            paper_seq_time: "38m21s",
            split_relevant: true,
            two_inputs: false,
            intermediates: &[],
            sim_scale: 1.0,
        },
        Oneliner {
            name: "Set-diff",
            structure: "5xS,2xP",
            script: "cut -d ' ' -f 1 in.txt | tr A-Z a-z | sort -u > s1.txt & cut -d ' ' -f 1 in2.txt | tr A-Z a-z | sort -u > s2.txt\ncomm -23 s1.txt s2.txt > out.txt"
                .to_string(),
            paper_input: "10 GB",
            paper_seq_time: "51m32s",
            split_relevant: false,
            two_inputs: true,
            intermediates: &["s1.txt", "s2.txt"],
            sim_scale: 1.0,
        },
        Oneliner {
            name: "Sort-sort",
            structure: "S,2xP",
            script: "cat in.txt | tr A-Z a-z | sort | sort -r > out.txt".to_string(),
            paper_input: "10 GB",
            paper_seq_time: "31m26s",
            split_relevant: true,
            two_inputs: false,
            intermediates: &[],
            sim_scale: 1.0,
        },
    ]
}

/// Looks a benchmark up by name.
pub fn by_name(name: &str) -> Option<Oneliner> {
    all().into_iter().find(|o| o.name == name)
}

/// Materializes the benchmark's inputs into a filesystem.
pub fn setup_fs(bench: &Oneliner, bytes: usize, fs: &MemFs) {
    fs.add("in.txt", wl::text_corpus(11, bytes));
    if bench.two_inputs {
        fs.add("in2.txt", wl::text_corpus(13, bytes));
    }
    if bench.script.contains("dict.txt") {
        fs.add("dict.txt", wl::dictionary());
    }
    if bench.script.contains("filelist.txt") {
        // A directory of small "scripts" plus a listing.
        let mut list = String::new();
        for i in 0..40 {
            let path = format!("scripts/s{i:03}.sh");
            let body = wl::text_corpus(100 + i as u64, 200 + (i * 37) % 900);
            fs.add(path.clone(), body);
            list.push_str(&path);
            list.push('\n');
        }
        fs.add("filelist.txt", list.into_bytes());
    }
}

/// File sizes handed to the simulator (paper-scale or scaled-down).
pub fn sim_sizes(bench: &Oneliner, bytes: f64) -> InputSizes {
    let bytes = bytes * bench.sim_scale;
    let mut m: InputSizes = InputSizes::new();
    m.insert("in.txt".to_string(), bytes);
    if bench.two_inputs {
        m.insert("in2.txt".to_string(), bytes);
    }
    m.insert("dict.txt".to_string(), 4e2);
    m.insert("filelist.txt".to_string(), bytes.min(85e6));
    for f in bench.intermediates {
        // Intermediates carry roughly the input volume.
        m.insert(f.to_string(), bytes);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use pash_core::compile::{compile, PashConfig};

    #[test]
    fn all_scripts_compile() {
        for b in all() {
            let out = compile(
                &b.script,
                &PashConfig {
                    width: 4,
                    ..Default::default()
                },
            )
            .unwrap_or_else(|e| panic!("{} failed to compile: {e}", b.name));
            assert!(out.stats.regions >= 1, "{} produced no regions", b.name);
        }
    }

    #[test]
    fn twelve_benchmarks_like_tab2() {
        assert_eq!(all().len(), 12);
    }

    #[test]
    fn setup_provides_referenced_files() {
        let fs = MemFs::new();
        for b in all() {
            setup_fs(&b, 2_000, &fs);
        }
        assert!(fs.read("in.txt").is_ok());
        assert!(fs.read("dict.txt").is_ok());
        assert!(fs.read("filelist.txt").is_ok());
    }
}
