//! The two large use cases: NOAA weather analysis (§6.3, Fig. 1) and
//! Wikipedia web indexing (§6.4).

use pash_coreutils::fs::MemFs;
use pash_parser::expand::StaticEnv;
use pash_sim::InputSizes;
use pash_workloads::{generate_noaa, generate_wiki, NoaaSpec, WikiSpec};

/// The Fig. 1 pipeline over the local mirror (substitutions: `fetch`
/// for `curl`, `unrle` for `gunzip`; see DESIGN.md §2).
pub fn noaa_script(years: std::ops::RangeInclusive<u32>) -> String {
    format!(
        "base=noaa\nfor y in {{{}..{}}}; do\n  cat $base/$y/index.txt | grep rec | tr -s ' ' | cut -d ' ' -f 9 | sed \"s;^;$base/$y/;\" | xargs -n 1 fetch | unrle | cut -c 89-92 | grep -iv 999 | sort -rn | head -n 1 | sed \"s/^/Maximum temperature for $y is: /\"\ndone",
        years.start(),
        years.end()
    )
}

/// Only the max-temperature phase (the book's Hadoop part), for the
/// per-phase speedup numbers of §6.3.
pub fn noaa_compute_script(year: u32) -> String {
    format!("cat noaa-{year}.flat | cut -c 89-92 | grep -iv 999 | sort -rn | head -n 1 > out.txt")
}

/// Sets up the NOAA mirror; returns `(ground truths, spec)`.
pub fn setup_noaa(fs: &MemFs, spec: &NoaaSpec) -> Vec<(u32, u32)> {
    generate_noaa(fs, "noaa", spec)
}

/// Simulator sizes for the NOAA run, at the paper's scale: 82 GB of
/// raw records over six years. Index files are small; the bulk is the
/// fetched record data, modelled through `fetch`'s expansion factor
/// (see [`noaa_cost_model`]).
pub fn noaa_sim_sizes(spec: &NoaaSpec) -> InputSizes {
    let mut m = InputSizes::new();
    for y in spec.years.clone() {
        m.insert(format!("noaa/{y}/index.txt"), NOAA_INDEX_BYTES);
    }
    m
}

/// Paper-scale index size per year (≈1000 station files, ls-style).
pub const NOAA_INDEX_BYTES: f64 = 80e3;

/// The cost model calibrated for the paper-scale NOAA run: the URL
/// stream per year is ≈9 KB after grep/cut/sed; each year fetches
/// ≈4.5 GB of compressed records, which `unrle` expands 3× to the
/// paper's ≈13.7 GB/year of raw data.
pub fn noaa_cost_model() -> pash_sim::CostModel {
    pash_sim::CostModel {
        fetch_expansion: 5.1e5,
        unrle_expansion: 3.0,
        ..Default::default()
    }
}

/// An empty static environment (the NOAA script sets `base` itself).
pub fn noaa_env() -> StaticEnv {
    StaticEnv::new()
}

/// The §6.4 web-indexing pipeline: fetch pages, extract text, apply
/// NLP-ish stages, index by stemmed term frequency. `html-to-text` and
/// `word-stem` stand in for the original's JavaScript and Python
/// stages; each needed one annotation record.
pub fn wiki_script() -> String {
    "cat wiki/urls.txt | xargs -n 1 fetch | html-to-text | tr -cs A-Za-z '\\n' | tr A-Z a-z | word-stem | sort | uniq -c | sort -rn > index.txt"
        .to_string()
}

/// Sets up the wiki mirror.
pub fn setup_wiki(fs: &MemFs, spec: &WikiSpec) {
    generate_wiki(fs, "wiki", spec)
}

/// Simulator sizes for the wiki run.
pub fn wiki_sim_sizes(spec: &WikiSpec) -> InputSizes {
    let mut m = InputSizes::new();
    m.insert("wiki/urls.txt".to_string(), spec.pages as f64 * 45.0);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use pash_core::compile::{compile, PashConfig};

    #[test]
    fn noaa_script_compiles_and_unrolls() {
        let src = noaa_script(2015..=2017);
        let out = compile(
            &src,
            &PashConfig {
                width: 4,
                unroll_for: true,
                ..Default::default()
            },
        )
        .expect("compile");
        // One region per unrolled year.
        assert_eq!(out.stats.regions, 3);
    }

    #[test]
    fn wiki_script_compiles() {
        let out = compile(
            &wiki_script(),
            &PashConfig {
                width: 4,
                ..Default::default()
            },
        )
        .expect("compile");
        assert_eq!(out.stats.regions, 1);
        // The annotated non-POSIX stages parallelize: expect many
        // command copies.
        assert!(out.stats.nodes.commands > 10);
    }
}
