//! The Unix50 suite (§6.2): 34 pipelines in the spirit of the Bell
//! Labs Unix game solutions — written by non-experts, 2–12 stages,
//! heavy use of standard commands under varied flags.
//!
//! The original solutions process chapters of "The Unix Game" corpus;
//! ours run over a generated columnar corpus (`unix50.txt`). The suite
//! deliberately includes the paper's three outcome groups:
//! * pipelines PaSh accelerates (the majority);
//! * pipelines with non-parallelizable stages (`sed` with addresses,
//!   `tail +N`, unknown commands standing in for `awk`) — no speedup;
//! * pipelines dominated by `head` on tiny effective input — slowdown.

use pash_coreutils::fs::MemFs;
use pash_sim::InputSizes;
use pash_workloads as wl;

/// One Unix50-style pipeline.
#[derive(Debug, Clone)]
pub struct Unix50 {
    /// Pipeline index (as in Fig. 8's x-axis).
    pub idx: usize,
    /// The script.
    pub script: &'static str,
    /// Why this pipeline behaves the way it does.
    pub note: &'static str,
}

/// All 34 pipelines.
pub fn all() -> Vec<Unix50> {
    let scripts: Vec<(&'static str, &'static str)> = vec![
        ("cat unix50.txt | tr A-Z a-z | sort > out.txt", "sort-bound"),
        ("cat unix50.txt | cut -d ' ' -f 1 | sort | uniq -c | sort -rn > out.txt", "word ranking"),
        ("cat unix50.txt | head -n 3 > out.txt", "head: tiny work, setup dominates"),
        ("cat unix50.txt | grep the | wc -l > out.txt", "grep+count"),
        ("cat unix50.txt | cut -d ' ' -f 2 | sort -n > out.txt", "numeric sort"),
        ("cat unix50.txt | tr -cs A-Za-z '\\n' | sort -u > out.txt", "vocabulary"),
        ("cat unix50.txt | cut -d ' ' -f 1,3 | tr A-Z a-z | sort | uniq > out.txt", "pair dedup"),
        ("cat unix50.txt | rev | cut -d ' ' -f 1 | rev > out.txt", "last field via rev"),
        ("cat unix50.txt | grep -v the | grep river | wc -l > out.txt", "double filter"),
        ("cat unix50.txt | tr A-Z a-z | grep mountain | cut -d ' ' -f 2 | sort -rn | head -n 5 > out.txt", "top values"),
        ("cat unix50.txt | sed 's/ /_/' | sort > out.txt", "stateless sed"),
        ("cat unix50.txt | cut -d ' ' -f 4 | grep 9 | sort -n | uniq > out.txt", "digit filter"),
        ("cat unix50.txt | wc -lw > out.txt", "plain counting"),
        ("awk-reorder unix50.txt | sort -rn > out.txt", "awk column reorder: unknown command blocks PaSh"),
        ("cat unix50.txt | tr A-Z a-z | tr -d , | sort | uniq -c | sort -rn | head -n 10 > out.txt", "frequency top-10"),
        ("cat unix50.txt | cut -d ' ' -f 1 | sort > out.txt", "first column"),
        ("cat unix50.txt | grep -c river > out.txt", "grep -c aggregation"),
        ("cat unix50.txt | tr ' ' '\\n' | grep -v '^$' | sort -u | wc -l > out.txt", "unique token count"),
        ("cat unix50.txt | sort | uniq -c | sort -rn > out.txt", "line frequencies"),
        ("cat unix50.txt | head -n 1 | tr A-Z a-z > out.txt", "head -1: slowdown group"),
        ("cat unix50.txt | cut -d ' ' -f 3 | sort -n | tail -n 3 > out.txt", "max-3 via tail"),
        ("cat unix50.txt | rev | sort > out.txt", "reversed sort"),
        ("cat unix50.txt | tr A-Z a-z | fold -w 16 | sort -u > out.txt", "fold lines"),
        ("cat unix50.txt | grep -n the | cut -d : -f 1 | head -n 5 > out.txt", "line numbers"),
        ("sed -n '1,5p' unix50.txt | cut -d ' ' -f 1 > out.txt", "sed address range: not parallelizable"),
        ("cat unix50.txt | sed '2d' | wc -l > out.txt", "sed delete address: not parallelizable"),
        ("cat unix50.txt | nl | tail -n 2 > out.txt", "nl: no aggregator"),
        ("cat unix50.txt | cut -d ' ' -f 2 | sort -n | uniq | wc -l > out.txt", "distinct numbers"),
        ("cat unix50.txt | tr -cs A-Za-z '\\n' | tr A-Z a-z | sort | uniq -c | sort -rn | head -n 1 > out.txt", "most common word"),
        ("tail +2 unix50.txt | cut -d ' ' -f 1 > out.txt", "tail +2 prefix drop: not parallelizable"),
        ("cat unix50.txt | grep '[0-9]' | wc -l > out.txt", "digit lines"),
        ("cat unix50.txt | tr A-Z a-z | sed 's/river/RIVER/' | grep RIVER | wc -l > out.txt", "sed+grep chain"),
        ("cat unix50.txt | cut -d ' ' -f 1 | sort -u | comm -23 - sorted.txt > out.txt", "comm against sorted list"),
        ("cat unix50.txt | tr A-Z a-z | sort | sort -rn > out.txt", "double sort"),
    ];
    scripts
        .into_iter()
        .enumerate()
        .map(|(idx, (script, note))| Unix50 { idx, script, note })
        .collect()
}

/// Materializes the suite's inputs.
pub fn setup_fs(bytes: usize, fs: &MemFs) {
    let rows = (bytes / 24).max(16);
    fs.add("unix50.txt", wl::columnar_corpus(29, rows, 4));
    // The comm pipeline needs a sorted reference list.
    let mut words: Vec<&str> = vec!["and", "data", "river", "the", "zebra"];
    words.sort_unstable();
    let mut sorted = Vec::new();
    for w in words {
        sorted.extend_from_slice(w.as_bytes());
        sorted.push(b'\n');
    }
    fs.add("sorted.txt", sorted);
}

/// Simulator input sizes.
pub fn sim_sizes(bytes: f64) -> InputSizes {
    let mut m = InputSizes::new();
    m.insert("unix50.txt".to_string(), bytes);
    m.insert("sorted.txt".to_string(), 1e3);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use pash_core::compile::{compile, PashConfig};

    #[test]
    fn thirty_four_pipelines() {
        assert_eq!(all().len(), 34);
    }

    #[test]
    fn all_pipelines_compile() {
        for p in all() {
            compile(p.script, &PashConfig::default())
                .unwrap_or_else(|e| panic!("pipeline {} failed: {e}", p.idx));
        }
    }

    #[test]
    fn stage_depth_matches_paper_range() {
        // "expressed as pipelines with 2–12 stages (avg.: 5.58)".
        let mut total = 0usize;
        for p in all() {
            let stages = p.script.split('|').count();
            assert!((1..=12).contains(&stages), "pipeline {}", p.idx);
            total += stages;
        }
        let avg = total as f64 / all().len() as f64;
        assert!((3.0..7.0).contains(&avg), "avg stages {avg:.2}");
    }

    #[test]
    fn includes_non_parallelizable_group() {
        let blocked: Vec<usize> = all()
            .iter()
            .filter(|p| p.note.contains("not parallelizable") || p.note.contains("blocks"))
            .map(|p| p.idx)
            .collect();
        assert!(blocked.len() >= 4, "need a no-speedup group: {blocked:?}");
    }
}
