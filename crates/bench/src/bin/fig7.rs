//! Regenerates Fig. 7: speedup as a function of parallelism (2–64×)
//! for the one-liner suite under the five runtime configurations,
//! plus the average-speedup series and the COST metric.

use pash_bench::suites::oneliners;
use pash_bench::Fig7Config;
use pash_sim::{simulate_compiled, CostModel, SimConfig};

fn main() {
    let sim_mb: f64 = std::env::var("PASH_BENCH_MB")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64.0);
    let widths = [2usize, 4, 8, 16, 32, 64];
    let cm = CostModel::default();
    let sim_cfg = SimConfig::default();
    println!("Fig. 7: speedup vs parallelism (simulated, input {sim_mb} MB)\n");

    let mut best_at_width: Vec<Vec<f64>> = vec![Vec::new(); widths.len()];
    let mut cost_per_script: Vec<(String, Option<usize>)> = Vec::new();

    for b in oneliners::all() {
        if b.name == "Grep-light" {
            // Shown in Tab. 2, not in Fig. 7 (kept in tab2/EXPERIMENTS).
            continue;
        }
        let sizes = oneliners::sim_sizes(&b, sim_mb * 1e6);
        let seq = simulate_compiled(
            &b.script,
            &Fig7Config::Parallel.pash_config(1),
            &sizes,
            &cm,
            &sim_cfg,
        )
        .expect("sequential sim")
        .seconds;
        println!("{} (seq {:.1}s):", b.name, seq);
        println!(
            "  {:<16} {}",
            "config",
            widths.map(|w| format!("{w:>6}x")).join(" ")
        );
        let mut best_per_width = vec![0.0f64; widths.len()];
        for config in Fig7Config::all() {
            // Only relevant configurations are shown (figure caption).
            if !b.split_relevant && matches!(config, Fig7Config::ParSplit | Fig7Config::ParBSplit) {
                continue;
            }
            let mut row = String::new();
            for (wi, &w) in widths.iter().enumerate() {
                let par =
                    simulate_compiled(&b.script, &config.pash_config(w), &sizes, &cm, &sim_cfg)
                        .expect("parallel sim")
                        .seconds;
                let speedup = seq / par;
                best_per_width[wi] = best_per_width[wi].max(speedup);
                row.push_str(&format!(" {speedup:6.2}"));
            }
            println!("  {:<16}{row}", config.label());
        }
        for (wi, s) in best_per_width.iter().enumerate() {
            best_at_width[wi].push(*s);
        }
        let cost = widths
            .iter()
            .zip(&best_per_width)
            .find(|(_, &s)| s > 1.0)
            .map(|(&w, _)| w);
        cost_per_script.push((b.name.to_string(), cost));
        println!();
    }

    println!("Average speedup of the best configuration per width:");
    print!("  paper: 1.97, 3.50, 5.78, 8.83, 10.96, 13.47\n  ours: ");
    for (wi, w) in widths.iter().enumerate() {
        let avg: f64 = best_at_width[wi].iter().sum::<f64>() / best_at_width[wi].len() as f64;
        print!(" {avg:.2} ({w}x)");
    }
    println!("\n\nCOST (min parallelism beating sequential; paper: 2 for all):");
    for (name, cost) in cost_per_script {
        println!(
            "  {:<18} {}",
            name,
            cost.map(|c| c.to_string()).unwrap_or_else(|| ">64".into())
        );
    }
}
