//! Data-plane microbenchmark driver.
//!
//! Measures the runtime's byte-shuffling primitives (pipe transfer,
//! split, segment read, eager relay) and writes the results to
//! `BENCH_dataplane.json` so successive PRs can track the perf
//! trajectory.
//!
//! Usage: `dataplane [--size small|default|large] [--out PATH]`

use std::io::Write;

use pash_bench::dataplane::{fmt_throughput, run_suite};
use pash_bench::{faultsim, rsplitbench};

fn main() {
    let mut size = "default".to_string();
    let mut out_path = "BENCH_dataplane.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--size" => size = args.next().unwrap_or_else(|| usage()),
            "--out" => out_path = args.next().unwrap_or_else(|| usage()),
            _ => {
                usage();
            }
        }
    }
    let (bytes, runs) = match size.as_str() {
        "small" => (64 * 1024, 3),
        "default" => (1024 * 1024, 7),
        "large" => (8 * 1024 * 1024, 5),
        _ => usage(),
    };

    println!("dataplane microbench: {bytes} bytes/iter, {runs} runs\n");
    let mut samples = run_suite(bytes, runs);
    samples.extend(rsplitbench::run_series(bytes, runs));
    samples.extend(faultsim::run_series());
    let speedup = rsplitbench::rr_speedup(&samples).expect("rsplit sim samples");
    let fault_overhead = faultsim::fallback_overhead(&samples).expect("fault sim samples");
    let remote_overhead = faultsim::remote_reroute_overhead(&samples).expect("remote sim samples");
    println!(
        "{:<20} {:>12} {:>12} {:>12} {:>14}",
        "bench", "min", "median", "mean", "throughput"
    );
    for s in &samples {
        println!(
            "{:<20} {:>12.3?} {:>12.3?} {:>12.3?} {:>14}",
            s.name,
            s.min,
            s.median,
            s.mean,
            fmt_throughput(s.throughput())
        );
    }

    println!("\nr_split vs skewed general split (simulated, width 8): {speedup:.2}x");
    println!("persistent-fault fallback vs sequential baseline (simulated): {fault_overhead:.2}x");
    println!("remote reroute vs undisturbed remote run (simulated): {remote_overhead:.2}x");

    let json = format!(
        "{{\"bench\":\"dataplane\",\"bytes_per_iter\":{},\"runs\":{},\"rr_vs_general_split_speedup\":{:.2},\"fault_fallback_overhead_x\":{:.2},\"remote_reroute_overhead_x\":{:.2},\"results\":[{}]}}\n",
        bytes,
        runs,
        speedup,
        fault_overhead,
        remote_overhead,
        samples
            .iter()
            .map(|s| s.to_json())
            .collect::<Vec<_>>()
            .join(",")
    );
    let mut f = std::fs::File::create(&out_path)
        .unwrap_or_else(|e| panic!("cannot create {out_path}: {e}"));
    f.write_all(json.as_bytes()).expect("write json");
    println!("\nwrote {out_path}");
}

fn usage() -> ! {
    eprintln!("usage: dataplane [--size small|default|large] [--out PATH]");
    std::process::exit(2);
}
