//! Regenerates Fig. 8: Unix50 speedups at 16× parallelism, with the
//! sequential time series, plus the summary statistics of §6.2.

use pash_bench::suites::unix50;
use pash_bench::Fig7Config;
use pash_sim::{simulate_compiled, CostModel, SimConfig};

fn main() {
    let sim_mb: f64 = std::env::var("PASH_BENCH_MB")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64.0);
    let cm = CostModel::default();
    let sim_cfg = SimConfig::default();
    let sizes = unix50::sim_sizes(sim_mb * 1e6);
    println!("Fig. 8: Unix50 at 16x parallelism (simulated, input {sim_mb} MB)\n");
    println!(
        "{:>4} {:>9} {:>9} {:>8}  note",
        "idx", "seq(s)", "pash(s)", "speedup"
    );
    let mut speedups: Vec<f64> = Vec::new();
    let mut seq_times: Vec<f64> = Vec::new();
    for p in unix50::all() {
        let seq = simulate_compiled(
            p.script,
            &Fig7Config::Parallel.pash_config(1),
            &sizes,
            &cm,
            &sim_cfg,
        )
        .expect("seq sim")
        .seconds;
        let par = simulate_compiled(
            p.script,
            &Fig7Config::ParBSplit.pash_config(16),
            &sizes,
            &cm,
            &sim_cfg,
        )
        .expect("par sim")
        .seconds;
        let s = seq / par;
        println!("{:>4} {seq:>9.2} {par:>9.2} {s:>8.2}  {}", p.idx, p.note);
        speedups.push(s);
        seq_times.push(seq);
    }
    let n = speedups.len() as f64;
    let avg = speedups.iter().sum::<f64>() / n;
    let mut sorted = speedups.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let median = sorted[sorted.len() / 2];
    let weighted = speedups
        .iter()
        .zip(&seq_times)
        .map(|(s, t)| s * t)
        .sum::<f64>()
        / seq_times.iter().sum::<f64>();
    println!("\nSummary (paper: avg 5.49, median 6.07, weighted 5.75):");
    println!("  avg {avg:.2}   median {median:.2}   weighted {weighted:.2}");
    println!(
        "  no-speedup group (<=1.1x): {:?}",
        speedups
            .iter()
            .enumerate()
            .filter(|(_, &s)| s <= 1.1)
            .map(|(i, _)| i)
            .collect::<Vec<_>>()
    );
    println!(
        "  slowdown group (<1.0x):    {:?}",
        speedups
            .iter()
            .enumerate()
            .filter(|(_, &s)| s < 1.0)
            .map(|(i, _)| i)
            .collect::<Vec<_>>()
    );
}
