//! `faultsweep` — the differential fault-injection smoke gate.
//!
//! Runs a two-region pipeline under every [`FaultKind`] at several
//! widths on the `threads` backend *and* on the `remote` backend (two
//! in-process workers on localhost sockets), and requires the
//! observable behaviour — stdout bytes, output-file bytes, exit
//! status — to be byte-identical to an undisturbed width-1 sequential
//! run. Dedicated episodes additionally pin the recovery paths: a
//! persistent fault must end in the sequential fallback, a stalled
//! edge must be cut by the region deadline, a dropped worker
//! connection must reroute its retry to the other worker, and a dead
//! worker pool must degrade to the local backend.
//!
//! This is the quick CI face of `tests/fault_injection.rs`: seconds,
//! hermetic (MemFs), exit status 0/1. Usage: `faultsweep`.

use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use pash_core::compile::{compile_cached, PashConfig};
use pash_coreutils::fs::MemFs;
use pash_coreutils::Registry;
use pash_runtime::exec::{run_program_with_fallback, ExecConfig};
use pash_runtime::fault::{FaultKind, FaultPlan};
use pash_runtime::remote::{bind_worker, serve_worker, shutdown_worker, WorkerPool};
use pash_runtime::run_program_remote;
use pash_runtime::supervise::SupervisorSettings;

/// Two regions — one redirected to a file, one on stdout — so both
/// observable channels are checked.
const SCRIPT: &str = "cat in.txt | tr A-Z a-z | grep the > out.txt\n\
                      cat in.txt | tr a-z A-Z | grep THE";

const WIDTHS: [usize; 3] = [2, 4, 8];

/// ~1 MiB: the round-robin splitter's smallest adaptive block is
/// 16 KiB, so anything smaller leaves width-8 workers idle and a
/// fault aimed at them lands on a dead stream.
fn corpus() -> Vec<u8> {
    let mut out = Vec::with_capacity(1 << 20);
    let mut i = 0u32;
    while out.len() < 1 << 20 {
        if i % 3 == 0 {
            out.extend_from_slice(format!("line {i} over the lazy dog\n").as_bytes());
        } else {
            out.extend_from_slice(format!("Record {i} without a match {i:04x}\n").as_bytes());
        }
        i += 1;
    }
    out
}

struct Observed {
    stdout: Vec<u8>,
    status: i32,
    out_file: Option<Vec<u8>>,
}

/// One run under the supervisor settings, returning what a caller can
/// observe plus the counter totals for the gate summary.
fn run(width: usize, sup: SupervisorSettings) -> (Observed, [u64; 4]) {
    let counters = sup.counters.clone();
    let cfg = PashConfig::round_robin(width);
    let compiled = compile_cached(SCRIPT, &cfg).expect("compile sweep script");
    let fallback = compile_cached(SCRIPT, &PashConfig::round_robin(1)).expect("compile fallback");
    let fs = Arc::new(MemFs::new());
    fs.add("in.txt", corpus());
    let exec = ExecConfig {
        supervisor: sup,
        ..Default::default()
    };
    let out = run_program_with_fallback(
        &compiled.plan,
        (width != 1).then_some(&fallback.plan),
        &Registry::standard(),
        fs.clone(),
        Vec::new(),
        &exec,
    )
    .expect("threads run");
    (
        Observed {
            stdout: out.stdout,
            status: out.status,
            out_file: fs.read("out.txt").ok(),
        },
        [
            counters.injected(),
            counters.retries(),
            counters.deadline_kills(),
            counters.fallbacks(),
        ],
    )
}

/// In-process `pash-worker` loops on temp sockets; shut down on drop.
struct Workers {
    sockets: Vec<PathBuf>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Workers {
    fn spawn(n: usize) -> Workers {
        let mut sockets = Vec::new();
        let mut handles = Vec::new();
        for i in 0..n {
            let socket = std::env::temp_dir()
                .join(format!("pash-faultsweep-worker-{}-{i}", std::process::id()));
            let listener = bind_worker(&socket).expect("bind worker");
            let s = socket.clone();
            handles.push(std::thread::spawn(move || {
                serve_worker(listener, &s, Arc::new(AtomicBool::new(false))).expect("serve");
            }));
            sockets.push(socket);
        }
        Workers { sockets, handles }
    }
}

impl Drop for Workers {
    fn drop(&mut self) {
        for s in &self.sockets {
            shutdown_worker(s);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// One remote-backend run: regions ship to the pool under the full
/// recovery ladder. Returns the observables plus
/// `[injected, retries, deadline kills, sequential fallbacks,
/// reroutes, local fallbacks]`.
fn run_remote(width: usize, sup: SupervisorSettings, sockets: &[PathBuf]) -> (Observed, [u64; 6]) {
    let counters = sup.counters.clone();
    let cfg = PashConfig::round_robin(width);
    let compiled = compile_cached(SCRIPT, &cfg).expect("compile sweep script");
    let fallback = compile_cached(SCRIPT, &PashConfig::round_robin(1)).expect("compile fallback");
    let fs = Arc::new(MemFs::new());
    fs.add("in.txt", corpus());
    let exec = ExecConfig {
        supervisor: sup,
        ..Default::default()
    };
    let pool = WorkerPool::new(sockets.to_vec());
    let out = run_program_remote(
        &compiled.plan,
        (width != 1).then_some(&fallback.plan),
        &Registry::standard(),
        fs.clone(),
        Vec::new(),
        &exec,
        &pool,
    )
    .expect("remote run");
    (
        Observed {
            stdout: out.stdout,
            status: out.status,
            out_file: fs.read("out.txt").ok(),
        },
        [
            counters.injected(),
            counters.retries(),
            counters.deadline_kills(),
            counters.fallbacks(),
            counters.reroutes(),
            counters.local_fallbacks(),
        ],
    )
}

fn check(label: &str, got: &Observed, expect: &Observed, failures: &mut u32) {
    let ok = got.stdout == expect.stdout
        && got.status == expect.status
        && got.out_file == expect.out_file;
    if ok {
        println!("ok   {label}");
    } else {
        println!(
            "FAIL {label}: stdout {}B/{}B status {}/{} out.txt {:?}B/{:?}B",
            got.stdout.len(),
            expect.stdout.len(),
            got.status,
            expect.status,
            got.out_file.as_ref().map(Vec::len),
            expect.out_file.as_ref().map(Vec::len),
        );
        *failures += 1;
    }
}

fn main() {
    let (expect, _) = run(1, SupervisorSettings::default());
    let mut failures = 0u32;
    let mut totals = [0u64; 4];

    // The sweep: one seeded single-shot fault per (kind, width) cell.
    for kind in FaultKind::ALL {
        for width in WIDTHS {
            let seed = FaultKind::ALL.iter().position(|&k| k == kind).unwrap() as u64 * 131
                + width as u64 * 7
                + 1;
            let sup = SupervisorSettings {
                fault: Some(FaultPlan::new(kind, seed)),
                ..Default::default()
            };
            let (got, c) = run(width, sup);
            check(
                &format!("{} width {width}", kind.name()),
                &got,
                &expect,
                &mut failures,
            );
            for (t, v) in totals.iter_mut().zip(c) {
                *t += v;
            }
        }
    }

    // A persistent fault must burn the retry budget and degrade to the
    // sequential fallback — with the reference output.
    let sup = SupervisorSettings {
        fault: Some(FaultPlan::new(FaultKind::KillWorker, 5).budget(u32::MAX)),
        max_retries: 1,
        ..Default::default()
    };
    let (got, c) = run(4, sup);
    check(
        "persistent kill-worker (fallback)",
        &got,
        &expect,
        &mut failures,
    );
    if c[3] == 0 {
        println!("FAIL persistent fault never reached the sequential fallback");
        failures += 1;
    }
    for (t, v) in totals.iter_mut().zip(c) {
        *t += v;
    }

    // A wedged edge must be cut by the region deadline, not waited out.
    let sup = SupervisorSettings {
        fault: Some(FaultPlan::new(FaultKind::Stall, 9).stall(Duration::from_secs(30))),
        region_deadline: Some(Duration::from_millis(400)),
        ..Default::default()
    };
    let (got, c) = run(4, sup);
    check(
        "30s stall under 400ms deadline",
        &got,
        &expect,
        &mut failures,
    );
    if c[2] == 0 {
        println!("FAIL the deadline watchdog never fired on a wedged edge");
        failures += 1;
    }
    for (t, v) in totals.iter_mut().zip(c) {
        *t += v;
    }

    let [injected, retries, kills, fallbacks] = totals;
    println!(
        "\nfaultsweep(threads): {} cells, {injected} injected, {retries} retries, \
         {kills} deadline kills, {fallbacks} fallbacks, {failures} failures",
        FaultKind::ALL.len() * WIDTHS.len() + 2,
    );
    if injected < FaultKind::ALL.len() as u64 {
        println!("FAIL only {injected} faults armed — injection plane inert");
        failures += 1;
    }

    // --- the remote backend: the same sweep, regions shipped to two
    // localhost workers under the remote recovery ladder ---------------
    let workers = Workers::spawn(2);
    let mut rtotals = [0u64; 6];
    for kind in FaultKind::ALL {
        for width in WIDTHS {
            let seed = FaultKind::ALL.iter().position(|&k| k == kind).unwrap() as u64 * 131
                + width as u64 * 7
                + 1;
            let sup = SupervisorSettings {
                fault: Some(FaultPlan::new(kind, seed)),
                ..Default::default()
            };
            let (got, c) = run_remote(width, sup, &workers.sockets);
            check(
                &format!("remote {} width {width}", kind.name()),
                &got,
                &expect,
                &mut failures,
            );
            for (t, v) in rtotals.iter_mut().zip(c) {
                *t += v;
            }
        }
    }

    // A dropped connection must reroute its retry to the other worker.
    let sup = SupervisorSettings {
        fault: Some(FaultPlan::new(FaultKind::ConnDrop, 7)),
        ..Default::default()
    };
    let (got, c) = run_remote(4, sup, &workers.sockets);
    check("remote conn-drop (reroute)", &got, &expect, &mut failures);
    if c[4] == 0 {
        println!("FAIL the conn-drop retry never rerouted to the other worker");
        failures += 1;
    }
    for (t, v) in rtotals.iter_mut().zip(c) {
        *t += v;
    }

    // A stalled worker must be torn down by the region deadline.
    let sup = SupervisorSettings {
        fault: Some(FaultPlan::new(FaultKind::SlowWorker, 3).stall(Duration::from_secs(30))),
        region_deadline: Some(Duration::from_millis(400)),
        ..Default::default()
    };
    let (got, c) = run_remote(4, sup, &workers.sockets);
    check(
        "remote 30s stall under 400ms deadline",
        &got,
        &expect,
        &mut failures,
    );
    if c[2] == 0 {
        println!("FAIL the region deadline never tore down the slow worker");
        failures += 1;
    }
    for (t, v) in rtotals.iter_mut().zip(c) {
        *t += v;
    }

    // A dead pool must degrade to the clean local rung.
    let dead = [std::env::temp_dir().join("pash-faultsweep-nobody")];
    let (got, c) = run_remote(4, SupervisorSettings::default(), &dead);
    check(
        "remote dead pool (local rung)",
        &got,
        &expect,
        &mut failures,
    );
    if c[5] == 0 {
        println!("FAIL a dead worker pool never reached the local rung");
        failures += 1;
    }
    for (t, v) in rtotals.iter_mut().zip(c) {
        *t += v;
    }
    drop(workers);

    let [rinjected, rretries, rkills, rfallbacks, rreroutes, rlocal] = rtotals;
    println!(
        "\nfaultsweep(remote): {} cells, {rinjected} injected, {rretries} retries, \
         {rkills} deadline kills, {rfallbacks} fallbacks, {rreroutes} reroutes, \
         {rlocal} local fallbacks, {failures} total failures",
        FaultKind::ALL.len() * WIDTHS.len() + 3,
    );
    if rinjected < FaultKind::ALL.len() as u64 {
        println!("FAIL only {rinjected} remote faults armed — injection plane inert");
        failures += 1;
    }
    std::process::exit(if failures == 0 { 0 } else { 1 });
}
