//! `backendrun` — compile one script and execute it under a named
//! backend against a real directory, so backends can be diffed from
//! the command line (the CI smoke step `cmp`s `processes` against
//! `shell` this way):
//!
//! ```text
//! backendrun --backend processes --width 4 --dir work \
//!     --gen in.txt:200000 -e 'cat in.txt | tr A-Z a-z | sort > out.txt'
//! ```
//!
//! Backends: `shell` (emit + run under `/bin/sh`), `processes` (real
//! children over FIFOs), `threads` (in-process; directory contents are
//! loaded into a `MemFs` and outputs written back), and `remote`
//! (regions shipped to `pash-worker` daemons named by `--worker PATH`,
//! repeatable; directory handling as for `threads`). The multi-call
//! binaries are found next to this executable (or via
//! `$PASHC`/`$PASH_RT`). Exits with the program's status.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Arc;

use pash_core::compile::{compile, PashConfig};
use pash_coreutils::fs::{Fs, MemFs};
use pash_coreutils::Registry;
use pash_runtime::exec::{run_program, ExecConfig};
use pash_runtime::proc::{run_plan, ProcConfig};

fn main() {
    let mut backend = "processes".to_string();
    let mut width = 4usize;
    let mut dir = PathBuf::from("backendrun-work");
    let mut gens: Vec<(String, usize)> = Vec::new();
    let mut workers: Vec<PathBuf> = Vec::new();
    let mut script: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--backend" => backend = args.next().unwrap_or_else(|| usage()),
            "--width" => {
                width = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--dir" => dir = PathBuf::from(args.next().unwrap_or_else(|| usage())),
            "--gen" => {
                let spec = args.next().unwrap_or_else(|| usage());
                let (name, bytes) = spec.split_once(':').unwrap_or_else(|| usage());
                let bytes = bytes.parse().unwrap_or_else(|_| usage());
                gens.push((name.to_string(), bytes));
            }
            "--worker" => workers.push(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "-e" => script = Some(args.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    let script = script.unwrap_or_else(|| usage());

    std::fs::create_dir_all(&dir).expect("create work dir");
    for (name, bytes) in &gens {
        let path = dir.join(name);
        if !path.exists() {
            std::fs::write(&path, pash_workloads::text_corpus(11, *bytes)).expect("write corpus");
        }
    }

    let cfg = PashConfig {
        width,
        ..PashConfig::best(width)
    };
    let compiled = compile(&script, &cfg).unwrap_or_else(|e| {
        eprintln!("backendrun: compile: {e}");
        std::process::exit(2);
    });

    // Piped stdin reaches every backend the same way: `shell` inherits
    // the real fd, the others get the bytes. A terminal is not read.
    let read_stdin = || {
        use std::io::{IsTerminal, Read};
        let mut bytes = Vec::new();
        if !std::io::stdin().is_terminal() {
            std::io::stdin()
                .read_to_end(&mut bytes)
                .expect("read stdin");
        }
        bytes
    };

    let status = match backend.as_str() {
        "shell" => run_shell(&compiled.script, &dir),
        "processes" => {
            let pcfg = ProcConfig::locate().unwrap_or_else(|e| {
                eprintln!("backendrun: {e}");
                std::process::exit(2);
            });
            let out = run_plan(&compiled.plan, &pcfg, &dir, read_stdin()).unwrap_or_else(|e| {
                eprintln!("backendrun: processes: {e}");
                std::process::exit(2);
            });
            print_bytes(&out.stdout);
            out.status
        }
        "threads" => run_threads(&compiled.plan, &dir, read_stdin()),
        "remote" => {
            if workers.is_empty() {
                eprintln!("backendrun: the remote backend needs at least one --worker PATH");
                std::process::exit(2);
            }
            run_remote(&compiled.plan, &dir, read_stdin(), &workers)
        }
        other => {
            eprintln!("backendrun: unknown backend `{other}` (shell|processes|threads|remote)");
            std::process::exit(2);
        }
    };
    std::process::exit(status);
}

fn run_shell(script_text: &str, dir: &Path) -> i32 {
    let pashc = pash_runtime::proc::locate_bin("pashc", "PASHC").unwrap_or_else(die);
    let pash_rt = pash_runtime::proc::locate_bin("pash-rt", "PASH_RT").unwrap_or_else(die);
    let path = dir.join("parallel.sh");
    std::fs::write(&path, script_text).expect("write script");
    let status = Command::new("/bin/sh")
        .arg("parallel.sh")
        .current_dir(dir)
        .env("PASHC", pashc)
        .env("PASH_RT", pash_rt)
        .status()
        .expect("run /bin/sh");
    status.code().unwrap_or(1)
}

fn run_threads(plan: &pash_core::plan::ExecutionPlan, dir: &Path, stdin: Vec<u8>) -> i32 {
    // Load the directory into a MemFs, run hermetically, write back.
    let fs = MemFs::new();
    for entry in std::fs::read_dir(dir).expect("read work dir") {
        let entry = entry.expect("dir entry");
        if entry.file_type().expect("file type").is_file() {
            let name = entry.file_name().to_string_lossy().into_owned();
            fs.add(name, std::fs::read(entry.path()).expect("read input"));
        }
    }
    let fs = Arc::new(fs);
    let out = run_program(
        plan,
        &Registry::standard(),
        fs.clone() as Arc<dyn Fs>,
        stdin,
        &ExecConfig::default(),
    )
    .unwrap_or_else(|e| {
        eprintln!("backendrun: threads: {e}");
        std::process::exit(2);
    });
    for path in fs.paths() {
        std::fs::write(dir.join(&path), fs.read(&path).expect("fs file")).expect("write output");
    }
    print_bytes(&out.stdout);
    out.status
}

fn run_remote(
    plan: &pash_core::plan::ExecutionPlan,
    dir: &Path,
    stdin: Vec<u8>,
    workers: &[PathBuf],
) -> i32 {
    // Same MemFs bridge as `threads`; the regions themselves execute
    // on the worker daemons.
    let fs = MemFs::new();
    for entry in std::fs::read_dir(dir).expect("read work dir") {
        let entry = entry.expect("dir entry");
        if entry.file_type().expect("file type").is_file() {
            let name = entry.file_name().to_string_lossy().into_owned();
            fs.add(name, std::fs::read(entry.path()).expect("read input"));
        }
    }
    let fs = Arc::new(fs);
    let pool = pash_runtime::WorkerPool::new(workers.to_vec());
    let out = pash_runtime::run_program_remote(
        plan,
        None,
        &Registry::standard(),
        fs.clone() as Arc<dyn Fs>,
        stdin,
        &ExecConfig::default(),
        &pool,
    )
    .unwrap_or_else(|e| {
        eprintln!("backendrun: remote: {e}");
        std::process::exit(2);
    });
    for path in fs.paths() {
        std::fs::write(dir.join(&path), fs.read(&path).expect("fs file")).expect("write output");
    }
    print_bytes(&out.stdout);
    out.status
}

fn print_bytes(bytes: &[u8]) {
    use std::io::Write;
    std::io::stdout().write_all(bytes).expect("stdout");
}

fn die<T>(e: std::io::Error) -> T {
    eprintln!("backendrun: {e}");
    std::process::exit(2);
}

fn usage() -> ! {
    eprintln!(
        "usage: backendrun [--backend shell|processes|threads|remote] [--width N] [--dir DIR] \
         [--gen NAME:BYTES]… [--worker PATH]… -e SCRIPT"
    );
    std::process::exit(2);
}
