//! Regenerates the §6.5 GNU-parallel comparison on a bio-like
//! pipeline: PaSh accelerates it correctly, while naive block
//! parallelism is fast but severely wrong.

use std::sync::Arc;

use pash_bench::baseline::{diff_fraction, naive_parallel, run_pipeline_seq};
use pash_bench::suites::oneliners::COMPLEX_PATTERN;
use pash_bench::Fig7Config;
use pash_coreutils::fs::{Fs, MemFs};
use pash_coreutils::Registry;
use pash_runtime::exec::{run_script, ExecConfig};
use pash_sim::{simulate_compiled, CostModel, InputSizes, SimConfig};
use pash_workloads::text_corpus;

fn main() {
    println!("§6.5 GNU parallel comparison (bio-like pipeline)\n");
    // One stage dominates (the paper: "most of the overhead comes
    // from a single command").
    let script = format!(
        "cat in.txt | tr A-Z a-z | grep '{COMPLEX_PATTERN}' | sort | uniq -c | sort -rn > out.txt"
    );
    let correctness_script =
        "cat in.txt | tr A-Z a-z | grep a | sort | uniq -c | sort -rn > out.txt";
    // For the real-execution correctness check, use a permissive
    // filter so the aggregating stages see real volume (the complex
    // pattern stays in the simulated performance script above).
    let stages: Vec<Vec<&str>> = vec![
        vec!["tr", "A-Z", "a-z"],
        vec!["grep", "a"],
        vec!["sort"],
        vec!["uniq", "-c"],
        vec!["sort", "-rn"],
    ];

    // --- Performance shape (simulated; paper: seq 554.8s, PaSh 4.3x)
    let cm = CostModel::default();
    let sim_cfg = SimConfig::default();
    let sizes: InputSizes = [("in.txt".to_string(), 128e6)].into_iter().collect();
    let seq_t = simulate_compiled(
        &script,
        &Fig7Config::Parallel.pash_config(1),
        &sizes,
        &cm,
        &sim_cfg,
    )
    .expect("sim")
    .seconds;
    let pash_t = simulate_compiled(
        &script,
        &Fig7Config::ParBSplit.pash_config(8),
        &sizes,
        &cm,
        &sim_cfg,
    )
    .expect("sim")
    .seconds;
    println!(
        "simulated: sequential {seq_t:.0}s, PaSh 8x {pash_t:.0}s ({:.1}x; paper 4.3x)",
        seq_t / pash_t
    );

    // --- Correctness (real execution) -------------------------------
    let reg = Registry::standard();
    let fs: Arc<MemFs> = Arc::new(MemFs::new());
    let input = text_corpus(23, 400_000);
    fs.add("in.txt", input.clone());
    // Sequential reference.
    let dynfs: Arc<dyn Fs> = fs.clone();
    let seq_out = run_pipeline_seq(&stages, &input, &reg, dynfs.clone()).expect("seq");
    // PaSh parallel: identical by construction.
    run_script(
        correctness_script,
        &Fig7Config::ParBSplit.pash_config(8),
        &reg,
        fs.clone(),
        Vec::new(),
        &ExecConfig::default(),
    )
    .expect("pash run");
    let pash_out = fs.read("out.txt").expect("out");
    // Naive GNU-parallel sprinkling: fast but wrong.
    let naive_out = naive_parallel(&stages, &input, 8, &reg, dynfs).expect("naive");
    println!("\nreal-execution correctness (400 KB input, 8 blocks):");
    println!(
        "  PaSh vs sequential:   {:.1}% differing lines {}",
        diff_fraction(&seq_out, &pash_out) * 100.0,
        if pash_out == seq_out {
            "(identical)"
        } else {
            "(MISMATCH!)"
        }
    );
    println!(
        "  naive vs sequential:  {:.1}% differing lines (paper: 92%)",
        diff_fraction(&seq_out, &naive_out) * 100.0
    );
}
