//! Regex-tier microbenchmark driver.
//!
//! Measures the tiered matcher against the Pike-VM baseline on the
//! four standard pattern shapes (fixed-string, literal-prefix ERE,
//! class-heavy, adversarial NFA) and writes the results plus the
//! per-case speedups to `BENCH_regex.json`, so successive PRs can
//! track the regex-engine trajectory the same way `BENCH_dataplane.json`
//! tracks the byte-shuffling primitives.
//!
//! Usage: `regexbench [--size small|default|large] [--out PATH]`

use std::io::Write;

use pash_bench::dataplane::fmt_throughput;
use pash_bench::regexbench::{run_suite, speedups};

fn main() {
    let mut size = "default".to_string();
    let mut out_path = "BENCH_regex.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--size" => size = args.next().unwrap_or_else(|| usage()),
            "--out" => out_path = args.next().unwrap_or_else(|| usage()),
            _ => {
                usage();
            }
        }
    }
    let (bytes, runs) = match size.as_str() {
        "small" => (64 * 1024, 3),
        "default" => (2 * 1024 * 1024, 7),
        "large" => (8 * 1024 * 1024, 5),
        _ => usage(),
    };

    println!("regex tier microbench: {bytes} bytes/corpus, {runs} runs\n");
    let samples = run_suite(bytes, runs);
    println!(
        "{:<26} {:>12} {:>12} {:>12} {:>14}",
        "bench", "min", "median", "mean", "throughput"
    );
    for s in &samples {
        println!(
            "{:<26} {:>12.3?} {:>12.3?} {:>12.3?} {:>14}",
            s.name,
            s.min,
            s.median,
            s.mean,
            fmt_throughput(s.throughput())
        );
    }
    let sp = speedups(&samples);
    println!();
    for (case, ratio) in &sp {
        println!("{case:<14} tiered vs pikevm: {ratio:.1}x");
    }

    let json = format!(
        "{{\"bench\":\"regex\",\"bytes_per_corpus\":{},\"runs\":{},\"results\":[{}],\"speedup_vs_pikevm\":{{{}}}}}\n",
        bytes,
        runs,
        samples
            .iter()
            .map(|s| s.to_json())
            .collect::<Vec<_>>()
            .join(","),
        sp.iter()
            .map(|(case, ratio)| format!("\"{case}\":{ratio:.2}"))
            .collect::<Vec<_>>()
            .join(","),
    );
    let mut f = std::fs::File::create(&out_path)
        .unwrap_or_else(|e| panic!("cannot create {out_path}: {e}"));
    f.write_all(json.as_bytes()).expect("write json");
    println!("\nwrote {out_path}");
}

fn usage() -> ! {
    eprintln!("usage: regexbench [--size small|default|large] [--out PATH]");
    std::process::exit(2);
}
