//! Regenerates the §6.5 parallel-sort microbenchmark: PaSh-optimized
//! `sort` (with and without eager) versus `sort --parallel`.

use std::sync::Arc;

use pash_bench::Fig7Config;
use pash_coreutils::fs::MemFs;
use pash_coreutils::Registry;
use pash_runtime::exec::{run_script, ExecConfig};
use pash_sim::{simulate_compiled, CostModel, InputSizes, SimConfig};
use pash_workloads::text_corpus;

fn main() {
    println!("§6.5 parallel sort: PaSh vs sort --parallel\n");
    let cm = CostModel::default();
    let sim_cfg = SimConfig::default();
    let sizes: InputSizes = [("in.txt".to_string(), 256e6)].into_iter().collect();
    let pash_script = "sort in.txt > out.txt";
    let seq = simulate_compiled(
        pash_script,
        &Fig7Config::Parallel.pash_config(1),
        &sizes,
        &cm,
        &sim_cfg,
    )
    .expect("sim")
    .seconds;
    println!("simulated speedups over sequential sort ({seq:.0}s):");
    println!(
        "{:>6} {:>12} {:>14} {:>16}",
        "width", "PaSh", "PaSh(NoEager)", "sort --parallel"
    );
    for width in [2usize, 4, 8, 16, 32, 64] {
        let pash = simulate_compiled(
            pash_script,
            &Fig7Config::Parallel.pash_config(width),
            &sizes,
            &cm,
            &sim_cfg,
        )
        .expect("sim")
        .seconds;
        let noeager = simulate_compiled(
            pash_script,
            &Fig7Config::NoEager.pash_config(width),
            &sizes,
            &cm,
            &sim_cfg,
        )
        .expect("sim")
        .seconds;
        // GNU baseline at 2× PaSh's parallelism (the paper's setup).
        let gnu_script = format!("sort --parallel={} in.txt > out.txt", (width * 2).min(127));
        let gnu = simulate_compiled(
            &gnu_script,
            &Fig7Config::Parallel.pash_config(1),
            &sizes,
            &cm,
            &sim_cfg,
        )
        .expect("sim")
        .seconds;
        println!(
            "{width:>6} {:>11.2}x {:>13.2}x {:>15.2}x",
            seq / pash,
            seq / noeager,
            seq / gnu
        );
    }
    println!("\npaper: PaSh-with-eager ≈ 2x over sort --parallel; no-eager ≈ comparable.");

    // --- Correctness: all three agree byte-for-byte -----------------
    let fs = Arc::new(MemFs::new());
    fs.add("in.txt", text_corpus(17, 200_000));
    let reg = Registry::standard();
    let mut outputs = Vec::new();
    for (label, script, width) in [
        ("sequential", "sort in.txt > out.txt", 1usize),
        ("pash 8x", "sort in.txt > out.txt", 8),
        ("--parallel=8", "sort --parallel=8 in.txt > out.txt", 1),
    ] {
        run_script(
            script,
            &Fig7Config::Parallel.pash_config(width),
            &reg,
            fs.clone(),
            Vec::new(),
            &ExecConfig::default(),
        )
        .expect("run");
        outputs.push((label, fs.read("out.txt").expect("out")));
    }
    let all_equal = outputs.windows(2).all(|w| w[0].1 == w[1].1);
    println!(
        "real-execution agreement (200 KB input): {}",
        if all_equal {
            "sequential ≡ PaSh ≡ --parallel"
        } else {
            "MISMATCH"
        }
    );
}
