//! `pash-bench` — load generator for the `pashd` compile-and-run
//! service.
//!
//! ```text
//! pash-bench --out BENCH_service.json [--pashd PATH] [--size small|full]
//!            [--concurrency 1,2,4] [--repeats N]
//! ```
//!
//! Replays a corpus drawn from the oneliners and Unix50 suites
//! (output redirections stripped so results stream back over the
//! socket) against a live daemon, in four phases:
//!
//! 1. **cold** — fresh daemon, fresh cache directory: every request
//!    pays the full front-end (tier misses, disk writes);
//! 2. **warm-mem** — the same process again: tier-1 (in-memory LRU)
//!    hits;
//! 3. **throughput** — C client threads round-robin over the warm
//!    corpus, measuring requests/sec at each concurrency;
//! 4. **warm-disk** — the daemon is shut down and a *new process*
//!    started over the same cache directory: tier-2 (disk) hits,
//!    proving restart warm-starts.
//!
//! The simulator then prices the amortization curve: measured compile
//! seconds vs simulated execution seconds for a representative
//! script, giving the predicted speedup of cached over uncached
//! service at K requests — the single-core container still tells the
//! perf story. Everything lands in one JSON file; ci.sh gates the
//! tier hit counters, the warm-vs-cold latency ratio, and the warm
//! requests/sec.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pash_bench::suites::{oneliners, unix50};
use pash_core::compile::{compile, PashConfig};
use pash_core::dfg::SplitPolicy;
use pash_core::plan::Backend as _;
use pash_coreutils::fs::MemFs;
use pash_runtime::service::{CacheTier, Client, RunRequest};
use pash_sim::{CostModel, SimBackend, SimConfig};

fn usage() -> ! {
    eprintln!(
        "usage: pash-bench --out PATH [--pashd PATH] [--size small|full] \
         [--concurrency 1,2,4] [--repeats N]"
    );
    std::process::exit(2);
}

/// The service corpus: single-region suite scripts with their
/// trailing `> out.txt` stripped, so results stream back on stdout.
fn service_corpus() -> Vec<(String, String)> {
    let mut v = Vec::new();
    for name in [
        "Sort",
        "Top-n",
        "Wf",
        "Grep-light",
        "Spell",
        "Sort-sort",
        "Bi-grams-opt",
    ] {
        let o = oneliners::by_name(name).expect("known oneliner");
        v.push((format!("oneliners:{name}"), strip_redirect(&o.script)));
    }
    // Plain-pipeline Unix50 entries (no unknown commands, no
    // pipelines that need `out.txt` as an intermediate).
    for u in unix50::all() {
        if [0usize, 1, 3, 4, 6, 11, 14, 15, 17, 18, 21, 27, 30].contains(&u.idx) {
            v.push((format!("unix50:{}", u.idx), strip_redirect(u.script)));
        }
    }
    v
}

fn strip_redirect(script: &str) -> String {
    let s = script.trim_end();
    s.strip_suffix("> out.txt")
        .unwrap_or(s)
        .trim_end()
        .to_string()
}

fn request(script: &str, width: u32) -> RunRequest {
    RunRequest {
        script: script.to_string(),
        backend: "threads".to_string(),
        width,
        split: SplitPolicy::Sized,
        stdin: Vec::new(),
    }
}

/// Latency-series summary (microseconds).
struct Series {
    count: usize,
    mean_us: u64,
    p50_us: u64,
    p95_us: u64,
    max_us: u64,
}

fn summarize(mut samples: Vec<u64>) -> Series {
    assert!(!samples.is_empty(), "empty latency series");
    samples.sort_unstable();
    let count = samples.len();
    let pick = |q: f64| samples[((count as f64 * q) as usize).min(count - 1)];
    Series {
        count,
        mean_us: samples.iter().sum::<u64>() / count as u64,
        p50_us: pick(0.50),
        p95_us: pick(0.95),
        max_us: *samples.last().expect("nonempty"),
    }
}

fn series_json(s: &Series) -> String {
    format!(
        "{{\"count\":{},\"mean_us\":{},\"p50_us\":{},\"p95_us\":{},\"max_us\":{}}}",
        s.count, s.mean_us, s.p50_us, s.p95_us, s.max_us
    )
}

fn metric(json: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let at = json
        .find(&needle)
        .unwrap_or_else(|| panic!("{key} missing from metrics {json}"));
    json[at + needle.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("counter value")
}

struct Daemon {
    child: std::process::Child,
    socket: PathBuf,
}

impl Daemon {
    fn spawn(pashd: &PathBuf, dir: &PathBuf, cache: &PathBuf, max_concurrent: usize) -> Daemon {
        let socket = dir.join("pashd.sock");
        let _ = std::fs::remove_file(&socket);
        let child = Command::new(pashd)
            .arg("--socket")
            .arg(&socket)
            .arg("--cache-dir")
            .arg(cache)
            .arg("--max-concurrent")
            .arg(max_concurrent.to_string())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .unwrap_or_else(|e| {
                eprintln!("pash-bench: cannot spawn {}: {e}", pashd.display());
                std::process::exit(2);
            });
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if Client::connect(&socket).is_ok() {
                return Daemon { child, socket };
            }
            if Instant::now() >= deadline {
                eprintln!("pash-bench: daemon never came up on {}", socket.display());
                std::process::exit(2);
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    fn client(&self) -> Client {
        Client::connect(&self.socket).expect("connect to daemon")
    }

    fn seed(&self, bytes: usize) {
        // Reuse the suites' own input builders, then ship every file
        // over the wire.
        let fs = MemFs::new();
        oneliners::setup_fs(
            &oneliners::by_name("Spell").expect("Spell exists"),
            bytes,
            &fs,
        );
        unix50::setup_fs(bytes, &fs);
        let mut client = self.client();
        for (path, contents) in fs.entries() {
            client
                .put_file(&path, contents.as_ref().clone())
                .expect("seed corpus file");
        }
    }

    /// One untimed request so the timed passes don't absorb
    /// fresh-process costs (page-in, first thread spawns) that have
    /// nothing to do with the plan caches.
    fn warmup(&self) {
        let mut client = self.client();
        client
            .put_file("warmup.txt", b"warm\nup\n".to_vec())
            .expect("seed warmup");
        client
            .run(request("cat warmup.txt | wc -l", 2))
            .expect("warmup run");
    }

    fn stop(mut self) {
        let _ = self.client().shutdown();
        let _ = self.child.wait();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One pass over the corpus; returns per-request (end-to-end,
/// compile-component) latencies and asserts every response came from
/// `want_tier`.
fn pass(
    daemon: &Daemon,
    corpus: &[(String, String)],
    width: u32,
    want_tier: CacheTier,
) -> (Vec<u64>, Vec<u64>) {
    let mut client = daemon.client();
    let mut lat = Vec::with_capacity(corpus.len());
    let mut compile_lat = Vec::with_capacity(corpus.len());
    for (name, script) in corpus {
        let resp = client
            .run(request(script, width))
            .unwrap_or_else(|e| panic!("{name} failed: {e}"));
        assert_eq!(resp.tier, want_tier, "{name}: unexpected cache tier");
        lat.push(resp.total_micros.max(1));
        compile_lat.push(resp.compile_micros.max(1));
    }
    (lat, compile_lat)
}

/// C threads round-robin over the warm corpus until `total` requests
/// have been served; returns (wall seconds, requests/sec).
fn throughput(
    daemon: &Daemon,
    corpus: &Arc<Vec<(String, String)>>,
    width: u32,
    concurrency: usize,
    total: usize,
) -> (f64, f64) {
    let next = Arc::new(AtomicUsize::new(0));
    let t0 = Instant::now();
    let mut threads = Vec::new();
    for _ in 0..concurrency {
        let corpus = corpus.clone();
        let next = next.clone();
        let mut client = daemon.client();
        threads.push(std::thread::spawn(move || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= total {
                return;
            }
            let (name, script) = &corpus[i % corpus.len()];
            client
                .run(request(script, width))
                .unwrap_or_else(|e| panic!("{name} failed under load: {e}"));
        }));
    }
    for t in threads {
        t.join().expect("load thread");
    }
    let wall = t0.elapsed().as_secs_f64();
    (wall, total as f64 / wall)
}

/// Measured compile seconds + simulated execution seconds for a
/// representative script → predicted speedup of plan-cached service
/// over per-request compilation at K requests.
fn amortization(width: u32, bytes: usize) -> (f64, f64, Vec<(u64, f64)>) {
    let bench = oneliners::by_name("Wf").expect("Wf exists");
    let cfg = PashConfig {
        width: width as usize,
        split: SplitPolicy::Sized,
        ..Default::default()
    };
    // Median-of-5 wall-clock compile (parse + expand + DFG + lower).
    let mut times: Vec<f64> = (0..5)
        .map(|_| {
            let t0 = Instant::now();
            compile(&bench.script, &cfg).expect("compile Wf");
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let compile_s = times[times.len() / 2];
    let compiled = compile(&bench.script, &cfg).expect("compile Wf");
    let sizes = oneliners::sim_sizes(&bench, bytes as f64);
    let cost = CostModel::default();
    let sim_cfg = SimConfig::default();
    let mut be = SimBackend {
        sizes: &sizes,
        stdin_bytes: 0.0,
        cost: &cost,
        cfg: &sim_cfg,
    };
    let exec_s = be.run(&compiled.plan).expect("simulate Wf").seconds;
    let points = [1u64, 10, 100, 1000]
        .into_iter()
        .map(|k| {
            let uncached = k as f64 * (compile_s + exec_s);
            let cached = compile_s + k as f64 * exec_s;
            (k, uncached / cached)
        })
        .collect();
    (compile_s, exec_s, points)
}

fn locate_pashd() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let cand = exe.parent()?.join("pashd");
    cand.exists().then_some(cand)
}

fn main() {
    let mut out: Option<PathBuf> = None;
    let mut pashd: Option<PathBuf> = None;
    let mut size = "small".to_string();
    let mut concurrency = vec![1usize, 2, 4];
    let mut repeats = 3usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--pashd" => pashd = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--size" => size = args.next().unwrap_or_else(|| usage()),
            "--concurrency" => {
                concurrency = args
                    .next()
                    .unwrap_or_else(|| usage())
                    .split(',')
                    .map(|c| c.parse().unwrap_or_else(|_| usage()))
                    .collect()
            }
            "--repeats" => {
                repeats = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            _ => usage(),
        }
    }
    let out = out.unwrap_or_else(|| usage());
    let pashd = pashd.or_else(locate_pashd).unwrap_or_else(|| {
        eprintln!("pash-bench: pashd binary not found (build it or pass --pashd)");
        std::process::exit(2);
    });
    // Small inputs on purpose: a service amortizes *compilation*, so
    // the corpus is sized for request-rate workloads (many small
    // scripts), not batch throughput, and the width is high enough
    // that plan lowering is a visible share of a cold request.
    let bytes = match size.as_str() {
        "small" => 16 * 1024,
        "full" => 4 << 20,
        _ => usage(),
    };
    let width = 8u32;
    let corpus = Arc::new(service_corpus());
    let max_concurrent = concurrency.iter().copied().max().unwrap_or(1);

    let dir = std::env::temp_dir().join(format!("pash-servicebench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let cache = dir.join("plan-cache");

    // Phase 1+2: paired cold/warm pass, then more warm passes. Each
    // script's cold request is immediately followed by three warm
    // repeats; the headline ratio is the median over scripts of
    // best-warm / cold. Back-to-back pairs cancel machine drift
    // (separated passes pick it up), and best-of-three on the warm
    // side suppresses the scheduler jitter a single warm sample
    // carries — the cache saving itself is deterministic.
    eprintln!(
        "pash-bench: paired cold/warm pass ({} scripts)",
        corpus.len()
    );
    let daemon = Daemon::spawn(&pashd, &dir, &cache, max_concurrent);
    daemon.seed(bytes);
    daemon.warmup();
    let mut client = daemon.client();
    let mut cold = Vec::new();
    let mut cold_compile = Vec::new();
    let mut warm_mem = Vec::new();
    let mut warm_mem_compile = Vec::new();
    let mut pair_ratios = Vec::new();
    for (name, script) in corpus.iter() {
        let first = client
            .run(request(script, width))
            .unwrap_or_else(|e| panic!("{name} failed: {e}"));
        assert_eq!(first.tier, CacheTier::Cold, "{name}: expected a cold miss");
        let mut best_warm = u64::MAX;
        for _ in 0..3 {
            let rep = client
                .run(request(script, width))
                .unwrap_or_else(|e| panic!("{name} failed warm: {e}"));
            assert_eq!(rep.tier, CacheTier::Memory, "{name}: expected a warm hit");
            best_warm = best_warm.min(rep.total_micros.max(1));
            warm_mem.push(rep.total_micros.max(1));
            warm_mem_compile.push(rep.compile_micros.max(1));
        }
        cold.push(first.total_micros.max(1));
        cold_compile.push(first.compile_micros.max(1));
        pair_ratios.push(best_warm as f64 / first.total_micros.max(1) as f64);
    }
    drop(client);
    pair_ratios.sort_by(|a, b| a.partial_cmp(b).expect("ratios are finite"));
    let warm_vs_cold_paired = pair_ratios[pair_ratios.len() / 2];
    eprintln!("pash-bench: warm in-memory passes (x{repeats})");
    for _ in 0..repeats {
        let (lat, compile_lat) = pass(&daemon, &corpus, width, CacheTier::Memory);
        warm_mem.extend(lat);
        warm_mem_compile.extend(compile_lat);
    }

    // Phase 3: throughput sweep on the warm daemon.
    let total = (corpus.len() * repeats.max(2)).max(24);
    let mut sweep = Vec::new();
    for &c in &concurrency {
        let (wall, rps) = throughput(&daemon, &corpus, width, c, total);
        eprintln!("pash-bench: concurrency {c}: {rps:.1} req/s ({total} requests in {wall:.2}s)");
        sweep.push((c, total, wall, rps));
    }
    let tier1_metrics = daemon.client().metrics().expect("metrics");
    daemon.stop();

    // Phase 4: a fresh process over the same cache directory — the
    // disk tier carries the warm start across the restart.
    eprintln!("pash-bench: restart, warm disk pass");
    let daemon = Daemon::spawn(&pashd, &dir, &cache, max_concurrent);
    daemon.seed(bytes);
    daemon.warmup();
    let (warm_disk, warm_disk_compile) = pass(&daemon, &corpus, width, CacheTier::Disk);
    let tier2_metrics = daemon.client().metrics().expect("metrics");
    daemon.stop();

    // Phase 5: profile convergence. Adaptive requests (width 0) ask
    // the daemon to choose per-region shapes from its measured
    // profiles. The first choice prices on cost-model priors (the
    // profile store has observations from earlier phases on disk, but
    // this asserts the *in-session* loop too); repeated requests must
    // settle on one choice. Then a restart proves the profile tier
    // warm-starts: the fresh process's first adaptive request already
    // finds measured rates.
    eprintln!("pash-bench: adaptive profile-convergence phase");
    let conv_script = strip_redirect(&oneliners::by_name("Wf").expect("Wf exists").script);
    let daemon = Daemon::spawn(&pashd, &dir, &cache, max_concurrent);
    daemon.seed(bytes);
    daemon.warmup();
    let mut client = daemon.client();
    let mut chosen_widths = Vec::new();
    for i in 0..6 {
        client
            .run(request(&conv_script, 0))
            .unwrap_or_else(|e| panic!("adaptive request {i} failed: {e}"));
        let m = client.metrics().expect("metrics");
        chosen_widths.push(metric(&m, "last_chosen_width"));
    }
    drop(client);
    let adaptive_metrics = daemon.client().metrics().expect("metrics");
    daemon.stop();
    let converged = chosen_widths[chosen_widths.len() - 1];
    let stable_tail = chosen_widths[chosen_widths.len() - 2] == converged;
    eprintln!(
        "pash-bench: adaptive widths {:?} (converged {converged})",
        chosen_widths
    );

    eprintln!("pash-bench: restart, profile warm-start smoke");
    let daemon = Daemon::spawn(&pashd, &dir, &cache, max_concurrent);
    daemon.seed(bytes);
    daemon.warmup();
    let mut client = daemon.client();
    client
        .run(request(&conv_script, 0))
        .unwrap_or_else(|e| panic!("post-restart adaptive request failed: {e}"));
    let restart_metrics = client.metrics().expect("metrics");
    drop(client);
    daemon.stop();
    let _ = std::fs::remove_dir_all(&dir);

    let cold_s = summarize(cold);
    let warm_mem_s = summarize(warm_mem);
    let warm_disk_s = summarize(warm_disk);
    let cold_compile_s = summarize(cold_compile);
    let warm_mem_compile_s = summarize(warm_mem_compile);
    let warm_disk_compile_s = summarize(warm_disk_compile);
    let warm_rps = sweep
        .iter()
        .map(|&(_, _, _, rps)| rps)
        .fold(0.0f64, f64::max);
    let (compile_s, exec_s, points) = amortization(width, bytes);

    let mut json = String::new();
    json.push_str(&format!(
        "{{\"bench\":\"service\",\"size\":{size:?},\"scripts\":{},\"width\":{width},",
        corpus.len()
    ));
    json.push_str(&format!("\"cold\":{},", series_json(&cold_s)));
    json.push_str(&format!("\"warm_mem\":{},", series_json(&warm_mem_s)));
    json.push_str(&format!("\"warm_disk\":{},", series_json(&warm_disk_s)));
    json.push_str(&format!(
        "\"cold_compile\":{},",
        series_json(&cold_compile_s)
    ));
    json.push_str(&format!(
        "\"warm_mem_compile\":{},",
        series_json(&warm_mem_compile_s)
    ));
    json.push_str(&format!(
        "\"warm_disk_compile\":{},",
        series_json(&warm_disk_compile_s)
    ));
    json.push_str(&format!(
        "\"warm_vs_cold_p50_ratio\":{:.4},",
        warm_mem_s.p50_us as f64 / cold_s.p50_us as f64
    ));
    json.push_str(&format!(
        "\"warm_vs_cold_paired_median\":{warm_vs_cold_paired:.4},"
    ));
    // The cache-attributable component in isolation: what a hit
    // skips. This is the robust warm-vs-cold signal — end-to-end
    // latency also carries execution, which no cache can remove.
    json.push_str(&format!(
        "\"compile_warm_vs_cold_p50_ratio\":{:.4},",
        warm_mem_compile_s.p50_us as f64 / cold_compile_s.p50_us as f64
    ));
    json.push_str("\"throughput\":[");
    for (i, (c, total, wall, rps)) in sweep.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"concurrency\":{c},\"requests\":{total},\"wall_s\":{wall:.4},\"rps\":{rps:.2}}}"
        ));
    }
    json.push_str("],");
    json.push_str(&format!("\"warm_rps\":{warm_rps:.2},"));
    json.push_str(&format!(
        "\"tier1_hits\":{},\"tier2_hits\":{},\"compile_misses\":{},",
        metric(&tier1_metrics, "tier1_hits"),
        metric(&tier2_metrics, "tier2_hits"),
        metric(&tier1_metrics, "compile_misses"),
    ));
    json.push_str(&format!(
        "\"adaptive\":{{\"runs\":{},\"chosen_widths\":{chosen_widths:?},\
         \"converged_width\":{converged},\"stable_tail\":{},\
         \"profile_hits\":{},\"profile_misses\":{},\
         \"restart_profile_hits\":{},\"restart_adaptive_width\":{}}},",
        metric(&adaptive_metrics, "adaptive_runs"),
        u64::from(stable_tail),
        metric(&adaptive_metrics, "profile_hits"),
        metric(&adaptive_metrics, "profile_misses"),
        metric(&restart_metrics, "profile_hits"),
        metric(&restart_metrics, "last_chosen_width"),
    ));
    json.push_str(&format!(
        "\"amortization\":{{\"script\":\"Wf\",\"compile_s\":{compile_s:.6},\
         \"exec_s_sim\":{exec_s:.6},\"points\":["
    ));
    for (i, (k, speedup)) in points.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!("{{\"requests\":{k},\"speedup\":{speedup:.4}}}"));
    }
    // The measured counterpart: K requests against this daemon, first
    // one cold, the rest tier-1 warm — the amortization the cache
    // actually delivered on this machine, converging on
    // cold_p50/warm_p50.
    json.push_str("],\"measured_points\":[");
    let (cold_p50, warm_p50) = (cold_s.p50_us as f64, warm_mem_s.p50_us as f64);
    for (i, k) in [1u64, 10, 100, 1000].into_iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let speedup = (k as f64 * cold_p50) / (cold_p50 + (k - 1) as f64 * warm_p50);
        json.push_str(&format!("{{\"requests\":{k},\"speedup\":{speedup:.4}}}"));
    }
    json.push_str("]}}");

    let mut f = std::fs::File::create(&out).expect("create output");
    f.write_all(json.as_bytes()).expect("write output");
    f.write_all(b"\n").expect("write output");
    eprintln!(
        "pash-bench: wrote {} (cold p50 {}us, warm-mem p50 {}us, warm-disk p50 {}us, {warm_rps:.1} req/s warm)",
        out.display(),
        cold_s.p50_us,
        warm_mem_s.p50_us,
        warm_disk_s.p50_us,
    );
}
