//! Lowers a script to its backend-neutral `ExecutionPlan` and prints
//! the deterministic dump (plus the FNV fingerprint on stderr).
//!
//! The CI plan-determinism smoke step runs this twice on the same
//! input and asserts byte-identical output — the property the
//! compile-result cache key relies on.
//!
//! Usage: `plandump [--width N] [--split off|general|sized|rr]
//!                  [--eager off|blocking|full] [--flat-agg]
//!                  (-e SCRIPT | FILE)`

use pash_core::compile::{compile, PashConfig};
use pash_core::dfg::transform::{AggTreeShape, EagerPolicy, SplitPolicy};

fn main() {
    let mut cfg = PashConfig::default();
    let mut source: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--width" => {
                cfg.width = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--split" => {
                cfg.split = match args.next().as_deref() {
                    Some("off") => SplitPolicy::Off,
                    Some("general") => SplitPolicy::General,
                    Some("sized") => SplitPolicy::Sized,
                    Some("rr") => SplitPolicy::RoundRobin,
                    _ => usage(),
                };
            }
            "--eager" => {
                cfg.eager = match args.next().as_deref() {
                    Some("off") => EagerPolicy::Off,
                    Some("blocking") => EagerPolicy::Blocking,
                    Some("full") => EagerPolicy::Full,
                    _ => usage(),
                };
            }
            "--flat-agg" => cfg.agg_tree = AggTreeShape::Flat,
            "-e" => source = Some(args.next().unwrap_or_else(|| usage())),
            path if !path.starts_with('-') => {
                source = Some(std::fs::read_to_string(path).unwrap_or_else(|e| {
                    eprintln!("plandump: cannot read {path}: {e}");
                    std::process::exit(1);
                }));
            }
            _ => usage(),
        }
    }
    let src = source.unwrap_or_else(|| usage());
    let compiled = compile(&src, &cfg).unwrap_or_else(|e| {
        eprintln!("plandump: compile failed: {e}");
        std::process::exit(1);
    });
    print!("{}", compiled.plan.dump());
    eprintln!("fingerprint: {:016x}", compiled.plan.fingerprint());
}

fn usage() -> ! {
    eprintln!(
        "usage: plandump [--width N] [--split off|general|sized|rr] \
         [--eager off|blocking|full] [--flat-agg] (-e SCRIPT | FILE)"
    );
    std::process::exit(2);
}
