//! Regenerates §6.4 (Wikipedia web indexing): correctness of the
//! annotated non-POSIX pipeline plus simulated speedups at 2×/16×.

use std::sync::Arc;

use pash_bench::suites::usecases;
use pash_bench::Fig7Config;
use pash_coreutils::fs::MemFs;
use pash_coreutils::Registry;
use pash_runtime::exec::{run_script, ExecConfig};
use pash_sim::{simulate_compiled, CostModel, SimConfig};
use pash_workloads::WikiSpec;

fn main() {
    println!("§6.4 Wikipedia web indexing\n");
    // --- Correctness: parallel output must equal sequential ---------
    let fs = Arc::new(MemFs::new());
    let spec = WikiSpec {
        pages: 40,
        bytes_per_page: 3000,
        seed: 7,
    };
    usecases::setup_wiki(&fs, &spec);
    let script = usecases::wiki_script();
    let reg = Registry::standard();
    let seq_out = run_script(
        &script,
        &Fig7Config::Parallel.pash_config(1),
        &reg,
        fs.clone(),
        Vec::new(),
        &ExecConfig::default(),
    )
    .expect("seq run");
    let seq_index = fs.read("index.txt").expect("index");
    println!("correctness (threaded executor, {} pages):", spec.pages);
    for width in [2usize, 16] {
        let out = run_script(
            &script,
            &Fig7Config::ParBSplit.pash_config(width),
            &reg,
            fs.clone(),
            Vec::new(),
            &ExecConfig::default(),
        )
        .expect("par run");
        let par_index = fs.read("index.txt").expect("index");
        println!(
            "  width {width:>2}: {}",
            if par_index == seq_index {
                "byte-identical to sequential"
            } else {
                "MISMATCH"
            }
        );
        let _ = (out, &seq_out);
    }
    let top = String::from_utf8_lossy(&seq_index)
        .lines()
        .take(3)
        .map(|l| l.trim().to_string())
        .collect::<Vec<_>>()
        .join("; ");
    println!("  top index terms: {top}");

    // --- Performance shape (simulated) ------------------------------
    let cm = CostModel::default();
    let sim_cfg = SimConfig::default();
    let mut sizes = usecases::wiki_sim_sizes(&spec);
    // Paper scale: 1% of Wikipedia = 1.3 GB of pages; urls ≈ 45 B/page.
    sizes.insert("wiki/urls.txt".to_string(), 1.3e9 / 200.0);
    let seq = simulate_compiled(
        &script,
        &Fig7Config::Parallel.pash_config(1),
        &sizes,
        &cm,
        &sim_cfg,
    )
    .expect("sim")
    .seconds;
    println!("\nperformance shape (simulated; paper: 1.97x @2x, 12.7x @16x, 191min seq):");
    println!("  sequential: {:.0}s", seq);
    for width in [2usize, 16] {
        let par = simulate_compiled(
            &script,
            &Fig7Config::ParBSplit.pash_config(width),
            &sizes,
            &cm,
            &sim_cfg,
        )
        .expect("sim")
        .seconds;
        println!("  width {width:>2}: {par:.0}s  speedup {:.2}x", seq / par);
    }
}
