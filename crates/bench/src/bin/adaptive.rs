//! `adaptive` — prices profile-guided per-region parallelism against
//! every fixed global configuration, on the skewed corpus where the
//! choice actually matters.
//!
//! ```text
//! adaptive --out BENCH_adaptive.json [--mb 64]
//! ```
//!
//! The corpus is the Unix-for-NLP family (single-region pipelines with
//! very different stage mixes) replayed through the fluid-rate
//! simulator over a line-length-skewed input: the general segment
//! split deals its first worker half the bytes (`split_shares`), the
//! round-robin split stays balanced by construction. A *fixed*
//! configuration applies one `(width, split)` to every script — the
//! global-flag status quo. The *adaptive* run lets the optimizer pick
//! per region, pricing candidates through the same rate model.
//!
//! The headline numbers gate in ci.sh:
//! * `adaptive_vs_worst_fixed_speedup` ≥ 1.1 — measured profiles must
//!   actually protect against a bad global choice;
//! * `adaptive_vs_best_fixed_ratio` ≤ 1.05 — and never lose more than
//!   noise to the best one.

use std::io::Write as _;
use std::path::PathBuf;

use pash_core::compile::{compile_cached, PashConfig};
use pash_core::dfg::SplitPolicy;
use pash_core::optimize::{optimize, CandidatePricer, OptimizerConfig};
use pash_core::plan::{PlanOp, RegionPlan, SplitMode};
use pash_sim::{simulate_region, CostModel, InputSizes, SimConfig};
use pash_workloads::nlp;

fn usage() -> ! {
    eprintln!("usage: adaptive --out PATH [--mb MB]");
    std::process::exit(2);
}

/// Byte shares modelling line-length skew for a `k`-way general
/// split: the first worker draws half the bytes, the rest divide the
/// remainder evenly (the shape of Fig. 7's skew discussion).
fn skew_shares(k: usize) -> Option<Vec<f64>> {
    if k < 2 {
        return None;
    }
    let mut v = vec![0.5 / (k - 1) as f64; k];
    v[0] = 0.5;
    Some(v)
}

/// Prices a region over the skewed input: general splits in the
/// region get skewed shares sized to their own fan-out, so every
/// candidate width sees the same imbalance.
struct SkewPricer {
    cost: CostModel,
    sizes: InputSizes,
}

impl SkewPricer {
    fn sim_for(&self, r: &RegionPlan) -> SimConfig {
        let fanout = r
            .nodes
            .iter()
            .filter_map(|n| match &n.op {
                PlanOp::Split {
                    mode: SplitMode::General,
                } => Some(n.outputs.len()),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        SimConfig {
            split_shares: skew_shares(fanout),
            ..SimConfig::default()
        }
    }
}

impl CandidatePricer for SkewPricer {
    fn price_region(&self, r: &RegionPlan) -> f64 {
        simulate_region(r, &self.sizes, 0.0, &self.cost, &self.sim_for(r)).seconds
    }
}

/// Total priced seconds for one script under one fixed configuration.
fn price_fixed(script: &str, cfg: &PashConfig, pricer: &SkewPricer) -> f64 {
    let compiled = compile_cached(script, cfg).expect("compile candidate");
    compiled
        .plan
        .regions()
        .map(|r| pricer.price_region(r))
        .sum()
}

fn main() {
    let mut out: Option<PathBuf> = None;
    let mut mb: f64 = 64.0;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--mb" => {
                mb = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            _ => usage(),
        }
    }
    let out = out.unwrap_or_else(|| usage());

    let mut sizes = InputSizes::new();
    sizes.insert("in.txt".to_string(), mb * 1e6);
    sizes.insert("in2.txt".to_string(), mb * 1e6);
    let pricer = SkewPricer {
        cost: CostModel::default(),
        sizes,
    };
    let ocfg = OptimizerConfig {
        max_width: 16,
        ..Default::default()
    };

    // Single-region pipelines only: the multi-step book comparison
    // writes intermediates the whole-corpus replay would have to size.
    let corpus: Vec<_> = nlp::scripts()
        .into_iter()
        .filter(|s| !s.script.contains('\n'))
        .collect();
    let fixed_shapes: Vec<(usize, SplitPolicy)> = {
        let mut v = vec![(1, SplitPolicy::Off)];
        for w in [2usize, 4, 8, 16] {
            v.push((w, SplitPolicy::Sized));
            v.push((w, SplitPolicy::RoundRobin));
        }
        v
    };

    // fixed_totals[i] = corpus seconds with fixed_shapes[i] applied
    // globally; adaptive_total lets the optimizer choose per script
    // (and per region within it).
    let mut fixed_totals = vec![0.0f64; fixed_shapes.len()];
    let mut adaptive_total = 0.0f64;
    let mut per_script = Vec::new();
    for bench in &corpus {
        let mut best_fixed = f64::INFINITY;
        let mut worst_fixed: f64 = 0.0;
        for (i, &(width, split)) in fixed_shapes.iter().enumerate() {
            let cfg = PashConfig {
                width,
                split,
                ..Default::default()
            };
            let s = price_fixed(bench.script, &cfg, &pricer);
            fixed_totals[i] += s;
            best_fixed = best_fixed.min(s);
            worst_fixed = worst_fixed.max(s);
        }
        let opt = optimize(bench.script, &PashConfig::default(), &pricer, &ocfg)
            .expect("optimize script");
        let adaptive: f64 = opt
            .compiled
            .plan
            .regions()
            .map(|r| pricer.price_region(r))
            .sum();
        adaptive_total += adaptive;
        eprintln!(
            "adaptive: {:<22} w{:<2} {:<12} {:.2}s (fixed best {:.2}s worst {:.2}s)",
            bench.name,
            opt.chosen_width(),
            format!("{:?}", opt.chosen_split()),
            adaptive,
            best_fixed,
            worst_fixed,
        );
        per_script.push((
            bench.name,
            opt.chosen_width(),
            format!("{:?}", opt.chosen_split()),
            adaptive,
            best_fixed,
            worst_fixed,
        ));
    }

    let best_i = fixed_totals
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .expect("nonempty ladder")
        .0;
    let worst_i = fixed_totals
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .expect("nonempty ladder")
        .0;
    let best_fixed_total = fixed_totals[best_i];
    let worst_fixed_total = fixed_totals[worst_i];
    let vs_worst = worst_fixed_total / adaptive_total;
    let vs_best = adaptive_total / best_fixed_total;

    let mut json = String::new();
    json.push_str(&format!(
        "{{\"bench\":\"adaptive\",\"input_mb\":{mb},\"scripts\":{},\
         \"skew\":\"first worker 50% of bytes\",",
        corpus.len()
    ));
    json.push_str("\"fixed\":[");
    for (i, &(width, split)) in fixed_shapes.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"width\":{width},\"split\":\"{split:?}\",\"total_s\":{:.4}}}",
            fixed_totals[i]
        ));
    }
    json.push_str("],");
    json.push_str("\"per_script\":[");
    for (i, (name, w, split, adaptive, best, worst)) in per_script.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"name\":\"{name}\",\"chosen_width\":{w},\"chosen_split\":\"{split}\",\
             \"adaptive_s\":{adaptive:.4},\"best_fixed_s\":{best:.4},\
             \"worst_fixed_s\":{worst:.4}}}"
        ));
    }
    json.push_str("],");
    json.push_str(&format!(
        "\"adaptive_total_s\":{adaptive_total:.4},\
         \"best_fixed_total_s\":{best_fixed_total:.4},\
         \"best_fixed\":{{\"width\":{},\"split\":\"{:?}\"}},\
         \"worst_fixed_total_s\":{worst_fixed_total:.4},\
         \"worst_fixed\":{{\"width\":{},\"split\":\"{:?}\"}},\
         \"adaptive_vs_worst_fixed_speedup\":{vs_worst:.4},\
         \"adaptive_vs_best_fixed_ratio\":{vs_best:.4}}}",
        fixed_shapes[best_i].0,
        fixed_shapes[best_i].1,
        fixed_shapes[worst_i].0,
        fixed_shapes[worst_i].1,
    ));

    let mut f = std::fs::File::create(&out).expect("create output");
    f.write_all(json.as_bytes()).expect("write output");
    f.write_all(b"\n").expect("write output");
    eprintln!(
        "adaptive: wrote {} (adaptive {adaptive_total:.2}s, best fixed {best_fixed_total:.2}s, \
         worst fixed {worst_fixed_total:.2}s, vs-worst {vs_worst:.2}x, vs-best {vs_best:.3})",
        out.display()
    );
}
