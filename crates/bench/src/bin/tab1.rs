//! Regenerates Tab. 1: the parallelizability study of POSIX and GNU
//! Coreutils.

fn main() {
    println!("Tab. 1: Parallelizability classes (paper: S 28/22, P 9/8, N 13/13, E 105/57)\n");
    print!("{}", pash_core::study::render_table1());
    println!();
    println!(
        "Annotation stdlib: {} command records",
        pash_core::annot::stdlib::AnnotationLibrary::standard().len()
    );
}
