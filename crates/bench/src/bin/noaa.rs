//! Regenerates §6.3 (NOAA weather analysis): end-to-end speedups at
//! 2×/10× plus a real-execution correctness check against the
//! generator's ground truth.

use std::sync::Arc;

use pash_bench::suites::usecases;
use pash_bench::Fig7Config;
use pash_coreutils::fs::MemFs;
use pash_coreutils::Registry;
use pash_runtime::exec::{run_script, ExecConfig};
use pash_sim::{simulate_compiled, SimConfig};
use pash_workloads::NoaaSpec;

fn main() {
    // --- Correctness: real threaded execution vs ground truth ------
    let fs = Arc::new(MemFs::new());
    let spec = NoaaSpec {
        years: 2015..=2020,
        files_per_year: 4,
        records_per_file: 400,
        seed: 42,
    };
    let truths = usecases::setup_noaa(&fs, &spec);
    let script = usecases::noaa_script(2015..=2020);
    let reg = Registry::standard();
    println!("§6.3 NOAA weather analysis\n");
    println!("correctness (threaded executor, real data):");
    for width in [1usize, 2, 10] {
        let out = run_script(
            &script,
            &Fig7Config::ParBSplit.pash_config(width),
            &reg,
            fs.clone(),
            Vec::new(),
            &ExecConfig::default(),
        )
        .expect("run");
        let text = String::from_utf8(out.stdout).expect("utf8");
        let ok = truths.iter().all(|(year, max)| {
            text.contains(&format!("Maximum temperature for {year} is: {max:04}"))
        });
        println!(
            "  width {width:>2}: {} ({} lines)",
            if ok {
                "matches ground truth"
            } else {
                "MISMATCH"
            },
            text.lines().count()
        );
        if !ok {
            println!("--- output ---\n{text}");
        }
    }

    // --- Performance shape (simulated) ------------------------------
    let cm = usecases::noaa_cost_model();
    let sim_cfg = SimConfig::default();
    let sizes = usecases::noaa_sim_sizes(&spec);
    let seq = simulate_compiled(
        &script,
        &Fig7Config::Parallel.pash_config(1),
        &sizes,
        &cm,
        &sim_cfg,
    )
    .expect("sim")
    .seconds;
    println!("\nperformance shape (simulated; paper: 1.86x @2x, 2.44x @10x):");
    println!("  sequential: {seq:.1}s");
    for width in [2usize, 10] {
        let par = simulate_compiled(
            &script,
            &Fig7Config::ParBSplit.pash_config(width),
            &sizes,
            &cm,
            &sim_cfg,
        )
        .expect("sim")
        .seconds;
        println!("  width {width:>2}: {par:.1}s  speedup {:.2}x", seq / par);
    }
    // Per-phase split: the compute phase alone (paper: 2.30x/10.79x).
    let compute = usecases::noaa_compute_script(2015);
    let mut csizes = pash_sim::InputSizes::new();
    // One year of raw records (paper scale).
    csizes.insert("noaa-2015.flat".to_string(), 13.5e9);
    let cseq = simulate_compiled(
        &compute,
        &Fig7Config::Parallel.pash_config(1),
        &csizes,
        &cm,
        &sim_cfg,
    )
    .expect("sim")
    .seconds;
    println!("\ncompute phase only (paper: 2.30x @2x, 10.79x @10x):");
    for width in [2usize, 10] {
        let cpar = simulate_compiled(
            &compute,
            &Fig7Config::ParBSplit.pash_config(width),
            &csizes,
            &cm,
            &sim_cfg,
        )
        .expect("sim")
        .seconds;
        println!("  width {width:>2}: speedup {:.2}x", cseq / cpar);
    }
}
