//! Regenerates Tab. 2: per-benchmark structure, input, sequential
//! time (simulated at paper scale), DFG node counts and compile times
//! at 16× and 64×.

use pash_bench::suites::oneliners;
use pash_bench::{fmt_secs, Fig7Config};
use pash_core::compile::compile;
use pash_sim::{simulate_program, CostModel, SimConfig};

fn paper_bytes(label: &str) -> f64 {
    match label {
        "1 GB" => 1e9,
        "3 GB" => 3e9,
        "10 GB" => 10e9,
        "100 GB" => 100e9,
        "85 MB" => 85e6,
        other => other.parse().unwrap_or(1e9),
    }
}

fn main() {
    // Simulating 10–100 GB runs is slow at a 2 ms tick; scale the
    // sequential-time estimate on a smaller input and extrapolate
    // linearly (sequential pipelines are throughput-bound).
    let sim_mb: f64 = std::env::var("PASH_BENCH_MB")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64.0);
    let cm = CostModel::default();
    let sim_cfg = SimConfig::default();
    println!("Tab. 2: one-liner summary (sim input {sim_mb} MB, extrapolated to paper scale)\n");
    println!(
        "{:<18} {:<10} {:>7} {:>9} {:>9} {:>6} {:>6} {:>10} {:>10}",
        "Script",
        "Structure",
        "Input",
        "PaperSeq",
        "SimSeq",
        "N(16)",
        "N(64)",
        "Comp(16)",
        "Comp(64)"
    );
    for b in oneliners::all() {
        let sizes = oneliners::sim_sizes(&b, sim_mb * 1e6);
        // Sequential estimate at paper scale.
        let seq_cfg = Fig7Config::Parallel.pash_config(1);
        let compiled = compile(&b.script, &seq_cfg).expect("compile");
        let sim = simulate_program(&compiled.plan, &sizes, 0.0, &cm, &sim_cfg);
        let scale = paper_bytes(b.paper_input) / (sim_mb * 1e6);
        let seq_est = sim.seconds * scale;

        let mut nodes = Vec::new();
        let mut times = Vec::new();
        for width in [16usize, 64] {
            let cfg = Fig7Config::Parallel.pash_config(width);
            let out = compile(&b.script, &cfg).expect("compile");
            nodes.push(out.stats.nodes.total());
            times.push(out.stats.compile_time);
        }
        println!(
            "{:<18} {:<10} {:>7} {:>9} {:>9} {:>6} {:>6} {:>9.3}ms {:>9.3}ms",
            b.name,
            b.structure,
            b.paper_input,
            b.paper_seq_time,
            fmt_secs(seq_est),
            nodes[0],
            nodes[1],
            times[0].as_secs_f64() * 1e3,
            times[1].as_secs_f64() * 1e3,
        );
    }
    println!("\nPaper #Nodes(16,64): Grep 49/193, Sort 77/317, Top-n 96/384, Wf 96/384, …");
    println!("(node counts match with eager relays excluded from the merge; see EXPERIMENTS.md)");
}
