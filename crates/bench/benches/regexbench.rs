//! Criterion bench over the regex tiers — the continuous-integration
//! face of the `regexbench` binary: tiered matcher vs. Pike VM on the
//! standard pattern shapes, bytes/sec via the group throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pash_bench::regexbench;

const BYTES: usize = 256 * 1024;

fn bench_regex(c: &mut Criterion) {
    let mut g = c.benchmark_group("regex");
    g.sample_size(10)
        .throughput(Throughput::Bytes(BYTES as u64));
    g.bench_function("tier_suite", |b| b.iter(|| regexbench::run_suite(BYTES, 1)));
    g.finish();
}

criterion_group!(benches, bench_regex);
criterion_main!(benches);
