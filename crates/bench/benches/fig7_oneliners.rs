//! Fig. 7 bench: real threaded execution of representative one-liners,
//! sequential vs. parallel width 4 (correctness-bearing path), plus
//! one simulator evaluation (the figure's data generator).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pash_bench::suites::oneliners;
use pash_bench::Fig7Config;
use pash_coreutils::fs::MemFs;
use pash_coreutils::Registry;
use pash_runtime::exec::{run_script, ExecConfig};
use pash_sim::{simulate_compiled, CostModel, SimConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    let reg = Registry::standard();
    for name in ["Sort", "Wf"] {
        let bench = oneliners::by_name(name).expect("known benchmark");
        let fs = Arc::new(MemFs::new());
        oneliners::setup_fs(&bench, 150_000, &fs);
        for width in [1usize, 4] {
            g.bench_function(format!("exec_{name}_w{width}"), |b| {
                let cfg = Fig7Config::ParBSplit.pash_config(width);
                b.iter(|| {
                    black_box(
                        run_script(
                            &bench.script,
                            &cfg,
                            &reg,
                            fs.clone(),
                            Vec::new(),
                            &ExecConfig::default(),
                        )
                        .expect("run"),
                    )
                })
            });
        }
    }
    // One simulator datapoint (what the fig7 harness sweeps).
    let bench = oneliners::by_name("Sort").expect("known benchmark");
    let sizes = oneliners::sim_sizes(&bench, 8e6);
    g.bench_function("sim_Sort_w16", |b| {
        let cfg = Fig7Config::Parallel.pash_config(16);
        b.iter(|| {
            black_box(
                simulate_compiled(
                    &bench.script,
                    &cfg,
                    &sizes,
                    &CostModel::default(),
                    &SimConfig::default(),
                )
                .expect("sim"),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
