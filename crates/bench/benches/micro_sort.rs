//! §6.5 parallel-sort bench: sequential sort vs. the internal
//! threaded sort (`--parallel`) vs. PaSh-parallelized sort, executed
//! for real on a small corpus.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pash_bench::Fig7Config;
use pash_coreutils::fs::MemFs;
use pash_coreutils::{run_command, Registry};
use pash_runtime::exec::{run_script, ExecConfig};
use pash_workloads::text_corpus;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_sort");
    g.sample_size(10);
    let reg = Registry::standard();
    let corpus = text_corpus(31, 200_000);
    g.bench_function("sort_sequential", |b| {
        let fs = Arc::new(MemFs::new());
        b.iter(|| black_box(run_command(&reg, fs.clone(), &["sort"], &corpus).expect("run")))
    });
    g.bench_function("sort_parallel_flag", |b| {
        let fs = Arc::new(MemFs::new());
        b.iter(|| {
            black_box(
                run_command(&reg, fs.clone(), &["sort", "--parallel=4"], &corpus).expect("run"),
            )
        })
    });
    g.bench_function("sort_pash_w4", |b| {
        let fs = Arc::new(MemFs::new());
        fs.add("in.txt", corpus.clone());
        let cfg = Fig7Config::Parallel.pash_config(4);
        b.iter(|| {
            black_box(
                run_script(
                    "sort in.txt > out.txt",
                    &cfg,
                    &reg,
                    fs.clone(),
                    Vec::new(),
                    &ExecConfig::default(),
                )
                .expect("run"),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
