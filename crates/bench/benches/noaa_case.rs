//! §6.3 bench: real threaded execution of the NOAA pipeline over a
//! small generated mirror, sequential vs. parallel.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pash_bench::suites::usecases;
use pash_bench::Fig7Config;
use pash_coreutils::fs::MemFs;
use pash_coreutils::Registry;
use pash_runtime::exec::{run_script, ExecConfig};
use pash_workloads::NoaaSpec;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("noaa");
    g.sample_size(10);
    let reg = Registry::standard();
    let fs = Arc::new(MemFs::new());
    let spec = NoaaSpec {
        years: 2015..=2016,
        files_per_year: 3,
        records_per_file: 150,
        seed: 42,
    };
    usecases::setup_noaa(&fs, &spec);
    let script = usecases::noaa_script(2015..=2016);
    for width in [1usize, 4] {
        g.bench_function(format!("pipeline_w{width}"), |b| {
            let cfg = Fig7Config::ParBSplit.pash_config(width);
            b.iter(|| {
                black_box(
                    run_script(
                        &script,
                        &cfg,
                        &reg,
                        fs.clone(),
                        Vec::new(),
                        &ExecConfig::default(),
                    )
                    .expect("run"),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
