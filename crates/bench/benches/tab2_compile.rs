//! Tab. 2 bench: compilation time at 16× and 64× (the table's
//! `Compile time` columns) across the one-liner suite.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pash_bench::suites::oneliners;
use pash_bench::Fig7Config;
use pash_core::compile::compile;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("tab2_compile");
    g.sample_size(20);
    for width in [16usize, 64] {
        g.bench_function(format!("suite_width_{width}"), |b| {
            let cfg = Fig7Config::Parallel.pash_config(width);
            let suite = oneliners::all();
            b.iter(|| {
                for bench in &suite {
                    black_box(compile(black_box(&bench.script), &cfg).expect("compile"));
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
