//! Fig. 8 bench: real threaded execution of representative Unix50
//! pipelines at sequential and 16× widths.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pash_bench::suites::unix50;
use pash_bench::Fig7Config;
use pash_coreutils::fs::MemFs;
use pash_coreutils::Registry;
use pash_runtime::exec::{run_script, ExecConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    let reg = Registry::standard();
    let fs = Arc::new(MemFs::new());
    unix50::setup_fs(120_000, &fs);
    let suite = unix50::all();
    // One from each outcome group: accelerated, blocked, head-bound.
    for idx in [1usize, 25, 19] {
        let p = &suite[idx];
        for width in [1usize, 16] {
            g.bench_function(format!("pipeline{:02}_w{width}", p.idx), |b| {
                let cfg = Fig7Config::ParBSplit.pash_config(width);
                b.iter(|| {
                    black_box(
                        run_script(
                            p.script,
                            &cfg,
                            &reg,
                            fs.clone(),
                            Vec::new(),
                            &ExecConfig::default(),
                        )
                        .map(|o| o.stdout.len()),
                    )
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
