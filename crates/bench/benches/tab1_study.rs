//! Tab. 1 bench: classification throughput of the annotation library
//! (the per-command work PaSh's front-end does for every node).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pash_core::annot::stdlib::AnnotationLibrary;

fn bench(c: &mut Criterion) {
    let lib = AnnotationLibrary::standard();
    let invocations: Vec<Vec<String>> = [
        vec!["grep", "-iv", "999"],
        vec!["sort", "-rn"],
        vec!["comm", "-13", "dict.txt", "-"],
        vec!["xargs", "-n", "1", "fetch"],
        vec!["sed", "s;^;prefix;"],
        vec!["uniq", "-c"],
    ]
    .iter()
    .map(|v| v.iter().map(|s| s.to_string()).collect())
    .collect();
    let mut g = c.benchmark_group("tab1");
    g.bench_function("classify_6_invocations", |b| {
        b.iter(|| {
            for argv in &invocations {
                black_box(lib.classify(black_box(argv)));
            }
        })
    });
    g.bench_function("render_table1", |b| {
        b.iter(|| black_box(pash_core::study::render_table1()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
