//! §6.5 GNU-parallel bench: sequential pipeline vs. naive block
//! parallelism vs. PaSh, executed for real.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pash_bench::baseline::{naive_parallel, run_pipeline_seq};
use pash_bench::Fig7Config;
use pash_coreutils::fs::{Fs, MemFs};
use pash_coreutils::Registry;
use pash_runtime::exec::{run_script, ExecConfig};
use pash_workloads::text_corpus;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_parallel");
    g.sample_size(10);
    let reg = Registry::standard();
    let input = text_corpus(37, 150_000);
    let stages: Vec<Vec<&str>> = vec![
        vec!["tr", "A-Z", "a-z"],
        vec!["sort"],
        vec!["uniq", "-c"],
        vec!["sort", "-rn"],
    ];
    let fs: Arc<dyn Fs> = Arc::new(MemFs::new());
    g.bench_function("sequential", |b| {
        b.iter(|| black_box(run_pipeline_seq(&stages, &input, &reg, fs.clone()).expect("run")))
    });
    g.bench_function("naive_parallel_4", |b| {
        b.iter(|| black_box(naive_parallel(&stages, &input, 4, &reg, fs.clone()).expect("run")))
    });
    g.bench_function("pash_w4", |b| {
        let mfs = Arc::new(MemFs::new());
        mfs.add("in.txt", input.clone());
        let cfg = Fig7Config::ParBSplit.pash_config(4);
        let script = "cat in.txt | tr A-Z a-z | sort | uniq -c | sort -rn > out.txt";
        b.iter(|| {
            black_box(
                run_script(
                    script,
                    &cfg,
                    &reg,
                    mfs.clone(),
                    Vec::new(),
                    &ExecConfig::default(),
                )
                .expect("run"),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
