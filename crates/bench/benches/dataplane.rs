//! Criterion bench over the data-plane primitives (pipe transfer,
//! split, segment read, eager relay) — the continuous-integration
//! face of the `dataplane` binary, with bytes/sec reported via the
//! group throughput.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pash_bench::dataplane;
use pash_coreutils::fs::{Fs, MemFs};

const BYTES: usize = 256 * 1024;

fn bench_dataplane(c: &mut Criterion) {
    let corpus = pash_workloads::text_corpus(41, BYTES);
    let mem = MemFs::new();
    mem.add("seg.txt", corpus.clone());
    let fs: Arc<dyn Fs> = Arc::new(mem);
    let mut g = c.benchmark_group("dataplane");
    g.sample_size(10)
        .throughput(Throughput::Bytes(BYTES as u64));
    g.bench_function("pipe_64k_cap", |b| {
        b.iter(|| dataplane::time_pipe_transfer(64 * 1024, BYTES))
    });
    g.bench_function("split_8way", |b| {
        b.iter(|| dataplane::time_split(&corpus, 8))
    });
    g.bench_function("segment_read_8way", |b| {
        b.iter(|| dataplane::time_segment_read(&fs, "seg.txt", 8))
    });
    g.bench_function("relay_full", |b| b.iter(|| dataplane::time_relay(&corpus)));
    g.finish();
}

criterion_group!(benches, bench_dataplane);
criterion_main!(benches);
