//! §6.4 bench: real threaded execution of the web-indexing pipeline
//! over a small generated mirror.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pash_bench::suites::usecases;
use pash_bench::Fig7Config;
use pash_coreutils::fs::MemFs;
use pash_coreutils::Registry;
use pash_runtime::exec::{run_script, ExecConfig};
use pash_workloads::WikiSpec;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("wiki");
    g.sample_size(10);
    let reg = Registry::standard();
    let fs = Arc::new(MemFs::new());
    usecases::setup_wiki(
        &fs,
        &WikiSpec {
            pages: 12,
            bytes_per_page: 2000,
            seed: 7,
        },
    );
    let script = usecases::wiki_script();
    for width in [1usize, 4] {
        g.bench_function(format!("index_w{width}"), |b| {
            let cfg = Fig7Config::ParBSplit.pash_config(width);
            b.iter(|| {
                black_box(
                    run_script(
                        &script,
                        &cfg,
                        &reg,
                        fs.clone(),
                        Vec::new(),
                        &ExecConfig::default(),
                    )
                    .expect("run"),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
