//! Guards against registry/suite drift: every command a benchmark
//! script invokes must be registered in `Registry::standard()`.
//! Without this, adding a benchmark that uses an unimplemented command
//! only fails deep inside the correctness suites, with the failure
//! pointing at output mismatches instead of the missing command.

use std::collections::BTreeSet;

use pash_bench::suites::{oneliners, unix50, usecases};
use pash_coreutils::Registry;
use pash_parser::ast::{Command, CompleteCommand, CompoundCommand, Program};

/// Shell words that name control structures or builtins the executor
/// handles itself — they are not registry commands.
const SHELL_BUILTINS: &[&str] = &["cd", "exec", "exit", "set", "shift", "true", "wait", ":"];

fn collect_from_lists(lists: &[CompleteCommand], out: &mut BTreeSet<String>) {
    for cc in lists {
        for (andor, _) in &cc.items {
            for pipeline in std::iter::once(&andor.first).chain(andor.rest.iter().map(|(_, p)| p)) {
                for cmd in &pipeline.commands {
                    collect_from_command(cmd, out);
                }
            }
        }
    }
}

fn collect_from_command(cmd: &Command, out: &mut BTreeSet<String>) {
    match cmd {
        Command::Simple(simple) => {
            let words: Vec<String> = simple
                .words
                .iter()
                .filter_map(|w| w.as_static_str())
                .collect();
            let Some(head) = words.first() else { return };
            out.insert(head.clone());
            // `xargs [FLAGS] cmd args…` invokes an inner command.
            if head == "xargs" {
                if let Some(inner) = xargs_inner_command(&words[1..]) {
                    out.insert(inner);
                }
            }
        }
        Command::Compound(compound, _) => match compound {
            CompoundCommand::BraceGroup(body) | CompoundCommand::Subshell(body) => {
                collect_from_lists(body, out)
            }
            CompoundCommand::For { body, .. } => collect_from_lists(body, out),
            CompoundCommand::Case { arms, .. } => {
                for arm in arms {
                    collect_from_lists(&arm.body, out);
                }
            }
            CompoundCommand::If {
                branches,
                else_body,
            } => {
                for (cond, then) in branches {
                    collect_from_lists(cond, out);
                    collect_from_lists(then, out);
                }
                if let Some(body) = else_body {
                    collect_from_lists(body, out);
                }
            }
            CompoundCommand::While { cond, body } | CompoundCommand::Until { cond, body } => {
                collect_from_lists(cond, out);
                collect_from_lists(body, out);
            }
        },
        Command::FunctionDef { body, .. } => collect_from_command(body, out),
    }
}

/// Finds the command `xargs` forwards to, skipping xargs's own flags:
/// value-taking options (`-n N`, `-I REPL`, `-d DELIM`, `-s`, `-P`,
/// `-L`, `-E`, `-a`), their attached forms (`-n1`, `-I{}`), and bare
/// pass-through flags (`-0`, `-t`, `-r`, `-x`, `-p`). The first
/// remaining word is the inner command.
fn xargs_inner_command(words: &[String]) -> Option<String> {
    const TAKES_VALUE: &[&str] = &["-n", "-I", "-d", "-s", "-P", "-L", "-E", "-a"];
    let mut i = 0;
    while i < words.len() {
        let w = &words[i];
        if w.starts_with('-') && w.len() > 1 {
            if TAKES_VALUE.contains(&w.as_str()) {
                i += 2; // Flag plus its separate value.
                continue;
            }
            // Attached value (`-n1`, `-I{}`, `-d,`) or a bare
            // pass-through flag (`-0`, `-t`, …): skip the word.
            i += 1;
            continue;
        }
        return Some(w.clone());
    }
    None
}

fn commands_of(script: &str) -> BTreeSet<String> {
    let program: Program =
        pash_parser::parse(script).unwrap_or_else(|e| panic!("parse {script:?}: {e:?}"));
    let mut out = BTreeSet::new();
    collect_from_lists(&program.commands, &mut out);
    out
}

#[test]
fn standard_registry_covers_every_suite_command() {
    let mut invoked = BTreeSet::new();
    let mut scripts = 0usize;
    for bench in oneliners::all() {
        invoked.extend(commands_of(&bench.script));
        scripts += 1;
    }
    for bench in unix50::all() {
        invoked.extend(commands_of(bench.script));
        scripts += 1;
    }
    for script in [
        usecases::noaa_script(2015..=2016),
        usecases::noaa_compute_script(2015),
        usecases::wiki_script(),
    ] {
        invoked.extend(commands_of(&script));
        scripts += 1;
    }
    assert!(
        scripts >= 20,
        "suite shrank unexpectedly: {scripts} scripts"
    );
    assert!(
        invoked.len() >= 15,
        "implausibly few commands extracted: {invoked:?}"
    );

    let registry = Registry::standard();
    let missing: Vec<&String> = invoked
        .iter()
        .filter(|name| !SHELL_BUILTINS.contains(&name.as_str()))
        .filter(|name| registry.get(name).is_none())
        .collect();
    assert!(
        missing.is_empty(),
        "suite commands missing from Registry::standard(): {missing:?}\n\
         (registered: {:?})",
        registry.names()
    );
}

#[test]
fn xargs_extraction_handles_flag_forms() {
    // Separate values.
    let cmds = commands_of("cat urls | xargs -n 1 fetch");
    assert!(cmds.contains("fetch"), "{cmds:?}");
    // Attached values.
    let cmds = commands_of("cat urls | xargs -n1 fetch");
    assert!(cmds.contains("fetch"), "{cmds:?}");
    // Replacement templates: the command follows `-I REPL`.
    let cmds = commands_of("cat list | xargs -I '{}' cp '{}' dest");
    assert!(cmds.contains("cp"), "{cmds:?}");
    // Custom delimiter plus pass-through flags.
    let cmds = commands_of("cat list | xargs -d ',' -t -r wc -l");
    assert!(cmds.contains("wc"), "{cmds:?}");
    // Parallelism and batching flags.
    let cmds = commands_of("cat list | xargs -P 4 -L 2 sort");
    assert!(cmds.contains("sort"), "{cmds:?}");
    // Bare xargs defaults to echo-like behaviour: no inner command.
    let cmds = commands_of("cat list | xargs -0");
    assert!(cmds.contains("xargs"));
    assert_eq!(
        cmds.iter().filter(|c| *c != "cat" && *c != "xargs").count(),
        0,
        "{cmds:?}"
    );
}

#[test]
fn registry_names_are_unique_and_sorted() {
    let names = Registry::standard().names();
    let set: BTreeSet<&&str> = names.iter().collect();
    assert_eq!(set.len(), names.len(), "duplicate command registrations");
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(names, sorted);
}
