//! Pattern parsers for POSIX extended (ERE) and basic (BRE) syntaxes.

use crate::hir::{Assertion, ClassSet, Hir};
use crate::{Error, Syntax};

/// Parses a pattern into an [`Hir`] under the given syntax.
pub fn parse(pattern: &str, syntax: Syntax) -> Result<Hir, Error> {
    let mut p = Parser {
        chars: pattern.as_bytes(),
        pos: 0,
        syntax,
        group_index: 0,
    };
    let hir = p.parse_alt()?;
    if p.pos != p.chars.len() {
        return Err(Error::new(format!(
            "unexpected `{}` at offset {}",
            p.chars[p.pos] as char, p.pos
        )));
    }
    Ok(hir)
}

struct Parser<'a> {
    chars: &'a [u8],
    pos: usize,
    syntax: Syntax,
    group_index: u32,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// True when the upcoming input is an alternation separator.
    fn at_alt_sep(&self) -> bool {
        match self.syntax {
            Syntax::Ere => self.peek() == Some(b'|'),
            // GNU BRE supports `\|` as an extension.
            Syntax::Bre => {
                self.peek() == Some(b'\\') && self.chars.get(self.pos + 1) == Some(&b'|')
            }
        }
    }

    /// True when the upcoming input closes the current group.
    fn at_group_close(&self) -> bool {
        match self.syntax {
            Syntax::Ere => self.peek() == Some(b')'),
            Syntax::Bre => {
                self.peek() == Some(b'\\') && self.chars.get(self.pos + 1) == Some(&b')')
            }
        }
    }

    fn parse_alt(&mut self) -> Result<Hir, Error> {
        let mut parts = vec![self.parse_concat()?];
        while self.at_alt_sep() {
            match self.syntax {
                Syntax::Ere => {
                    self.pos += 1;
                }
                Syntax::Bre => {
                    self.pos += 2;
                }
            }
            parts.push(self.parse_concat()?);
        }
        Ok(Hir::alt(parts))
    }

    fn parse_concat(&mut self) -> Result<Hir, Error> {
        let mut parts = Vec::new();
        while self.peek().is_some() && !self.at_alt_sep() && !self.at_group_close() {
            parts.push(self.parse_repeat()?);
        }
        Ok(Hir::concat(parts))
    }

    fn parse_repeat(&mut self) -> Result<Hir, Error> {
        let atom = self.parse_atom()?;
        let mut hir = atom;
        loop {
            let (min, max) = match self.peek() {
                Some(b'*') => {
                    self.pos += 1;
                    (0, None)
                }
                Some(b'+') if self.syntax == Syntax::Ere => {
                    self.pos += 1;
                    (1, None)
                }
                Some(b'?') if self.syntax == Syntax::Ere => {
                    self.pos += 1;
                    (0, Some(1))
                }
                Some(b'{') if self.syntax == Syntax::Ere => {
                    // `{` not followed by a digit is a literal brace in
                    // practice (GNU behaviour); only treat as interval
                    // when it parses.
                    if let Some(r) = self.try_parse_interval(false)? {
                        r
                    } else {
                        break;
                    }
                }
                Some(b'\\')
                    if self.syntax == Syntax::Bre
                        && self.chars.get(self.pos + 1) == Some(&b'{') =>
                {
                    if let Some(r) = self.try_parse_interval(true)? {
                        r
                    } else {
                        break;
                    }
                }
                Some(b'\\')
                    if self.syntax == Syntax::Bre
                        && self.chars.get(self.pos + 1) == Some(&b'+') =>
                {
                    // GNU BRE extension `\+`.
                    self.pos += 2;
                    (1, None)
                }
                Some(b'\\')
                    if self.syntax == Syntax::Bre
                        && self.chars.get(self.pos + 1) == Some(&b'?') =>
                {
                    // GNU BRE extension `\?`.
                    self.pos += 2;
                    (0, Some(1))
                }
                _ => break,
            };
            if let Some(m) = max {
                if m < min {
                    return Err(Error::new("interval upper bound below lower bound"));
                }
            }
            if matches!(hir, Hir::Assert(_)) {
                return Err(Error::new("repetition operator applied to an anchor"));
            }
            hir = Hir::Repeat {
                inner: Box::new(hir),
                min,
                max,
                greedy: true,
            };
        }
        Ok(hir)
    }

    /// Parses `{m}`, `{m,}`, `{m,n}` (BRE: with escaped braces).
    ///
    /// Returns `Ok(None)` and restores the position when the input does
    /// not form a valid interval.
    fn try_parse_interval(&mut self, escaped: bool) -> Result<Option<(u32, Option<u32>)>, Error> {
        let start = self.pos;
        self.pos += if escaped { 2 } else { 1 };
        let min = match self.parse_number() {
            Some(n) => n,
            None => {
                self.pos = start;
                return Ok(None);
            }
        };
        let max = if self.eat(b',') {
            if self.peek().map(|c| c.is_ascii_digit()).unwrap_or(false) {
                match self.parse_number() {
                    Some(n) => Some(n),
                    None => {
                        self.pos = start;
                        return Ok(None);
                    }
                }
            } else {
                None
            }
        } else {
            Some(min)
        };
        let closed = if escaped {
            self.eat(b'\\') && self.eat(b'}')
        } else {
            self.eat(b'}')
        };
        if !closed {
            self.pos = start;
            return Ok(None);
        }
        if min > 1000 || max.map(|m| m > 1000).unwrap_or(false) {
            return Err(Error::new("interval too large (max 1000)"));
        }
        Ok(Some((min, max)))
    }

    fn parse_number(&mut self) -> Option<u32> {
        let start = self.pos;
        while self.peek().map(|c| c.is_ascii_digit()).unwrap_or(false) {
            self.pos += 1;
        }
        if self.pos == start {
            return None;
        }
        std::str::from_utf8(&self.chars[start..self.pos])
            .ok()?
            .parse()
            .ok()
    }

    fn parse_atom(&mut self) -> Result<Hir, Error> {
        let b = match self.bump() {
            Some(b) => b,
            None => return Ok(Hir::Empty),
        };
        match b {
            b'.' => Ok(Hir::Class(ClassSet::dot())),
            b'[' => self.parse_class(),
            b'^' => {
                // In BRE, `^` is an anchor only at the start of the
                // pattern or a group; we accept it anywhere for
                // simplicity (GNU behaviour in most positions).
                Ok(Hir::Assert(Assertion::Start))
            }
            b'$' => Ok(Hir::Assert(Assertion::End)),
            b'(' if self.syntax == Syntax::Ere => self.parse_group(false),
            b')' if self.syntax == Syntax::Ere => Err(Error::new("unmatched `)`")),
            b'*' => {
                // A leading `*` is literal in BRE.
                if self.syntax == Syntax::Bre {
                    Ok(Hir::Class(ClassSet::single(b'*')))
                } else {
                    Err(Error::new("repetition operator with nothing to repeat"))
                }
            }
            b'\\' => self.parse_escape(),
            _ => Ok(Hir::Class(ClassSet::single(b))),
        }
    }

    fn parse_group(&mut self, escaped: bool) -> Result<Hir, Error> {
        self.group_index += 1;
        let index = self.group_index;
        let inner = self.parse_alt()?;
        let closed = if escaped {
            self.eat(b'\\') && self.eat(b')')
        } else {
            self.eat(b')')
        };
        if !closed {
            return Err(Error::new("unclosed group"));
        }
        Ok(Hir::Group {
            index,
            inner: Box::new(inner),
        })
    }

    fn parse_escape(&mut self) -> Result<Hir, Error> {
        let b = self
            .bump()
            .ok_or_else(|| Error::new("trailing backslash"))?;
        match b {
            b'(' if self.syntax == Syntax::Bre => self.parse_group(true),
            b')' if self.syntax == Syntax::Bre => Err(Error::new("unmatched `\\)`")),
            b'n' => Ok(Hir::Class(ClassSet::single(b'\n'))),
            b't' => Ok(Hir::Class(ClassSet::single(b'\t'))),
            b'r' => Ok(Hir::Class(ClassSet::single(b'\r'))),
            b'd' => Ok(Hir::Class(digit_class())),
            b'D' => Ok(Hir::Class(digit_class().negate())),
            b'w' => Ok(Hir::Class(word_class())),
            b'W' => Ok(Hir::Class(word_class().negate())),
            b's' => Ok(Hir::Class(space_class())),
            b'S' => Ok(Hir::Class(space_class().negate())),
            b'b' => Ok(Hir::Assert(Assertion::WordBoundary)),
            b'B' => Ok(Hir::Assert(Assertion::NotWordBoundary)),
            b'<' | b'>' => Ok(Hir::Assert(Assertion::WordBoundary)),
            b'1'..=b'9' => Err(Error::new(
                "backreferences are not supported by the linear-time engine",
            )),
            _ => Ok(Hir::Class(ClassSet::single(b))),
        }
    }

    fn parse_class(&mut self) -> Result<Hir, Error> {
        let negated = self.eat(b'^');
        let mut set = ClassSet::new();
        let mut first = true;
        loop {
            let b = match self.peek() {
                Some(b) => b,
                None => return Err(Error::new("unclosed character class")),
            };
            if b == b']' && !first {
                self.pos += 1;
                break;
            }
            first = false;
            // POSIX named classes: `[:alpha:]` etc.
            if b == b'[' && self.chars.get(self.pos + 1) == Some(&b':') {
                let end = self.find_class_end()?;
                let name = std::str::from_utf8(&self.chars[self.pos + 2..end])
                    .map_err(|_| Error::new("invalid class name"))?
                    .to_string();
                self.pos = end + 2;
                set.union(&named_class(&name)?);
                continue;
            }
            self.pos += 1;
            let lo = if b == b'\\' && self.syntax == Syntax::Ere {
                match self.bump() {
                    Some(b'n') => b'\n',
                    Some(b't') => b'\t',
                    Some(b'r') => b'\r',
                    Some(c) => c,
                    None => return Err(Error::new("unclosed character class")),
                }
            } else {
                b
            };
            // Range?
            if self.peek() == Some(b'-')
                && self.chars.get(self.pos + 1).copied() != Some(b']')
                && self.chars.get(self.pos + 1).is_some()
            {
                self.pos += 1;
                let hb = self.bump().expect("checked above");
                let hi = if hb == b'\\' && self.syntax == Syntax::Ere {
                    self.bump()
                        .ok_or_else(|| Error::new("unclosed character class"))?
                } else {
                    hb
                };
                if hi < lo {
                    return Err(Error::new("invalid range in character class"));
                }
                set.push(lo, hi);
            } else {
                set.push(lo, lo);
            }
        }
        set.normalize();
        let set = if negated { set.negate() } else { set };
        Ok(Hir::Class(set))
    }

    fn find_class_end(&self) -> Result<usize, Error> {
        let mut i = self.pos + 2;
        while i + 1 < self.chars.len() {
            if self.chars[i] == b':' && self.chars[i + 1] == b']' {
                return Ok(i);
            }
            i += 1;
        }
        Err(Error::new("unclosed POSIX class name"))
    }
}

fn digit_class() -> ClassSet {
    let mut c = ClassSet::new();
    c.push(b'0', b'9');
    c.normalize();
    c
}

fn word_class() -> ClassSet {
    let mut c = ClassSet::new();
    c.push(b'0', b'9');
    c.push(b'a', b'z');
    c.push(b'A', b'Z');
    c.push(b'_', b'_');
    c.normalize();
    c
}

fn space_class() -> ClassSet {
    let mut c = ClassSet::new();
    for b in [b' ', b'\t', b'\n', b'\r', 0x0B, 0x0C] {
        c.push(b, b);
    }
    c.normalize();
    c
}

/// Resolves a POSIX named class such as `alpha` or `digit`.
pub fn named_class(name: &str) -> Result<ClassSet, Error> {
    let mut c = ClassSet::new();
    match name {
        "alpha" => {
            c.push(b'a', b'z');
            c.push(b'A', b'Z');
        }
        "digit" => c.push(b'0', b'9'),
        "alnum" => {
            c.push(b'a', b'z');
            c.push(b'A', b'Z');
            c.push(b'0', b'9');
        }
        "upper" => c.push(b'A', b'Z'),
        "lower" => c.push(b'a', b'z'),
        "space" => {
            for b in [b' ', b'\t', b'\n', b'\r', 0x0B, 0x0C] {
                c.push(b, b);
            }
        }
        "blank" => {
            c.push(b' ', b' ');
            c.push(b'\t', b'\t');
        }
        "punct" => {
            c.push(b'!', b'/');
            c.push(b':', b'@');
            c.push(b'[', b'`');
            c.push(b'{', b'~');
        }
        "print" => c.push(b' ', b'~'),
        "graph" => c.push(b'!', b'~'),
        "cntrl" => {
            c.push(0, 0x1F);
            c.push(0x7F, 0x7F);
        }
        "xdigit" => {
            c.push(b'0', b'9');
            c.push(b'a', b'f');
            c.push(b'A', b'F');
        }
        "word" => {
            c.push(b'0', b'9');
            c.push(b'a', b'z');
            c.push(b'A', b'Z');
            c.push(b'_', b'_');
        }
        _ => return Err(Error::new(format!("unknown POSIX class `[:{name}:]`"))),
    }
    c.normalize();
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ere(p: &str) -> Hir {
        parse(p, Syntax::Ere).expect("parse failure")
    }

    #[test]
    fn parses_literal_concat() {
        match ere("abc") {
            Hir::Concat(v) => assert_eq!(v.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_alternation() {
        match ere("a|bc|d") {
            Hir::Alt(v) => assert_eq!(v.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_repeats() {
        match ere("a{2,5}") {
            Hir::Repeat { min, max, .. } => {
                assert_eq!(min, 2);
                assert_eq!(max, Some(5));
            }
            other => panic!("unexpected {other:?}"),
        }
        match ere("a{3}") {
            Hir::Repeat { min, max, .. } => {
                assert_eq!(min, 3);
                assert_eq!(max, Some(3));
            }
            other => panic!("unexpected {other:?}"),
        }
        match ere("a{2,}") {
            Hir::Repeat { min, max, .. } => {
                assert_eq!(min, 2);
                assert_eq!(max, None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_interval() {
        assert!(parse("a{5,2}", Syntax::Ere).is_err());
    }

    #[test]
    fn class_with_named_posix() {
        match ere("[[:digit:]a]") {
            Hir::Class(c) => {
                assert!(c.contains(b'5'));
                assert!(c.contains(b'a'));
                assert!(!c.contains(b'b'));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negated_class() {
        match ere("[^a-z]") {
            Hir::Class(c) => {
                assert!(!c.contains(b'q'));
                assert!(c.contains(b'Q'));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn class_literal_bracket_first() {
        match ere("[]a]") {
            Hir::Class(c) => {
                assert!(c.contains(b']'));
                assert!(c.contains(b'a'));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bre_groups_and_alt() {
        let h = parse(r"\(ab\)\|c", Syntax::Bre).expect("bre parse");
        match h {
            Hir::Alt(v) => assert_eq!(v.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bre_star_literal_at_start() {
        let h = parse("*a", Syntax::Bre).expect("bre parse");
        match h {
            Hir::Concat(v) => assert_eq!(v.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bre_plus_is_literal_unless_escaped() {
        // In BRE, `+` is a literal.
        let h = parse("a+", Syntax::Bre).expect("bre parse");
        match h {
            Hir::Concat(v) => assert_eq!(v.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn backreference_rejected() {
        assert!(parse(r"(a)\1", Syntax::Ere).is_err());
    }

    #[test]
    fn group_indices_increase() {
        let h = ere("(a)(b(c))");
        fn collect(h: &Hir, out: &mut Vec<u32>) {
            match h {
                Hir::Group { index, inner } => {
                    out.push(*index);
                    collect(inner, out);
                }
                Hir::Concat(v) | Hir::Alt(v) => v.iter().for_each(|x| collect(x, out)),
                Hir::Repeat { inner, .. } => collect(inner, out),
                _ => {}
            }
        }
        let mut v = Vec::new();
        collect(&h, &mut v);
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn unclosed_group_is_error() {
        assert!(parse("(ab", Syntax::Ere).is_err());
        assert!(parse(r"\(ab", Syntax::Bre).is_err());
    }

    #[test]
    fn escapes_in_class() {
        match ere(r"[\n\t]") {
            Hir::Class(c) => {
                assert!(c.contains(b'\n'));
                assert!(c.contains(b'\t'));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
