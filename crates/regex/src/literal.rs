//! Literal extraction: what byte strings must appear in every match?
//!
//! The tiered matcher leans on two facts that a pass over the [`Hir`]
//! can prove before any matching happens:
//!
//! * **exact** — the whole pattern matches exactly one byte string
//!   (`grep -F`, `sed 's/foo/bar/'`): matching is pure substring
//!   search, no automaton at all;
//! * **required** — some byte string occurs in every match: its
//!   absence from a haystack rejects the haystack outright, and a
//!   [`crate::memmem::Finder`] scan for it runs at word-at-a-time
//!   speed. When the literal is a required *prefix*, a hit also
//!   pinpoints the earliest possible match start.
//!
//! The analysis is conservative: when in doubt it reports less (a
//! shorter prefix, no required literal), never more.

use crate::hir::{Assertion, Hir};
use crate::memmem::{memchr, Finder};

/// Longest literal worth carrying around; longer runs are truncated
/// (a truncated prefix/required literal is still sound).
const MAX_LIT: usize = 64;

/// A byte run contained in every match, with a bound on where inside
/// the match it can begin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequiredLit {
    /// The run's bytes.
    pub bytes: Vec<u8>,
    /// Maximum offset from the match start at which the guaranteed
    /// occurrence of this run can begin; `None` when an unbounded
    /// element (a `*`/`+` repeat) precedes it. A prefilter hit at
    /// haystack position `h` therefore proves no match starts before
    /// `h - max_start` — the one-pass bound the DFA scan uses. A
    /// required prefix has `max_start == Some(0)`.
    pub max_start: Option<usize>,
}

/// The literal facts extracted from one pattern.
#[derive(Debug, Clone)]
pub struct Literals {
    /// When the pattern matches exactly one byte string, that string.
    pub exact: Option<Vec<u8>>,
    /// Every match must start at haystack offset 0 (`^…`).
    pub anchored_start: bool,
    /// Every match must end at the haystack end (`…$`).
    pub anchored_end: bool,
    /// Every match starts with these bytes (possibly empty).
    pub prefix: Vec<u8>,
    /// Maximal byte runs contained in every match.
    pub required: Vec<RequiredLit>,
    /// Literals are ASCII case-insensitive (stored lowercased): every
    /// match contains some case-variant of each required run.
    pub caseless: bool,
}

/// Per-subexpression facts, composed bottom-up.
struct Lits {
    /// The subexpression matches exactly this one string.
    exact: Option<Vec<u8>>,
    /// Every match of the subexpression starts with these bytes.
    prefix: Vec<u8>,
    /// Byte runs contained in every match of the subexpression, with
    /// start offsets relative to the subexpression's own match start.
    required: Vec<RequiredLit>,
}

impl Lits {
    fn opaque() -> Lits {
        Lits {
            exact: None,
            prefix: Vec::new(),
            required: Vec::new(),
        }
    }

    fn exact(bytes: Vec<u8>) -> Lits {
        Lits {
            prefix: bytes.clone(),
            exact: Some(bytes),
            required: Vec::new(),
        }
    }
}

/// Maximum number of bytes a match of `hir` can span; `None` when
/// unbounded. Used to bound where a required run can start inside a
/// match — conservative in the same direction as the rest of the
/// analysis (overestimating is sound, underestimating is not).
fn max_len(hir: &Hir) -> Option<usize> {
    match hir {
        Hir::Empty | Hir::Assert(_) => Some(0),
        Hir::Class(_) => Some(1),
        Hir::Group { inner, .. } => max_len(inner),
        Hir::Concat(parts) => parts
            .iter()
            .try_fold(0usize, |acc, p| Some(acc.saturating_add(max_len(p)?))),
        Hir::Alt(parts) => parts
            .iter()
            .try_fold(0usize, |acc, p| Some(acc.max(max_len(p)?))),
        Hir::Repeat { inner, max, .. } => {
            let m = (*max)? as usize;
            Some(max_len(inner)?.saturating_mul(m))
        }
    }
}

/// Analyzes a case-sensitive pattern.
pub fn analyze(hir: &Hir) -> Literals {
    analyze_with(hir, false)
}

/// Analyzes a pattern that will be matched ASCII case-insensitively.
///
/// Pass the **unfolded** parse: folding rewrites every letter into a
/// two-branch class, which destroys the literal structure this pass
/// extracts. The returned literals are lowercased and flagged
/// `caseless`, so downstream prefilters compare case-insensitively —
/// this is what keeps a prefilter on `grep -i` patterns.
pub fn analyze_caseless(hir: &Hir) -> Literals {
    analyze_with(hir, true)
}

fn analyze_with(hir: &Hir, caseless: bool) -> Literals {
    let (anchored_start, anchored_end, body) = strip_anchors(hir);
    let mut l = lits(body.as_ref().unwrap_or(&Hir::Empty));
    if caseless {
        if let Some(e) = l.exact.as_mut() {
            e.make_ascii_lowercase();
        }
        l.prefix.make_ascii_lowercase();
        for r in l.required.iter_mut() {
            r.bytes.make_ascii_lowercase();
        }
    }
    let mut required = l.required;
    if !l.prefix.is_empty() {
        required.push(RequiredLit {
            bytes: l.prefix.clone(),
            max_start: Some(0),
        });
    }
    required.retain(|r| !r.bytes.is_empty());
    // Duplicate byte runs keep the tighter bound: both bounds are
    // true statements about every match, so the minimum is sound.
    required.sort_by(|a, b| {
        a.bytes
            .cmp(&b.bytes)
            .then_with(|| bound_rank(a.max_start).cmp(&bound_rank(b.max_start)))
    });
    required.dedup_by(|a, b| a.bytes == b.bytes);
    Literals {
        exact: l.exact,
        anchored_start,
        anchored_end,
        prefix: l.prefix,
        required,
        caseless,
    }
}

/// Splits top-level `^`/`$` anchors off a pattern, returning the
/// remaining body (None when the body is empty).
fn strip_anchors(hir: &Hir) -> (bool, bool, Option<Hir>) {
    match hir {
        Hir::Assert(Assertion::Start) => (true, false, None),
        Hir::Assert(Assertion::End) => (false, true, None),
        Hir::Concat(v) => {
            let mut start = false;
            let mut end = false;
            let mut parts: &[Hir] = v;
            if let Some(Hir::Assert(Assertion::Start)) = parts.first() {
                start = true;
                parts = &parts[1..];
            }
            if let Some(Hir::Assert(Assertion::End)) = parts.last() {
                end = true;
                parts = &parts[..parts.len() - 1];
            }
            (start, end, Some(Hir::concat(parts.to_vec())))
        }
        other => (false, false, Some(other.clone())),
    }
}

fn lits(hir: &Hir) -> Lits {
    match hir {
        Hir::Empty => Lits::exact(Vec::new()),
        // A standalone assertion matches the empty string only under a
        // context condition no literal can express: opaque. (Inside a
        // concatenation it is skipped instead — see `concat_lits` —
        // so `\bfoo\b` still yields the run "foo".)
        Hir::Assert(_) => Lits::opaque(),
        Hir::Class(c) => match c.ranges() {
            [(lo, hi)] if lo == hi => Lits::exact(vec![*lo]),
            _ => Lits::opaque(),
        },
        Hir::Group { inner, .. } => lits(inner),
        Hir::Concat(parts) => concat_lits(parts),
        Hir::Alt(parts) => {
            // Conservative: only the common prefix of all branches
            // survives (no exactness, no inner requirements).
            let mut prefix: Option<Vec<u8>> = None;
            for p in parts {
                let l = lits(p);
                let b = l.exact.unwrap_or(l.prefix);
                prefix = Some(match prefix {
                    None => b,
                    Some(acc) => common_prefix(&acc, &b),
                });
            }
            Lits {
                exact: None,
                prefix: prefix.unwrap_or_default(),
                required: Vec::new(),
            }
        }
        Hir::Repeat {
            inner, min, max, ..
        } => {
            let l = lits(inner);
            match (&l.exact, max) {
                // Fixed count of an exact string is itself exact.
                (Some(e), Some(m)) if *min == *m => {
                    let total = e.len().saturating_mul(*min as usize);
                    if total <= MAX_LIT {
                        Lits::exact(e.iter().cloned().cycle().take(total).collect())
                    } else {
                        Lits {
                            exact: None,
                            prefix: e.iter().cloned().cycle().take(MAX_LIT).collect(),
                            required: Vec::new(),
                        }
                    }
                }
                // At least `min` copies: the first `min` are mandatory
                // and contiguous.
                (Some(e), _) if *min >= 1 => {
                    let total = (e.len().saturating_mul(*min as usize)).min(MAX_LIT);
                    Lits {
                        exact: None,
                        prefix: e.iter().cloned().cycle().take(total).collect(),
                        required: Vec::new(),
                    }
                }
                (None, _) if *min >= 1 => Lits {
                    exact: None,
                    prefix: l.prefix,
                    required: l.required,
                },
                // `min == 0`: may match empty, proves nothing.
                _ => Lits::opaque(),
            }
        }
    }
}

/// Folds a concatenation left to right, growing the prefix while all
/// elements are exact and collecting maximal required runs.
///
/// Alongside each run it tracks `max_start`: the most bytes any match
/// can consume before the run begins, accumulated from [`max_len`] of
/// the elements crossed so far. The bound goes to `None` (unbounded)
/// once a `*`/`+` repeat is crossed and stays there.
fn concat_lits(parts: &[Hir]) -> Lits {
    let mut exact: Option<Vec<u8>> = Some(Vec::new());
    let mut prefix = Vec::new();
    let mut prefix_open = true;
    let mut run: Vec<u8> = Vec::new();
    let mut runs: Vec<RequiredLit> = Vec::new();
    // Max bytes a match can consume before the current element, and
    // its value at the moment the current run began.
    let mut pos: Option<usize> = Some(0);
    let mut run_start: Option<usize> = Some(0);
    for p in parts {
        if matches!(p, Hir::Assert(_)) {
            // Zero-width: contributes no bytes and does not break the
            // current run, but its context condition voids exactness
            // (`\bcat\b` is not the same pattern as `cat`).
            exact = None;
            continue;
        }
        let l = lits(p);
        match l.exact {
            Some(e) => {
                if run.is_empty() {
                    run_start = pos;
                }
                run.extend_from_slice(&e);
                run.truncate(MAX_LIT);
                if prefix_open {
                    prefix.extend_from_slice(&e);
                    prefix.truncate(MAX_LIT);
                }
                if let Some(acc) = exact.as_mut() {
                    // Exactness is not capped: a long `grep -F`
                    // pattern is still a pure substring search.
                    acc.extend_from_slice(&e);
                }
                pos = pos.map(|x| x.saturating_add(e.len()));
            }
            None => {
                // The element's own prefix extends the current run
                // (those bytes still appear contiguously here), then
                // the run breaks.
                if run.is_empty() {
                    run_start = pos;
                }
                run.extend_from_slice(&l.prefix);
                run.truncate(MAX_LIT);
                if prefix_open {
                    prefix.extend_from_slice(&l.prefix);
                    prefix.truncate(MAX_LIT);
                    prefix_open = false;
                }
                if !run.is_empty() {
                    runs.push(RequiredLit {
                        bytes: std::mem::take(&mut run),
                        max_start: run_start,
                    });
                }
                // Inner required runs shift by the width consumed
                // before this element begins.
                for mut r in l.required {
                    r.max_start = match (pos, r.max_start) {
                        (Some(p0), Some(b)) => Some(p0.saturating_add(b)),
                        _ => None,
                    };
                    runs.push(r);
                }
                exact = None;
                pos = match (pos, max_len(p)) {
                    (Some(p0), Some(m)) => Some(p0.saturating_add(m)),
                    _ => None,
                };
            }
        }
    }
    if !run.is_empty() {
        runs.push(RequiredLit {
            bytes: run,
            max_start: run_start,
        });
    }
    Lits {
        exact,
        prefix,
        required: runs,
    }
}

/// Orders bounds for "prefer the tighter": `None` (unbounded) last.
fn bound_rank(b: Option<usize>) -> usize {
    b.unwrap_or(usize::MAX)
}

fn common_prefix(a: &[u8], b: &[u8]) -> Vec<u8> {
    a.iter()
        .zip(b)
        .take_while(|(x, y)| x == y)
        .map(|(x, _)| *x)
        .collect()
}

/// A compiled candidate filter: finds positions where a match could
/// occur, or proves there is none.
#[derive(Debug, Clone)]
pub enum Prefilter {
    /// Single required byte: plain `memchr`.
    Byte(u8),
    /// Multi-byte required literal: rare-byte `memmem`.
    Lit(Finder),
}

impl Prefilter {
    /// Builds the best prefilter from the analysis, preferring the
    /// longest required literal (ties broken toward the tightest
    /// `max_start` bound — a required prefix has bound 0).
    ///
    /// Returns the filter and the chosen literal's `max_start` bound:
    /// a hit at haystack position `h` proves no match starts before
    /// `h - max_start` (`None` = the hit only proves containment).
    pub fn from_literals(lit: &Literals) -> Option<(Prefilter, Option<usize>)> {
        let best = lit
            .required
            .iter()
            .max_by_key(|r| (r.bytes.len(), std::cmp::Reverse(bound_rank(r.max_start))))?;
        let bytes = &best.bytes;
        if bytes.is_empty() {
            return None;
        }
        let pf = if bytes.len() == 1 && !(lit.caseless && bytes[0].is_ascii_alphabetic()) {
            Prefilter::Byte(bytes[0])
        } else if lit.caseless {
            Prefilter::Lit(Finder::new_caseless(bytes))
        } else {
            Prefilter::Lit(Finder::new(bytes))
        };
        Some((pf, best.max_start))
    }

    /// Finds the first candidate position in `hay`, or proves there is
    /// no match anywhere in `hay`.
    #[inline]
    pub fn find(&self, hay: &[u8]) -> Option<usize> {
        match self {
            Prefilter::Byte(b) => memchr(*b, hay),
            Prefilter::Lit(f) => f.find(hay),
        }
    }

    /// Length of the required literal.
    pub fn len(&self) -> usize {
        match self {
            Prefilter::Byte(_) => 1,
            Prefilter::Lit(f) => f.needle().len(),
        }
    }

    /// Standard emptiness accessor (always false by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::Syntax;

    fn an(pat: &str) -> Literals {
        analyze(&parse(pat, Syntax::Ere).expect("parse"))
    }

    #[test]
    fn exact_plain_literal() {
        let l = an("foobar");
        assert_eq!(l.exact.as_deref(), Some(&b"foobar"[..]));
        assert!(!l.anchored_start && !l.anchored_end);
    }

    #[test]
    fn exact_with_anchors() {
        let l = an("^foo$");
        assert_eq!(l.exact.as_deref(), Some(&b"foo"[..]));
        assert!(l.anchored_start && l.anchored_end);
        let l = an("^$");
        assert_eq!(l.exact.as_deref(), Some(&b""[..]));
        assert!(l.anchored_start && l.anchored_end);
    }

    #[test]
    fn exact_through_groups_and_counted_repeats() {
        assert_eq!(an("(ab)c").exact.as_deref(), Some(&b"abc"[..]));
        assert_eq!(an("a{3}b").exact.as_deref(), Some(&b"aaab"[..]));
    }

    #[test]
    fn prefix_stops_at_first_variable_element() {
        let l = an("foo[0-9]+bar");
        assert_eq!(l.exact, None);
        assert_eq!(l.prefix, b"foo");
        // "foo" and "bar" are both required runs. "foo" is the
        // prefix (bound 0); "bar" sits past an unbounded repeat.
        assert!(l
            .required
            .iter()
            .any(|r| r.bytes == b"foo" && r.max_start == Some(0)));
        assert!(l
            .required
            .iter()
            .any(|r| r.bytes == b"bar" && r.max_start.is_none()));
    }

    #[test]
    fn plus_repeat_contributes_mandatory_copy() {
        let l = an("(ab)+x");
        assert_eq!(l.prefix, b"ab");
        let l = an("x(ab){2,}");
        assert!(l.required.iter().any(|r| r.bytes == b"xabab"));
    }

    #[test]
    fn star_breaks_runs() {
        let l = an("foo(xy)*bar");
        assert_eq!(l.prefix, b"foo");
        assert!(l.required.iter().any(|r| r.bytes == b"bar"));
        assert!(!l
            .required
            .iter()
            .any(|r| r.bytes.windows(2).any(|w| w == b"ob")));
    }

    #[test]
    fn alternation_common_prefix() {
        let l = an("abx|aby");
        assert_eq!(l.prefix, b"ab");
        assert_eq!(l.exact, None);
        let l = an("cat|dog");
        assert!(l.prefix.is_empty());
        assert!(l.required.is_empty());
    }

    #[test]
    fn word_boundaries_do_not_break_runs() {
        let l = an(r"\bcat\b");
        assert!(l.required.iter().any(|r| r.bytes == b"cat"));
        assert_eq!(l.prefix, b"cat");
    }

    #[test]
    fn class_heavy_pattern_has_no_literals() {
        let l = an("[a-z]+[0-9]*");
        assert!(l.required.is_empty());
        assert!(l.prefix.is_empty());
        assert_eq!(l.exact, None);
    }

    #[test]
    fn prefilter_picks_longest_run() {
        let l = an("ab[0-9]+longneedle");
        let (pf, max_start) = Prefilter::from_literals(&l).expect("prefilter");
        assert_eq!(pf.len(), "longneedle".len());
        // The needle follows an unbounded repeat: containment only.
        assert_eq!(max_start, None);
        assert!(!pf.is_empty());
        let hay = b"xx ab42longneedle yy";
        assert!(pf.find(hay).is_some());
        assert_eq!(pf.find(b"ab42 but not the rest"), None);
    }

    #[test]
    fn prefilter_prefers_prefix_on_tie() {
        let l = an("foo[0-9]+bar");
        // "foo" and "bar" tie at 3 bytes; the prefix wins (tighter
        // bound) so hits pin the match start.
        let (pf, max_start) = Prefilter::from_literals(&l).expect("prefilter");
        assert_eq!(max_start, Some(0));
        assert_eq!(pf.find(b"xfoo1bar"), Some(1));
    }

    #[test]
    fn single_byte_prefilter_is_memchr() {
        let l = an("x[0-9]*");
        let (pf, max_start) = Prefilter::from_literals(&l).expect("prefilter");
        assert!(matches!(pf, Prefilter::Byte(b'x')));
        assert_eq!(max_start, Some(0));
        assert_eq!(pf.find(b"aaxbb"), Some(2));
    }

    #[test]
    fn no_prefilter_for_pure_classes() {
        let l = an("[ab][cd]");
        assert!(Prefilter::from_literals(&l).is_none());
    }

    #[test]
    fn caseless_analysis_keeps_alpha_literals() {
        // The folded HIR turns letters into two-branch classes, so
        // folding *before* analysis would lose these literals; the
        // caseless analysis runs on the unfolded parse instead.
        let hir = parse("abc[0-9]+TAIL", Syntax::Ere).expect("parse");
        let l = analyze_caseless(&hir);
        assert!(l.caseless);
        assert_eq!(l.prefix, b"abc");
        assert!(l.required.iter().any(|r| r.bytes == b"tail"));
        let (pf, _) = Prefilter::from_literals(&l).expect("prefilter");
        assert_eq!(pf.len(), 4);
        assert!(pf.find(b"xx TaIl yy").is_some());
        assert_eq!(pf.find(b"nothing of note"), None);
    }

    #[test]
    fn caseless_exact_pattern_stays_exact() {
        let hir = parse("FooBar", Syntax::Ere).expect("parse");
        let l = analyze_caseless(&hir);
        assert_eq!(l.exact.as_deref(), Some(&b"foobar"[..]));
    }

    #[test]
    fn caseless_single_letter_avoids_plain_memchr() {
        // A one-letter caseless literal must probe both cases.
        let hir = parse("x[0-9]*", Syntax::Ere).expect("parse");
        let l = analyze_caseless(&hir);
        let (pf, _) = Prefilter::from_literals(&l).expect("prefilter");
        assert!(matches!(pf, Prefilter::Lit(_)));
        assert_eq!(pf.find(b"aaXbb"), Some(2));
        // Non-alphabetic single bytes keep the plain memchr tier.
        let hir = parse("%[0-9]*", Syntax::Ere).expect("parse");
        let l = analyze_caseless(&hir);
        let (pf, _) = Prefilter::from_literals(&l).expect("prefilter");
        assert!(matches!(pf, Prefilter::Byte(b'%')));
    }

    #[test]
    fn bounded_repeat_cap_truncates_but_stays_sound() {
        let l = an("a{200}");
        assert_eq!(l.exact, None);
        assert_eq!(l.prefix.len(), MAX_LIT);
        assert!(l.prefix.iter().all(|&b| b == b'a'));
    }

    #[test]
    fn inner_literal_bound_counts_class_widths() {
        // One class byte before the run: it starts at offset ≤ 1.
        let l = an("[0-9]ERROR");
        let r = l.required.iter().find(|r| r.bytes == b"ERROR").unwrap();
        assert_eq!(r.max_start, Some(1));
        // Two dots: offset ≤ 2.
        let l = an("..fatal");
        let r = l.required.iter().find(|r| r.bytes == b"fatal").unwrap();
        assert_eq!(r.max_start, Some(2));
    }

    #[test]
    fn inner_literal_bound_counts_bounded_repeats() {
        let l = an("[0-9]{0,3}ERROR");
        let r = l.required.iter().find(|r| r.bytes == b"ERROR").unwrap();
        assert_eq!(r.max_start, Some(3));
        // An alternation contributes its longest branch.
        let l = an("(cat|zebra)=[0-9]+tail");
        let r = l.required.iter().find(|r| r.bytes == b"tail").unwrap();
        assert_eq!(r.max_start, None);
        let r = l.required.iter().find(|r| r.bytes == b"=").unwrap();
        assert_eq!(r.max_start, Some(5));
    }

    #[test]
    fn unbounded_repeat_voids_the_bound() {
        let l = an("x*fatal");
        let r = l.required.iter().find(|r| r.bytes == b"fatal").unwrap();
        assert_eq!(r.max_start, None);
    }

    #[test]
    fn prefilter_reports_inner_bound() {
        let l = an("[0-9][0-9]needle");
        let (pf, max_start) = Prefilter::from_literals(&l).expect("prefilter");
        assert_eq!(pf.len(), "needle".len());
        assert_eq!(max_start, Some(2));
    }
}
