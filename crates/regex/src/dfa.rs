//! A lazy DFA over the Thompson NFA, with a bounded state cache.
//!
//! This is the fast general-purpose tier of the matcher: instead of
//! simulating every live NFA thread per byte (the Pike VM), states —
//! priority-ordered sets of NFA program counters — are determinized
//! *on demand* and memoized, so steady-state matching is one table
//! lookup per byte. Determinization is capped: when the cache fills it
//! is cleared and rebuilt, and a search that keeps thrashing gives up
//! ([`GaveUp`]) so the caller can fall back to the Pike VM. That keeps
//! the engine's linear-time guarantee intact on adversarial patterns —
//! the DFA never does more than `O(len)` transition steps, and state
//! construction work is bounded by the cache budget.
//!
//! Two configurations are used by [`crate::Matcher`]:
//!
//! * **forward, leftmost** (`longest = false`): the program is the
//!   pattern wrapped in an implicit non-greedy `.*?` prefix, so the
//!   unanchored seeding the Pike VM performs per position is part of
//!   the automaton. State construction cuts every thread below a
//!   `Match` (leftmost-first semantics), which also silences the
//!   seeding loop once a match exists — exactly mirroring the VM's
//!   "once matched, only extend" rule. Scanning to the dead state and
//!   reporting the *last* match position yields the same end offset
//!   the Pike VM reports.
//! * **reverse, longest** (`longest = true`): the program is the
//!   reversed pattern, run backwards from the match end with no
//!   cutoff; the furthest (smallest) match position is the leftmost
//!   match start.
//!
//! Word-boundary assertions would make state identity depend on
//! haystack context; patterns containing them are rejected at
//! construction ([`Dfa::new`] returns `None`) and stay on the Pike VM.

use std::collections::HashMap;

use crate::compile::{Inst, Program};
use crate::hir::Assertion;

/// The dead state: no live threads, no future match.
const DEAD: u32 = 0;
/// Marker for a transition not yet determinized.
const UNKNOWN: u32 = u32::MAX;
/// Cache clears tolerated across a [`Cache`]'s lifetime before the
/// DFA declares itself unprofitable and permanently gives up.
const MAX_CLEARS: u32 = 16;

/// The search exceeded its cache budget; fall back to the Pike VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaveUp;

/// An immutable determinizer for one compiled program.
#[derive(Debug)]
pub struct Dfa {
    prog: Program,
    /// Byte → equivalence class; bytes the program never distinguishes
    /// share transitions, shrinking per-state tables.
    byte2class: [u16; 256],
    class_count: usize,
    /// Cache capacity, sized so `states × classes` stays bounded.
    max_states: usize,
    /// Longest-match mode: no priority cutoff at `Match` (used by the
    /// reverse scan, which needs the furthest match, not the first).
    longest: bool,
    /// Whether the program contains `Assert(End)` at all; when not,
    /// the end-of-input closure can never add a match and is skipped.
    has_eoi: bool,
}

/// One determinized state.
struct State {
    /// Priority-ordered NFA pcs, each a `Class`, `Match`, or pending
    /// `Assert(End)` instruction.
    pcs: Box<[u32]>,
    /// Whether a `Match` pc is present (a match ends here).
    is_match: bool,
    /// Lazily filled transitions, one per byte class.
    next: Box<[u32]>,
}

/// The mutable side of a lazy DFA: interned states and transitions.
///
/// Owned by the caller (one per [`crate::Matcher`]) so a compiled
/// [`Dfa`] stays shareable while each user pays for its own cache.
pub struct Cache {
    states: Vec<State>,
    ids: HashMap<Box<[u32]>, u32>,
    /// Start states: `[mid-text, text-start]` closure variants.
    starts: [u32; 2],
    clears: u32,
    poisoned: bool,
    /// Scratch for closure computation (generation-stamped visited
    /// set, reused across calls).
    stamp: Vec<u32>,
    gen: u32,
}

impl Cache {
    /// Creates an empty cache; states materialize on first use.
    pub fn new() -> Cache {
        Cache {
            states: Vec::new(),
            ids: HashMap::new(),
            starts: [UNKNOWN; 2],
            clears: 0,
            poisoned: false,
            stamp: Vec::new(),
            gen: 0,
        }
    }

    fn reset(&mut self) {
        self.states.clear();
        self.ids.clear();
        self.starts = [UNKNOWN; 2];
    }
}

impl Default for Cache {
    fn default() -> Self {
        Self::new()
    }
}

/// Zero-width context at a haystack position.
#[derive(Clone, Copy)]
struct Ctx {
    at_start: bool,
    at_eoi: bool,
}

impl Dfa {
    /// Builds a determinizer for `prog`, or `None` when the program
    /// contains context-dependent assertions (word boundaries) that a
    /// position-keyed DFA cannot express.
    pub fn new(prog: Program, longest: bool) -> Option<Dfa> {
        if prog.insts.iter().any(|i| {
            matches!(
                i,
                Inst::Assert(Assertion::WordBoundary) | Inst::Assert(Assertion::NotWordBoundary)
            )
        }) {
            return None;
        }
        let (byte2class, class_count) = byte_classes(&prog);
        // Bound total transition-table memory to ~1M entries.
        let max_states = ((1usize << 20) / class_count.max(1)).clamp(256, 8192);
        let has_eoi = prog
            .insts
            .iter()
            .any(|i| matches!(i, Inst::Assert(Assertion::End)));
        Some(Dfa {
            prog,
            byte2class,
            class_count,
            max_states,
            longest,
            has_eoi,
        })
    }

    /// Forward scan over `hay[start..]`.
    ///
    /// Returns the **last** position at which a match ends (the Pike
    /// VM's leftmost end offset, given the compiled-in `.*?` prefix),
    /// or the **first** when `earliest` (enough for `is_match`).
    pub fn find_fwd(
        &self,
        cache: &mut Cache,
        hay: &[u8],
        start: usize,
        earliest: bool,
    ) -> Result<Option<usize>, GaveUp> {
        if cache.poisoned {
            return Err(GaveUp);
        }
        let mut sid = self.start_state(cache, start == 0)?;
        let mut last = None;
        if cache.states[sid as usize].is_match {
            if earliest {
                return Ok(Some(start));
            }
            last = Some(start);
        }
        for (j, &b) in hay[start..].iter().enumerate() {
            sid = self.next_state(cache, sid, b)?;
            if sid == DEAD {
                return Ok(last);
            }
            if cache.states[sid as usize].is_match {
                if earliest {
                    return Ok(Some(start + j + 1));
                }
                last = Some(start + j + 1);
            }
        }
        if self.has_eoi && self.eoi_is_match(cache, sid, hay.is_empty()) {
            last = Some(hay.len());
        }
        Ok(last)
    }

    /// Reverse scan over `hay[lo..end]`, feeding bytes right to left.
    ///
    /// Returns the smallest position `s ≥ lo` such that `hay[s..end]`
    /// matches the (reversed) program — the leftmost start of a match
    /// known to end at `end`.
    pub fn find_rev(
        &self,
        cache: &mut Cache,
        hay: &[u8],
        lo: usize,
        end: usize,
    ) -> Result<Option<usize>, GaveUp> {
        if cache.poisoned {
            return Err(GaveUp);
        }
        let mut sid = self.start_state(cache, end == hay.len())?;
        let mut last = if cache.states[sid as usize].is_match {
            Some(end)
        } else {
            None
        };
        let mut i = end;
        while i > lo {
            i -= 1;
            sid = self.next_state(cache, sid, hay[i])?;
            if sid == DEAD {
                return Ok(last);
            }
            if cache.states[sid as usize].is_match {
                last = Some(i);
            }
        }
        // End of the reverse stream: pending `Assert(End)` pcs here are
        // the original pattern's `^`, which holds only at offset 0.
        if self.has_eoi && lo == 0 && self.eoi_is_match(cache, sid, false) {
            last = Some(0);
        }
        Ok(last)
    }

    fn start_state(&self, cache: &mut Cache, text_start: bool) -> Result<u32, GaveUp> {
        let slot = usize::from(text_start);
        if cache.starts[slot] != UNKNOWN {
            return Ok(cache.starts[slot]);
        }
        self.ensure_dead(cache);
        let ctx = Ctx {
            at_start: text_start,
            at_eoi: false,
        };
        let (pcs, is_match) = self.closure_list(cache, &[0], None, ctx);
        let id = self.intern(cache, pcs, is_match)?;
        cache.starts[slot] = id;
        Ok(id)
    }

    /// Computes (and memoizes) `δ(sid, byte)`.
    ///
    /// After a cache clear the previous `sid` is gone; the freshly
    /// interned successor id returned here is always valid, so the
    /// scan loop can continue — only the memoized edge is lost.
    fn next_state(&self, cache: &mut Cache, sid: u32, byte: u8) -> Result<u32, GaveUp> {
        let class = self.byte2class[byte as usize] as usize;
        let known = cache.states[sid as usize].next[class];
        if known != UNKNOWN {
            return Ok(known);
        }
        let src = cache.states[sid as usize].pcs.clone();
        let ctx = Ctx {
            at_start: false,
            at_eoi: false,
        };
        let (pcs, is_match) = self.closure_list(cache, &src, Some(byte), ctx);
        let clears_before = cache.clears;
        let id = self.intern(cache, pcs, is_match)?;
        // Store the edge unless interning cleared the cache (in which
        // case `sid` no longer names a live state).
        if cache.clears == clears_before {
            cache.states[sid as usize].next[class] = id;
        }
        Ok(id)
    }

    /// Does `sid` yield a match at end-of-input (pending `$` pcs)?
    fn eoi_is_match(&self, cache: &mut Cache, sid: u32, empty_text: bool) -> bool {
        let ctx = Ctx {
            at_start: empty_text,
            at_eoi: true,
        };
        let src = cache.states[sid as usize].pcs.clone();
        let (_, is_match) = self.closure_list(cache, &src, None, ctx);
        is_match
    }

    /// Builds the priority-ordered successor pc list of `src`.
    ///
    /// With `byte = Some(b)`, each `Class` pc consumes `b` first; with
    /// `None`, `src` pcs enter the closure directly (start state and
    /// EOI evaluation). Pending `Assert(End)` pcs are kept in the list
    /// mid-scan and only followed when `ctx.at_eoi`.
    fn closure_list(
        &self,
        cache: &mut Cache,
        src: &[u32],
        byte: Option<u8>,
        ctx: Ctx,
    ) -> (Vec<u32>, bool) {
        if cache.stamp.len() < self.prog.insts.len() {
            cache.stamp.resize(self.prog.insts.len(), 0);
        }
        cache.gen = cache.gen.wrapping_add(1);
        if cache.gen == 0 {
            cache.stamp.fill(0);
            cache.gen = 1;
        }
        let mut cl = Closure {
            prog: &self.prog,
            stamp: &mut cache.stamp,
            gen: cache.gen,
            list: Vec::with_capacity(src.len() + 4),
            matched: false,
            cutoff: !self.longest,
            ctx,
        };
        for &pc in src {
            if cl.matched && cl.cutoff {
                break;
            }
            match (&self.prog.insts[pc as usize], byte) {
                (Inst::Class(c), Some(b)) => {
                    if c.contains(b) {
                        cl.add(pc + 1);
                    }
                }
                // A byte follows, so `$` fails and `Match` stays a
                // record of the past, contributing no successor — but
                // in leftmost mode it still cuts lower-priority pcs.
                (Inst::Assert(Assertion::End), Some(_)) => {}
                (Inst::Match, Some(_)) => {
                    if cl.cutoff {
                        break;
                    }
                }
                // Direct (non-consuming) closure entry.
                (_, None) => cl.add(pc),
                _ => unreachable!("state holds only Class/Match/Assert(End) pcs"),
            }
        }
        (cl.list, cl.matched)
    }

    fn ensure_dead(&self, cache: &mut Cache) {
        if cache.states.is_empty() {
            cache.states.push(State {
                pcs: Box::from([]),
                is_match: false,
                next: vec![DEAD; self.class_count].into_boxed_slice(),
            });
            cache.ids.insert(Box::from([]), DEAD);
        }
    }

    fn intern(&self, cache: &mut Cache, pcs: Vec<u32>, is_match: bool) -> Result<u32, GaveUp> {
        self.ensure_dead(cache);
        if let Some(&id) = cache.ids.get(pcs.as_slice()) {
            return Ok(id);
        }
        if cache.states.len() >= self.max_states {
            cache.clears += 1;
            if cache.clears >= MAX_CLEARS {
                cache.poisoned = true;
                return Err(GaveUp);
            }
            cache.reset();
            self.ensure_dead(cache);
        }
        let id = cache.states.len() as u32;
        let key: Box<[u32]> = pcs.into_boxed_slice();
        cache.states.push(State {
            pcs: key.clone(),
            is_match,
            next: vec![UNKNOWN; self.class_count].into_boxed_slice(),
        });
        cache.ids.insert(key, id);
        Ok(id)
    }
}

/// Recursive epsilon-closure builder with priority order, generation
/// stamps for dedup, and leftmost cutoff.
struct Closure<'a> {
    prog: &'a Program,
    stamp: &'a mut [u32],
    gen: u32,
    list: Vec<u32>,
    matched: bool,
    cutoff: bool,
    ctx: Ctx,
}

impl Closure<'_> {
    fn add(&mut self, pc: u32) {
        if self.matched && self.cutoff {
            return;
        }
        let i = pc as usize;
        if self.stamp[i] == self.gen {
            return;
        }
        self.stamp[i] = self.gen;
        match &self.prog.insts[i] {
            Inst::Jmp(t) => self.add(*t as u32),
            Inst::Split(a, b) => {
                self.add(*a as u32);
                self.add(*b as u32);
            }
            Inst::Save(_) => self.add(pc + 1),
            Inst::Assert(Assertion::Start) => {
                if self.ctx.at_start {
                    self.add(pc + 1);
                }
            }
            Inst::Assert(Assertion::End) => {
                if self.ctx.at_eoi {
                    self.add(pc + 1);
                } else {
                    // Keep as a pending pc: it may pass at EOI.
                    self.list.push(pc);
                }
            }
            Inst::Assert(_) => unreachable!("word boundaries rejected by Dfa::new"),
            Inst::Class(_) => self.list.push(pc),
            Inst::Match => {
                self.list.push(pc);
                self.matched = true;
            }
        }
    }
}

/// Computes byte equivalence classes: two bytes land in the same class
/// iff no character class in the program separates them.
fn byte_classes(prog: &Program) -> ([u16; 256], usize) {
    let mut boundary = [false; 257];
    boundary[0] = true;
    for inst in &prog.insts {
        if let Inst::Class(c) = inst {
            for &(lo, hi) in c.ranges() {
                boundary[lo as usize] = true;
                boundary[hi as usize + 1] = true;
            }
        }
    }
    let mut map = [0u16; 256];
    let mut id: u16 = 0;
    for b in 0..256 {
        if boundary[b] && b > 0 {
            id += 1;
        }
        map[b] = id;
    }
    (map, id as usize + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::hir::Hir;
    use crate::parser::parse;
    use crate::Syntax;

    /// Compiles `pat` wrapped in the implicit `.*?` prefix (forward
    /// search form).
    fn fwd(pat: &str) -> Dfa {
        let hir = parse(pat, Syntax::Ere).expect("parse");
        let wrapped = Hir::Concat(vec![
            Hir::Repeat {
                inner: Box::new(Hir::Class(crate::hir::ClassSet::any())),
                min: 0,
                max: None,
                greedy: false,
            },
            hir,
        ]);
        Dfa::new(compile(&wrapped).expect("compile"), false).expect("dfa")
    }

    fn rev(pat: &str) -> Dfa {
        let hir = parse(pat, Syntax::Ere).expect("parse").reversed();
        Dfa::new(compile(&hir).expect("compile"), true).expect("dfa")
    }

    fn find(pat: &str, hay: &str) -> Option<(usize, usize)> {
        let f = fwd(pat);
        let r = rev(pat);
        let mut fc = Cache::new();
        let mut rc = Cache::new();
        let end = f
            .find_fwd(&mut fc, hay.as_bytes(), 0, false)
            .expect("fwd")?;
        let start = r
            .find_rev(&mut rc, hay.as_bytes(), 0, end)
            .expect("rev")
            .expect("a match end implies a start");
        Some((start, end))
    }

    /// The Pike VM's answer, for parity checks.
    fn pike(pat: &str, hay: &str) -> Option<(usize, usize)> {
        let prog = compile(&parse(pat, Syntax::Ere).expect("parse")).expect("compile");
        let vm = crate::pikevm::PikeVm::new(&prog);
        vm.find_at(hay.as_bytes(), 0)
            .map(|s| (s[0].expect("start"), s[1].expect("end")))
    }

    #[test]
    fn parity_on_basic_patterns() {
        let cases = [
            ("bc", "abcd"),
            ("a+", "baaac"),
            ("a*", "aaab"),
            ("x*", "yyy"),
            ("ab|a", "ab"),
            ("a|ab", "ab"),
            ("a|ba", "ba"),
            ("a*b|a", "aab"),
            ("a*b|a", "aaxb"),
            ("(a|b)+c", "xxabbacyy"),
            ("a{2,3}", "aaaa"),
            ("x", ""),
            ("x*", ""),
        ];
        for (pat, hay) in cases {
            assert_eq!(find(pat, hay), pike(pat, hay), "pattern `{pat}` on `{hay}`");
        }
    }

    #[test]
    fn parity_with_anchors() {
        let cases = [
            ("^ab", "abab"),
            ("ab$", "abab"),
            ("^ab$", "ab"),
            ("^b", "ab"),
            ("a$", "aba"),
            ("^", "xy"),
            ("$", "xy"),
            ("^$", ""),
            ("^$", "x"),
            ("(a$|b)c", "bc"),
            ("a$b", "ab"),
        ];
        for (pat, hay) in cases {
            assert_eq!(find(pat, hay), pike(pat, hay), "pattern `{pat}` on `{hay}`");
        }
    }

    #[test]
    fn earliest_mode_short_circuits() {
        let f = fwd("b");
        let mut c = Cache::new();
        assert_eq!(
            f.find_fwd(&mut c, b"aaabaaa", 0, true).expect("fwd"),
            Some(4)
        );
        assert_eq!(f.find_fwd(&mut c, b"aaaa", 0, true).expect("fwd"), None);
    }

    #[test]
    fn find_from_offset() {
        let f = fwd("a");
        let r = rev("a");
        let mut fc = Cache::new();
        let mut rc = Cache::new();
        let end = f
            .find_fwd(&mut fc, b"aba", 1, false)
            .expect("fwd")
            .expect("match");
        assert_eq!(end, 3);
        assert_eq!(r.find_rev(&mut rc, b"aba", 1, end).expect("rev"), Some(2));
    }

    #[test]
    fn anchored_pattern_from_offset_fails() {
        let f = fwd("^a");
        let mut c = Cache::new();
        assert_eq!(f.find_fwd(&mut c, b"aaa", 1, false).expect("fwd"), None);
    }

    #[test]
    fn word_boundary_rejected() {
        let hir = parse(r"\bcat\b", Syntax::Ere).expect("parse");
        assert!(Dfa::new(compile(&hir).expect("compile"), false).is_none());
    }

    #[test]
    fn adversarial_pattern_stays_cheap() {
        // (a|a)* explodes a backtracker; the DFA needs O(1) states.
        let f = fwd("(a|a)*b");
        let mut c = Cache::new();
        let hay = vec![b'a'; 4096];
        assert_eq!(f.find_fwd(&mut c, &hay, 0, false).expect("fwd"), None);
        assert!(c.states.len() < 16, "state blowup: {}", c.states.len());
    }

    #[test]
    fn cache_clear_keeps_answers_correct() {
        // A pattern with many distinct states: alternation of counted
        // runs. Force a tiny cache by searching many distinct inputs.
        let f = fwd("(ab|cd|ef|gh){1,8}x");
        let mut c = Cache::new();
        let hay = b"abcdefghabcdefghx".repeat(4);
        let got = f.find_fwd(&mut c, &hay, 0, false).expect("fwd");
        let prog =
            compile(&parse("(ab|cd|ef|gh){1,8}x", Syntax::Ere).expect("parse")).expect("compile");
        let vm = crate::pikevm::PikeVm::new(&prog);
        let want = vm.find_at(&hay, 0).map(|s| s[1].expect("end"));
        assert_eq!(got, want);
    }

    #[test]
    fn byte_class_compression() {
        let prog = compile(&parse("[a-z]+", Syntax::Ere).expect("parse")).expect("compile");
        let (map, count) = byte_classes(&prog);
        // [0, 'a'..'z', rest] plus boundaries → a handful of classes.
        assert!(count <= 4, "count {count}");
        assert_eq!(map[b'a' as usize], map[b'm' as usize]);
        assert_ne!(map[b'a' as usize], map[b'A' as usize]);
    }
}
