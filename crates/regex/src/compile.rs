//! Compilation of [`Hir`] trees into NFA programs for the Pike VM.

use crate::hir::{Assertion, ClassSet, Hir};
use crate::Error;

/// A single NFA instruction.
#[derive(Debug, Clone)]
pub enum Inst {
    /// Matches one byte in the class, then advances.
    Class(ClassSet),
    /// Zero-width assertion.
    Assert(Assertion),
    /// Unconditional jump.
    Jmp(usize),
    /// Non-deterministic split; `0`-th target has priority (greedy).
    Split(usize, usize),
    /// Records the current position into a capture slot.
    Save(usize),
    /// Accepting state.
    Match,
}

/// A compiled NFA program.
#[derive(Debug, Clone)]
pub struct Program {
    /// Instruction sequence; entry point is instruction 0.
    pub insts: Vec<Inst>,
    /// Number of capture slots (2 per group, incl. group 0).
    pub slots: usize,
    /// Number of capture groups including the implicit whole-match group.
    pub groups: usize,
}

/// Upper bound on compiled program size, to bound memory on
/// pathological `{m,n}` nestings.
const MAX_INSTS: usize = 1 << 20;

/// Compiles an [`Hir`] into a [`Program`].
///
/// The program wraps the expression in `Save(0) … Save(1) Match` so the
/// whole match is capture group 0.
pub fn compile(hir: &Hir) -> Result<Program, Error> {
    let mut c = Compiler {
        insts: Vec::new(),
        max_group: 0,
    };
    c.push(Inst::Save(0))?;
    c.emit(hir)?;
    c.push(Inst::Save(1))?;
    c.push(Inst::Match)?;
    let groups = c.max_group as usize + 1;
    Ok(Program {
        insts: c.insts,
        slots: groups * 2,
        groups,
    })
}

struct Compiler {
    insts: Vec<Inst>,
    max_group: u32,
}

impl Compiler {
    fn push(&mut self, inst: Inst) -> Result<usize, Error> {
        if self.insts.len() >= MAX_INSTS {
            return Err(Error::new("compiled program too large"));
        }
        self.insts.push(inst);
        Ok(self.insts.len() - 1)
    }

    fn here(&self) -> usize {
        self.insts.len()
    }

    fn emit(&mut self, hir: &Hir) -> Result<(), Error> {
        match hir {
            Hir::Empty => Ok(()),
            Hir::Class(c) => {
                self.push(Inst::Class(c.clone()))?;
                Ok(())
            }
            Hir::Assert(a) => {
                self.push(Inst::Assert(*a))?;
                Ok(())
            }
            Hir::Concat(parts) => {
                for p in parts {
                    self.emit(p)?;
                }
                Ok(())
            }
            Hir::Alt(parts) => self.emit_alt(parts),
            Hir::Group { index, inner } => {
                if *index > self.max_group {
                    self.max_group = *index;
                }
                self.push(Inst::Save(*index as usize * 2))?;
                self.emit(inner)?;
                self.push(Inst::Save(*index as usize * 2 + 1))?;
                Ok(())
            }
            Hir::Repeat {
                inner,
                min,
                max,
                greedy,
            } => self.emit_repeat(inner, *min, *max, *greedy),
        }
    }

    fn emit_alt(&mut self, parts: &[Hir]) -> Result<(), Error> {
        // Chain of splits: split(branch1, next); …; jmp end.
        let mut jumps = Vec::new();
        for (i, p) in parts.iter().enumerate() {
            if i + 1 == parts.len() {
                self.emit(p)?;
            } else {
                let split = self.push(Inst::Split(0, 0))?;
                let b_start = self.here();
                self.emit(p)?;
                let jmp = self.push(Inst::Jmp(0))?;
                jumps.push(jmp);
                let next = self.here();
                self.insts[split] = Inst::Split(b_start, next);
            }
        }
        let end = self.here();
        for j in jumps {
            self.insts[j] = Inst::Jmp(end);
        }
        Ok(())
    }

    fn emit_repeat(
        &mut self,
        inner: &Hir,
        min: u32,
        max: Option<u32>,
        greedy: bool,
    ) -> Result<(), Error> {
        match (min, max) {
            (0, None) => {
                // Star: L1: split L2, L3; L2: e; jmp L1; L3:
                let split = self.push(Inst::Split(0, 0))?;
                let body = self.here();
                self.emit(inner)?;
                self.push(Inst::Jmp(split))?;
                let after = self.here();
                self.insts[split] = if greedy {
                    Inst::Split(body, after)
                } else {
                    Inst::Split(after, body)
                };
                Ok(())
            }
            (1, None) => {
                // Plus: L1: e; split L1, L2; L2:
                let body = self.here();
                self.emit(inner)?;
                let split = self.push(Inst::Split(0, 0))?;
                let after = self.here();
                self.insts[split] = if greedy {
                    Inst::Split(body, after)
                } else {
                    Inst::Split(after, body)
                };
                Ok(())
            }
            (0, Some(1)) => {
                // Question: split body, after.
                let split = self.push(Inst::Split(0, 0))?;
                let body = self.here();
                self.emit(inner)?;
                let after = self.here();
                self.insts[split] = if greedy {
                    Inst::Split(body, after)
                } else {
                    Inst::Split(after, body)
                };
                Ok(())
            }
            (min, max) => {
                // General {m,n}: unroll m mandatory copies, then
                // (n - m) optional copies or a star.
                for _ in 0..min {
                    self.emit(inner)?;
                }
                match max {
                    None => self.emit_repeat(inner, 0, None, greedy),
                    Some(max) => {
                        let optional = max - min;
                        let mut splits = Vec::new();
                        for _ in 0..optional {
                            let s = self.push(Inst::Split(0, 0))?;
                            splits.push((s, self.here()));
                            self.emit(inner)?;
                        }
                        let after = self.here();
                        for (s, body) in splits {
                            self.insts[s] = if greedy {
                                Inst::Split(body, after)
                            } else {
                                Inst::Split(after, body)
                            };
                        }
                        Ok(())
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::Syntax;

    fn prog(p: &str) -> Program {
        compile(&parse(p, Syntax::Ere).expect("parse")).expect("compile")
    }

    #[test]
    fn literal_program_shape() {
        let p = prog("ab");
        // Save(0) Class Class Save(1) Match.
        assert_eq!(p.insts.len(), 5);
        assert_eq!(p.slots, 2);
    }

    #[test]
    fn star_has_split_and_jmp() {
        let p = prog("a*");
        assert!(p.insts.iter().any(|i| matches!(i, Inst::Split(..))));
        assert!(p.insts.iter().any(|i| matches!(i, Inst::Jmp(..))));
    }

    #[test]
    fn group_allocates_slots() {
        let p = prog("(a)(b)");
        assert_eq!(p.groups, 3);
        assert_eq!(p.slots, 6);
    }

    #[test]
    fn bounded_repeat_unrolls() {
        let p3 = prog("a{3}");
        let p1 = prog("a");
        assert!(p3.insts.len() > p1.insts.len());
    }

    #[test]
    fn huge_interval_rejected() {
        assert!(crate::parser::parse("a{1001}", Syntax::Ere).is_err());
    }
}
