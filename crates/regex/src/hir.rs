//! High-level intermediate representation for parsed regular expressions.
//!
//! Patterns (ERE or BRE) are parsed into [`Hir`] trees, which the
//! compiler lowers into NFA programs executed by the Pike VM.

/// A set of byte ranges representing a character class.
///
/// Ranges are kept sorted and non-overlapping by construction through
/// [`ClassSet::push`] followed by [`ClassSet::normalize`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClassSet {
    ranges: Vec<(u8, u8)>,
}

impl ClassSet {
    /// Creates an empty class set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a class set containing a single byte.
    pub fn single(b: u8) -> Self {
        let mut s = Self::new();
        s.push(b, b);
        s.normalize();
        s
    }

    /// Creates a class matching any byte except `\n` (the `.` class).
    pub fn dot() -> Self {
        let mut s = Self::new();
        s.push(0, b'\n' - 1);
        s.push(b'\n' + 1, 0xFF);
        s.normalize();
        s
    }

    /// Creates a class matching every byte.
    pub fn any() -> Self {
        let mut s = Self::new();
        s.push(0, 0xFF);
        s.normalize();
        s
    }

    /// Adds an inclusive byte range to the set.
    pub fn push(&mut self, lo: u8, hi: u8) {
        if lo <= hi {
            self.ranges.push((lo, hi));
        }
    }

    /// Merges another class set into this one.
    pub fn union(&mut self, other: &ClassSet) {
        self.ranges.extend_from_slice(&other.ranges);
        self.normalize();
    }

    /// Sorts and coalesces adjacent or overlapping ranges.
    pub fn normalize(&mut self) {
        self.ranges.sort_unstable();
        let mut out: Vec<(u8, u8)> = Vec::with_capacity(self.ranges.len());
        for &(lo, hi) in &self.ranges {
            match out.last_mut() {
                Some(&mut (_, ref mut phi)) if lo as u16 <= *phi as u16 + 1 => {
                    if hi > *phi {
                        *phi = hi;
                    }
                }
                _ => out.push((lo, hi)),
            }
        }
        self.ranges = out;
    }

    /// Returns the complement of this class over all bytes.
    pub fn negate(&self) -> ClassSet {
        let mut out = ClassSet::new();
        let mut next: u16 = 0;
        for &(lo, hi) in &self.ranges {
            if (lo as u16) > next {
                out.push(next as u8, lo - 1);
            }
            next = hi as u16 + 1;
        }
        if next <= 0xFF {
            out.push(next as u8, 0xFF);
        }
        out.normalize();
        out
    }

    /// Extends the class with the ASCII case-folded counterparts of its
    /// alphabetic members.
    pub fn case_fold(&mut self) {
        let mut extra = Vec::new();
        for &(lo, hi) in &self.ranges {
            for b in lo..=hi {
                if b.is_ascii_lowercase() {
                    extra.push(b.to_ascii_uppercase());
                } else if b.is_ascii_uppercase() {
                    extra.push(b.to_ascii_lowercase());
                }
                if b == 0xFF {
                    break;
                }
            }
        }
        for b in extra {
            self.push(b, b);
        }
        self.normalize();
    }

    /// Tests whether a byte is a member of the class.
    pub fn contains(&self, b: u8) -> bool {
        self.ranges
            .binary_search_by(|&(lo, hi)| {
                if b < lo {
                    std::cmp::Ordering::Greater
                } else if b > hi {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Returns the sorted, coalesced ranges of the class.
    pub fn ranges(&self) -> &[(u8, u8)] {
        &self.ranges
    }

    /// Returns true if the class matches no byte.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }
}

/// Kinds of zero-width assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Assertion {
    /// `^` — start of the haystack.
    Start,
    /// `$` — end of the haystack.
    End,
    /// `\b` — ASCII word boundary.
    WordBoundary,
    /// `\B` — ASCII non-word-boundary.
    NotWordBoundary,
}

/// A parsed regular expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Hir {
    /// Matches the empty string.
    Empty,
    /// Matches one byte from the class.
    Class(ClassSet),
    /// A zero-width assertion.
    Assert(Assertion),
    /// Concatenation of sub-expressions.
    Concat(Vec<Hir>),
    /// Alternation (`a|b`).
    Alt(Vec<Hir>),
    /// Repetition with inclusive lower bound and optional upper bound.
    Repeat {
        /// The repeated sub-expression.
        inner: Box<Hir>,
        /// Minimum number of repetitions.
        min: u32,
        /// Maximum number of repetitions; `None` means unbounded.
        max: Option<u32>,
        /// Whether the repetition prefers more matches (always true for
        /// POSIX syntaxes, kept for completeness).
        greedy: bool,
    },
    /// A capturing group; index 0 is reserved for the whole match.
    Group {
        /// 1-based capture index.
        index: u32,
        /// The grouped sub-expression.
        inner: Box<Hir>,
    },
}

impl Hir {
    /// Returns the expression that matches the byte-reversal of every
    /// string this expression matches.
    ///
    /// Concatenations flip their order, `^`/`$` swap, and everything
    /// else recurses. Used to build the reverse NFA that the lazy DFA
    /// runs backwards from a match end to recover the match start.
    pub fn reversed(&self) -> Hir {
        match self {
            Hir::Empty => Hir::Empty,
            Hir::Class(c) => Hir::Class(c.clone()),
            Hir::Assert(a) => Hir::Assert(match a {
                Assertion::Start => Assertion::End,
                Assertion::End => Assertion::Start,
                Assertion::WordBoundary => Assertion::WordBoundary,
                Assertion::NotWordBoundary => Assertion::NotWordBoundary,
            }),
            Hir::Concat(v) => Hir::Concat(v.iter().rev().map(Hir::reversed).collect()),
            Hir::Alt(v) => Hir::Alt(v.iter().map(Hir::reversed).collect()),
            Hir::Repeat {
                inner,
                min,
                max,
                greedy,
            } => Hir::Repeat {
                inner: Box::new(inner.reversed()),
                min: *min,
                max: *max,
                greedy: *greedy,
            },
            Hir::Group { index, inner } => Hir::Group {
                index: *index,
                inner: Box::new(inner.reversed()),
            },
        }
    }

    /// Builds a concatenation, flattening trivial cases.
    pub fn concat(mut parts: Vec<Hir>) -> Hir {
        parts.retain(|p| !matches!(p, Hir::Empty));
        match parts.len() {
            0 => Hir::Empty,
            1 => parts.pop().expect("len checked"),
            _ => Hir::Concat(parts),
        }
    }

    /// Builds an alternation, flattening trivial cases.
    pub fn alt(mut parts: Vec<Hir>) -> Hir {
        match parts.len() {
            0 => Hir::Empty,
            1 => parts.pop().expect("len checked"),
            _ => Hir::Alt(parts),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_contains_after_normalize() {
        let mut c = ClassSet::new();
        c.push(b'a', b'f');
        c.push(b'd', b'k');
        c.push(b'z', b'z');
        c.normalize();
        assert_eq!(c.ranges(), &[(b'a', b'k'), (b'z', b'z')]);
        assert!(c.contains(b'e'));
        assert!(c.contains(b'z'));
        assert!(!c.contains(b'y'));
    }

    #[test]
    fn class_negate_roundtrip() {
        let mut c = ClassSet::new();
        c.push(b'a', b'z');
        c.normalize();
        let n = c.negate();
        assert!(!n.contains(b'm'));
        assert!(n.contains(b'A'));
        assert!(n.contains(0));
        assert!(n.contains(0xFF));
        let nn = n.negate();
        assert_eq!(nn.ranges(), c.ranges());
    }

    #[test]
    fn negate_empty_matches_all() {
        let c = ClassSet::new();
        let n = c.negate();
        assert_eq!(n.ranges(), &[(0, 0xFF)]);
    }

    #[test]
    fn negate_full_is_empty() {
        let c = ClassSet::any();
        assert!(c.negate().is_empty());
    }

    #[test]
    fn case_fold_adds_other_case() {
        let mut c = ClassSet::new();
        c.push(b'a', b'c');
        c.normalize();
        c.case_fold();
        assert!(c.contains(b'B'));
        assert!(c.contains(b'b'));
        assert!(!c.contains(b'd'));
    }

    #[test]
    fn dot_excludes_newline() {
        let d = ClassSet::dot();
        assert!(!d.contains(b'\n'));
        assert!(d.contains(b'x'));
        assert!(d.contains(0xFF));
    }

    #[test]
    fn concat_flattens() {
        assert_eq!(Hir::concat(vec![]), Hir::Empty);
        let c = Hir::concat(vec![Hir::Empty, Hir::Class(ClassSet::single(b'a'))]);
        assert_eq!(c, Hir::Class(ClassSet::single(b'a')));
    }
}
