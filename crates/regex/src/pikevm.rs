//! Pike VM: breadth-first NFA simulation with capture tracking.
//!
//! Runs in `O(len * insts)` time regardless of the pattern, which keeps
//! `grep` over adversarial patterns linear — the property the PaSh
//! "complex NFA regex" benchmark leans on.

use std::rc::Rc;

use crate::compile::{Inst, Program};
use crate::hir::Assertion;

/// Capture slots shared between threads via persistent copy-on-write.
type Slots = Rc<Vec<Option<usize>>>;

/// A sparse set of live NFA states for the current position.
struct ThreadList {
    dense: Vec<(usize, Slots)>,
    sparse: Vec<u32>,
    gen: u32,
}

impl ThreadList {
    fn new(n: usize) -> Self {
        Self {
            dense: Vec::with_capacity(n),
            sparse: vec![u32::MAX, 0][..1].repeat(n),
            gen: 0,
        }
    }

    fn clear(&mut self) {
        self.dense.clear();
        self.gen = self.gen.wrapping_add(1);
        if self.gen == u32::MAX {
            self.sparse.fill(u32::MAX);
            self.gen = 0;
        }
    }

    fn contains(&self, pc: usize) -> bool {
        self.sparse[pc] == self.gen
    }
}

/// The Pike VM executor over a compiled [`Program`].
pub struct PikeVm<'p> {
    prog: &'p Program,
}

impl<'p> PikeVm<'p> {
    /// Creates a VM for a program.
    pub fn new(prog: &'p Program) -> Self {
        Self { prog }
    }

    /// Searches for the leftmost match starting at or after `start`.
    ///
    /// Returns the capture slots of the match, where slots `0`/`1` hold
    /// the whole-match bounds.
    pub fn find_at(&self, hay: &[u8], start: usize) -> Option<Vec<Option<usize>>> {
        let n = self.prog.insts.len();
        let mut clist = ThreadList::new(n);
        let mut nlist = ThreadList::new(n);
        let mut matched: Option<Slots> = None;
        clist.clear();
        nlist.clear();

        let mut at = start;
        loop {
            // Seed a new attempt at `at` unless a match already exists
            // (leftmost semantics: once matched, only extend existing
            // threads).
            if matched.is_none() {
                let slots: Slots = Rc::new(vec![None; self.prog.slots]);
                self.add_thread(&mut clist, 0, at, hay, slots);
            }
            if clist.dense.is_empty() && matched.is_some() {
                break;
            }
            let byte = hay.get(at).copied();
            nlist.clear();
            let mut i = 0;
            while i < clist.dense.len() {
                let (pc, slots) = clist.dense[i].clone();
                match &self.prog.insts[pc] {
                    Inst::Class(c) => {
                        if let Some(b) = byte {
                            if c.contains(b) {
                                self.add_thread(&mut nlist, pc + 1, at + 1, hay, slots);
                            }
                        }
                    }
                    Inst::Match => {
                        matched = Some(slots);
                        // Lower-priority threads in clist are cut off:
                        // leftmost-greedy semantics.
                        break;
                    }
                    // Epsilon instructions were flattened by add_thread.
                    _ => {}
                }
                i += 1;
            }
            std::mem::swap(&mut clist, &mut nlist);
            if at >= hay.len() {
                break;
            }
            at += 1;
            if clist.dense.is_empty() && matched.is_some() {
                break;
            }
        }
        matched.map(|s| (*s).clone())
    }

    /// Adds a thread, following epsilon transitions eagerly.
    fn add_thread(&self, list: &mut ThreadList, pc: usize, at: usize, hay: &[u8], slots: Slots) {
        if list.contains(pc) {
            return;
        }
        list.sparse[pc] = list.gen;
        match &self.prog.insts[pc] {
            Inst::Jmp(t) => self.add_thread(list, *t, at, hay, slots),
            Inst::Split(a, b) => {
                self.add_thread(list, *a, at, hay, slots.clone());
                self.add_thread(list, *b, at, hay, slots);
            }
            Inst::Save(slot) => {
                let mut s = (*slots).clone();
                if *slot < s.len() {
                    s[*slot] = Some(at);
                }
                self.add_thread(list, pc + 1, at, hay, Rc::new(s));
            }
            Inst::Assert(a) => {
                if assertion_holds(*a, hay, at) {
                    self.add_thread(list, pc + 1, at, hay, slots);
                }
            }
            Inst::Class(_) | Inst::Match => list.dense.push((pc, slots)),
        }
    }
}

fn is_word(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn assertion_holds(a: Assertion, hay: &[u8], at: usize) -> bool {
    match a {
        Assertion::Start => at == 0,
        Assertion::End => at == hay.len(),
        Assertion::WordBoundary | Assertion::NotWordBoundary => {
            let before = at > 0 && is_word(hay[at - 1]);
            let after = at < hay.len() && is_word(hay[at]);
            let boundary = before != after;
            if a == Assertion::WordBoundary {
                boundary
            } else {
                !boundary
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::parser::parse;
    use crate::Syntax;

    fn find(pat: &str, hay: &str) -> Option<(usize, usize)> {
        let prog = compile(&parse(pat, Syntax::Ere).expect("parse")).expect("compile");
        let vm = PikeVm::new(&prog);
        vm.find_at(hay.as_bytes(), 0)
            .map(|s| (s[0].expect("start"), s[1].expect("end")))
    }

    #[test]
    fn literal_find() {
        assert_eq!(find("bc", "abcd"), Some((1, 3)));
        assert_eq!(find("xy", "abcd"), None);
    }

    #[test]
    fn leftmost_match_wins() {
        assert_eq!(find("a+", "baaac"), Some((1, 4)));
    }

    #[test]
    fn greedy_star() {
        assert_eq!(find("a*", "aaab"), Some((0, 3)));
    }

    #[test]
    fn empty_match_at_start() {
        assert_eq!(find("x*", "yyy"), Some((0, 0)));
    }

    #[test]
    fn anchors() {
        assert_eq!(find("^ab", "abab"), Some((0, 2)));
        assert_eq!(find("ab$", "abab"), Some((2, 4)));
        assert_eq!(find("^ab$", "ab"), Some((0, 2)));
        assert_eq!(find("^b", "ab"), None);
    }

    #[test]
    fn word_boundary() {
        assert_eq!(find(r"\bcat\b", "a cat sat"), Some((2, 5)));
        assert_eq!(find(r"\bcat\b", "concatenate"), None);
    }

    #[test]
    fn alternation_priority() {
        // Leftmost, then earlier alternative preferred.
        assert_eq!(find("ab|a", "ab"), Some((0, 2)));
        assert_eq!(find("a|ab", "ab"), Some((0, 1)));
    }

    #[test]
    fn captures() {
        let prog = compile(&parse("(a+)(b+)", Syntax::Ere).expect("parse")).expect("compile");
        let vm = PikeVm::new(&prog);
        let s = vm.find_at(b"xaaabby", 0).expect("match");
        assert_eq!((s[0], s[1]), (Some(1), Some(6)));
        assert_eq!((s[2], s[3]), (Some(1), Some(4)));
        assert_eq!((s[4], s[5]), (Some(4), Some(6)));
    }

    #[test]
    fn pathological_pattern_is_fast() {
        // (a|a)*b against a^30 would be exponential for a backtracker.
        let pat = "(a|a)*b";
        let hay = "a".repeat(30);
        assert_eq!(find(pat, &hay), None);
    }

    #[test]
    fn find_at_offset() {
        let prog = compile(&parse("a", Syntax::Ere).expect("parse")).expect("compile");
        let vm = PikeVm::new(&prog);
        let s = vm.find_at(b"aba", 1).expect("match");
        assert_eq!((s[0], s[1]), (Some(2), Some(3)));
    }

    #[test]
    fn bounded_repeat_matches() {
        assert_eq!(find("a{2,3}", "aaaa"), Some((0, 3)));
        assert_eq!(find("a{2,3}", "a"), None);
        assert_eq!(find("(ab){2}", "abab"), Some((0, 4)));
    }
}
