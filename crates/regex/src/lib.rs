//! A small linear-time regular-expression engine for the PaSh
//! reproduction.
//!
//! Supports POSIX extended (ERE) and basic (BRE) syntaxes over bytes,
//! with ASCII case folding, POSIX named classes, anchors, word
//! boundaries, bounded repetition, and capture groups. Matching is a
//! Pike VM over a Thompson NFA, so it is `O(haystack × pattern)` even
//! on adversarial patterns — backtracking blow-ups cannot occur, which
//! is what the paper's "complex NFA regex" grep benchmark exercises.
//!
//! Unsupported (by design, to stay linear): backreferences.
//!
//! # Examples
//!
//! ```
//! use pash_regex::{Regex, Syntax};
//!
//! let re = Regex::new("(ab|a)+c", Syntax::Ere).unwrap();
//! assert!(re.is_match(b"xxabacyy"));
//! assert_eq!(re.find(b"xxabacyy"), Some((2, 6)));
//! ```

pub mod compile;
pub mod hir;
pub mod parser;
pub mod pikevm;

use compile::Program;
use pikevm::PikeVm;

/// Pattern syntax selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Syntax {
    /// POSIX extended regular expressions (`grep -E`, `sed -E`).
    Ere,
    /// POSIX basic regular expressions (`grep`, `sed` default).
    Bre,
}

/// A regex construction or execution error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "regex error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    prog: Program,
    pattern: String,
}

impl Regex {
    /// Compiles a pattern under the given syntax.
    pub fn new(pattern: &str, syntax: Syntax) -> Result<Regex, Error> {
        Self::with_flags(pattern, syntax, false)
    }

    /// Compiles a pattern with optional ASCII case-insensitivity.
    pub fn with_flags(
        pattern: &str,
        syntax: Syntax,
        case_insensitive: bool,
    ) -> Result<Regex, Error> {
        let mut hir = parser::parse(pattern, syntax)?;
        if case_insensitive {
            fold_hir(&mut hir);
        }
        let prog = compile::compile(&hir)?;
        Ok(Regex {
            prog,
            pattern: pattern.to_string(),
        })
    }

    /// Returns the original pattern string.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Number of capture groups, including the implicit group 0.
    pub fn group_count(&self) -> usize {
        self.prog.groups
    }

    /// Tests whether the pattern matches anywhere in the haystack.
    pub fn is_match(&self, hay: &[u8]) -> bool {
        self.find(hay).is_some()
    }

    /// Finds the leftmost match and returns its `(start, end)` offsets.
    pub fn find(&self, hay: &[u8]) -> Option<(usize, usize)> {
        self.find_at(hay, 0)
    }

    /// Finds the leftmost match at or after `start`.
    pub fn find_at(&self, hay: &[u8], start: usize) -> Option<(usize, usize)> {
        if start > hay.len() {
            return None;
        }
        let vm = PikeVm::new(&self.prog);
        vm.find_at(hay, start).and_then(|s| match (s[0], s[1]) {
            (Some(a), Some(b)) => Some((a, b)),
            _ => None,
        })
    }

    /// Finds the leftmost match and returns all capture-group spans.
    ///
    /// Index 0 is the whole match; groups that did not participate are
    /// `None`.
    pub fn captures(&self, hay: &[u8]) -> Option<Vec<Option<(usize, usize)>>> {
        self.captures_at(hay, 0)
    }

    /// Like [`Regex::captures`] starting at an offset.
    pub fn captures_at(&self, hay: &[u8], start: usize) -> Option<Vec<Option<(usize, usize)>>> {
        if start > hay.len() {
            return None;
        }
        let vm = PikeVm::new(&self.prog);
        let slots = vm.find_at(hay, start)?;
        let mut out = Vec::with_capacity(self.prog.groups);
        for g in 0..self.prog.groups {
            let s = slots.get(g * 2).copied().flatten();
            let e = slots.get(g * 2 + 1).copied().flatten();
            out.push(match (s, e) {
                (Some(s), Some(e)) => Some((s, e)),
                _ => None,
            });
        }
        Some(out)
    }

    /// Iterates over non-overlapping matches.
    pub fn find_iter<'r, 'h>(&'r self, hay: &'h [u8]) -> Matches<'r, 'h> {
        Matches {
            re: self,
            hay,
            at: 0,
            done: false,
        }
    }
}

fn fold_hir(hir: &mut hir::Hir) {
    match hir {
        hir::Hir::Class(c) => c.case_fold(),
        hir::Hir::Concat(v) | hir::Hir::Alt(v) => v.iter_mut().for_each(fold_hir),
        hir::Hir::Repeat { inner, .. } => fold_hir(inner),
        hir::Hir::Group { inner, .. } => fold_hir(inner),
        hir::Hir::Empty | hir::Hir::Assert(_) => {}
    }
}

/// Iterator over non-overlapping matches; see [`Regex::find_iter`].
pub struct Matches<'r, 'h> {
    re: &'r Regex,
    hay: &'h [u8],
    at: usize,
    done: bool,
}

impl Iterator for Matches<'_, '_> {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        if self.done {
            return None;
        }
        let (s, e) = self.re.find_at(self.hay, self.at)?;
        if e == s {
            // Empty match: advance one byte to guarantee progress.
            self.at = e + 1;
            if self.at > self.hay.len() {
                self.done = true;
            }
        } else {
            self.at = e;
        }
        Some((s, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_insensitive() {
        let re = Regex::with_flags("abc", Syntax::Ere, true).expect("compile");
        assert!(re.is_match(b"xAbCx"));
        let re = Regex::with_flags("[a-z]+", Syntax::Ere, true).expect("compile");
        assert_eq!(re.find(b"HELLO"), Some((0, 5)));
    }

    #[test]
    fn find_iter_nonoverlapping() {
        let re = Regex::new("ab", Syntax::Ere).expect("compile");
        let v: Vec<_> = re.find_iter(b"abxabab").collect();
        assert_eq!(v, vec![(0, 2), (3, 5), (5, 7)]);
    }

    #[test]
    fn find_iter_empty_matches_progress() {
        let re = Regex::new("x*", Syntax::Ere).expect("compile");
        let v: Vec<_> = re.find_iter(b"ab").collect();
        // One empty match per position, all making progress.
        assert!(v.len() <= 3);
        assert!(v.iter().all(|&(s, e)| s == e));
    }

    #[test]
    fn bre_vs_ere_plus() {
        let bre = Regex::new("a+", Syntax::Bre).expect("compile");
        assert!(bre.is_match(b"a+"));
        assert!(!bre.is_match(b"aa"));
        let ere = Regex::new("a+", Syntax::Ere).expect("compile");
        assert!(ere.is_match(b"aa"));
    }

    #[test]
    fn bre_escaped_group() {
        let re = Regex::new(r"\(ab\)*c", Syntax::Bre).expect("compile");
        assert_eq!(re.find(b"xababc"), Some((1, 6)));
    }

    #[test]
    fn captures_api() {
        let re = Regex::new("(a)(b)?", Syntax::Ere).expect("compile");
        let caps = re.captures(b"a").expect("match");
        assert_eq!(caps[0], Some((0, 1)));
        assert_eq!(caps[1], Some((0, 1)));
        assert_eq!(caps[2], None);
    }

    #[test]
    fn display_error() {
        let err = Regex::new("(", Syntax::Ere).unwrap_err();
        assert!(err.to_string().contains("regex error"));
    }

    #[test]
    fn dollar_mid_pattern() {
        let re = Regex::new("a$", Syntax::Ere).expect("compile");
        assert!(re.is_match(b"ba"));
        assert!(!re.is_match(b"ab"));
    }

    #[test]
    fn complex_nfa_pattern() {
        // The shape of PaSh's "expensive grep" benchmark pattern.
        let re = Regex::new("(a|b|c|d|e)+(f|g|h)*(ij|kl)+m", Syntax::Ere).expect("compile");
        assert!(re.is_match(b"xxabcdefghijklmyy"));
        assert!(!re.is_match(b"xxabcdefgh"));
    }
}
