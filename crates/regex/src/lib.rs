//! A small linear-time regular-expression engine for the PaSh
//! reproduction.
//!
//! Supports POSIX extended (ERE) and basic (BRE) syntaxes over bytes,
//! with ASCII case folding, POSIX named classes, anchors, word
//! boundaries, bounded repetition, and capture groups.
//!
//! Matching is **tiered** (see [`Matcher`]): literal extraction over
//! the parsed pattern picks the cheapest engine that can answer —
//!
//! 1. an exact-literal pattern is pure substring search
//!    ([`memmem`], word-at-a-time);
//! 2. a general pattern with a required literal gets a prefilter that
//!    rejects haystacks (and bounds match starts) at `memchr` speed;
//! 3. surviving candidates run through a lazy DFA ([`dfa`]) — one
//!    table lookup per byte, states determinized on demand under a
//!    bounded cache;
//! 4. the Pike VM ([`pikevm`]) remains the capture engine and the
//!    fallback when the DFA cache thrashes or the pattern uses
//!    word-boundary assertions.
//!
//! Every tier is `O(haystack)` — backtracking blow-ups cannot occur,
//! which is what the paper's "complex NFA regex" grep benchmark
//! exercises. Unsupported (by design, to stay linear): backreferences.
//!
//! # Examples
//!
//! ```
//! use pash_regex::{Regex, Syntax};
//!
//! let re = Regex::new("(ab|a)+c", Syntax::Ere).unwrap();
//! assert!(re.is_match(b"xxabacyy"));
//! assert_eq!(re.find(b"xxabacyy"), Some((2, 6)));
//!
//! // Hot paths hold a Matcher: same answers, persistent DFA cache.
//! let mut m = re.matcher();
//! assert!(m.is_match(b"xxabacyy"));
//! ```

pub mod compile;
pub mod dfa;
pub mod hir;
pub mod literal;
pub mod memmem;
pub mod parser;
pub mod pikevm;

use std::sync::Arc;

use compile::Program;
use hir::Hir;
use literal::{Literals, Prefilter};
use pikevm::PikeVm;

/// Pattern syntax selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Syntax {
    /// POSIX extended regular expressions (`grep -E`, `sed -E`).
    Ere,
    /// POSIX basic regular expressions (`grep`, `sed` default).
    Bre,
}

/// A regex construction or execution error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "regex error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// The per-pattern match strategy, chosen once at compile time.
#[derive(Debug)]
enum Plan {
    /// The pattern matches exactly one byte string: substring search
    /// (or prefix/suffix compare under anchors), no automaton.
    Literal {
        finder: memmem::Finder,
        anchored_start: bool,
        anchored_end: bool,
    },
    /// General pattern: optional literal prefilter, lazy DFA when the
    /// pattern admits one, Pike VM otherwise and as fallback.
    General {
        prefilter: Option<Prefilter>,
        /// Maximum offset from the match start at which the prefilter
        /// literal's guaranteed occurrence can begin: a hit at `h`
        /// proves no match starts before `h - max_start`, so the scan
        /// starts there instead of rescanning from the beginning. A
        /// required prefix is `Some(0)`; `None` = containment only.
        prefilter_max_start: Option<usize>,
    },
}

/// Everything immutable shared by [`Regex`], its clones, and all
/// [`Matcher`]s derived from it.
#[derive(Debug)]
struct Inner {
    /// The capture-carrying NFA program (Pike VM tier).
    prog: Program,
    plan: Plan,
    /// Forward DFA over the `.*?`-wrapped pattern (leftmost ends).
    fwd: Option<dfa::Dfa>,
    /// Reverse DFA over the reversed pattern (match starts).
    rev: Option<dfa::Dfa>,
}

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    inner: Arc<Inner>,
    pattern: String,
}

impl Regex {
    /// Compiles a pattern under the given syntax.
    pub fn new(pattern: &str, syntax: Syntax) -> Result<Regex, Error> {
        Self::with_flags(pattern, syntax, false)
    }

    /// Compiles a pattern with optional ASCII case-insensitivity.
    pub fn with_flags(
        pattern: &str,
        syntax: Syntax,
        case_insensitive: bool,
    ) -> Result<Regex, Error> {
        let mut hir = parser::parse(pattern, syntax)?;
        // Literal extraction sees the *unfolded* parse: folding turns
        // every letter into a two-branch class, which would discard
        // the literals that make `grep -i` prefilterable. The
        // extracted literals are lowercased and matched caselessly
        // instead.
        let lits = if case_insensitive {
            literal::analyze_caseless(&hir)
        } else {
            literal::analyze(&hir)
        };
        if case_insensitive {
            fold_hir(&mut hir);
        }
        let prog = compile::compile(&hir)?;
        let plan = Self::pick_plan(&lits);
        let (fwd, rev) = match plan {
            // The literal tier never needs an automaton for spans.
            Plan::Literal { .. } => (None, None),
            Plan::General { .. } => build_dfas(&hir),
        };
        Ok(Regex {
            inner: Arc::new(Inner {
                prog,
                plan,
                fwd,
                rev,
            }),
            pattern: pattern.to_string(),
        })
    }

    fn pick_plan(lits: &Literals) -> Plan {
        if let Some(exact) = &lits.exact {
            let finder = if lits.caseless {
                memmem::Finder::new_caseless(exact)
            } else {
                memmem::Finder::new(exact)
            };
            return Plan::Literal {
                finder,
                anchored_start: lits.anchored_start,
                anchored_end: lits.anchored_end,
            };
        }
        match Prefilter::from_literals(lits) {
            Some((pf, max_start)) => Plan::General {
                prefilter: Some(pf),
                prefilter_max_start: max_start,
            },
            None => Plan::General {
                prefilter: None,
                prefilter_max_start: None,
            },
        }
    }

    /// Returns the original pattern string.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Number of capture groups, including the implicit group 0.
    pub fn group_count(&self) -> usize {
        self.inner.prog.groups
    }

    /// Creates a [`Matcher`] for this pattern.
    ///
    /// The matcher owns the mutable lazy-DFA caches, so a hot loop
    /// (one `is_match` per line) amortizes determinization across
    /// calls. The convenience methods below build a fresh matcher per
    /// call — same answers, cold cache.
    pub fn matcher(&self) -> Matcher {
        Matcher {
            inner: Arc::clone(&self.inner),
            fwd_cache: dfa::Cache::new(),
            rev_cache: dfa::Cache::new(),
        }
    }

    /// Tests whether the pattern matches anywhere in the haystack.
    pub fn is_match(&self, hay: &[u8]) -> bool {
        self.matcher().is_match(hay)
    }

    /// Finds the leftmost match and returns its `(start, end)` offsets.
    pub fn find(&self, hay: &[u8]) -> Option<(usize, usize)> {
        self.matcher().find_at(hay, 0)
    }

    /// Finds the leftmost match at or after `start`.
    pub fn find_at(&self, hay: &[u8], start: usize) -> Option<(usize, usize)> {
        self.matcher().find_at(hay, start)
    }

    /// Finds the leftmost match and returns all capture-group spans.
    ///
    /// Index 0 is the whole match; groups that did not participate are
    /// `None`.
    pub fn captures(&self, hay: &[u8]) -> Option<Vec<Option<(usize, usize)>>> {
        self.matcher().captures_at(hay, 0)
    }

    /// Like [`Regex::captures`] starting at an offset.
    pub fn captures_at(&self, hay: &[u8], start: usize) -> Option<Vec<Option<(usize, usize)>>> {
        self.matcher().captures_at(hay, start)
    }

    /// Iterates over non-overlapping matches.
    pub fn find_iter<'r, 'h>(&'r self, hay: &'h [u8]) -> Matches<'h> {
        Matches {
            matcher: self.matcher(),
            hay,
            at: 0,
            done: false,
        }
    }
}

/// Builds the forward (`.*?`-wrapped, leftmost) and reverse
/// (reversed pattern, longest) lazy DFAs, when the pattern admits
/// them (no word boundaries, program within size bounds).
fn build_dfas(hir: &Hir) -> (Option<dfa::Dfa>, Option<dfa::Dfa>) {
    let wrapped = Hir::Concat(vec![
        Hir::Repeat {
            inner: Box::new(Hir::Class(hir::ClassSet::any())),
            min: 0,
            max: None,
            greedy: false,
        },
        hir.clone(),
    ]);
    let fwd = compile::compile(&wrapped)
        .ok()
        .and_then(|p| dfa::Dfa::new(p, false));
    let rev = compile::compile(&hir.reversed())
        .ok()
        .and_then(|p| dfa::Dfa::new(p, true));
    // `find` needs both directions; degrade in lockstep so the tier
    // choice is all-or-nothing.
    match (fwd, rev) {
        (Some(f), Some(r)) => (Some(f), Some(r)),
        _ => (None, None),
    }
}

/// The tiered match engine for one pattern; see [`Regex::matcher`].
///
/// Methods take `&mut self` because the lazy-DFA caches fill in as
/// haystack bytes are seen. Answers are byte-identical to the Pike
/// VM's (the differential suite in `tests/` asserts this).
pub struct Matcher {
    inner: Arc<Inner>,
    fwd_cache: dfa::Cache,
    rev_cache: dfa::Cache,
}

impl Matcher {
    /// Tests whether the pattern matches anywhere in the haystack.
    pub fn is_match(&mut self, hay: &[u8]) -> bool {
        self.is_match_at(hay, 0)
    }

    /// Like [`Matcher::is_match`] starting at an offset.
    pub fn is_match_at(&mut self, hay: &[u8], start: usize) -> bool {
        if start > hay.len() {
            return false;
        }
        match &self.inner.plan {
            Plan::Literal { .. } => self.literal_find(hay, start).is_some(),
            Plan::General { .. } => {
                let start = match self.prefilter_start(hay, start) {
                    Some(s) => s,
                    None => return false,
                };
                if let Some(fwd) = &self.inner.fwd {
                    match fwd.find_fwd(&mut self.fwd_cache, hay, start, true) {
                        Ok(r) => return r.is_some(),
                        Err(dfa::GaveUp) => {}
                    }
                }
                self.pike_slots(hay, start).is_some()
            }
        }
    }

    /// Finds the leftmost match and returns its `(start, end)` offsets.
    pub fn find(&mut self, hay: &[u8]) -> Option<(usize, usize)> {
        self.find_at(hay, 0)
    }

    /// Finds the leftmost match at or after `start`.
    pub fn find_at(&mut self, hay: &[u8], start: usize) -> Option<(usize, usize)> {
        if start > hay.len() {
            return None;
        }
        match &self.inner.plan {
            Plan::Literal { .. } => self.literal_find(hay, start),
            Plan::General { .. } => {
                let start = self.prefilter_start(hay, start)?;
                if let (Some(fwd), Some(rev)) = (&self.inner.fwd, &self.inner.rev) {
                    let fwd_end = fwd.find_fwd(&mut self.fwd_cache, hay, start, false);
                    if let Ok(end) = fwd_end {
                        let end = end?;
                        if let Ok(Some(s)) = rev.find_rev(&mut self.rev_cache, hay, start, end) {
                            return Some((s, end));
                        }
                    }
                }
                self.pike_slots(hay, start)
                    .and_then(|s| match (s[0], s[1]) {
                        (Some(a), Some(b)) => Some((a, b)),
                        _ => None,
                    })
            }
        }
    }

    /// Finds the leftmost match and returns all capture-group spans
    /// (index 0 is the whole match).
    ///
    /// Captures always run on the Pike VM — the only tier that tracks
    /// slots — but still benefit from the prefilter's rejection and
    /// start-advance.
    pub fn captures_at(&mut self, hay: &[u8], start: usize) -> Option<Vec<Option<(usize, usize)>>> {
        if start > hay.len() {
            return None;
        }
        let start = match &self.inner.plan {
            Plan::Literal { .. } => match self.literal_find(hay, start) {
                // The literal tier knows where the match is; the VM
                // re-derives group spans from there.
                Some((s, _)) => s,
                None => return None,
            },
            Plan::General { .. } => self.prefilter_start(hay, start)?,
        };
        let slots = self.pike_slots(hay, start)?;
        let groups = self.inner.prog.groups;
        let mut out = Vec::with_capacity(groups);
        for g in 0..groups {
            let s = slots.get(g * 2).copied().flatten();
            let e = slots.get(g * 2 + 1).copied().flatten();
            out.push(match (s, e) {
                (Some(s), Some(e)) => Some((s, e)),
                _ => None,
            });
        }
        Some(out)
    }

    /// Reports the first position in `hay` at which a match could
    /// possibly occur, or `None` when the pattern provably matches
    /// nowhere in `hay`.
    ///
    /// Cheap (a literal scan) and sound but not exact: a `Some` still
    /// needs verification. Buffer-oriented callers (`grep`) use this
    /// to skip non-candidate regions wholesale; pair with
    /// [`Matcher::has_candidate_filter`] to decide whether the hint
    /// prunes at all.
    pub fn candidate(&self, hay: &[u8]) -> Option<usize> {
        match &self.inner.plan {
            Plan::Literal { finder, .. } => {
                if finder.needle().is_empty() {
                    Some(0)
                } else {
                    finder.find(hay)
                }
            }
            Plan::General {
                prefilter: Some(pf),
                ..
            } => pf.find(hay),
            Plan::General {
                prefilter: None, ..
            } => Some(0),
        }
    }

    /// True when [`Matcher::candidate`] actually prunes (the pattern
    /// carries a non-empty required literal).
    pub fn has_candidate_filter(&self) -> bool {
        match &self.inner.plan {
            Plan::Literal { finder, .. } => !finder.needle().is_empty(),
            Plan::General { prefilter, .. } => prefilter.is_some(),
        }
    }

    /// Applies the prefilter at `start`: `None` means no match exists
    /// anywhere at-or-after `start`; otherwise the (possibly advanced)
    /// scan start.
    fn prefilter_start(&self, hay: &[u8], start: usize) -> Option<usize> {
        match &self.inner.plan {
            Plan::General {
                prefilter: Some(pf),
                prefilter_max_start,
            } => {
                let hit = start + pf.find(&hay[start..])?;
                // The literal's guaranteed occurrence starts at most
                // `max_start` bytes into its match, and the leftmost
                // occurrence at-or-after `start` is at `hit`, so no
                // match starts before `hit - max_start`. The scan
                // proceeds forward from there — one pass even for
                // inner literals (when the bound exists).
                match prefilter_max_start {
                    Some(b) => Some(hit.saturating_sub(*b).max(start)),
                    None => Some(start),
                }
            }
            _ => Some(start),
        }
    }

    /// Exact-literal search honoring anchors.
    fn literal_find(&self, hay: &[u8], start: usize) -> Option<(usize, usize)> {
        let Plan::Literal {
            finder,
            anchored_start,
            anchored_end,
        } = &self.inner.plan
        else {
            unreachable!("literal_find called on general plan");
        };
        let n = finder.needle().len();
        match (anchored_start, anchored_end) {
            (true, true) => (start == 0 && finder.matches(hay)).then_some((0, n)),
            (true, false) => {
                (start == 0 && hay.len() >= n && finder.matches(&hay[..n])).then_some((0, n))
            }
            (false, true) => (hay.len() >= n + start && finder.matches(&hay[hay.len() - n..]))
                .then(|| (hay.len() - n, hay.len())),
            (false, false) => finder
                .find(&hay[start..])
                .map(|off| (start + off, start + off + n)),
        }
    }

    /// Runs the Pike VM from `start`, returning raw capture slots.
    fn pike_slots(&self, hay: &[u8], start: usize) -> Option<Vec<Option<usize>>> {
        let vm = PikeVm::new(&self.inner.prog);
        vm.find_at(hay, start)
    }
}

fn fold_hir(hir: &mut hir::Hir) {
    match hir {
        hir::Hir::Class(c) => c.case_fold(),
        hir::Hir::Concat(v) | hir::Hir::Alt(v) => v.iter_mut().for_each(fold_hir),
        hir::Hir::Repeat { inner, .. } => fold_hir(inner),
        hir::Hir::Group { inner, .. } => fold_hir(inner),
        hir::Hir::Empty | hir::Hir::Assert(_) => {}
    }
}

/// Iterator over non-overlapping matches; see [`Regex::find_iter`].
pub struct Matches<'h> {
    matcher: Matcher,
    hay: &'h [u8],
    at: usize,
    done: bool,
}

impl Iterator for Matches<'_> {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        if self.done {
            return None;
        }
        let (s, e) = self.matcher.find_at(self.hay, self.at)?;
        if e == s {
            // Empty match: advance one byte to guarantee progress.
            self.at = e + 1;
            if self.at > self.hay.len() {
                self.done = true;
            }
        } else {
            self.at = e;
        }
        Some((s, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_insensitive() {
        let re = Regex::with_flags("abc", Syntax::Ere, true).expect("compile");
        assert!(re.is_match(b"xAbCx"));
        let re = Regex::with_flags("[a-z]+", Syntax::Ere, true).expect("compile");
        assert_eq!(re.find(b"HELLO"), Some((0, 5)));
    }

    #[test]
    fn case_insensitive_keeps_literal_tier() {
        let re = Regex::with_flags("abc", Syntax::Ere, true).expect("compile");
        assert!(matches!(re.inner.plan, Plan::Literal { .. }));
        assert_eq!(re.find(b"xxABCyy"), Some((2, 5)));
        assert_eq!(re.find(b"xxAbCyy"), Some((2, 5)));
        assert_eq!(re.find(b"xxAbXyy"), None);
        let re = Regex::with_flags("^Foo$", Syntax::Ere, true).expect("compile");
        assert!(re.is_match(b"FOO"));
        assert!(re.is_match(b"foo"));
        assert!(!re.is_match(b"fooo"));
    }

    #[test]
    fn case_insensitive_keeps_prefilter() {
        // The point of the caseless literal path: `grep -i` patterns
        // still prune non-candidate haystacks at memchr speed.
        let re = Regex::with_flags("foo[0-9]+bar", Syntax::Ere, true).expect("compile");
        let m = re.matcher();
        assert!(m.has_candidate_filter());
        assert_eq!(m.candidate(b"nothing here"), None);
        assert!(m.candidate(b"xx FOO1BAR yy").is_some());
        assert_eq!(re.find(b"xx FoO42bAr yy"), Some((3, 11)));
    }

    #[test]
    fn find_iter_nonoverlapping() {
        let re = Regex::new("ab", Syntax::Ere).expect("compile");
        let v: Vec<_> = re.find_iter(b"abxabab").collect();
        assert_eq!(v, vec![(0, 2), (3, 5), (5, 7)]);
    }

    #[test]
    fn find_iter_empty_matches_progress() {
        let re = Regex::new("x*", Syntax::Ere).expect("compile");
        let v: Vec<_> = re.find_iter(b"ab").collect();
        // One empty match per position, all making progress.
        assert!(v.len() <= 3);
        assert!(v.iter().all(|&(s, e)| s == e));
    }

    #[test]
    fn bre_vs_ere_plus() {
        let bre = Regex::new("a+", Syntax::Bre).expect("compile");
        assert!(bre.is_match(b"a+"));
        assert!(!bre.is_match(b"aa"));
        let ere = Regex::new("a+", Syntax::Ere).expect("compile");
        assert!(ere.is_match(b"aa"));
    }

    #[test]
    fn bre_escaped_group() {
        let re = Regex::new(r"\(ab\)*c", Syntax::Bre).expect("compile");
        assert_eq!(re.find(b"xababc"), Some((1, 6)));
    }

    #[test]
    fn captures_api() {
        let re = Regex::new("(a)(b)?", Syntax::Ere).expect("compile");
        let caps = re.captures(b"a").expect("match");
        assert_eq!(caps[0], Some((0, 1)));
        assert_eq!(caps[1], Some((0, 1)));
        assert_eq!(caps[2], None);
    }

    #[test]
    fn display_error() {
        let err = Regex::new("(", Syntax::Ere).unwrap_err();
        assert!(err.to_string().contains("regex error"));
    }

    #[test]
    fn dollar_mid_pattern() {
        let re = Regex::new("a$", Syntax::Ere).expect("compile");
        assert!(re.is_match(b"ba"));
        assert!(!re.is_match(b"ab"));
    }

    #[test]
    fn complex_nfa_pattern() {
        // The shape of PaSh's "expensive grep" benchmark pattern.
        let re = Regex::new("(a|b|c|d|e)+(f|g|h)*(ij|kl)+m", Syntax::Ere).expect("compile");
        assert!(re.is_match(b"xxabcdefghijklmyy"));
        assert!(!re.is_match(b"xxabcdefgh"));
    }

    #[test]
    fn literal_tier_selected_for_plain_strings() {
        let re = Regex::new("foobar", Syntax::Ere).expect("compile");
        assert!(matches!(re.inner.plan, Plan::Literal { .. }));
        assert_eq!(re.find(b"xx foobar yy"), Some((3, 9)));
        assert_eq!(re.find(b"xx foobaz yy"), None);
    }

    #[test]
    fn literal_tier_with_anchors() {
        let re = Regex::new("^foo", Syntax::Ere).expect("compile");
        assert_eq!(re.find(b"foox"), Some((0, 3)));
        assert_eq!(re.find(b"xfoo"), None);
        assert_eq!(re.find_at(b"foox", 1), None);
        let re = Regex::new("foo$", Syntax::Ere).expect("compile");
        assert_eq!(re.find(b"xfoo"), Some((1, 4)));
        assert_eq!(re.find(b"foox"), None);
        let re = Regex::new("^foo$", Syntax::Ere).expect("compile");
        assert!(re.is_match(b"foo"));
        assert!(!re.is_match(b"foon"));
    }

    #[test]
    fn literal_tier_captures_through_groups() {
        // `(ab)c` is exact "abc" but still has a capture group.
        let re = Regex::new("(ab)c", Syntax::Ere).expect("compile");
        assert!(matches!(re.inner.plan, Plan::Literal { .. }));
        let caps = re.captures(b"xabcy").expect("match");
        assert_eq!(caps[0], Some((1, 4)));
        assert_eq!(caps[1], Some((1, 3)));
    }

    #[test]
    fn general_tier_uses_dfa() {
        let re = Regex::new("foo[0-9]+", Syntax::Ere).expect("compile");
        assert!(re.inner.fwd.is_some() && re.inner.rev.is_some());
        assert_eq!(re.find(b"xx foo42 yy"), Some((3, 8)));
        assert!(!re.is_match(b"xx foo yy"));
    }

    #[test]
    fn word_boundary_pattern_stays_on_pikevm() {
        let re = Regex::new(r"\bcat\b", Syntax::Ere).expect("compile");
        assert!(re.inner.fwd.is_none());
        assert_eq!(re.find(b"a cat sat"), Some((2, 5)));
        assert!(!re.is_match(b"concatenate"));
    }

    #[test]
    fn matcher_reuse_across_haystacks() {
        let re = Regex::new("(a|b)+c[0-9]", Syntax::Ere).expect("compile");
        let mut m = re.matcher();
        for _ in 0..3 {
            assert!(m.is_match(b"zz abbac7 zz"));
            assert!(!m.is_match(b"zz abbac zz"));
            assert_eq!(m.find(b"xac3"), Some((1, 4)));
        }
    }

    #[test]
    fn inner_literal_bound_is_one_pass() {
        // "ERROR" can start at most one byte into a match, so a
        // prefilter hit bounds the scan start instead of forcing a
        // rescan from the haystack beginning.
        let re = Regex::new("[0-9]ERROR", Syntax::Ere).expect("compile");
        assert!(matches!(
            re.inner.plan,
            Plan::General {
                prefilter_max_start: Some(1),
                ..
            }
        ));
        let mut hay = vec![b'x'; 1 << 16];
        hay.extend_from_slice(b"7ERROR tail");
        assert!(re.is_match(&hay));
        assert_eq!(re.find(&hay), Some((1 << 16, (1 << 16) + 6)));
        assert!(!re.is_match(b"xERROR only"));
    }

    #[test]
    fn inner_literal_bound_keeps_later_matches() {
        // The first literal occurrence is not part of a match; the
        // bounded scan must still reach the later one.
        let re = Regex::new("[0-9]ERROR", Syntax::Ere).expect("compile");
        let hay = b"xERROR noise 5ERROR end";
        assert_eq!(re.find(hay), Some((13, 19)));
        assert_eq!(re.find_at(hay, 2), Some((13, 19)));
        let caps = re.captures(hay).expect("match");
        assert_eq!(caps[0], Some((13, 19)));
    }

    #[test]
    fn unbounded_inner_literal_keeps_containment_only() {
        let re = Regex::new("x+needle", Syntax::Ere).expect("compile");
        assert!(matches!(
            re.inner.plan,
            Plan::General {
                prefilter_max_start: None,
                ..
            }
        ));
        assert_eq!(re.find(b"aaxxxneedle"), Some((2, 11)));
        assert!(!re.is_match(b"no nee dle"));
    }

    #[test]
    fn candidate_hint_prunes() {
        let re = Regex::new("foo[0-9]+bar", Syntax::Ere).expect("compile");
        let m = re.matcher();
        assert!(m.has_candidate_filter());
        assert_eq!(m.candidate(b"nothing here"), None);
        assert!(m.candidate(b"xx foo1bar").is_some());
        let re = Regex::new("[ab]+", Syntax::Ere).expect("compile");
        assert!(!re.matcher().has_candidate_filter());
    }
}
