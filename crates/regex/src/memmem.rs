//! Word-at-a-time byte scanning: `memchr`/`memmem`-style primitives.
//!
//! These are the prefilter workhorses of the tiered matcher: SIMD-free
//! (the workspace targets a plain container), but processing one
//! machine word per step via the classic SWAR zero-byte trick, which
//! moves bytes at several GiB/s — far faster than any per-byte NFA or
//! DFA loop, and fast enough that skipping non-candidate input
//! dominates total `grep`/`sed` time on literal-bearing patterns.

const WORD: usize = std::mem::size_of::<usize>();
const LO: usize = usize::from_ne_bytes([0x01; WORD]);
const HI: usize = usize::from_ne_bytes([0x80; WORD]);

/// Broadcasts a byte into every lane of a word.
#[inline(always)]
fn splat(b: u8) -> usize {
    usize::from_ne_bytes([b; WORD])
}

/// True when any byte lane of `w` is zero (SWAR trick: borrows out of
/// zero lanes survive the mask).
#[inline(always)]
fn has_zero_byte(w: usize) -> bool {
    w.wrapping_sub(LO) & !w & HI != 0
}

/// Reads a word from `hay` at `i` (caller guarantees `i + WORD` fits).
#[inline(always)]
fn load_word(hay: &[u8], i: usize) -> usize {
    let mut buf = [0u8; WORD];
    buf.copy_from_slice(&hay[i..i + WORD]);
    usize::from_ne_bytes(buf)
}

/// Finds the first occurrence of byte `b` in `hay`.
#[inline]
pub fn memchr(b: u8, hay: &[u8]) -> Option<usize> {
    let pat = splat(b);
    let mut i = 0;
    while i + WORD <= hay.len() {
        if has_zero_byte(load_word(hay, i) ^ pat) {
            // A lane matched somewhere in this word; resolve per byte.
            for (j, &h) in hay[i..i + WORD].iter().enumerate() {
                if h == b {
                    return Some(i + j);
                }
            }
            unreachable!("word test claimed a match");
        }
        i += WORD;
    }
    hay[i..].iter().position(|&h| h == b).map(|j| i + j)
}

/// Finds the first occurrence of either byte in `hay` (one pass, two
/// SWAR tests per word). The caseless prefilter's probe: scan for
/// both cases of an ASCII letter at `memchr` speed.
#[inline]
pub fn memchr2(a: u8, b: u8, hay: &[u8]) -> Option<usize> {
    let pa = splat(a);
    let pb = splat(b);
    let mut i = 0;
    while i + WORD <= hay.len() {
        let w = load_word(hay, i);
        if has_zero_byte(w ^ pa) || has_zero_byte(w ^ pb) {
            for (j, &h) in hay[i..i + WORD].iter().enumerate() {
                if h == a || h == b {
                    return Some(i + j);
                }
            }
            unreachable!("word test claimed a match");
        }
        i += WORD;
    }
    hay[i..]
        .iter()
        .position(|&h| h == a || h == b)
        .map(|j| i + j)
}

/// Finds the last occurrence of byte `b` in `hay`.
#[inline]
pub fn memrchr(b: u8, hay: &[u8]) -> Option<usize> {
    let pat = splat(b);
    let mut end = hay.len();
    // Unaligned tail first, then whole words backwards.
    while end % WORD != 0 && end > 0 {
        end -= 1;
        if hay[end] == b {
            return Some(end);
        }
    }
    while end >= WORD {
        let i = end - WORD;
        if has_zero_byte(load_word(hay, i) ^ pat) {
            for j in (0..WORD).rev() {
                if hay[i + j] == b {
                    return Some(i + j);
                }
            }
            unreachable!("word test claimed a match");
        }
        end = i;
    }
    hay[..end].iter().rposition(|&h| h == b)
}

/// Counts occurrences of byte `b` in `hay` one word at a time.
///
/// Used by `grep -n`/`-c -v` to keep line numbers while skipping whole
/// non-candidate regions: counting `\n` this way costs a fraction of
/// re-scanning the region per line.
#[inline]
pub fn count_bytes(b: u8, hay: &[u8]) -> usize {
    let pat = splat(b);
    let mut count = 0usize;
    let mut i = 0;
    while i + WORD <= hay.len() {
        let x = load_word(hay, i) ^ pat;
        // Per-lane "is zero" mask: 0x80 in matching lanes.
        let m = x.wrapping_sub(LO) & !x & HI;
        count += m.count_ones() as usize;
        i += WORD;
    }
    count + hay[i..].iter().filter(|&&h| h == b).count()
}

/// Estimated background frequency rank of each byte (0 = rarest).
///
/// A static heuristic modeled on typical line-oriented text: controls
/// and high bytes are rare, vowels/space/digits are common. Used to
/// pick the needle byte worth `memchr`-ing for.
fn rarity(b: u8) -> u8 {
    match b {
        b'e' | b't' | b'a' | b'o' | b'i' | b'n' | b' ' => 250,
        b's' | b'h' | b'r' | b'd' | b'l' | b'u' => 230,
        b'0'..=b'9' => 200,
        b'c' | b'm' | b'f' | b'w' | b'g' | b'y' | b'p' | b'b' => 190,
        b'v' | b'k' | b'.' | b',' | b'-' | b'_' | b'/' => 150,
        b'A'..=b'Z' => 120,
        b'\n' | b'\t' => 110,
        0x21..=0x7E => 60,
        _ => 10,
    }
}

/// A substring searcher with a precomputed rare-byte probe.
///
/// Strategy: `memchr` for the needle's rarest byte, check the second
/// probe byte, then verify the full needle. On mismatch-dominated
/// haystacks (the `grep` common case) the word-at-a-time `memchr`
/// does nearly all the work.
///
/// A *caseless* finder (see [`Finder::new_caseless`]) stores the
/// needle lowercased, probes for both cases of an ASCII letter via
/// [`memchr2`], and verifies windows with `eq_ignore_ascii_case` —
/// so `grep -i` patterns keep a word-at-a-time prefilter.
#[derive(Debug, Clone)]
pub struct Finder {
    needle: Vec<u8>,
    /// Offset of the rarest needle byte (the `memchr` probe).
    rare1: usize,
    /// Offset of the second-rarest byte (the confirm probe).
    rare2: usize,
    /// Match ASCII case-insensitively.
    caseless: bool,
}

impl Finder {
    /// Builds a searcher for `needle`.
    pub fn new(needle: &[u8]) -> Finder {
        Finder::build(needle.to_vec(), false)
    }

    /// Builds an ASCII case-insensitive searcher (the needle is
    /// normalized to lowercase).
    pub fn new_caseless(needle: &[u8]) -> Finder {
        Finder::build(needle.to_ascii_lowercase(), true)
    }

    fn build(needle: Vec<u8>, caseless: bool) -> Finder {
        let mut rare1 = 0usize;
        let mut rare2 = 0usize;
        for (i, &b) in needle.iter().enumerate() {
            if rarity(b) < rarity(needle[rare1]) {
                rare2 = rare1;
                rare1 = i;
            } else if i != rare1 && rarity(b) < rarity(needle[rare2]) {
                rare2 = i;
            }
        }
        Finder {
            needle,
            rare1,
            rare2,
            caseless,
        }
    }

    /// The needle being searched for (lowercased when caseless).
    pub fn needle(&self) -> &[u8] {
        &self.needle
    }

    /// Whether this finder matches ASCII case-insensitively.
    pub fn is_caseless(&self) -> bool {
        self.caseless
    }

    /// Whether `window` equals the needle under this finder's
    /// comparison (used by the anchored literal tier).
    #[inline]
    pub fn matches(&self, window: &[u8]) -> bool {
        if self.caseless {
            window.eq_ignore_ascii_case(&self.needle)
        } else {
            window == self.needle.as_slice()
        }
    }

    /// Scans for the probe byte, honoring caselessness.
    #[inline]
    fn probe(&self, b: u8, hay: &[u8]) -> Option<usize> {
        if self.caseless && b.is_ascii_lowercase() {
            memchr2(b, b.to_ascii_uppercase(), hay)
        } else {
            memchr(b, hay)
        }
    }

    #[inline]
    fn byte_eq(&self, h: u8, n: u8) -> bool {
        h == n || (self.caseless && h.eq_ignore_ascii_case(&n))
    }

    /// Finds the first occurrence of the needle in `hay`.
    #[inline]
    pub fn find(&self, hay: &[u8]) -> Option<usize> {
        let n = &self.needle;
        if n.is_empty() {
            return Some(0);
        }
        if n.len() == 1 {
            return self.probe(n[0], hay);
        }
        if n.len() > hay.len() {
            return None;
        }
        let probe1 = n[self.rare1];
        let probe2 = n[self.rare2];
        // Scan for the rare byte at its offset within candidate
        // windows: position `i` of the probe corresponds to a match
        // starting at `i - rare1`.
        let mut at = self.rare1;
        let last = hay.len() - n.len() + self.rare1;
        while at <= last {
            match self.probe(probe1, &hay[at..=last]) {
                None => return None,
                Some(off) => {
                    let i = at + off;
                    let start = i - self.rare1;
                    if self.byte_eq(hay[start + self.rare2], probe2)
                        && self.matches(&hay[start..start + n.len()])
                    {
                        return Some(start);
                    }
                    at = i + 1;
                }
            }
        }
        None
    }

    /// Iterates over (possibly overlapping) occurrence start offsets.
    pub fn find_iter<'f, 'h>(&'f self, hay: &'h [u8]) -> FindIter<'f, 'h> {
        FindIter {
            finder: self,
            hay,
            at: 0,
        }
    }
}

/// Iterator over needle occurrences; see [`Finder::find_iter`].
pub struct FindIter<'f, 'h> {
    finder: &'f Finder,
    hay: &'h [u8],
    at: usize,
}

impl Iterator for FindIter<'_, '_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.at > self.hay.len() {
            return None;
        }
        let pos = self.finder.find(&self.hay[self.at..])? + self.at;
        self.at = pos + 1;
        Some(pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memchr_all_positions() {
        let hay = b"the quick brown fox jumps over the lazy dog";
        for (i, &b) in hay.iter().enumerate() {
            let first = hay.iter().position(|&h| h == b).unwrap();
            assert_eq!(memchr(b, hay), Some(first), "byte {b} at {i}");
        }
        assert_eq!(memchr(b'z', b"abc"), None);
        assert_eq!(memchr(b'a', b""), None);
    }

    #[test]
    fn memchr_long_haystack() {
        let mut hay = vec![b'x'; 1000];
        hay[777] = b'q';
        assert_eq!(memchr(b'q', &hay), Some(777));
        assert_eq!(memrchr(b'q', &hay), Some(777));
    }

    #[test]
    fn memrchr_matches_rposition() {
        let hay = b"abcabcabc-xyz-abc";
        for b in [b'a', b'c', b'-', b'z', b'Q'] {
            assert_eq!(memrchr(b, hay), hay.iter().rposition(|&h| h == b));
        }
    }

    #[test]
    fn count_newlines() {
        let hay = b"a\nbb\nccc\n\nlast";
        assert_eq!(count_bytes(b'\n', hay), 4);
        let big: Vec<u8> = (0..997)
            .map(|i| if i % 10 == 0 { b'\n' } else { b'x' })
            .collect();
        assert_eq!(
            count_bytes(b'\n', &big),
            big.iter().filter(|&&b| b == b'\n').count()
        );
    }

    #[test]
    fn finder_basic() {
        let f = Finder::new(b"needle");
        assert_eq!(f.find(b"haystack with a needle in it"), Some(16));
        assert_eq!(f.find(b"no such thing"), None);
        assert_eq!(f.find(b"needle"), Some(6 - 6));
        assert_eq!(f.find(b"needl"), None);
    }

    #[test]
    fn finder_first_of_many() {
        let f = Finder::new(b"ab");
        assert_eq!(f.find(b"xxabyyab"), Some(2));
        let hits: Vec<usize> = f.find_iter(b"ababab").collect();
        assert_eq!(hits, vec![0, 2, 4]);
    }

    #[test]
    fn finder_overlapping_occurrences() {
        let f = Finder::new(b"aa");
        let hits: Vec<usize> = f.find_iter(b"aaaa").collect();
        assert_eq!(hits, vec![0, 1, 2]);
    }

    #[test]
    fn finder_single_and_empty_needles() {
        assert_eq!(Finder::new(b"x").find(b"aaxa"), Some(2));
        assert_eq!(Finder::new(b"").find(b"abc"), Some(0));
        assert_eq!(Finder::new(b"").find(b""), Some(0));
    }

    #[test]
    fn finder_rare_byte_probe_positions() {
        // "e" is common, "%" rare: the probe should pick the rare one
        // regardless of position.
        for needle in [&b"e%e"[..], b"%ee", b"ee%"] {
            let f = Finder::new(needle);
            assert_eq!(f.needle()[f.rare1], b'%');
            let hay = b"eeeeeeeee%eeeeeeeee";
            let expect = hay.windows(needle.len()).position(|w| w == needle);
            assert_eq!(f.find(hay), expect, "needle {needle:?}");
        }
    }

    #[test]
    fn memchr2_finds_either_byte() {
        let hay = b"xxxxxxxxxxxxXyxxxxx";
        assert_eq!(memchr2(b'X', b'y', hay), Some(12));
        assert_eq!(memchr2(b'y', b'X', hay), Some(12));
        assert_eq!(memchr2(b'q', b'Q', hay), None);
        assert_eq!(memchr2(b'a', b'b', b""), None);
        // Tail (sub-word) path.
        assert_eq!(memchr2(b'c', b'C', b"abC"), Some(2));
    }

    #[test]
    fn caseless_finder_matches_any_case() {
        let f = Finder::new_caseless(b"NeEdLe");
        assert!(f.is_caseless());
        assert_eq!(f.needle(), b"needle");
        assert_eq!(f.find(b"haystack with a NEEDLE in it"), Some(16));
        assert_eq!(f.find(b"haystack with a needle in it"), Some(16));
        assert_eq!(f.find(b"haystack with a nEeDlE in it"), Some(16));
        assert_eq!(f.find(b"no such thing"), None);
        assert!(f.matches(b"NEEDLE"));
        assert!(!f.matches(b"NEEDLES"));
    }

    #[test]
    fn caseless_finder_agrees_with_naive_fold() {
        let hay: Vec<u8> = (0..500u32)
            .map(|i| b"aBcDeFg \n"[(i * 7 % 9) as usize])
            .collect();
        for needle in [&b"ab"[..], b"CDEF", b"g \nA", b"zzz", b"A", b"%"] {
            let f = Finder::new_caseless(needle);
            let naive = hay
                .windows(needle.len())
                .position(|w| w.eq_ignore_ascii_case(&needle.to_ascii_lowercase()));
            assert_eq!(f.find(&hay), naive, "needle {needle:?}");
        }
    }

    #[test]
    fn finder_agrees_with_naive_search() {
        let hay: Vec<u8> = (0..500u32)
            .map(|i| b"abcdefg \n"[(i * 7 % 9) as usize])
            .collect();
        for needle in [&b"ab"[..], b"cdef", b"g \na", b"zzz", b"a"] {
            let f = Finder::new(needle);
            let naive = hay.windows(needle.len()).position(|w| w == needle);
            assert_eq!(f.find(&hay), naive, "needle {needle:?}");
        }
    }
}
